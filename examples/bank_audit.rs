//! A teller-pool scenario: several threads process transfers between
//! accounts. One code path updates the interest accrual without the
//! account lock (a true race); two counters that merely share a cache
//! line generate HTM conflicts that the slow path must filter out
//! (false sharing, not a race); and atomic statistics counters conflict
//! benignly.
//!
//! Demonstrates TxRace's *completeness*: everything it reports is a true
//! happens-before race — false sharing and atomics never show up.
//!
//! ```text
//! cargo run --release --example bank_audit
//! ```

use txrace::{Detector, RunConfig, Scheme};
use txrace_sim::{elem, ProgramBuilder};

const TELLERS: usize = 4;
const TRANSFERS: u32 = 60;

fn main() {
    let mut b = ProgramBuilder::new(TELLERS);
    let accounts = b.array("accounts", 64);
    let lock = b.lock_id("ledger_lock");
    let interest = b.var("interest_accrual");
    // Per-teller counters packed two to a cache line: false sharing
    // (each counter is written by exactly one thread — never a race).
    let counter_line_a = b.var("teller_counters_01");
    let counter_line_b = b.var("teller_counters_23");
    let counters = [
        counter_line_a,
        b.var_sharing_line(counter_line_a, 8),
        counter_line_b,
        b.var_sharing_line(counter_line_b, 8),
    ];
    // A global transfer counter updated atomically: benign conflicts.
    let stats = b.var("transfer_count");

    for t in 0..TELLERS {
        b.thread(t).loop_n(TRANSFERS, |tb| {
            // Proper locked ledger update.
            tb.lock(lock);
            for i in 0..4 {
                tb.read(elem(accounts, i));
            }
            tb.write(elem(accounts, t), 100);
            tb.unlock(lock);
            // Per-teller counter: distinct variables, shared cache lines.
            tb.write(counters[t % 4], 1);
            // Atomic statistics: HTM conflicts, never a race.
            tb.rmw(stats, 1);
            tb.compute(15);
        });
    }
    // The bug: tellers 0 and 1 touch the accrual without the lock,
    // padded with private work so the racy regions are real transactions.
    let pad0 = b.array("pad0", 8);
    let pad1 = b.array("pad1", 8);
    b.thread(0).loop_n(20, |tb| {
        tb.write_l(interest, 7, "accrual_write").compute(10);
        for i in 0..5 {
            tb.read(elem(pad0, i));
        }
    });
    b.thread(1).loop_n(20, |tb| {
        tb.read_l(interest, "accrual_read").compute(10);
        for i in 0..5 {
            tb.read(elem(pad1, i));
        }
    });
    let program = b.build();

    let outcome = Detector::new(RunConfig::new(Scheme::txrace(), 7)).run(&program);
    assert!(outcome.completed());
    let htm = outcome.htm.unwrap();

    println!("== bank audit ==");
    println!(
        "HTM saw {} conflict aborts (false sharing + atomics + the real bug)...",
        htm.conflict_aborts
    );
    println!(
        "...but TxRace reports exactly {} race(s):",
        outcome.races.distinct_count()
    );
    for r in outcome.races.reports() {
        let label = |site| program.label_of(site).unwrap_or("<unlabeled>");
        println!(
            "  {} vs {} on {}",
            label(r.prior.site),
            label(r.current.site),
            r.addr
        );
    }
    assert_eq!(
        outcome.races.distinct_count(),
        1,
        "only the accrual race is real"
    );
    println!("\nthe false-sharing counters and atomic statistics were filtered out —");
    println!("every TxRace report is a true happens-before race (completeness).");
}
