//! The loop-cut optimization at work (paper §4.3, Figure 9): a kernel
//! whose inner loop walks a large strided buffer overflows the HTM write
//! set on every execution. Compare the three schemes:
//!
//! * NoOpt — every region instance capacity-aborts and re-runs slowly;
//! * DynLoopcut — the first abort teaches a trip-count threshold, after
//!   which the transaction is split before it overflows;
//! * ProfLoopcut — a profiling run seeds the threshold, avoiding even the
//!   first abort.
//!
//! ```text
//! cargo run --release --example loopcut_tuning
//! ```

use txrace::{Detector, LoopcutMode, RunConfig, Scheme};
use txrace_sim::{ProgramBuilder, SyscallKind};

fn main() {
    let mut b = ProgramBuilder::new(2);
    for t in 0..2 {
        let grid = b.array(&format!("grid_{t}"), 100 * 8 * 8);
        b.thread(t).loop_n(12, |tb| {
            // The hot kernel: 100 iterations, each dirtying a new cache
            // line (stride aliases the 8-way write structure after ~64).
            tb.loop_n(100, |tb| {
                tb.write_arr(grid, 8 * 64, 1);
                tb.compute(2);
            });
            tb.syscall(SyscallKind::Io);
        });
    }
    let program = b.build();

    println!("== loop-cut tuning ==");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "capacity", "cuts", "committed", "overhead"
    );
    for (name, mode) in [
        ("NoOpt", LoopcutMode::NoOpt),
        ("DynLoopcut", LoopcutMode::Dyn),
        ("ProfLoopcut", LoopcutMode::Prof),
    ] {
        let out = Detector::new(RunConfig::new(Scheme::txrace_loopcut(mode), 5)).run(&program);
        assert!(out.completed());
        let htm = out.htm.unwrap();
        let es = out.engine.unwrap();
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>9.2}x",
            name, htm.capacity_aborts, es.loop_cuts, htm.committed, out.overhead
        );
    }
    println!("\nNoOpt aborts every kernel instance; Dyn learns after the first;");
    println!("Prof starts from the profiled threshold and avoids even that one.");
}
