//! A web-server-shaped workload (the paper evaluates Apache under
//! ApacheBench): worker threads accept connections under a lock, parse
//! and respond with I/O system calls (which cut transactions), and flush
//! a big log buffer that overflows the HTM write set (capacity aborts →
//! per-thread slow path, Figure 5 behaviour). A response-cache bug races
//! between two workers.
//!
//! ```text
//! cargo run --release --example webserver_race
//! ```

use txrace::{Detector, RunConfig, Scheme};
use txrace_sim::{elem, ProgramBuilder, SyscallKind};

const WORKERS: usize = 4;
const REQUESTS: u32 = 40;

fn main() {
    let mut b = ProgramBuilder::new(WORKERS);
    let accept_lock = b.lock_id("accept");
    let conn_queue = b.array("conn_queue", 8);
    let response_cache = b.var("response_cache");
    let log_buf = b.array("log_buf", 80 * 8 * 8);

    for t in 0..WORKERS {
        let req_buf = b.array(&format!("req_{t}"), 32);
        b.thread(t).loop_n(REQUESTS, |tb| {
            // Accept under the lock (a tiny critical section).
            tb.lock(accept_lock);
            tb.read(elem(conn_queue, 0)).write(elem(conn_queue, 1), 1);
            tb.unlock(accept_lock);
            // Parse request; respond with I/O.
            for i in 0..10 {
                tb.read(elem(req_buf, i));
            }
            tb.compute(25);
            tb.syscall(SyscallKind::Io);
            // The bug: workers 0 and 1 update the shared response cache
            // without synchronization.
            if t == 0 {
                tb.write_l(response_cache, 1, "cache_fill");
            } else if t == 1 {
                tb.read_l(response_cache, "cache_probe");
            } else {
                tb.compute(2);
            }
            for i in 0..6 {
                tb.write(elem(req_buf, i), 1);
            }
            tb.syscall(SyscallKind::Io);
        });
    }
    // Worker 0 periodically flushes the access log: 80 cache lines in one
    // region overflow the transactional write buffer.
    b.thread(0).loop_n(3, |tb| {
        tb.loop_n(80, |tb| {
            tb.write_arr(log_buf, 8 * 64, 1);
        });
        tb.syscall(SyscallKind::Io);
    });
    let program = b.build();

    let outcome = Detector::new(RunConfig::new(Scheme::txrace(), 3)).run(&program);
    assert!(outcome.completed());
    let htm = outcome.htm.unwrap();
    let es = outcome.engine.unwrap();

    println!("== webserver race hunt ==");
    println!("committed transactions:   {}", htm.committed);
    println!("conflict aborts:          {}", htm.conflict_aborts);
    println!(
        "capacity aborts:          {} (log flushes)",
        htm.capacity_aborts
    );
    println!("slow-path regions:        {} total", es.slow_total());
    println!(
        "  small regions (K < 5):  {} (the accept critical sections)",
        es.slow_small
    );
    println!(
        "races found:              {}",
        outcome.races.distinct_count()
    );
    for r in outcome.races.reports() {
        let label = |site| program.label_of(site).unwrap_or("<unlabeled>");
        println!("  {} vs {}", label(r.prior.site), label(r.current.site));
    }
    println!("overhead:                 {:.2}x", outcome.overhead);
    assert!(outcome.races.contains(
        program.site("cache_fill").unwrap(),
        program.site("cache_probe").unwrap()
    ));
}
