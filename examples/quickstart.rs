//! Quickstart: build a small multithreaded program with a data race,
//! run TxRace on it, and inspect what the detector reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use txrace::{Detector, RunConfig, Scheme};
use txrace_sim::ProgramBuilder;

fn main() {
    // Two worker threads update a shared `balance`. Thread 0 takes the
    // lock; thread 1 forgot to — the classic data race.
    let mut b = ProgramBuilder::new(2);
    let balance = b.var("balance");
    let lock = b.lock_id("balance_lock");
    let log0 = b.var("audit_log_0");
    let log1 = b.var("audit_log_1");

    // Most of the work is clean per-teller bookkeeping; every fourth
    // iteration touches the shared balance — thread 0 under the lock,
    // thread 1 (the bug) without it.
    b.thread(0).loop_n(15, |t| {
        t.loop_n(3, |t| {
            t.write(log0, 1)
                .read(log0)
                .write(log0, 2)
                .read(log0)
                .write(log0, 3);
            t.compute(20);
            t.syscall(txrace_sim::SyscallKind::Io);
        });
        t.lock(lock);
        t.read(balance);
        t.write_l(balance, 100, "locked_update");
        t.read(log0).read(log0).read(log0);
        t.unlock(lock);
        t.syscall(txrace_sim::SyscallKind::Io);
    });
    b.thread(1).loop_n(15, |t| {
        t.loop_n(3, |t| {
            t.write(log1, 1)
                .read(log1)
                .write(log1, 2)
                .read(log1)
                .write(log1, 3);
            t.compute(20);
            t.syscall(txrace_sim::SyscallKind::Io);
        });
        // BUG: no lock around the balance update.
        t.read(balance);
        t.write_l(balance, 200, "unlocked_update");
        t.read(log1).read(log1).read(log1);
        t.compute(5);
        t.syscall(txrace_sim::SyscallKind::Io);
    });
    let program = b.build();

    // Run the TxRace two-phase detector (instruments, executes, reports).
    let outcome = Detector::new(RunConfig::new(Scheme::txrace(), 42)).run(&program);
    assert!(outcome.completed());

    println!("== TxRace quickstart ==");
    println!("distinct races found: {}", outcome.races.distinct_count());
    for report in outcome.races.reports() {
        let label = |site| program.label_of(site).unwrap_or("<unlabeled>");
        println!(
            "  {report}  ({} vs {})",
            label(report.prior.site),
            label(report.current.site)
        );
    }
    let htm = outcome.htm.expect("TxRace runs expose HTM statistics");
    println!("\ntransactions committed: {}", htm.committed);
    println!(
        "aborts: {} conflict / {} capacity / {} unknown",
        htm.conflict_aborts, htm.capacity_aborts, htm.unknown_aborts
    );
    println!(
        "runtime overhead vs uninstrumented: {:.2}x",
        outcome.overhead
    );

    // Compare with the always-on software detector.
    let tsan = Detector::new(RunConfig::new(Scheme::Tsan, 42)).run(&program);
    println!(
        "\nTSan finds {} races at {:.2}x overhead — TxRace gets the same \
         answer at a fraction of the cost.",
        tsan.races.distinct_count(),
        tsan.overhead
    );
    assert_eq!(outcome.races.distinct_count(), tsan.races.distinct_count());
    assert!(outcome.overhead < tsan.overhead);
}
