//! Soundness of the static race-freedom pruning analysis, end to end.
//!
//! The headline invariant: pruning must never change *which races are
//! found*. `ChecksOnly` pruning is schedule-preserving, so its guarantee
//! is exact — same race set, and the paid-plus-elided cycles reproduce
//! the unpruned total to the cycle. `Full` pruning re-instruments (the
//! schedule legitimately shifts), so its guarantee is the semantic one:
//! planted races are still found, and no report ever involves a site the
//! analysis called race-free.

use std::collections::BTreeSet;

use proptest::prelude::*;
use txrace::{Detector, RunConfig, Scheme, SiteClassTable, StaticPruneMode};
use txrace_hb::RacePair;
use txrace_workloads::{all_workloads, by_name, random_program, GenConfig, RaceKind};

fn pairs_of(out: &txrace::RunOutcome) -> BTreeSet<RacePair> {
    out.races.pairs().collect()
}

/// Asserts that no race report involves a site the table proved
/// race-free — the definition of the analysis being sound.
fn assert_no_pruned_site_reported(ctx: &str, out: &txrace::RunOutcome, table: &SiteClassTable) {
    for r in out.races.reports() {
        for site in [r.prior.site, r.current.site] {
            assert!(
                !table.is_race_free(site),
                "{ctx}: race report {} -- {} involves site {site}, which the \
                 analysis classified {:?}",
                r.prior.site,
                r.current.site,
                table.class(site)
            );
        }
    }
}

/// ChecksOnly pruning on every workload, under both detectors: the race
/// set is identical and the cycle ledger balances exactly.
#[test]
fn checksonly_is_exact_on_all_workloads() {
    let mut total_elided = 0u64;
    for w in all_workloads(4) {
        for scheme in [Scheme::Tsan, Scheme::txrace()] {
            let off = Detector::new(w.config(scheme.clone(), 42)).run(&w.program);
            let on = Detector::new(
                w.config(scheme.clone(), 42)
                    .with_prune(StaticPruneMode::ChecksOnly),
            )
            .run(&w.program);
            assert!(off.completed() && on.completed(), "{}", w.name);
            assert_eq!(
                pairs_of(&off),
                pairs_of(&on),
                "{} ({scheme:?}): pruning changed the race set",
                w.name
            );
            assert_eq!(
                off.breakdown.total(),
                on.breakdown.total() + on.breakdown.elided,
                "{} ({scheme:?}): cycle ledger does not balance",
                w.name
            );
            assert_eq!(off.breakdown.elided, 0, "{}: unpruned run elided", w.name);
            total_elided += on.breakdown.elided;
        }
    }
    assert!(
        total_elided > 0,
        "pruning never elided a single check across all workloads"
    );
}

/// The strongest empirical soundness check: a full, unpruned TSan run
/// (sound and complete on its trace) must never report a race involving
/// a site the analysis classified race-free.
#[test]
fn unpruned_tsan_never_reports_a_pruned_site() {
    for w in all_workloads(4) {
        let table = SiteClassTable::analyze(&w.program);
        for seed in [1, 42] {
            let out = Detector::new(w.config(Scheme::Tsan, seed)).run(&w.program);
            assert!(out.completed(), "{}", w.name);
            assert_no_pruned_site_reported(w.name, &out, &table);
        }
    }
}

/// Full pruning re-instruments, so schedules shift — but the hot
/// (overlapping) planted races must still be found, and nothing pruned
/// may ever be reported.
#[test]
fn full_prune_still_finds_hot_races() {
    for name in [
        "fluidanimate",
        "raytrace",
        "ferret",
        "streamcluster",
        "canneal",
    ] {
        let w = by_name(name, 4).expect("known app");
        let table = SiteClassTable::analyze(&w.program);
        let expected = w.expected_txrace_reliable_races();
        let mut best = 0;
        for seed in [1, 2, 3] {
            let tx = Detector::new(
                w.config(Scheme::txrace(), seed)
                    .with_prune(StaticPruneMode::Full),
            )
            .run(&w.program);
            assert!(tx.completed(), "{name} seed {seed}");
            assert_no_pruned_site_reported(name, &tx, &table);
            let found = w
                .planted_pairs()
                .iter()
                .filter(|&&(p, k)| k == RaceKind::Overlapping && tx.races.contains(p.a, p.b))
                .count();
            best = best.max(found);
        }
        assert_eq!(
            best, expected,
            "{name}: full pruning lost hot races ({best}/{expected})"
        );
    }
}

/// Full pruning must not cost detection coverage on any workload: TSan
/// under Full pruning reports exactly the planted races, like unpruned
/// TSan does (TSan does not re-instrument, so Full == ChecksOnly there,
/// but this pins the public-config path end to end).
#[test]
fn full_prune_tsan_keeps_exact_detection() {
    for w in all_workloads(4) {
        let out = Detector::new(w.config(Scheme::Tsan, 42).with_prune(StaticPruneMode::Full))
            .run(&w.program);
        assert!(out.completed(), "{}", w.name);
        let planted: Vec<RacePair> = w.planted_pairs().iter().map(|&(p, _)| p).collect();
        for p in &planted {
            assert!(
                out.races.contains(p.a, p.b),
                "{}: planted race {p} lost under Full pruning",
                w.name
            );
        }
        assert_eq!(out.races.distinct_count(), planted.len(), "{}", w.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On randomly generated programs, ChecksOnly pruning is invisible:
    /// same races, balanced cycle ledger — for both detectors.
    #[test]
    fn checksonly_is_exact_on_random_programs(
        gen_seed in 0u64..400,
        sched_seed in 0u64..20,
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        for scheme in [Scheme::Tsan, Scheme::txrace()] {
            let off = Detector::new(RunConfig::new(scheme.clone(), sched_seed)).run(&p);
            let on = Detector::new(
                RunConfig::new(scheme.clone(), sched_seed)
                    .with_prune(StaticPruneMode::ChecksOnly),
            )
            .run(&p);
            prop_assert!(off.completed() && on.completed());
            prop_assert_eq!(pairs_of(&off), pairs_of(&on));
            prop_assert_eq!(
                off.breakdown.total(),
                on.breakdown.total() + on.breakdown.elided
            );
        }
    }

    /// Analysis soundness on random programs: unpruned TSan never blames
    /// a site the table classified race-free.
    #[test]
    fn random_programs_never_report_pruned_sites(
        gen_seed in 0u64..400,
        sched_seed in 0u64..20,
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        let table = SiteClassTable::analyze(&p);
        let out = Detector::new(RunConfig::new(Scheme::Tsan, sched_seed)).run(&p);
        prop_assert!(out.completed());
        assert_no_pruned_site_reported("random program", &out, &table);
    }

    /// Full pruning on random programs: still terminates, still sound.
    #[test]
    fn full_prune_terminates_and_stays_sound_on_random_programs(
        gen_seed in 0u64..200,
        sched_seed in 0u64..10,
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        let table = SiteClassTable::analyze(&p);
        let tx = Detector::new(
            RunConfig::new(Scheme::txrace(), sched_seed)
                .with_prune(StaticPruneMode::Full),
        )
        .run(&p);
        prop_assert!(tx.completed());
        assert_no_pruned_site_reported("random program (full)", &tx, &table);
    }
}
