//! The parallel replay contract: fanning one [`EventLog`] to N
//! consumers on scoped threads, and sharding FastTrack/lockset shadow
//! state by address across W workers, are both *byte-identical* to a
//! serial single-consumer replay — for every detector, every worker
//! count, and every width.
//!
//! Fan-out is trivially equivalent (consumers are pure observers with
//! private state; concurrency can't change what any of them sees), so
//! the tests there guard the harness plumbing: ordering, panel
//! recovery, outcome assembly. Sharding is the interesting case — the
//! routing/broadcast/merge rules of `txrace_hb::sharded` are what these
//! tests pin down, including the deterministic reconstruction of the
//! serial report *order* from per-shard report lists.

use proptest::prelude::*;
use txrace::{CostModel, Detector, LocksetConsumer, PanelConsumer, RunConfig, Scheme};
use txrace_hb::{
    shard_of, FastTrack, Lockset, ShadowMode, ShardedFastTrack, ShardedLockset, VectorClockDetector,
};
use txrace_sim::{fan_out, Addr, EventLog, Program};
use txrace_workloads::{all_workloads, random_program, GenConfig};

/// Worker counts / fan-out widths exercised everywhere.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Checks both parallel layers against fresh serial replays of `log`.
fn check_parallel_equivalence(app: &str, p: &Program, d: &Detector, log: &EventLog) {
    let n = p.thread_count();

    // --- Serial references: one single-threaded replay per detector. ---
    let serial_out = d.replay(log, d.consumer(p));
    let mut serial_ft = FastTrack::new(n, ShadowMode::Exact);
    log.replay(&mut serial_ft);
    let mut serial_vc = VectorClockDetector::new(n);
    log.replay(&mut serial_vc);
    let mut serial_ls = Lockset::new(n);
    log.replay(&mut serial_ls);

    // --- Layer 1: heterogeneous fan-out at every width. ---
    for width in WORKERS {
        let panel = vec![
            PanelConsumer::Tsan(d.consumer(p)),
            PanelConsumer::FastTrack(FastTrack::new(n, ShadowMode::Exact)),
            PanelConsumer::VcRef(VectorClockDetector::new(n)),
            PanelConsumer::Lockset(LocksetConsumer::new(n, CostModel::default())),
        ];
        let mut fanned = fan_out(log, panel, width).into_iter();

        let tsan = fanned
            .next()
            .and_then(|r| r.consumer.into_tsan())
            .expect("fan_out preserves panel order");
        let out = d.outcome_of_replayed(tsan, log);
        assert_eq!(
            out.races.reports(),
            serial_out.races.reports(),
            "{app}: tsan races diverged at width {width}"
        );
        assert_eq!(out.breakdown, serial_out.breakdown, "{app} w={width}");
        assert_eq!(out.checks, serial_out.checks, "{app} w={width}");
        assert_eq!(out.memory, serial_out.memory, "{app} w={width}");

        let ft = fanned
            .next()
            .and_then(|r| r.consumer.into_fasttrack())
            .expect("fan_out preserves panel order");
        assert_eq!(
            ft.races().reports(),
            serial_ft.races().reports(),
            "{app}: fasttrack races diverged at width {width}"
        );
        assert_eq!(ft.checks(), serial_ft.checks(), "{app} w={width}");

        let vc = fanned
            .next()
            .and_then(|r| r.consumer.into_vcref())
            .expect("fan_out preserves panel order");
        assert_eq!(
            vc.races().reports(),
            serial_vc.races().reports(),
            "{app}: vcref races diverged at width {width}"
        );

        let ls = fanned
            .next()
            .and_then(|r| r.consumer.into_lockset())
            .expect("fan_out preserves panel order");
        assert_eq!(
            ls.reports(),
            serial_ls.reports(),
            "{app}: lockset reports diverged at width {width}"
        );
    }

    // --- Layer 2: address-sharded detectors at every worker count. ---
    for workers in WORKERS {
        let out = ShardedFastTrack::new(n, workers).run(log);
        assert_eq!(
            out.races.reports(),
            serial_ft.races().reports(),
            "{app}: sharded fasttrack races diverged at {workers} workers"
        );
        assert_eq!(
            out.races.distinct_count(),
            serial_ft.races().distinct_count(),
            "{app} workers={workers}"
        );
        assert_eq!(out.checks, serial_ft.checks(), "{app} workers={workers}");
        assert_eq!(
            out.sync_ops,
            serial_ft.sync_ops(),
            "{app} workers={workers}"
        );
        // Threaded and sequential shard execution must agree (shards
        // are independent; only the merge sees all of them).
        let seq = ShardedFastTrack::new(n, workers).run_serial(log);
        assert_eq!(
            seq.races.reports(),
            out.races.reports(),
            "{app}: threaded vs sequential shard execution, {workers} workers"
        );
        // Routing partitions the checks: per-shard shares sum to the
        // serial total, and every shard saw the whole event stream.
        let routed: u64 = out.shards.iter().map(|s| s.checks).sum();
        assert_eq!(routed, serial_ft.checks(), "{app} workers={workers}");
        for s in &out.shards {
            assert_eq!(s.events, log.len() as u64, "{app} workers={workers}");
        }

        let ls_out = ShardedLockset::new(n, workers).run(log);
        assert_eq!(
            ls_out.reports,
            serial_ls.reports(),
            "{app}: sharded lockset reports diverged at {workers} workers"
        );
    }
}

#[test]
fn all_workloads_parallel_replay_identically_across_seeds() {
    for seed in [11, 42, 1234] {
        for w in all_workloads(4) {
            let d = Detector::new(w.config(Scheme::Tsan, seed));
            let log = d.record(&w.program);
            check_parallel_equivalence(w.name, &w.program, &d, &log);
        }
    }
}

#[test]
fn shard_routing_is_a_partition() {
    // Every address maps to exactly one shard for every worker count —
    // the property the sharded detectors' correctness rests on.
    for shards in 1..=8 {
        for word in 0..512u64 {
            let addr = Addr(word * 8);
            let s = shard_of(addr, shards);
            assert!(s < shards);
            assert_eq!(s, shard_of(addr, shards), "routing must be stable");
        }
    }
    // One shard means everything routes to it (sharded == serial by
    // construction).
    for word in 0..64u64 {
        assert_eq!(shard_of(Addr(word * 8), 1), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random programs: both parallel layers reproduce the serial
    /// replay byte for byte, for every worker count.
    #[test]
    fn random_programs_parallel_replay_identically(
        gen_seed in 0u64..400,
        sched_seed in 0u64..40,
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        let d = Detector::new(RunConfig::new(Scheme::Tsan, sched_seed));
        let log = d.record(&p);
        check_parallel_equivalence("random", &p, &d, &log);
    }
}
