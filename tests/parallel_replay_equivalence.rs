//! The parallel replay contract: fanning one [`EventLog`] to N
//! consumers on scoped threads, and sharding FastTrack/lockset shadow
//! state by address across W workers, are both *byte-identical* to a
//! serial single-consumer replay — for every detector, every worker
//! count, and every width.
//!
//! Fan-out is trivially equivalent (consumers are pure observers with
//! private state; concurrency can't change what any of them sees), so
//! the tests there guard the harness plumbing: ordering, panel
//! recovery, outcome assembly. Sharding is the interesting case — the
//! routing/broadcast/merge rules of `txrace_hb::sharded` are what these
//! tests pin down, including the deterministic reconstruction of the
//! serial report *order* from per-shard report lists.

use proptest::prelude::*;
use txrace::{CostModel, Detector, LocksetConsumer, PanelConsumer, RunConfig, Scheme};
use txrace_hb::{
    shard_of, FastTrack, Lockset, ShadowMode, ShardPlan, ShardedFastTrack, ShardedLockset,
    VectorClockDetector,
};
use txrace_sim::{fan_out, Addr, EventLog, Program, SyncIndex, TraceEventKind};
use txrace_workloads::{all_workloads, random_program, GenConfig};

/// Worker counts / fan-out widths exercised everywhere.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Checks both parallel layers against fresh serial replays of `log`.
fn check_parallel_equivalence(app: &str, p: &Program, d: &Detector, log: &EventLog) {
    let n = p.thread_count();

    // --- Serial references: one single-threaded replay per detector. ---
    let serial_out = d.replay(log, d.consumer(p));
    let mut serial_ft = FastTrack::new(n, ShadowMode::Exact);
    log.replay(&mut serial_ft);
    let mut serial_vc = VectorClockDetector::new(n);
    log.replay(&mut serial_vc);
    let mut serial_ls = Lockset::new(n);
    log.replay(&mut serial_ls);

    // --- Layer 1: heterogeneous fan-out at every width. ---
    for width in WORKERS {
        let panel = vec![
            PanelConsumer::Tsan(d.consumer(p)),
            PanelConsumer::FastTrack(FastTrack::new(n, ShadowMode::Exact)),
            PanelConsumer::VcRef(VectorClockDetector::new(n)),
            PanelConsumer::Lockset(LocksetConsumer::new(n, CostModel::default())),
        ];
        let mut fanned = fan_out(log, panel, width).into_iter();

        let tsan = fanned
            .next()
            .and_then(|r| r.consumer.into_tsan())
            .expect("fan_out preserves panel order");
        let out = d.outcome_of_replayed(tsan, log);
        assert_eq!(
            out.races.reports(),
            serial_out.races.reports(),
            "{app}: tsan races diverged at width {width}"
        );
        assert_eq!(out.breakdown, serial_out.breakdown, "{app} w={width}");
        assert_eq!(out.checks, serial_out.checks, "{app} w={width}");
        assert_eq!(out.memory, serial_out.memory, "{app} w={width}");

        let ft = fanned
            .next()
            .and_then(|r| r.consumer.into_fasttrack())
            .expect("fan_out preserves panel order");
        assert_eq!(
            ft.races().reports(),
            serial_ft.races().reports(),
            "{app}: fasttrack races diverged at width {width}"
        );
        assert_eq!(ft.checks(), serial_ft.checks(), "{app} w={width}");

        let vc = fanned
            .next()
            .and_then(|r| r.consumer.into_vcref())
            .expect("fan_out preserves panel order");
        assert_eq!(
            vc.races().reports(),
            serial_vc.races().reports(),
            "{app}: vcref races diverged at width {width}"
        );

        let ls = fanned
            .next()
            .and_then(|r| r.consumer.into_lockset())
            .expect("fan_out preserves panel order");
        assert_eq!(
            ls.reports(),
            serial_ls.reports(),
            "{app}: lockset reports diverged at width {width}"
        );
    }

    // --- Layer 2: address-sharded detectors at every worker count. ---
    for workers in WORKERS {
        let plan = ShardPlan::build(log, workers);
        let out = ShardedFastTrack::new(n, workers).run(log);
        assert_eq!(
            out.races.reports(),
            serial_ft.races().reports(),
            "{app}: sharded fasttrack races diverged at {workers} workers"
        );
        assert_eq!(
            out.races.distinct_count(),
            serial_ft.races().distinct_count(),
            "{app} workers={workers}"
        );
        assert_eq!(out.checks, serial_ft.checks(), "{app} workers={workers}");
        assert_eq!(
            out.sync_ops,
            serial_ft.sync_ops(),
            "{app} workers={workers}"
        );
        // Threaded and sequential shard execution must agree (shards
        // are independent; only the merge sees all of them), and a
        // pre-built plan must reproduce the internally-built one.
        let seq = ShardedFastTrack::new(n, workers).run_with_plan_serial(&plan);
        assert_eq!(
            seq.races.reports(),
            out.races.reports(),
            "{app}: threaded vs sequential shard execution, {workers} workers"
        );
        // Routing partitions the checks and the accesses: per-shard
        // shares sum to the serial totals, and each shard dispatches
        // only its access slice plus the shared sync stream — not the
        // full log (that was the old broadcast design's S× walk).
        let routed: u64 = out.shards.iter().map(|s| s.checks).sum();
        assert_eq!(routed, serial_ft.checks(), "{app} workers={workers}");
        let sliced: u64 = (0..workers)
            .map(|i| plan.partition().slice(i).len() as u64)
            .sum();
        assert_eq!(sliced, plan.partition().total_accesses());
        for (i, s) in out.shards.iter().enumerate() {
            assert_eq!(s.events, plan.shard_events(i), "{app} workers={workers}");
            assert!(s.events <= log.len() as u64, "{app} workers={workers}");
        }

        let ls_out = ShardedLockset::new(n, workers).run_with_plan(&plan);
        assert_eq!(
            ls_out.reports,
            serial_ls.reports(),
            "{app}: sharded lockset reports diverged at {workers} workers"
        );
    }
}

#[test]
fn all_workloads_parallel_replay_identically_across_seeds() {
    for seed in [11, 42, 1234] {
        for w in all_workloads(4) {
            let d = Detector::new(w.config(Scheme::Tsan, seed));
            let log = d.record(&w.program);
            check_parallel_equivalence(w.name, &w.program, &d, &log);
        }
    }
}

#[test]
fn channel_families_shard_identically_and_ride_the_sync_stream() {
    // The message-passing workloads synchronize through ChanSend/ChanRecv
    // edges, not locks or barriers. Sharded replay is only sound for them
    // if channel events ride the broadcast sync stream — every shard must
    // observe the complete channel history even though no shard owns it.
    for seed in [7, 42] {
        for w in all_workloads(4) {
            if !matches!(w.name, "pipeline" | "actors" | "worksteal") {
                continue;
            }
            let d = Detector::new(w.config(Scheme::Tsan, seed));
            let log = d.record(&w.program);
            let n = w.program.thread_count();

            let is_chan = |k: TraceEventKind| {
                matches!(k, TraceEventKind::ChanSend | TraceEventKind::ChanRecv)
            };
            let sync = SyncIndex::of(&log);
            let chan_in_log = log.events().iter().filter(|e| is_chan(e.kind)).count();
            let chan_in_sync = sync.events().iter().filter(|(_, e)| is_chan(e.kind)).count();
            assert!(chan_in_log > 0, "{}: fixture must exercise channels", w.name);
            assert_eq!(
                chan_in_sync, chan_in_log,
                "{}: every channel event rides the sync stream",
                w.name
            );

            let mut serial_ft = FastTrack::new(n, ShadowMode::Exact);
            log.replay(&mut serial_ft);
            let mut serial_ls = Lockset::new(n);
            log.replay(&mut serial_ls);

            for workers in WORKERS {
                let plan = ShardPlan::with_sync(sync.clone(), &log, workers);
                // No shard's slice contains a channel event: the
                // partitioner routes only data accesses.
                let sliced: u64 = (0..workers)
                    .map(|i| plan.partition().slice(i).len() as u64)
                    .sum();
                assert_eq!(
                    sliced + log.len() as u64 - plan.partition().total_accesses(),
                    log.len() as u64
                );
                let out = ShardedFastTrack::new(n, workers).run_with_plan(&plan);
                assert_eq!(
                    out.races.reports(),
                    serial_ft.races().reports(),
                    "{} seed={seed} workers={workers}: sharded fasttrack diverged",
                    w.name
                );
                let ls_out = ShardedLockset::new(n, workers).run_with_plan(&plan);
                assert_eq!(
                    ls_out.reports,
                    serial_ls.reports(),
                    "{} seed={seed} workers={workers}: sharded lockset diverged",
                    w.name
                );
            }
        }
    }
}

#[test]
fn shard_routing_is_a_partition() {
    // Every address maps to exactly one shard for every worker count —
    // the property the sharded detectors' correctness rests on.
    for shards in 1..=8 {
        for word in 0..512u64 {
            let addr = Addr(word * 8);
            let s = shard_of(addr, shards);
            assert!(s < shards);
            assert_eq!(s, shard_of(addr, shards), "routing must be stable");
        }
    }
    // One shard means everything routes to it (sharded == serial by
    // construction).
    for word in 0..64u64 {
        assert_eq!(shard_of(Addr(word * 8), 1), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random programs: both parallel layers reproduce the serial
    /// replay byte for byte, for every worker count.
    #[test]
    fn random_programs_parallel_replay_identically(
        gen_seed in 0u64..400,
        sched_seed in 0u64..40,
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        let d = Detector::new(RunConfig::new(Scheme::Tsan, sched_seed));
        let log = d.record(&p);
        check_parallel_equivalence("random", &p, &d, &log);
    }
}
