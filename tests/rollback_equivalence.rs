//! The undo-log correctness contract: every versioning policy produces
//! bit-identical detection results.
//!
//! The live TxRace path keeps three interchangeable ways to version
//! speculative state — the eager [`VersionPolicy::Undo`] journal (the
//! default), the lazy [`VersionPolicy::Buffer`] write buffer (the
//! oracle), and [`VersionPolicy::CloneSnapshot`] (the old full-memory
//! clone, kept as a modeled-cost baseline for `bench_live`). They differ
//! only in *simulator* wall-clock; everything observable — race sets,
//! cycle breakdowns, abort mixes, engine counters, final memory, run
//! results — must match exactly. Checked on all bundled workloads and on
//! randomly generated programs.

use proptest::prelude::*;
use txrace::{Detector, RunConfig, RunOutcome, Scheme};
use txrace_htm::{HtmConfig, VersionPolicy};
use txrace_sim::Program;
use txrace_workloads::{all_workloads, random_program, GenConfig};

const POLICIES: [VersionPolicy; 3] = [
    VersionPolicy::Undo,
    VersionPolicy::Buffer,
    VersionPolicy::CloneSnapshot,
];

fn run_with_policy(mut cfg: RunConfig, p: &Program, version: VersionPolicy) -> RunOutcome {
    cfg.htm = HtmConfig { version, ..cfg.htm };
    Detector::new(cfg).run(p)
}

/// Asserts that `out` (some policy) matches `oracle` (Buffer) on every
/// observable the detector reports.
fn assert_outcomes_identical(
    app: &str,
    policy: VersionPolicy,
    oracle: &RunOutcome,
    out: &RunOutcome,
) {
    let tag = format!("{app} [{policy:?} vs Buffer]");
    assert_eq!(
        oracle.races.reports(),
        out.races.reports(),
        "{tag}: race sets differ"
    );
    assert_eq!(
        oracle.breakdown, out.breakdown,
        "{tag}: cycle ledgers differ"
    );
    assert_eq!(oracle.baseline_cycles, out.baseline_cycles, "{tag}");
    assert!(
        (oracle.overhead - out.overhead).abs() < 1e-12,
        "{tag}: overheads differ"
    );
    assert_eq!(oracle.htm, out.htm, "{tag}: HTM stats (abort mix) differ");
    assert_eq!(oracle.engine, out.engine, "{tag}: engine stats differ");
    assert_eq!(oracle.checks, out.checks, "{tag}: check counts differ");
    assert_eq!(oracle.memory, out.memory, "{tag}: final memory differs");
    assert_eq!(oracle.run, out.run, "{tag}: run results differ");
}

fn check_policies(app: &str, p: &Program, cfg_of: impl Fn() -> RunConfig) {
    let oracle = run_with_policy(cfg_of(), p, VersionPolicy::Buffer);
    assert!(oracle.htm.is_some(), "{app}: expected a TxRace run");
    for policy in [VersionPolicy::Undo, VersionPolicy::CloneSnapshot] {
        let out = run_with_policy(cfg_of(), p, policy);
        assert_outcomes_identical(app, policy, &oracle, &out);
    }
}

#[test]
fn all_workloads_roll_back_identically() {
    for w in all_workloads(4) {
        check_policies(w.name, &w.program, || w.config(Scheme::txrace(), 42));
    }
}

#[test]
fn rollback_equivalence_holds_across_seeds() {
    for seed in [0, 7, 1234] {
        for name in ["bodytrack", "vips", "streamcluster"] {
            let w = txrace_workloads::by_name(name, 3).expect("bundled workload");
            check_policies(name, &w.program, || w.config(Scheme::txrace(), seed));
        }
    }
}

#[test]
fn default_policy_is_the_undo_journal() {
    // `bench_live`'s speedup claim is about the *default* live path; keep
    // the default honest.
    assert_eq!(HtmConfig::default().version, VersionPolicy::Undo);
    for &policy in &POLICIES {
        // Every policy stays constructible (the oracle and the baseline
        // must not rot away).
        let _ = HtmConfig {
            version: policy,
            ..HtmConfig::default()
        };
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random programs: journaled rollback is bit-identical to the
    /// write-buffer oracle and to clone snapshots through the full
    /// TxRace pipeline.
    #[test]
    fn random_programs_roll_back_identically(
        gen_seed in 0u64..400,
        sched_seed in 0u64..40,
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        let cfg_of = || RunConfig::new(Scheme::txrace(), sched_seed);
        let oracle = run_with_policy(cfg_of(), &p, VersionPolicy::Buffer);
        for policy in [VersionPolicy::Undo, VersionPolicy::CloneSnapshot] {
            let out = run_with_policy(cfg_of(), &p, policy);
            prop_assert_eq!(oracle.races.reports(), out.races.reports());
            prop_assert_eq!(&oracle.breakdown, &out.breakdown);
            prop_assert_eq!(&oracle.htm, &out.htm);
            prop_assert_eq!(&oracle.engine, &out.engine);
            prop_assert_eq!(oracle.checks, out.checks);
            prop_assert_eq!(&oracle.memory, &out.memory);
            prop_assert_eq!(&oracle.run, &out.run);
        }
    }
}
