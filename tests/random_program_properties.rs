//! Property tests over randomly generated concurrent programs: the
//! detectors must uphold their contracts on programs nobody hand-tuned.
//!
//! DESIGN.md invariants exercised here: engine liveness (8), TxRace
//! completeness against TSan ground truth (4), and final-state
//! correctness for data-race-free programs.

use proptest::prelude::*;
use txrace::{Detector, RunConfig, Scheme};
use txrace_sim::{DirectRuntime, InterruptModel, Machine, ProgramBuilder, RoundRobin, RunStatus};
use txrace_workloads::{random_program, GenConfig};

/// Re-runs the shrunken failure cases recorded in
/// `random_program_properties.proptest-regressions`. The vendored
/// proptest shim seeds its generators from the test name and does *not*
/// read regression files, so the saved cases are pinned here explicitly —
/// parsed from the file, not copied into code, so new `cc` entries are
/// picked up automatically (as long as they follow the standard
/// `shrinks to var = value, ...` comment format).
#[test]
fn saved_proptest_regressions_still_pass() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/random_program_properties.proptest-regressions"
    ))
    .expect("regression file exists");
    let mut cases = 0;
    for line in text.lines() {
        let Some(rest) = line.split("# shrinks to ").nth(1) else {
            continue;
        };
        let mut gen_seed = None;
        let mut sched_seed = None;
        let mut interrupts = None;
        for assign in rest.split(", ") {
            let mut kv = assign.split(" = ");
            match (kv.next(), kv.next()) {
                (Some("gen_seed"), Some(v)) => gen_seed = v.parse::<u64>().ok(),
                (Some("sched_seed"), Some(v)) => sched_seed = v.parse::<u64>().ok(),
                (Some("interrupts"), Some(v)) => interrupts = v.parse::<f64>().ok(),
                _ => {}
            }
        }
        let (Some(gen_seed), Some(sched_seed), Some(interrupts)) =
            (gen_seed, sched_seed, interrupts)
        else {
            panic!("unparseable regression entry: {line}");
        };
        cases += 1;
        // The body of `txrace_terminates_on_random_programs`, on the
        // saved concrete inputs.
        let p = random_program(&GenConfig::default(), gen_seed);
        let model = InterruptModel {
            context_switch_p: interrupts,
            transient_p: interrupts / 2.0,
        };
        let tx = Detector::new(RunConfig::new(Scheme::txrace(), sched_seed).with_interrupts(model))
            .run(&p);
        assert!(tx.completed(), "TxRace run did not finish: {:?}", tx.run);
        assert!(tx.overhead >= 1.0);
    }
    assert!(cases >= 1, "regression file had no parseable cases");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Liveness on arbitrary generated programs, including under
    /// interrupt injection: TxRace always terminates and does at least the
    /// original program's work. (Report-level comparison against a TSan
    /// run is only valid for sync-free programs — see the next test —
    /// because with locks, *which* pairs race is itself
    /// schedule-dependent.)
    #[test]
    fn txrace_terminates_on_random_programs(
        gen_seed in 0u64..500,
        sched_seed in 0u64..50,
        interrupts in prop_oneof![Just(0.0), Just(0.01)],
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        let model = InterruptModel { context_switch_p: interrupts, transient_p: interrupts / 2.0 };
        let tx = Detector::new(
            RunConfig::new(Scheme::txrace(), sched_seed).with_interrupts(model),
        )
        .run(&p);
        prop_assert!(tx.completed(), "TxRace run did not finish: {:?}", tx.run);
        prop_assert!(tx.overhead >= 1.0);
        // Structural soundness of every report: different threads, and at
        // least one side wrote.
        for r in tx.races.reports() {
            prop_assert!(r.prior.thread != r.current.thread);
            prop_assert!(
                r.prior.kind == txrace_hb::AccessKind::Write
                    || r.current.kind == txrace_hb::AccessKind::Write
            );
        }
    }

    /// On synchronization-free programs the happens-before relation is
    /// schedule-independent (there are no edges), so TxRace's racy
    /// *addresses* must be a subset of TSan's on any seed pair.
    #[test]
    fn txrace_racy_addresses_subset_of_tsan_without_sync(
        gen_seed in 0u64..300,
        tx_seed in 0u64..20,
        ts_seed in 0u64..20,
    ) {
        let cfg = GenConfig { locks: 0, conds: 0, ..GenConfig::default() };
        let p = random_program(&cfg, gen_seed);
        let tx = Detector::new(RunConfig::new(Scheme::txrace(), tx_seed)).run(&p);
        let ts = Detector::new(RunConfig::new(Scheme::Tsan, ts_seed)).run(&p);
        prop_assert!(tx.completed() && ts.completed());
        use std::collections::BTreeSet;
        let tx_addrs: BTreeSet<_> = tx.races.reports().iter().map(|r| r.addr).collect();
        let ts_addrs: BTreeSet<_> = ts.races.reports().iter().map(|r| r.addr).collect();
        prop_assert!(
            tx_addrs.is_subset(&ts_addrs),
            "TxRace flagged non-racy addresses: {:?} vs {:?}",
            tx_addrs,
            ts_addrs
        );
    }

    /// A fully lock-disciplined program: no detector reports anything and
    /// the final counter value is exact despite aborts and re-execution.
    #[test]
    fn race_free_counter_program_is_clean_and_correct(
        threads in 2usize..5,
        iters in 5u32..40,
        sched_seed in 0u64..100,
    ) {
        let mut b = ProgramBuilder::new(threads);
        let counter = b.var("counter");
        let l = b.lock_id("l");
        for t in 0..threads {
            b.thread(t).loop_n(iters, |tb| {
                tb.lock(l).rmw(counter, 1).read(counter).unlock(l).compute(3);
            });
        }
        let p = b.build();
        for scheme in [Scheme::Tsan, Scheme::txrace()] {
            let out = Detector::new(RunConfig::new(scheme, sched_seed)).run(&p);
            prop_assert!(out.completed());
            prop_assert!(out.races.is_empty(), "false positive: {:?}", out.races.reports());
            prop_assert_eq!(out.memory.load(counter), u64::from(iters) * threads as u64);
        }
    }

    /// The uninstrumented machine and the TxRace-instrumented run agree on
    /// the final state of lock-protected memory.
    #[test]
    fn locked_state_survives_instrumentation(
        gen_seed in 0u64..200,
    ) {
        // Deterministic schedule (round-robin) for a meaningful final-state
        // comparison on the *same* interleaving skeleton.
        let mut b = ProgramBuilder::new(3);
        let cells = b.array("cells", 8);
        let l = b.lock_id("l");
        let mut rng_like = gen_seed;
        for t in 0..3 {
            b.thread(t).loop_n(10 + (gen_seed % 7) as u32, |tb| {
                rng_like = rng_like.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let idx = (rng_like >> 33) as usize % 8;
                tb.lock(l);
                tb.rmw(txrace_sim::elem(cells, idx), 1);
                tb.unlock(l);
            });
        }
        let p = b.build();
        let mut m = Machine::new(&p);
        let mut rt = DirectRuntime::default();
        let mut s = RoundRobin::new();
        prop_assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);
        let direct_total: u64 = m.memory().iter().map(|(_, v)| v).sum();

        let out = Detector::new(RunConfig::new(Scheme::txrace(), 1)).run(&p);
        prop_assert!(out.completed());
        let tx_total: u64 = out.memory.iter().map(|(_, v)| v).sum();
        prop_assert_eq!(direct_total, tx_total, "lost or duplicated increments");
    }
}
