//! Regression tests for the IR lint: every program this repo ships or
//! generates must be lint-clean, because `Detector::run` refuses to
//! instrument a program that fails the lint.

use proptest::prelude::*;
use txrace_sim::{lint, ProgramBuilder, ThreadId};
use txrace_workloads::{all_workloads, random_program, GenConfig};

/// All 14 workloads, at every worker count the benchmarks use, are
/// lint-clean. This is what lets `Detector::run` keep its hard gate.
#[test]
fn all_workloads_are_lint_clean() {
    for workers in [2, 4, 8] {
        for w in all_workloads(workers) {
            let issues = lint(&w.program);
            assert!(
                issues.is_empty(),
                "{} ({workers} workers) failed the lint: {issues:?}",
                w.name
            );
        }
    }
}

// The random-program generator only produces lint-clean programs; the
// soundness property tests (and anyone fuzzing the detector) rely on
// this.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_programs_are_lint_clean(gen_seed in 0u64..2000) {
        let p = random_program(&GenConfig::default(), gen_seed);
        prop_assert!(lint(&p).is_empty());
    }

    #[test]
    fn lock_free_generated_programs_are_lint_clean(gen_seed in 0u64..500) {
        let cfg = GenConfig {
            locks: 0,
            conds: 0,
            ..GenConfig::default()
        };
        let p = random_program(&cfg, gen_seed);
        prop_assert!(lint(&p).is_empty());
    }
}

/// Sanity in the other direction: a deliberately broken program is
/// caught, so the gate in `Detector::run` is not vacuous.
#[test]
fn broken_program_is_rejected() {
    let mut b = ProgramBuilder::new(2);
    let l = b.lock_id("l");
    let m = b.lock_id("m");
    b.thread(0)
        .unlock(l)
        .lock(m)
        .spawn(ThreadId(1))
        .join(ThreadId(1));
    b.thread(1).compute(1);
    let issues = lint(&b.build());
    assert!(
        !issues.is_empty(),
        "unlock-without-lock and lock-held-at-exit went unnoticed"
    );
}
