//! Determinism regression suite (DESIGN.md invariant 8): the same
//! program + seed must produce an *identical* `RunOutcome` — race set,
//! transaction statistics, cycle breakdown, final memory — on every run.
//!
//! The dense-table refactor moves shadow state out of hash maps; nothing
//! about iteration order, eviction choices, or scheduling may change as
//! a side effect. Outcomes are compared through their full `Debug`
//! rendering, which covers every field at once.

use proptest::prelude::*;
use txrace::{Detector, RunConfig, RunOutcome, Scheme};
use txrace_workloads::{all_workloads, random_program, GenConfig};

fn outcome_fingerprint(out: &RunOutcome) -> String {
    assert!(out.completed());
    format!("{out:?}")
}

/// Every shipped workload, both detectors, two seeds: run twice, compare
/// everything.
#[test]
fn shipped_workloads_are_deterministic() {
    for w in all_workloads(4) {
        for scheme in [Scheme::Tsan, Scheme::txrace()] {
            for seed in [7, 42] {
                let a = Detector::new(w.config(scheme.clone(), seed)).run(&w.program);
                let b = Detector::new(w.config(scheme.clone(), seed)).run(&w.program);
                assert_eq!(
                    outcome_fingerprint(&a),
                    outcome_fingerprint(&b),
                    "{} ({scheme:?}, seed {seed}): outcome changed between runs",
                    w.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated programs nobody hand-tuned: same seed, same outcome.
    #[test]
    fn generated_programs_are_deterministic(
        gen_seed in 0u64..400,
        sched_seed in 0u64..40,
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        for scheme in [Scheme::Tsan, Scheme::txrace()] {
            let cfg = RunConfig::new(scheme, sched_seed);
            let a = Detector::new(cfg.clone()).run(&p);
            let b = Detector::new(cfg.clone()).run(&p);
            prop_assert_eq!(
                outcome_fingerprint(&a),
                outcome_fingerprint(&b),
                "gen_seed {} sched_seed {}: outcome changed between runs",
                gen_seed,
                sched_seed
            );
        }
    }
}
