//! Soundness of the flow-sensitive analysis layer, end to end.
//!
//! Two promises are on trial:
//!
//! 1. **The candidate generator over-approximates the dynamic truth**:
//!    every race an exact, unpruned FastTrack detector reports — on any
//!    workload, any seed, any scheme — is one of the statically
//!    generated [`MayRacePairs`].
//! 2. **Flow pruning never removes a dynamically racing check**: a site
//!    the flow table calls race-free never shows up in an unpruned race
//!    report, with exactly one principled exception — a
//!    `RedundantCheck` site, whose races are still caught (and were
//!    generated as candidates) under its own id; only its *check* moved
//!    to the surviving witness.

use std::collections::BTreeSet;

use proptest::prelude::*;
use txrace::{
    Detector, MayRacePairs, RaceFreeReason, RunConfig, Scheme, SiteClass, SiteClassTable,
    StaticPruneMode,
};
use txrace_hb::RacePair;
use txrace_workloads::{all_workloads, by_name, random_program, GenConfig, RaceKind};

fn pairs_of(out: &txrace::RunOutcome) -> BTreeSet<RacePair> {
    out.races.pairs().collect()
}

/// Asserts the flow-pruning soundness contract against an *unpruned*
/// run: every reported site is either still checked, or elided as a
/// redundant re-check (where detection survives via the witness).
fn assert_flow_prune_sound(ctx: &str, out: &txrace::RunOutcome, table: &SiteClassTable) {
    for r in out.races.reports() {
        for site in [r.prior.site, r.current.site] {
            match table.class(site) {
                SiteClass::PotentiallyRacy => {}
                SiteClass::RaceFree(RaceFreeReason::RedundantCheck) => {
                    let w = table
                        .witness_of(site)
                        .unwrap_or_else(|| panic!("{ctx}: redundant site {site} has no witness"));
                    assert!(
                        !table.is_race_free(w),
                        "{ctx}: witness {w} of redundant site {site} was itself pruned"
                    );
                }
                c => panic!(
                    "{ctx}: race report {} -- {} involves site {site}, which the \
                     flow analysis classified {c:?}",
                    r.prior.site, r.current.site
                ),
            }
        }
    }
}

/// Promise 1 on every workload: the static candidate pairs cover every
/// race an exact detector can find, across seeds and schemes.
#[test]
fn mayrace_covers_dynamic_races_on_all_workloads() {
    for w in all_workloads(4) {
        let mrp = MayRacePairs::analyze(&w.program);
        for seed in [1, 2, 42] {
            for scheme in [Scheme::Tsan, Scheme::txrace()] {
                let out = Detector::new(w.config(scheme.clone(), seed)).run(&w.program);
                assert!(out.completed(), "{} seed {seed}", w.name);
                for pr in out.races.pairs() {
                    assert!(
                        mrp.contains(pr.a, pr.b),
                        "{} seed {seed} ({scheme:?}): dynamic race {pr} escaped the \
                         static candidate set",
                        w.name
                    );
                }
            }
        }
    }
}

/// Promise 2 on every workload: unpruned exact TSan never blames a site
/// the flow table pruned, except redundant re-checks with a live witness.
#[test]
fn flow_pruned_sites_never_race_dynamically() {
    for w in all_workloads(4) {
        let table = SiteClassTable::analyze_flow(&w.program);
        for seed in [1, 2, 42] {
            let out = Detector::new(w.config(Scheme::Tsan, seed)).run(&w.program);
            assert!(out.completed(), "{} seed {seed}", w.name);
            assert_flow_prune_sound(w.name, &out, &table);
        }
    }
}

/// The flow layer strictly refines the base layer: every site the
/// flow-insensitive table prunes is pruned by the flow table with the
/// same reason, on every workload.
#[test]
fn flow_layer_refines_base_layer_on_all_workloads() {
    for w in all_workloads(4) {
        let base = SiteClassTable::analyze(&w.program);
        let flow = SiteClassTable::analyze_flow(&w.program);
        let (bs, fs) = (base.stats(&w.program), flow.stats(&w.program));
        for s in 0..w.program.site_count() {
            let site = txrace_sim::SiteId(s);
            if let SiteClass::RaceFree(r) = base.class(site) {
                assert_eq!(
                    flow.class(site),
                    SiteClass::RaceFree(r),
                    "{}: flow layer changed the base verdict of site {site}",
                    w.name
                );
            }
        }
        assert!(
            fs.race_free >= bs.race_free,
            "{}: flow layer pruned fewer sites than the base layer",
            w.name
        );
    }
}

/// FullFlow runs end to end: the planted hot races are still found and
/// no pruned site is ever blamed (mirrors the Full-mode suite, one
/// layer deeper).
#[test]
fn fullflow_prune_still_finds_hot_races() {
    for name in [
        "fluidanimate",
        "raytrace",
        "ferret",
        "streamcluster",
        "canneal",
        "pipeline",
    ] {
        let w = by_name(name, 4).expect("known app");
        let table = SiteClassTable::analyze_flow(&w.program);
        let expected = w.expected_txrace_reliable_races();
        let mut best = 0;
        for seed in [1, 2, 3] {
            let tx = Detector::new(
                w.config(Scheme::txrace(), seed)
                    .with_prune(StaticPruneMode::FullFlow),
            )
            .run(&w.program);
            assert!(tx.completed(), "{name} seed {seed}");
            // In the pruned run itself the contract is unconditional:
            // elided sites have no checks, so they cannot be reported.
            for r in tx.races.reports() {
                for site in [r.prior.site, r.current.site] {
                    assert!(
                        !table.is_race_free(site),
                        "{name}: FullFlow run reported pruned site {site}"
                    );
                }
            }
            let found = w
                .planted_pairs()
                .iter()
                .filter(|&&(p, k)| k == RaceKind::Overlapping && tx.races.contains(p.a, p.b))
                .count();
            best = best.max(found);
        }
        assert_eq!(
            best, expected,
            "{name}: flow pruning lost hot races ({best}/{expected})"
        );
    }
}

/// FullFlow matches Full race-for-race on every workload at the default
/// seed: the deeper pruning elides cost, not detection.
#[test]
fn fullflow_matches_full_detection_on_all_workloads() {
    for w in all_workloads(4) {
        let run = |mode| {
            let out =
                Detector::new(w.config(Scheme::txrace(), 42).with_prune(mode)).run(&w.program);
            assert!(out.completed(), "{} {mode:?}", w.name);
            out
        };
        let full = run(StaticPruneMode::Full);
        let flow = run(StaticPruneMode::FullFlow);
        assert_eq!(
            pairs_of(&full),
            pairs_of(&flow),
            "{}: FullFlow changed the detected race set vs Full",
            w.name
        );
    }
}

/// Channels give the static layers no ordering or exclusion credit: two
/// plain writes synchronized *only* by a send→recv edge must stay in the
/// static candidate set and must never be pruned by either table — while
/// the dynamic detectors, which do see the edge, report nothing. If the
/// analysis ever started crediting channels (unsoundly, since send/recv
/// pairing is schedule-dependent), this is the test that catches it.
#[test]
fn channel_synchronized_sites_are_never_statically_pruned() {
    use txrace_sim::ProgramBuilder;
    let mut b = ProgramBuilder::new(2);
    let x = b.var("x");
    let ch = b.chan_id("ch", 1);
    b.thread(0).write_l(x, 1, "before_send").send(ch);
    b.thread(1).recv(ch).write_l(x, 2, "after_recv");
    let p = b.build();

    let (mut before, mut after) = (None, None);
    p.visit_static(&mut |_, site, _| match p.label_of(site) {
        Some("before_send") => before = Some(site),
        Some("after_recv") => after = Some(site),
        _ => {}
    });
    let (before, after) = (before.expect("labeled site"), after.expect("labeled site"));

    let mrp = MayRacePairs::analyze(&p);
    assert!(
        mrp.contains(before, after),
        "channel-synchronized pair must stay a static may-race candidate"
    );
    for (name, table) in [
        ("base", SiteClassTable::analyze(&p)),
        ("flow", SiteClassTable::analyze_flow(&p)),
    ] {
        for site in [before, after] {
            assert!(
                !table.is_race_free(site),
                "{name} table pruned channel-synchronized site {site}"
            );
        }
    }

    // The dynamic side of the line: the send→recv edge orders the two
    // writes, so exact TSan is silent and the pruned TxRace run agrees.
    for seed in [1, 42] {
        let tsan = Detector::new(RunConfig::new(Scheme::Tsan, seed)).run(&p);
        assert!(tsan.completed(), "seed {seed}");
        assert_eq!(
            tsan.races.distinct_count(),
            0,
            "seed {seed}: channel handoff misreported as a race"
        );
        let tx = Detector::new(
            RunConfig::new(Scheme::txrace(), seed).with_prune(StaticPruneMode::FullFlow),
        )
        .run(&p);
        assert!(tx.completed(), "seed {seed}");
        assert_eq!(tx.races.distinct_count(), 0, "seed {seed} (FullFlow)");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Promise 1 on random programs: an exact unpruned TSan run never
    /// reports a pair outside the static candidate set.
    #[test]
    fn mayrace_covers_random_program_races(
        gen_seed in 0u64..400,
        sched_seed in 0u64..20,
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        let mrp = MayRacePairs::analyze(&p);
        let out = Detector::new(RunConfig::new(Scheme::Tsan, sched_seed)).run(&p);
        prop_assert!(out.completed());
        for pr in out.races.pairs() {
            prop_assert!(
                mrp.contains(pr.a, pr.b),
                "dynamic race {} escaped the candidate set (gen {}, sched {})",
                pr, gen_seed, sched_seed
            );
        }
    }

    /// Promise 2 on random programs, plus termination of the dataflow
    /// fixpoints and the FullFlow pipeline end to end.
    #[test]
    fn fullflow_terminates_and_stays_sound_on_random_programs(
        gen_seed in 0u64..200,
        sched_seed in 0u64..10,
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        let table = SiteClassTable::analyze_flow(&p);
        let truth = Detector::new(RunConfig::new(Scheme::Tsan, sched_seed)).run(&p);
        prop_assert!(truth.completed());
        assert_flow_prune_sound("random program (flow)", &truth, &table);
        let tx = Detector::new(
            RunConfig::new(Scheme::txrace(), sched_seed)
                .with_prune(StaticPruneMode::FullFlow),
        )
        .run(&p);
        prop_assert!(tx.completed());
        for r in tx.races.reports() {
            for site in [r.prior.site, r.current.site] {
                prop_assert!(
                    !table.is_race_free(site),
                    "FullFlow run reported pruned site {} (gen {}, sched {})",
                    site, gen_seed, sched_seed
                );
            }
        }
    }
}
