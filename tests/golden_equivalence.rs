//! Golden equivalence suite: the detectors' *results* are pinned to
//! fixtures captured from the pre-refactor (hash-map-based) shadow-state
//! implementation. Any storage-layout change — dense tables, bitsets,
//! interned indices — must reproduce exactly these race sets and abort
//! counts on all 14 workloads.
//!
//! Regenerate (only when results are *supposed* to change, e.g. a new
//! workload) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release --test golden_equivalence
//! ```

use std::fmt::Write as _;

use txrace::{Detector, RunOutcome, Scheme};
use txrace_workloads::all_workloads;

const WORKERS: usize = 4;
const SEED: u64 = 42;
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/golden_workloads.json"
);

fn race_pairs(out: &RunOutcome) -> String {
    let mut s = String::from("[");
    for (i, p) in out.races.pairs().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "[{}, {}]", p.a.0, p.b.0);
    }
    s.push(']');
    s
}

/// One canonical line per workload: every field a storage refactor could
/// plausibly disturb, in a stable order.
fn golden_line(name: &str, tsan: &RunOutcome, tx: &RunOutcome) -> String {
    let h = tx.htm.as_ref().expect("txrace run has HTM stats");
    let e = tx.engine.as_ref().expect("txrace run has engine stats");
    format!(
        "  {{\"app\": \"{name}\", \
         \"tsan_races\": {}, \"txrace_races\": {}, \
         \"committed\": {}, \"conflict_aborts\": {}, \"capacity_aborts\": {}, \
         \"unknown_aborts\": {}, \"retry_aborts\": {}, \"explicit_aborts\": {}, \
         \"txfail_writes\": {}, \"loop_cuts\": {}, \
         \"tsan_cycles\": {}, \"txrace_cycles\": {}}}",
        race_pairs(tsan),
        race_pairs(tx),
        h.committed,
        h.conflict_aborts,
        h.capacity_aborts,
        h.unknown_aborts,
        h.retry_aborts,
        h.explicit_aborts,
        e.txfail_writes,
        e.loop_cuts,
        tsan.breakdown.total(),
        tx.breakdown.total(),
    )
}

fn current_golden() -> String {
    let mut lines = Vec::new();
    for w in all_workloads(WORKERS) {
        let tsan = Detector::new(w.config(Scheme::Tsan, SEED)).run(&w.program);
        let tx = Detector::new(w.config(Scheme::txrace(), SEED)).run(&w.program);
        assert!(tsan.completed() && tx.completed(), "{}", w.name);
        lines.push(golden_line(w.name, &tsan, &tx));
    }
    format!("[\n{}\n]\n", lines.join(",\n"))
}

#[test]
fn dense_tables_match_prerefactor_goldens() {
    let got = current_golden();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(FIXTURE, &got).expect("write golden fixture");
        eprintln!("golden fixture updated: {FIXTURE}");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing; run with UPDATE_GOLDEN=1 to create it");
    if got != want {
        // Find the first differing app line for a readable failure.
        for (g, w) in got.lines().zip(want.lines()) {
            assert_eq!(
                g, w,
                "detection results diverged from the pre-refactor golden"
            );
        }
        assert_eq!(
            got, want,
            "detection results diverged from the pre-refactor golden"
        );
    }
}
