//! The record/replay correctness contract: for every *pure observer*
//! detector, analyzing a recorded trace is bit-identical to analyzing the
//! live run it was recorded from.
//!
//! Observers never roll back or redirect execution, so the interleaving
//! is fully determined by `(program, scheduler, seed)` — which makes the
//! recorded event stream exactly what the live detector saw, method call
//! for method call. Checked here on all bundled workloads (races,
//! breakdowns, check counts, sampling decisions, final memory) and on
//! randomly generated programs.

use proptest::prelude::*;
use txrace::{Detector, RunConfig, RunOutcome, Scheme};
use txrace_hb::{FastTrack, Lockset, ShadowMode, VectorClockDetector};
use txrace_sim::{record_run, FairSched, Live, Machine, Program, StepLimit, TraceConsumer};
use txrace_workloads::{all_workloads, random_program, GenConfig};

/// Asserts every field of the outcome that replay promises to reproduce.
fn assert_outcomes_identical(app: &str, live: &RunOutcome, replayed: &RunOutcome) {
    assert_eq!(
        live.races.reports(),
        replayed.races.reports(),
        "{app}: race sets differ"
    );
    assert_eq!(
        live.breakdown, replayed.breakdown,
        "{app}: cycle ledgers differ"
    );
    assert_eq!(live.baseline_cycles, replayed.baseline_cycles, "{app}");
    assert!(
        (live.overhead - replayed.overhead).abs() < 1e-12,
        "{app}: overheads differ"
    );
    assert_eq!(live.checks, replayed.checks, "{app}: check counts differ");
    assert_eq!(live.memory, replayed.memory, "{app}: final memory differs");
    assert_eq!(live.run, replayed.run, "{app}: run results differ");
}

/// Live-vs-replayed comparison of the full detector pipeline on `p`.
fn check_detector_schemes(app: &str, p: &Program, cfg_of: impl Fn(Scheme) -> RunConfig) {
    let schemes = [
        Scheme::Tsan,
        Scheme::TsanSampling { rate: 0.3 },
        Scheme::TsanSampling { rate: 0.85 },
    ];
    // One recording serves every scheme: scheduling never depends on it.
    let log = Detector::new(cfg_of(Scheme::Tsan)).record(p);
    for scheme in schemes {
        let d = Detector::new(cfg_of(scheme.clone()));
        let live = d.run(p);
        let consumer = d.consumer(p);
        let replayed = d.replay(&log, consumer);
        assert_outcomes_identical(app, &live, &replayed);
    }
}

#[test]
fn all_workloads_replay_identically() {
    for w in all_workloads(4) {
        check_detector_schemes(w.name, &w.program, |scheme| w.config(scheme, 42));
    }
}

#[test]
fn replay_equivalence_holds_across_seeds() {
    for seed in [0, 7, 1234] {
        for name in ["bodytrack", "vips", "streamcluster"] {
            let w = txrace_workloads::by_name(name, 3).expect("bundled workload");
            check_detector_schemes(name, &w.program, |scheme| w.config(scheme, seed));
        }
    }
}

/// Drives a raw consumer live under a fair scheduler, returning it.
fn drive_live<C: TraceConsumer>(p: &Program, seed: u64, consumer: C) -> C {
    let mut rt = Live::new(consumer);
    let mut m = Machine::new(p);
    let mut sched = FairSched::new(seed, 0.1);
    m.run_with_limit(&mut rt, &mut sched, StepLimit::default());
    rt.into_inner()
}

#[test]
fn raw_hb_and_lockset_detectors_replay_identically() {
    for w in all_workloads(3) {
        let n = w.program.thread_count();
        let mut sched = FairSched::new(9, 0.1);
        let log = record_run(&w.program, &mut sched, StepLimit::default());

        let live = drive_live(&w.program, 9, FastTrack::new(n, ShadowMode::Exact));
        let mut rep = FastTrack::new(n, ShadowMode::Exact);
        log.replay(&mut rep);
        assert_eq!(
            live.races().reports(),
            rep.races().reports(),
            "{}: FastTrack",
            w.name
        );

        let live = drive_live(&w.program, 9, VectorClockDetector::new(n));
        let mut rep = VectorClockDetector::new(n);
        log.replay(&mut rep);
        assert_eq!(
            live.races().reports(),
            rep.races().reports(),
            "{}: VectorClockDetector",
            w.name
        );

        let live = drive_live(&w.program, 9, Lockset::new(n));
        let mut rep = Lockset::new(n);
        log.replay(&mut rep);
        assert_eq!(live.reports(), rep.reports(), "{}: Lockset", w.name);
    }
}

#[test]
fn recording_is_deterministic() {
    let w = txrace_workloads::by_name("bodytrack", 4).expect("bundled workload");
    let d = Detector::new(w.config(Scheme::Tsan, 5));
    let a = d.record(&w.program);
    let b = d.record(&w.program);
    assert_eq!(a.events(), b.events());
    assert_eq!(a.census(), b.census());
    assert_eq!(a.final_memory(), b.final_memory());
    assert_eq!(a.result(), b.result());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random programs: the full pipeline (including sampling RNG state
    /// and static pruning) replays identically to the live run.
    #[test]
    fn random_programs_replay_identically(
        gen_seed in 0u64..400,
        sched_seed in 0u64..40,
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        let log = Detector::new(RunConfig::new(Scheme::Tsan, sched_seed)).record(&p);
        for scheme in [Scheme::Tsan, Scheme::TsanSampling { rate: 0.4 }] {
            let d = Detector::new(RunConfig::new(scheme, sched_seed));
            let live = d.run(&p);
            let replayed = d.replay(&log, d.consumer(&p));
            prop_assert_eq!(live.races.reports(), replayed.races.reports());
            prop_assert_eq!(live.breakdown, replayed.breakdown);
            prop_assert_eq!(live.checks, replayed.checks);
            prop_assert_eq!(&live.memory, &replayed.memory);
            prop_assert_eq!(live.run, replayed.run);
        }
    }

    /// Random sync-free programs through the raw HB detectors.
    #[test]
    fn random_programs_raw_detectors_replay_identically(
        gen_seed in 0u64..200,
        sched_seed in 0u64..20,
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        let n = p.thread_count();
        let mut sched = FairSched::new(sched_seed, 0.1);
        let log = record_run(&p, &mut sched, StepLimit::default());

        let live = drive_live(&p, sched_seed, FastTrack::new(n, ShadowMode::Exact));
        let mut rep = FastTrack::new(n, ShadowMode::Exact);
        log.replay(&mut rep);
        prop_assert_eq!(live.races().reports(), rep.races().reports());
    }
}
