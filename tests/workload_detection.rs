//! Cross-crate integration tests: every synthetic workload, run under both
//! detectors, must behave exactly as its ground-truth manifest promises.
//!
//! These tests guard the whole stack at once — instrumentation, HTM
//! semantics, the two-phase engine, FastTrack, and the workload
//! construction itself (e.g., a scratch-array overflow that silently
//! introduces unplanned sharing shows up here as an unexpected TSan race).

use txrace::{Detector, Scheme};
use txrace_hb::RacePair;
use txrace_workloads::{all_workloads, by_name, RaceKind};

/// TSan (sound + complete on the analyzed trace) must report exactly the
/// planted races: no more (nothing else in the program is racy), no fewer
/// (every planted race's accesses execute in every run).
#[test]
fn tsan_reports_exactly_the_planted_races() {
    for w in all_workloads(4) {
        let out = Detector::new(w.config(Scheme::Tsan, 42)).run(&w.program);
        assert!(out.completed(), "{}", w.name);
        let planted: Vec<RacePair> = w.planted_pairs().iter().map(|&(p, _)| p).collect();
        for p in &planted {
            assert!(
                out.races.contains(p.a, p.b),
                "{}: planted race {p} not reported by TSan",
                w.name
            );
        }
        assert_eq!(
            out.races.distinct_count(),
            planted.len(),
            "{}: TSan reported unplanned races: {:?}",
            w.name,
            out.races
                .pairs()
                .filter(|p| !planted.contains(p))
                .collect::<Vec<_>>()
        );
    }
}

/// Completeness: everything TxRace reports must be in TSan's report for
/// the same seed (no false positives from cache-line granularity).
#[test]
fn txrace_is_complete_on_every_workload() {
    for w in all_workloads(4) {
        let tsan = Detector::new(w.config(Scheme::Tsan, 42)).run(&w.program);
        let tx = Detector::new(w.config(Scheme::txrace(), 42)).run(&w.program);
        assert!(tx.completed(), "{}", w.name);
        for p in tx.races.pairs() {
            assert!(
                tsan.races.contains(p.a, p.b),
                "{}: TxRace reported {p}, which TSan does not consider a race",
                w.name
            );
        }
    }
}

/// The init-idiom races (bodytrack, facesim) are never detected by
/// TxRace: their accesses cannot overlap in concurrent transactions.
#[test]
fn init_idiom_races_are_missed_by_txrace() {
    for name in ["bodytrack", "facesim"] {
        let w = by_name(name, 4).expect("known app");
        for seed in [1, 42] {
            let tx = Detector::new(w.config(Scheme::txrace(), seed)).run(&w.program);
            for (pair, kind) in w.planted_pairs() {
                if kind == RaceKind::InitIdiom {
                    assert!(
                        !tx.races.contains(pair.a, pair.b),
                        "{name} seed {seed}: init-idiom race {pair} should be missed"
                    );
                }
            }
        }
    }
}

/// Hot (overlapping) races are found reliably across seeds for the apps
/// whose Table 1 row says TxRace finds everything TSan finds.
#[test]
fn hot_races_are_found_across_seeds() {
    for name in [
        "fluidanimate",
        "raytrace",
        "ferret",
        "streamcluster",
        "canneal",
        "pipeline",
    ] {
        let w = by_name(name, 4).expect("known app");
        let expected = w.expected_txrace_reliable_races();
        let mut best = 0;
        for seed in [1, 2, 3] {
            let tx = Detector::new(w.config(Scheme::txrace(), seed)).run(&w.program);
            let found = w
                .planted_pairs()
                .iter()
                .filter(|&&(p, k)| k == RaceKind::Overlapping && tx.races.contains(p.a, p.b))
                .count();
            best = best.max(found);
            assert!(
                found * 2 >= expected,
                "{name} seed {seed}: only {found}/{expected} hot races found"
            );
        }
        assert_eq!(best, expected, "{name}: never found all hot races");
    }
}

/// vips: scheduler-sensitive detection — some but not all races per run,
/// accumulating across seeds (Figure 10 behaviour).
#[test]
fn vips_detection_is_partial_and_accumulates() {
    let w = by_name("vips", 4).expect("vips");
    let mut union = txrace_hb::RaceSet::new();
    let mut per_run = Vec::new();
    for seed in 1..=4 {
        let tx = Detector::new(w.config(Scheme::txrace(), seed)).run(&w.program);
        per_run.push(tx.races.distinct_count());
        union.merge(&tx.races);
    }
    assert!(
        per_run.iter().all(|&n| n > 0 && n < 112),
        "per-run counts should be partial: {per_run:?}"
    );
    assert!(
        union.distinct_count() > *per_run.iter().max().unwrap(),
        "different seeds should find different subsets: {per_run:?} union {}",
        union.distinct_count()
    );
}

/// TxRace must beat TSan on overhead for every app (the headline claim).
#[test]
fn txrace_is_cheaper_than_tsan_everywhere() {
    for w in all_workloads(4) {
        let tsan = Detector::new(w.config(Scheme::Tsan, 42)).run(&w.program);
        let tx = Detector::new(w.config(Scheme::txrace(), 42)).run(&w.program);
        assert!(
            tx.overhead < tsan.overhead * 1.05,
            "{}: TxRace {:.2}x vs TSan {:.2}x",
            w.name,
            tx.overhead,
            tsan.overhead
        );
    }
}

/// Runs are deterministic: same seed, same races, same cycle counts.
#[test]
fn workload_runs_are_deterministic() {
    let w = by_name("streamcluster", 4).expect("known app");
    let a = Detector::new(w.config(Scheme::txrace(), 9)).run(&w.program);
    let b = Detector::new(w.config(Scheme::txrace(), 9)).run(&w.program);
    assert_eq!(
        a.races.pairs().collect::<Vec<_>>(),
        b.races.pairs().collect::<Vec<_>>()
    );
    assert_eq!(a.breakdown, b.breakdown);
    assert_eq!(a.htm, b.htm);
    assert_eq!(a.run.steps, b.run.steps);
}

/// Every workload also runs clean at 2 and 8 workers (Figure 8 inputs).
#[test]
fn workloads_scale_across_thread_counts() {
    for workers in [2, 8] {
        for w in all_workloads(workers) {
            let tx = Detector::new(w.config(Scheme::txrace(), 5)).run(&w.program);
            assert!(tx.completed(), "{} at {workers} workers", w.name);
        }
    }
}
