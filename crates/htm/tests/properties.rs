//! Property-based tests of the HTM invariants from DESIGN.md §6:
//!
//! 1. Atomicity: a committed transaction's writes appear all at once; an
//!    aborted transaction's writes never appear.
//! 2. Isolation / strong isolation: no reader ever observes another
//!    in-flight transaction's buffered write; conflicting non-transactional
//!    accesses always doom the transaction (requester wins).
//! 3. Conflict soundness: overlapping conflicting accesses to one line
//!    always doom at least one party.

use std::collections::BTreeMap;

use proptest::prelude::*;
use txrace_htm::{AbortReason, HtmConfig, HtmSystem, VersionPolicy};
use txrace_sim::{Addr, CacheLine, Memory, ThreadId};

/// The abstract script step applied to a random thread/address.
#[derive(Debug, Clone)]
enum Step {
    Begin(u32),
    Read(u32, u64),
    Write(u32, u64, u64),
    Rmw(u32, u64, u64),
    End(u32),
}

fn step_strategy(threads: u32, lines: u64) -> impl Strategy<Value = Step> {
    let t = 0..threads;
    let a = 0..lines * 2; // two 8-byte slots per line
    prop_oneof![
        t.clone().prop_map(Step::Begin),
        (t.clone(), a.clone()).prop_map(|(t, a)| Step::Read(t, a)),
        (t.clone(), a.clone(), 1u64..100).prop_map(|(t, a, v)| Step::Write(t, a, v)),
        (t.clone(), a, 1u64..5).prop_map(|(t, a, d)| Step::Rmw(t, a, d)),
        t.prop_map(Step::End),
    ]
}

fn addr_of(slot: u64) -> Addr {
    // Two 8-byte variables per line: slot 2k and 2k+1 share line k.
    CacheLine(slot / 2).base().offset(8 * (slot % 2))
}

/// A reference model: memory plus per-thread pending write logs, updated in
/// lockstep with the real system using the real system's abort outcomes.
#[derive(Default)]
struct Model {
    mem: BTreeMap<Addr, u64>,
    pending: BTreeMap<u32, BTreeMap<Addr, u64>>,
}

impl Model {
    fn load(&self, t: u32, a: Addr) -> u64 {
        if let Some(p) = self.pending.get(&t) {
            if let Some(v) = p.get(&a) {
                return *v;
            }
        }
        self.mem.get(&a).copied().unwrap_or(0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Run a random script; check that values read, values committed, and
    /// rollback behaviour all match the reference model, and that no
    /// transactional buffered value ever leaks to another thread.
    #[test]
    fn htm_matches_reference_model(script in proptest::collection::vec(step_strategy(3, 4), 1..120)) {
        let threads = 3usize;
        let mut htm = HtmSystem::new(HtmConfig::default(), threads);
        let mut mem = Memory::new();
        let mut model = Model::default();
        let mut in_txn = vec![false; threads];

        for step in script {
            match step {
                Step::Begin(t) => {
                    let tid = ThreadId(t);
                    if in_txn[t as usize] {
                        prop_assert!(htm.xbegin(tid).is_err());
                    } else if htm.xbegin(tid).is_ok() {
                        in_txn[t as usize] = true;
                        model.pending.insert(t, BTreeMap::new());
                    }
                }
                Step::Read(t, slot) => {
                    let tid = ThreadId(t);
                    let a = addr_of(slot);
                    let doomed_before = htm.is_doomed(tid).is_some();
                    let v = htm.read(tid, &mut mem, a);
                    // Isolation: an observed value is always explainable by
                    // the model (own pending writes or global memory) —
                    // never another thread's buffer.
                    if !doomed_before {
                        prop_assert_eq!(v, model.load(t, a), "read isolation violated");
                    }
                }
                Step::Write(t, slot, val) => {
                    let tid = ThreadId(t);
                    let a = addr_of(slot);
                    let doomed_before = htm.is_doomed(tid).is_some();
                    htm.write(tid, &mut mem, a, val);
                    if in_txn[t as usize] {
                        if !doomed_before && htm.is_doomed(tid).is_none() {
                            model.pending.get_mut(&t).expect("in txn").insert(a, val);
                        }
                    } else {
                        model.mem.insert(a, val);
                        prop_assert_eq!(mem.load(a), val, "non-tx write must be immediate");
                    }
                }
                Step::Rmw(t, slot, delta) => {
                    let tid = ThreadId(t);
                    let a = addr_of(slot);
                    let doomed_before = htm.is_doomed(tid).is_some();
                    let expect_old = model.load(t, a);
                    let old = htm.rmw(tid, &mut mem, a, delta);
                    if in_txn[t as usize] {
                        if !doomed_before && htm.is_doomed(tid).is_none() {
                            prop_assert_eq!(old, expect_old);
                            model.pending.get_mut(&t).expect("in txn")
                                .insert(a, expect_old.wrapping_add(delta));
                        }
                    } else {
                        prop_assert_eq!(old, expect_old);
                        model.mem.insert(a, expect_old.wrapping_add(delta));
                    }
                }
                Step::End(t) => {
                    let tid = ThreadId(t);
                    if !in_txn[t as usize] {
                        continue; // xend without txn would panic by contract
                    }
                    in_txn[t as usize] = false;
                    let pending = model.pending.remove(&t).expect("was in txn");
                    match htm.xend(tid, &mut mem) {
                        Ok(()) => {
                            // Atomicity: every buffered write now visible.
                            for (a, v) in pending {
                                model.mem.insert(a, v);
                                prop_assert_eq!(mem.load(a), v, "committed write lost");
                            }
                        }
                        Err(_) => {
                            // Aborted writes must not be visible unless some
                            // other thread since overwrote the address; the
                            // model simply drops them.
                        }
                    }
                }
            }
        }

        // Close out any still-in-flight transactions first: under the
        // default journaled policy their live stores are already in place
        // and only become permanent (or unwind) at xend.
        for t in 0..threads as u32 {
            if in_txn[t as usize] {
                let pending = model.pending.remove(&t).expect("was in txn");
                if htm.xend(ThreadId(t), &mut mem).is_ok() {
                    for (a, v) in pending {
                        model.mem.insert(a, v);
                    }
                }
            }
        }

        // Final memory must match the model exactly for all committed and
        // non-transactional state.
        for (a, v) in model.mem.iter() {
            prop_assert_eq!(mem.load(*a), *v, "final state diverged at {}", a);
        }
    }

    /// Conflict soundness: two transactions that both touch the same line,
    /// at least one writing, while both are in flight — the earlier one is
    /// doomed with CONFLICT (requester wins).
    #[test]
    fn overlapping_conflicting_txns_always_abort_someone(
        off0 in 0u64..8,
        off1 in 0u64..8,
        first_writes in any::<bool>(),
        second_writes in any::<bool>(),
    ) {
        prop_assume!(first_writes || second_writes);
        let mut htm = HtmSystem::new(HtmConfig::default(), 2);
        let mut mem = Memory::new();
        let base = CacheLine(40).base();
        htm.xbegin(ThreadId(0)).unwrap();
        htm.xbegin(ThreadId(1)).unwrap();
        if first_writes {
            htm.write(ThreadId(0), &mut mem, base.offset(off0 * 8), 1);
        } else {
            let _ = htm.read(ThreadId(0), &mut mem, base.offset(off0 * 8));
        }
        if second_writes {
            htm.write(ThreadId(1), &mut mem, base.offset(off1 * 8), 2);
        } else {
            let _ = htm.read(ThreadId(1), &mut mem, base.offset(off1 * 8));
        }
        let d0 = htm.is_doomed(ThreadId(0));
        let d1 = htm.is_doomed(ThreadId(1));
        prop_assert!(d0.is_some() || d1.is_some(), "conflict missed");
        // Requester-wins: the second accessor (thread 1) must survive.
        prop_assert!(d1.is_none(), "requester was doomed");
        prop_assert_eq!(d0.expect("doomed").reason(), AbortReason::Conflict);
    }

    /// Observational equivalence of the versioning policies: the same
    /// script yields identical values at every non-doomed access,
    /// identical commit/abort outcomes and statistics, and an identical
    /// final committed memory — undo-journal rollback is indistinguishable
    /// from lazy write buffering. (Doomed zombie accesses are excluded by
    /// design: the engine never lets one execute.)
    #[test]
    fn undo_and_buffer_policies_are_observationally_equivalent(
        script in proptest::collection::vec(step_strategy(3, 4), 1..120)
    ) {
        let run = |version: VersionPolicy| {
            let threads = 3usize;
            let cfg = HtmConfig { version, ..HtmConfig::default() };
            let mut htm = HtmSystem::new(cfg, threads);
            let mut mem = Memory::new();
            let mut in_txn = vec![false; threads];
            let mut observed: Vec<u64> = Vec::new();
            for step in script.iter() {
                match *step {
                    Step::Begin(t) => {
                        if !in_txn[t as usize] && htm.xbegin(ThreadId(t)).is_ok() {
                            in_txn[t as usize] = true;
                        }
                    }
                    Step::Read(t, slot) => {
                        let doomed = htm.is_doomed(ThreadId(t)).is_some();
                        let v = htm.read(ThreadId(t), &mut mem, addr_of(slot));
                        if !doomed {
                            observed.push(v);
                        }
                    }
                    Step::Write(t, slot, val) => {
                        htm.write(ThreadId(t), &mut mem, addr_of(slot), val);
                    }
                    Step::Rmw(t, slot, delta) => {
                        let doomed = htm.is_doomed(ThreadId(t)).is_some();
                        let v = htm.rmw(ThreadId(t), &mut mem, addr_of(slot), delta);
                        if !doomed {
                            observed.push(v);
                        }
                    }
                    Step::End(t) => {
                        if in_txn[t as usize] {
                            in_txn[t as usize] = false;
                            observed.push(u64::from(htm.xend(ThreadId(t), &mut mem).is_ok()));
                        }
                    }
                }
            }
            for t in 0..threads as u32 {
                if in_txn[t as usize] {
                    let _ = htm.xend(ThreadId(t), &mut mem);
                }
            }
            (observed, *htm.stats(), mem)
        };
        let undo = run(VersionPolicy::Undo);
        let buffer = run(VersionPolicy::Buffer);
        prop_assert_eq!(undo.0, buffer.0, "observed values diverged");
        prop_assert_eq!(undo.1, buffer.1, "abort statistics diverged");
        prop_assert_eq!(undo.2, buffer.2, "final memory diverged");
    }

    /// Capacity: a transaction writing more distinct lines than the write
    /// structure holds is always doomed with CAPACITY, never silently
    /// truncated.
    #[test]
    fn write_footprint_beyond_capacity_always_aborts(extra in 1u64..64) {
        let cfg = HtmConfig { write_sets: 8, write_ways: 4, ..HtmConfig::default() };
        let mut htm = HtmSystem::new(cfg, 1);
        let mut mem = Memory::new();
        htm.xbegin(ThreadId(0)).unwrap();
        let total_lines = (cfg.write_sets * cfg.write_ways) as u64 + extra;
        for l in 0..total_lines {
            htm.write(ThreadId(0), &mut mem, CacheLine(100 + l).base(), l);
        }
        prop_assert_eq!(
            htm.is_doomed(ThreadId(0)).expect("must overflow").reason(),
            AbortReason::Capacity
        );
        prop_assert!(htm.xend(ThreadId(0), &mut mem).is_err());
        for l in 0..total_lines {
            prop_assert_eq!(mem.load(CacheLine(100 + l).base()), 0);
        }
    }
}
