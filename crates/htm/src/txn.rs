//! Per-thread transaction bookkeeping.

use std::collections::{BTreeMap, BTreeSet};

use txrace_sim::{Addr, CacheLine};

use crate::status::AbortStatus;

/// The lifecycle of one hardware transaction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// No transaction in flight.
    Idle,
    /// Transaction executing.
    Active,
    /// Transaction has been aborted by the hardware but the thread has not
    /// yet observed it (it observes at its next access or at `xend`).
    Doomed(AbortStatus),
}

/// One in-flight transaction's tracked state.
#[derive(Debug, Clone, Default)]
pub(crate) struct Txn {
    /// Lines read (tracked for conflict detection).
    pub read_lines: BTreeSet<CacheLine>,
    /// Lines written.
    pub write_lines: BTreeSet<CacheLine>,
    /// Buffered stores, applied to memory only on commit.
    pub write_buf: BTreeMap<Addr, u64>,
    /// Doom status, if the hardware aborted this transaction.
    pub doom: Option<AbortStatus>,
    /// The first conflicting line (for the optional conflict-address
    /// reporting extension).
    pub conflict_line: Option<CacheLine>,
    /// Dynamic count of data accesses inside this transaction (statistics).
    pub accesses: u64,
    /// Per-cache-set occupancy of the write set (lazily sized; avoids an
    /// O(write-set) scan on every new line).
    pub set_occupancy: Vec<u16>,
}

impl Txn {
    pub(crate) fn state(&self) -> TxnState {
        match self.doom {
            Some(s) => TxnState::Doomed(s),
            None => TxnState::Active,
        }
    }

    /// Total distinct lines in the footprint.
    pub(crate) fn footprint_lines(&self) -> usize {
        self.read_lines.union(&self.write_lines).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_counts_union() {
        let mut t = Txn::default();
        t.read_lines.insert(CacheLine(1));
        t.read_lines.insert(CacheLine(2));
        t.write_lines.insert(CacheLine(2));
        t.write_lines.insert(CacheLine(3));
        assert_eq!(t.footprint_lines(), 3);
    }

    #[test]
    fn state_reflects_doom() {
        let mut t = Txn::default();
        assert_eq!(t.state(), TxnState::Active);
        t.doom = Some(AbortStatus::CAPACITY);
        assert_eq!(t.state(), TxnState::Doomed(AbortStatus::CAPACITY));
    }
}
