//! Per-thread transaction bookkeeping.
//!
//! The tracked read/write sets and the store buffer are the hottest
//! structures in the simulator — every transactional access tests and
//! updates them, and every conflict scan probes them once per active
//! transaction. They are therefore kept data-oriented: line membership
//! is a bitset indexed directly by the raw cache-line index (the
//! program's line space is dense, see `txrace_sim::intern`), paired
//! with an insertion-ordered list of touched lines so clearing costs
//! O(footprint) instead of O(address space); the store buffer maps raw
//! addresses to dense slots through a paged first-touch map
//! ([`txrace_sim::AddrMap`], O(touched) space) and generation-stamps the
//! slots so reuse across transactions needs no per-entry reset.

use txrace_sim::{Addr, AddrMap, CacheLine, JournalMark, WriteJournal};

use crate::status::AbortStatus;

/// The lifecycle of one hardware transaction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// No transaction in flight.
    Idle,
    /// Transaction executing.
    Active,
    /// Transaction has been aborted by the hardware but the thread has not
    /// yet observed it (it observes at its next access or at `xend`).
    Doomed(AbortStatus),
}

/// A set of cache lines: one bit per raw line index plus the list of
/// members in insertion order.
#[derive(Debug, Clone, Default)]
pub(crate) struct LineSet {
    words: Vec<u64>,
    members: Vec<CacheLine>,
}

impl LineSet {
    /// O(1) membership test.
    #[inline]
    pub(crate) fn contains(&self, line: CacheLine) -> bool {
        match self.words.get(line.0 as usize / 64) {
            Some(w) => w & (1 << (line.0 % 64)) != 0,
            None => false,
        }
    }

    /// Adds `line`; returns true if it was new.
    #[inline]
    pub(crate) fn insert(&mut self, line: CacheLine) -> bool {
        let w = line.0 as usize / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1 << (line.0 % 64);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.members.push(line);
        true
    }

    /// Number of distinct lines.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.members.len()
    }

    /// Members in insertion order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = CacheLine> + '_ {
        self.members.iter().copied()
    }

    /// Empties the set in O(members), keeping capacity.
    pub(crate) fn clear(&mut self) {
        for l in self.members.drain(..) {
            self.words[l.0 as usize / 64] &= !(1 << (l.0 % 64));
        }
    }

    /// Pre-sizes the bitset for raw line indices below `line_capacity`.
    pub(crate) fn reserve(&mut self, line_capacity: usize) {
        let words = line_capacity.div_ceil(64);
        if self.words.len() < words {
            self.words.resize(words, 0);
        }
    }
}

/// The transactional store buffer: raw addresses resolve to dense slots
/// through a paged first-touch map, and the slots are generation-stamped
/// so clearing is O(1) plus list reset. Slot ids persist across clears
/// (they grow monotonically with the distinct addresses this slot's
/// transactions ever buffered), so a recycled buffer keeps both its map
/// and its tables.
#[derive(Debug, Clone)]
pub(crate) struct WriteBuf {
    ids: AddrMap,
    vals: Vec<u64>,
    stamps: Vec<u64>,
    generation: u64,
    touched: Vec<Addr>,
}

impl Default for WriteBuf {
    fn default() -> Self {
        WriteBuf {
            ids: AddrMap::new(),
            vals: Vec::new(),
            stamps: Vec::new(),
            // Stamp 0 means "never written"; start at 1.
            generation: 1,
            touched: Vec::new(),
        }
    }
}

impl WriteBuf {
    /// The buffered value at `addr`, if this transaction stored one.
    #[inline]
    pub(crate) fn get(&self, addr: Addr) -> Option<u64> {
        let i = self.ids.get(addr)? as usize;
        (self.stamps[i] == self.generation).then(|| self.vals[i])
    }

    /// Buffers `val` at `addr`.
    #[inline]
    pub(crate) fn insert(&mut self, addr: Addr, val: u64) {
        let i = self.ids.resolve(addr) as usize;
        if i == self.vals.len() {
            self.vals.push(0);
            self.stamps.push(0);
        }
        if self.stamps[i] != self.generation {
            self.stamps[i] = self.generation;
            self.touched.push(addr);
        }
        self.vals[i] = val;
    }

    /// Buffered `(addr, value)` pairs in first-store order.
    pub(crate) fn entries(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.touched.iter().map(|&a| {
            (
                a,
                self.vals[self.ids.get(a).expect("touched is mapped") as usize],
            )
        })
    }

    /// Discards all buffered stores (O(1) plus list reset).
    pub(crate) fn clear(&mut self) {
        self.generation += 1;
        self.touched.clear();
    }

    /// Pre-sizes the map's page table for raw addresses below
    /// `addr_capacity` (8 bytes per 4096 addresses of span).
    pub(crate) fn reserve(&mut self, addr_capacity: usize) {
        self.ids.reserve_span(addr_capacity);
    }
}

/// One in-flight transaction's tracked state.
#[derive(Debug, Clone, Default)]
pub(crate) struct Txn {
    /// Lines read (tracked for conflict detection).
    pub read_lines: LineSet,
    /// Lines written.
    pub write_lines: LineSet,
    /// Buffered stores, applied to memory only on commit
    /// ([`VersionPolicy::Buffer`](crate::VersionPolicy) only).
    pub write_buf: WriteBuf,
    /// Undo log of this transaction's eager in-place stores (the
    /// journaled versioning policies): unwound at doom time, truncated
    /// on commit.
    pub journal: WriteJournal,
    /// Journal watermark taken at `xbegin`.
    pub begin: JournalMark,
    /// Doom status, if the hardware aborted this transaction.
    pub doom: Option<AbortStatus>,
    /// The first conflicting line (for the optional conflict-address
    /// reporting extension).
    pub conflict_line: Option<CacheLine>,
    /// Dynamic count of data accesses inside this transaction (statistics).
    pub accesses: u64,
    /// Per-cache-set occupancy of the write set (lazily sized; avoids an
    /// O(write-set) scan on every new line).
    pub set_occupancy: Vec<u16>,
}

impl Txn {
    pub(crate) fn state(&self) -> TxnState {
        match self.doom {
            Some(s) => TxnState::Doomed(s),
            None => TxnState::Active,
        }
    }

    /// Total distinct lines in the footprint.
    pub(crate) fn footprint_lines(&self) -> usize {
        self.read_lines.len()
            + self
                .write_lines
                .iter()
                .filter(|&l| !self.read_lines.contains(l))
                .count()
    }

    /// Returns the slot to its pristine state, keeping allocations so a
    /// recycled transaction does no work proportional to the address
    /// space.
    pub(crate) fn reset(&mut self) {
        self.read_lines.clear();
        self.write_lines.clear();
        self.write_buf.clear();
        self.journal.clear();
        self.begin = JournalMark::default();
        self.doom = None;
        self.conflict_line = None;
        self.accesses = 0;
        self.set_occupancy.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_counts_union() {
        let mut t = Txn::default();
        t.read_lines.insert(CacheLine(1));
        t.read_lines.insert(CacheLine(2));
        t.write_lines.insert(CacheLine(2));
        t.write_lines.insert(CacheLine(3));
        assert_eq!(t.footprint_lines(), 3);
    }

    #[test]
    fn state_reflects_doom() {
        let mut t = Txn::default();
        assert_eq!(t.state(), TxnState::Active);
        t.doom = Some(AbortStatus::CAPACITY);
        assert_eq!(t.state(), TxnState::Doomed(AbortStatus::CAPACITY));
    }

    #[test]
    fn line_set_insert_contains_clear() {
        let mut s = LineSet::default();
        assert!(s.insert(CacheLine(3)));
        assert!(s.insert(CacheLine(200)));
        assert!(!s.insert(CacheLine(3)), "duplicate insert");
        assert!(s.contains(CacheLine(3)));
        assert!(s.contains(CacheLine(200)));
        assert!(!s.contains(CacheLine(4)));
        assert!(!s.contains(CacheLine(100_000)), "beyond capacity");
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), [CacheLine(3), CacheLine(200)]);
        s.clear();
        assert_eq!(s.len(), 0);
        assert!(!s.contains(CacheLine(3)));
        assert!(s.insert(CacheLine(3)), "reusable after clear");
    }

    #[test]
    fn write_buf_overwrites_and_survives_clear() {
        let mut b = WriteBuf::default();
        assert_eq!(b.get(Addr(8)), None);
        b.insert(Addr(8), 1);
        b.insert(Addr(8), 2);
        b.insert(Addr(64), 3);
        assert_eq!(b.get(Addr(8)), Some(2));
        assert_eq!(
            b.entries().collect::<Vec<_>>(),
            [(Addr(8), 2), (Addr(64), 3)]
        );
        b.clear();
        assert_eq!(b.get(Addr(8)), None, "stale generation invisible");
        assert_eq!(b.entries().count(), 0);
        b.insert(Addr(8), 9);
        assert_eq!(b.get(Addr(8)), Some(9));
    }

    #[test]
    fn reset_keeps_capacity_but_clears_state() {
        let mut t = Txn {
            set_occupancy: vec![2, 0, 1],
            ..Txn::default()
        };
        t.read_lines.insert(CacheLine(1));
        t.write_lines.insert(CacheLine(2));
        t.write_buf.insert(Addr(128), 5);
        t.doom = Some(AbortStatus::CAPACITY);
        t.accesses = 7;
        t.reset();
        assert_eq!(t.state(), TxnState::Active);
        assert_eq!(t.footprint_lines(), 0);
        assert_eq!(t.write_buf.get(Addr(128)), None);
        assert_eq!(t.accesses, 0);
        assert!(t.set_occupancy.iter().all(|&o| o == 0));
    }
}
