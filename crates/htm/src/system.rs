//! The simulated HTM: transaction slots, conflict detection, capacity
//! model, and commit/abort.

use txrace_sim::{Addr, CacheLine, InterruptKind, Memory, ThreadId};

use crate::status::{AbortReason, AbortStatus};
use crate::txn::{Txn, TxnState};

/// How a transaction's stores are versioned while it is in flight.
///
/// All three policies are observationally equivalent — doom order, abort
/// statistics, and every value any non-doomed access observes are
/// bit-identical (verified by `tests/rollback_equivalence.rs`) — they
/// differ only in what the simulator pays per access and per abort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum VersionPolicy {
    /// Eager in-place stores under a per-transaction undo journal
    /// ([`txrace_sim::WriteJournal`]): transaction begin is an O(1)
    /// journal mark, commit an O(1) truncate, rollback O(stores in the
    /// transaction) — and transactional *reads* are plain memory loads
    /// (no store-buffer lookup). The default.
    #[default]
    Undo,
    /// Lazy write buffering: stores accumulate in a per-transaction
    /// buffer and reach memory only at commit. The previous
    /// implementation, kept as the equivalence oracle for the undo path.
    Buffer,
    /// Undo mechanics in the HTM plus a full simulated-memory checkpoint
    /// cloned by the engine at every transaction begin and again at
    /// abort: the O(heap)-per-begin clone-snapshot baseline that
    /// `bench_live` quantifies the journal against. Detection outputs
    /// are still bit-identical (restore goes through the journal; the
    /// clones are pure cost).
    CloneSnapshot,
}

impl VersionPolicy {
    /// True when stores go to memory eagerly under an undo journal.
    pub fn is_eager(self) -> bool {
        !matches!(self, VersionPolicy::Buffer)
    }
}

/// Hardware parameters of the simulated HTM.
///
/// Defaults model a Haswell L1D: transactional *writes* must fit the
/// 32 KiB 8-way L1 (64 sets of 8 ways of 64-byte lines); *reads* can spill
/// to a larger structure but are still bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtmConfig {
    /// Number of cache sets available to the transactional write set.
    pub write_sets: usize,
    /// Associativity of each write-set cache set.
    pub write_ways: usize,
    /// Maximum distinct lines in the read set.
    pub read_set_max_lines: usize,
    /// Maximum simultaneously active transactions (hardware threads).
    pub max_concurrent_txns: usize,
    /// Future-hardware feature (the paper's §9 TxIntro/RaceTM direction):
    /// report the conflicting cache line to the aborted transaction.
    /// Commodity RTM does not do this; keep `false` for fidelity.
    pub report_conflict_address: bool,
    /// How in-flight stores are versioned (undo journal vs write buffer);
    /// observationally equivalent, see [`VersionPolicy`].
    pub version: VersionPolicy,
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig {
            write_sets: 64,
            write_ways: 8,
            read_set_max_lines: 4096,
            max_concurrent_txns: 8,
            report_conflict_address: false,
            version: VersionPolicy::default(),
        }
    }
}

/// Why `xbegin` refused to start a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XbeginError {
    /// The thread already has a transaction in flight (TxRace never nests).
    Nested,
    /// All hardware transaction slots are busy.
    NoSlot,
}

impl std::fmt::Display for XbeginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XbeginError::Nested => f.write_str("transaction already in flight on this thread"),
            XbeginError::NoSlot => f.write_str("no hardware transaction slot available"),
        }
    }
}

impl std::error::Error for XbeginError {}

/// Aggregate transaction statistics, matching the columns of the paper's
/// Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HtmStats {
    /// Transactions that committed.
    pub committed: u64,
    /// Aborts whose status had the CONFLICT bit.
    pub conflict_aborts: u64,
    /// Aborts whose status had the CAPACITY bit.
    pub capacity_aborts: u64,
    /// Aborts with an empty status word.
    pub unknown_aborts: u64,
    /// Aborts with only the RETRY bit.
    pub retry_aborts: u64,
    /// Aborts raised by `xabort`.
    pub explicit_aborts: u64,
}

impl HtmStats {
    /// Total aborts of any kind.
    pub fn total_aborts(&self) -> u64 {
        self.conflict_aborts
            + self.capacity_aborts
            + self.unknown_aborts
            + self.retry_aborts
            + self.explicit_aborts
    }
}

/// One conflict event, as recorded by the [`ConflictOracle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictRecord {
    /// The thread whose access won (requester-wins).
    pub requester: ThreadId,
    /// The transaction that was doomed.
    pub victim: ThreadId,
    /// The contended cache line.
    pub line: CacheLine,
    /// Whether the requester itself was inside a transaction (false means
    /// a strong-isolation conflict with non-transactional code).
    pub requester_in_txn: bool,
}

/// Test-only visibility into conflicts.
///
/// Real RTM reports none of this; the TxRace engine must never consult it.
/// It exists so tests can verify invariants like "overlapping conflicting
/// transactions always produce a conflict abort".
#[derive(Debug, Clone, Default)]
pub struct ConflictOracle {
    records: Vec<ConflictRecord>,
}

impl ConflictOracle {
    /// All conflicts so far, in occurrence order.
    pub fn records(&self) -> &[ConflictRecord] {
        &self.records
    }

    /// The most recent conflict.
    pub fn last(&self) -> Option<&ConflictRecord> {
        self.records.last()
    }

    /// Clears the record log.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

/// One hardware transaction context: the bookkeeping structure is owned
/// permanently by its thread's slot and reset in place between
/// transactions, so `xbegin`/`xend` never move or allocate it.
#[derive(Debug, Default)]
struct Slot {
    txn: Txn,
    /// True while a transaction (active or doomed) occupies this slot.
    /// When false, `txn` is pristine (freshly reset).
    in_flight: bool,
}

/// The simulated best-effort HTM. See the crate docs for semantics.
#[derive(Debug)]
pub struct HtmSystem {
    cfg: HtmConfig,
    slots: Vec<Slot>,
    /// Number of in-flight slots (kept in sync for the conflict fast exit).
    active: usize,
    /// Per-raw-line count of in-flight transactions (including doomed
    /// ones) tracking the line in their read set. Together with
    /// `line_writers` this gives conflict scans an O(1) "no conflict
    /// possible" answer without probing every slot.
    line_readers: Vec<u8>,
    /// Per-raw-line count of in-flight transactions tracking the line in
    /// their write set.
    line_writers: Vec<u8>,
    stats: HtmStats,
    oracle: ConflictOracle,
}

impl HtmSystem {
    /// Creates an HTM for `threads` logical threads.
    pub fn new(cfg: HtmConfig, threads: usize) -> Self {
        HtmSystem {
            cfg,
            slots: (0..threads).map(|_| Slot::default()).collect(),
            active: 0,
            line_readers: Vec::new(),
            line_writers: Vec::new(),
            stats: HtmStats::default(),
            oracle: ConflictOracle::default(),
        }
    }

    /// Pre-sizes every slot's write buffer and line bitsets for a
    /// program whose raw addresses are below `addr_capacity` and raw
    /// cache-line indices below `line_capacity` (both available from
    /// `txrace_sim::Interner`), so the hot path never grows a table's
    /// top level.
    pub fn reserve_capacity(&mut self, addr_capacity: usize, line_capacity: usize) {
        for slot in &mut self.slots {
            slot.txn.read_lines.reserve(line_capacity);
            slot.txn.write_lines.reserve(line_capacity);
            slot.txn.write_buf.reserve(addr_capacity);
        }
        if self.line_readers.len() < line_capacity {
            self.line_readers.resize(line_capacity, 0);
            self.line_writers.resize(line_capacity, 0);
        }
    }

    /// Increments a per-line occupancy counter, growing the table for
    /// lines beyond the reserved capacity.
    #[inline]
    fn bump(counts: &mut Vec<u8>, line: CacheLine) {
        let li = line.0 as usize;
        if li >= counts.len() {
            counts.resize(li + 1, 0);
        }
        counts[li] += 1;
    }

    /// Returns a finished transaction's tracked lines to the occupancy
    /// counters (called with the slot's sets still intact, before reset).
    fn release_lines(readers: &mut [u8], writers: &mut [u8], txn: &Txn) {
        for l in txn.read_lines.iter() {
            readers[l.0 as usize] -= 1;
        }
        for l in txn.write_lines.iter() {
            writers[l.0 as usize] -= 1;
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &HtmConfig {
        &self.cfg
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &HtmStats {
        &self.stats
    }

    /// The testing oracle (never consulted by the detection engine).
    pub fn oracle(&self) -> &ConflictOracle {
        &self.oracle
    }

    /// Clears the oracle log.
    pub fn oracle_clear(&mut self) {
        self.oracle.clear();
    }

    /// Number of transactions currently occupying hardware slots.
    pub fn active_txn_count(&self) -> usize {
        self.active
    }

    /// The state of thread `t`'s transaction slot.
    pub fn txn_state(&self, t: ThreadId) -> TxnState {
        let slot = &self.slots[t.index()];
        if slot.in_flight {
            slot.txn.state()
        } else {
            TxnState::Idle
        }
    }

    /// True if `t` has a transaction in flight (active or doomed).
    pub fn in_txn(&self, t: ThreadId) -> bool {
        self.slots[t.index()].in_flight
    }

    /// The doom status of `t`'s transaction, if the hardware aborted it.
    pub fn is_doomed(&self, t: ThreadId) -> Option<AbortStatus> {
        let slot = &self.slots[t.index()];
        if slot.in_flight {
            slot.txn.doom
        } else {
            None
        }
    }

    /// The conflicting cache line of `t`'s doomed transaction, if the
    /// hardware is configured to report it
    /// ([`HtmConfig::report_conflict_address`]). Always `None` on the
    /// commodity configuration.
    pub fn conflict_line_hint(&self, t: ThreadId) -> Option<CacheLine> {
        if !self.cfg.report_conflict_address {
            return None;
        }
        let slot = &self.slots[t.index()];
        if slot.in_flight {
            slot.txn.conflict_line
        } else {
            None
        }
    }

    /// Data accesses performed inside `t`'s current transaction.
    pub fn txn_accesses(&self, t: ThreadId) -> u64 {
        let slot = &self.slots[t.index()];
        if slot.in_flight {
            slot.txn.accesses
        } else {
            0
        }
    }

    /// Distinct cache lines in `t`'s current transactional footprint
    /// (read set ∪ write set).
    pub fn txn_footprint_lines(&self, t: ThreadId) -> usize {
        let slot = &self.slots[t.index()];
        if slot.in_flight {
            slot.txn.footprint_lines()
        } else {
            0
        }
    }

    /// Starts a transaction on thread `t`.
    ///
    /// # Errors
    ///
    /// [`XbeginError::Nested`] if `t` already has one in flight;
    /// [`XbeginError::NoSlot`] if all hardware contexts are busy.
    pub fn xbegin(&mut self, t: ThreadId) -> Result<(), XbeginError> {
        if self.slots[t.index()].in_flight {
            return Err(XbeginError::Nested);
        }
        if self.active_txn_count() >= self.cfg.max_concurrent_txns {
            return Err(XbeginError::NoSlot);
        }
        // The slot's bookkeeping was reset when its last transaction
        // finished, so starting one is just flipping the flag and taking
        // an O(1) journal watermark — never O(state).
        let slot = &mut self.slots[t.index()];
        slot.in_flight = true;
        slot.txn.begin = slot.txn.journal.mark();
        self.active += 1;
        Ok(())
    }

    /// Ends thread `t`'s transaction: makes its stores permanent (for the
    /// journaled policies they are already in memory, so commit is an O(1)
    /// truncate; under [`VersionPolicy::Buffer`] the buffered writes are
    /// applied here), or reports the abort status.
    ///
    /// # Errors
    ///
    /// The abort status, if the transaction was doomed. The slot is freed
    /// either way.
    ///
    /// # Panics
    ///
    /// Panics if `t` has no transaction in flight.
    pub fn xend(&mut self, t: ThreadId, mem: &mut Memory) -> Result<(), AbortStatus> {
        let eager = self.cfg.version.is_eager();
        let slot = &mut self.slots[t.index()];
        assert!(slot.in_flight, "xend without a transaction in flight");
        slot.in_flight = false;
        let result = match slot.txn.doom {
            Some(status) => Err(status),
            None => {
                if eager {
                    // Journaled stores are already in memory; committing
                    // is retiring the undo entries (`reset` truncates).
                    let begin = slot.txn.begin;
                    slot.txn.journal.commit_to(begin);
                } else {
                    for (addr, val) in slot.txn.write_buf.entries() {
                        mem.store(addr, val);
                    }
                }
                Ok(())
            }
        };
        let slot = &self.slots[t.index()];
        Self::release_lines(&mut self.line_readers, &mut self.line_writers, &slot.txn);
        self.slots[t.index()].txn.reset();
        self.active -= 1;
        if result.is_ok() {
            self.stats.committed += 1;
        }
        result
    }

    /// Consumes a doomed transaction after the thread observed the abort,
    /// returning its status. This models the control transfer to the
    /// `xbegin` fallback path.
    ///
    /// # Panics
    ///
    /// Panics if `t`'s transaction is not doomed.
    pub fn abort_rollback(&mut self, t: ThreadId) -> AbortStatus {
        let slot = &mut self.slots[t.index()];
        assert!(slot.in_flight, "abort_rollback without a transaction");
        let status = slot
            .txn
            .doom
            .expect("abort_rollback of a healthy transaction");
        slot.in_flight = false;
        let slot = &self.slots[t.index()];
        Self::release_lines(&mut self.line_readers, &mut self.line_writers, &slot.txn);
        self.slots[t.index()].txn.reset();
        self.active -= 1;
        status
    }

    /// Explicitly aborts `t`'s transaction with the given code.
    ///
    /// # Panics
    ///
    /// Panics if `t` has no transaction in flight.
    pub fn xabort(&mut self, t: ThreadId, mem: &mut Memory, code: u8) {
        assert!(self.in_txn(t), "xabort outside a transaction");
        self.doom(mem, t, AbortStatus::explicit_with_code(code));
    }

    /// Delivers a simulated OS interrupt to thread `t`; any in-flight
    /// transaction aborts (unknown status for context switches, RETRY for
    /// transient events).
    pub fn interrupt(&mut self, t: ThreadId, mem: &mut Memory, kind: InterruptKind) {
        if self.slots[t.index()].in_flight {
            let status = match kind {
                InterruptKind::ContextSwitch => AbortStatus::UNKNOWN,
                InterruptKind::Transient => AbortStatus::RETRY,
            };
            self.doom(mem, t, status);
        }
    }

    /// Performs a read by `t` (transactional if `t` is in a transaction,
    /// non-transactional otherwise), returning the value observed.
    ///
    /// Takes `&mut Memory` because requester-wins conflict detection may
    /// doom another transaction, and under the journaled policies dooming
    /// unwinds the victim's eager stores before this read observes memory.
    pub fn read(&mut self, t: ThreadId, mem: &mut Memory, addr: Addr) -> u64 {
        let line = addr.line();
        let eager = self.cfg.version.is_eager();
        let slot = &self.slots[t.index()];
        match (slot.in_flight, slot.txn.doom) {
            (true, None) => {
                // Active transaction: requester-wins against others' writes.
                self.conflict_scan(mem, t, line, false, true);
                let cap = self.cfg.read_set_max_lines;
                let txn = &mut self.slots[t.index()].txn;
                txn.accesses += 1;
                if !txn.read_lines.contains(line) {
                    if txn.read_lines.len() >= cap {
                        // Capture before the self-doom: dooming unwinds
                        // this transaction's own journal.
                        let val = if eager {
                            mem.load(addr)
                        } else {
                            txn.write_buf.get(addr).unwrap_or_else(|| mem.load(addr))
                        };
                        self.doom(mem, t, AbortStatus::CAPACITY);
                        return val;
                    }
                    txn.read_lines.insert(line);
                    Self::bump(&mut self.line_readers, line);
                }
                if eager {
                    // Own stores are already in place: a transactional
                    // read is a plain load, no buffer lookup.
                    mem.load(addr)
                } else {
                    let txn = &self.slots[t.index()].txn;
                    txn.write_buf.get(addr).unwrap_or_else(|| mem.load(addr))
                }
            }
            (true, Some(_)) => {
                // Zombie execution inside a doomed transaction: no coherence
                // effects. Under the journaled policies the undo log was
                // unwound at doom time, so memory is the pre-transaction
                // state; under buffering the dead buffer still answers.
                if eager {
                    mem.load(addr)
                } else {
                    slot.txn
                        .write_buf
                        .get(addr)
                        .unwrap_or_else(|| mem.load(addr))
                }
            }
            (false, _) => {
                // Non-transactional read: strong isolation dooms writers
                // (and unwinds their journals) before the load.
                self.conflict_scan(mem, t, line, false, false);
                mem.load(addr)
            }
        }
    }

    /// Performs a write by `t` (journaled in place or buffered if
    /// transactional, per the version policy; direct otherwise).
    pub fn write(&mut self, t: ThreadId, mem: &mut Memory, addr: Addr, val: u64) {
        let line = addr.line();
        let eager = self.cfg.version.is_eager();
        let slot = &self.slots[t.index()];
        match (slot.in_flight, slot.txn.doom) {
            (true, None) => {
                self.conflict_scan(mem, t, line, true, true);
                if !self.reserve_write_line(mem, t, line) {
                    return; // capacity doom; store never becomes visible
                }
                let txn = &mut self.slots[t.index()].txn;
                txn.accesses += 1;
                if eager {
                    mem.store_logged(addr, val, &mut txn.journal);
                } else {
                    txn.write_buf.insert(addr, val);
                }
            }
            (true, Some(_)) => {
                // Zombie store: under journaling it simply vanishes (the
                // undo log is already unwound and must stay retired);
                // under buffering it lands in the dead buffer.
                if !eager {
                    let txn = &mut self.slots[t.index()].txn;
                    txn.write_buf.insert(addr, val);
                }
            }
            (false, _) => {
                self.conflict_scan(mem, t, line, true, false);
                mem.store(addr, val);
            }
        }
    }

    /// Performs an atomic fetch-add by `t`, returning the previous value.
    pub fn rmw(&mut self, t: ThreadId, mem: &mut Memory, addr: Addr, delta: u64) -> u64 {
        let line = addr.line();
        let eager = self.cfg.version.is_eager();
        let slot = &self.slots[t.index()];
        match (slot.in_flight, slot.txn.doom) {
            (true, None) => {
                self.conflict_scan(mem, t, line, true, true);
                // Reads and writes the line.
                let cap = self.cfg.read_set_max_lines;
                {
                    let txn = &mut self.slots[t.index()].txn;
                    if !txn.read_lines.contains(line) && txn.read_lines.len() >= cap {
                        // Pre-doom capture: the self-doom below unwinds
                        // this transaction's own journal.
                        let old = if eager {
                            mem.load(addr)
                        } else {
                            txn.write_buf.get(addr).unwrap_or_else(|| mem.load(addr))
                        };
                        self.doom(mem, t, AbortStatus::CAPACITY);
                        return old;
                    }
                    if txn.read_lines.insert(line) {
                        Self::bump(&mut self.line_readers, line);
                    }
                }
                let old = if eager {
                    mem.load(addr)
                } else {
                    let txn = &self.slots[t.index()].txn;
                    txn.write_buf.get(addr).unwrap_or_else(|| mem.load(addr))
                };
                if !self.reserve_write_line(mem, t, line) {
                    return old;
                }
                let txn = &mut self.slots[t.index()].txn;
                txn.accesses += 1;
                if eager {
                    mem.store_logged(addr, old.wrapping_add(delta), &mut txn.journal);
                } else {
                    txn.write_buf.insert(addr, old.wrapping_add(delta));
                }
                old
            }
            (true, Some(_)) => {
                // Zombie rmw: observe without publishing (see `write`).
                if eager {
                    mem.load(addr)
                } else {
                    let txn = &mut self.slots[t.index()].txn;
                    let old = txn.write_buf.get(addr).unwrap_or_else(|| mem.load(addr));
                    txn.write_buf.insert(addr, old.wrapping_add(delta));
                    old
                }
            }
            (false, _) => {
                self.conflict_scan(mem, t, line, true, false);
                let old = mem.load(addr);
                mem.store(addr, old.wrapping_add(delta));
                old
            }
        }
    }

    /// Adds `line` to `t`'s write set, dooming `t` with CAPACITY if the
    /// L1-shaped structure overflows. Returns false on doom.
    fn reserve_write_line(&mut self, mem: &mut Memory, t: ThreadId, line: CacheLine) -> bool {
        let (sets, ways) = (self.cfg.write_sets, self.cfg.write_ways);
        let txn = &mut self.slots[t.index()].txn;
        if txn.write_lines.contains(line) {
            return true;
        }
        let set = line.0 as usize % sets;
        if txn.set_occupancy.is_empty() {
            txn.set_occupancy = vec![0; sets];
        }
        if usize::from(txn.set_occupancy[set]) >= ways {
            self.doom(mem, t, AbortStatus::CAPACITY);
            return false;
        }
        txn.set_occupancy[set] += 1;
        txn.write_lines.insert(line);
        Self::bump(&mut self.line_writers, line);
        true
    }

    /// Requester-wins conflict detection: dooms every *other* active
    /// transaction whose tracked lines conflict with this access.
    fn conflict_scan(
        &mut self,
        mem: &mut Memory,
        requester: ThreadId,
        line: CacheLine,
        is_write: bool,
        in_txn: bool,
    ) {
        // Fast exit for the overwhelmingly common case: no *other*
        // transaction is in flight, so nothing can conflict.
        let req = &self.slots[requester.index()];
        let others = self.active - usize::from(req.in_flight);
        if others == 0 {
            return;
        }
        // Second fast exit: the occupancy counters say no transaction
        // other than the requester tracks this line in a conflicting way.
        // The counters overcount (they include doomed transactions), so a
        // zero here is exact while a nonzero only licenses the full scan.
        let li = line.0 as usize;
        let writers = i32::from(self.line_writers.get(li).copied().unwrap_or(0));
        let (own_r, own_w) = if req.in_flight {
            (
                i32::from(req.txn.read_lines.contains(line)),
                i32::from(req.txn.write_lines.contains(line)),
            )
        } else {
            (0, 0)
        };
        let possible = if is_write {
            let readers = i32::from(self.line_readers.get(li).copied().unwrap_or(0));
            readers > own_r || writers > own_w
        } else {
            writers > own_w
        };
        if !possible {
            return;
        }
        for i in 0..self.slots.len() {
            if i == requester.index() {
                continue;
            }
            let slot = &self.slots[i];
            let conflicts = slot.in_flight
                && slot.txn.doom.is_none()
                && if is_write {
                    slot.txn.read_lines.contains(line) || slot.txn.write_lines.contains(line)
                } else {
                    slot.txn.write_lines.contains(line)
                };
            if conflicts {
                let victim = ThreadId(i as u32);
                self.doom(mem, victim, AbortStatus::CONFLICT | AbortStatus::RETRY);
                self.slots[i].txn.conflict_line.get_or_insert(line);
                self.oracle.records.push(ConflictRecord {
                    requester,
                    victim,
                    line,
                    requester_in_txn: in_txn,
                });
            }
        }
    }

    /// Marks `victim`'s transaction aborted and updates statistics. The
    /// first doom wins; later ones do not overwrite the status.
    ///
    /// Under the journaled policies this is also where isolation is
    /// restored: the victim's undo log is unwound to its begin watermark
    /// *before* the requester's own access proceeds, so no thread ever
    /// observes a doomed transaction's stores.
    fn doom(&mut self, mem: &mut Memory, victim: ThreadId, status: AbortStatus) {
        let eager = self.cfg.version.is_eager();
        let slot = &mut self.slots[victim.index()];
        assert!(slot.in_flight, "dooming a thread without a transaction");
        let txn = &mut slot.txn;
        if txn.doom.is_some() {
            return;
        }
        txn.doom = Some(status);
        if eager {
            let begin = txn.begin;
            txn.journal.rollback_to(mem, begin);
        }
        match status.reason() {
            AbortReason::Conflict => self.stats.conflict_aborts += 1,
            AbortReason::Capacity => self.stats.capacity_aborts += 1,
            AbortReason::Unknown => self.stats.unknown_aborts += 1,
            AbortReason::Retry => self.stats.retry_aborts += 1,
            AbortReason::Explicit => self.stats.explicit_aborts += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    fn fresh(threads: usize) -> (HtmSystem, Memory) {
        (HtmSystem::new(HtmConfig::default(), threads), Memory::new())
    }

    fn fresh_with(version: VersionPolicy, threads: usize) -> (HtmSystem, Memory) {
        let cfg = HtmConfig {
            version,
            ..HtmConfig::default()
        };
        (HtmSystem::new(cfg, threads), Memory::new())
    }

    fn line_addr(line: u64) -> Addr {
        CacheLine(line).base()
    }

    #[test]
    fn buffered_committed_writes_become_visible_atomically() {
        // Buffer is the only policy where uncommitted stores are invisible
        // to a direct memory probe (under journaling they are in place and
        // isolation comes from doom-time rollback instead).
        let (mut htm, mut mem) = fresh_with(VersionPolicy::Buffer, 1);
        htm.xbegin(T0).unwrap();
        htm.write(T0, &mut mem, line_addr(1), 11);
        htm.write(T0, &mut mem, line_addr(2), 22);
        assert_eq!(mem.load(line_addr(1)), 0);
        assert_eq!(mem.load(line_addr(2)), 0);
        htm.xend(T0, &mut mem).unwrap();
        assert_eq!(mem.load(line_addr(1)), 11);
        assert_eq!(mem.load(line_addr(2)), 22);
        assert_eq!(htm.stats().committed, 1);
    }

    #[test]
    fn journaled_stores_land_eagerly_and_unwind_on_doom() {
        let (mut htm, mut mem) = fresh(2);
        mem.store(line_addr(1), 7);
        htm.xbegin(T0).unwrap();
        htm.write(T0, &mut mem, line_addr(1), 11);
        htm.write(T0, &mut mem, line_addr(2), 22);
        assert_eq!(mem.load(line_addr(1)), 11, "journaled store is in place");
        assert_eq!(mem.load(line_addr(2)), 22);
        // A conflicting non-transactional store dooms T0; the undo log
        // unwinds before the requester's store lands.
        htm.write(T1, &mut mem, line_addr(2), 99);
        assert_eq!(mem.load(line_addr(1)), 7, "old value restored");
        assert_eq!(mem.load(line_addr(2)), 99, "requester's store wins");
        assert!(htm.xend(T0, &mut mem).is_err());
    }

    #[test]
    fn journaled_commit_keeps_stores_in_place() {
        let (mut htm, mut mem) = fresh(1);
        htm.xbegin(T0).unwrap();
        htm.write(T0, &mut mem, line_addr(1), 11);
        htm.xend(T0, &mut mem).unwrap();
        assert_eq!(mem.load(line_addr(1)), 11);
        assert_eq!(htm.stats().committed, 1);
        // The retired journal must not unwind a later doom's rollback past
        // the committed store.
        htm.xbegin(T0).unwrap();
        htm.write(T0, &mut mem, line_addr(1), 12);
        htm.interrupt(T0, &mut mem, InterruptKind::ContextSwitch);
        assert_eq!(mem.load(line_addr(1)), 11, "rollback stops at commit");
        assert!(htm.xend(T0, &mut mem).is_err());
    }

    #[test]
    fn transaction_reads_its_own_writes() {
        let (mut htm, mut mem) = fresh(1);
        mem.store(line_addr(1), 5);
        htm.xbegin(T0).unwrap();
        assert_eq!(htm.read(T0, &mut mem, line_addr(1)), 5);
        htm.write(T0, &mut mem, line_addr(1), 9);
        assert_eq!(htm.read(T0, &mut mem, line_addr(1)), 9);
    }

    #[test]
    fn write_write_conflict_dooms_victim_requester_wins() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        htm.xbegin(T1).unwrap();
        htm.write(T0, &mut mem, line_addr(3), 1);
        htm.write(T1, &mut mem, line_addr(3), 2); // requester: T1 wins
        assert!(htm.is_doomed(T0).is_some());
        assert!(htm.is_doomed(T1).is_none());
        assert!(htm.is_doomed(T0).unwrap().contains(AbortStatus::CONFLICT));
        assert!(htm.is_doomed(T0).unwrap().contains(AbortStatus::RETRY));
        assert!(htm.xend(T1, &mut mem).is_ok());
        assert_eq!(
            htm.xend(T0, &mut mem).unwrap_err().reason(),
            AbortReason::Conflict
        );
        assert_eq!(mem.load(line_addr(3)), 2);
    }

    #[test]
    fn read_write_conflict_dooms_reader_when_writer_requests() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        htm.xbegin(T1).unwrap();
        let _ = htm.read(T0, &mut mem, line_addr(4));
        htm.write(T1, &mut mem, line_addr(4), 1);
        assert!(htm.is_doomed(T0).is_some());
        assert!(htm.is_doomed(T1).is_none());
    }

    #[test]
    fn write_read_conflict_dooms_writer_when_reader_requests() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        htm.xbegin(T1).unwrap();
        htm.write(T0, &mut mem, line_addr(4), 1);
        let _ = htm.read(T1, &mut mem, line_addr(4));
        assert!(
            htm.is_doomed(T0).is_some(),
            "writer loses to reader-requester"
        );
        assert!(htm.is_doomed(T1).is_none());
    }

    #[test]
    fn read_read_never_conflicts() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        htm.xbegin(T1).unwrap();
        let _ = htm.read(T0, &mut mem, line_addr(4));
        let _ = htm.read(T1, &mut mem, line_addr(4));
        assert!(htm.is_doomed(T0).is_none());
        assert!(htm.is_doomed(T1).is_none());
    }

    #[test]
    fn false_sharing_conflicts_at_line_granularity() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        htm.xbegin(T1).unwrap();
        // Distinct variables, same 64-byte line.
        htm.write(T0, &mut mem, line_addr(7), 1);
        htm.write(T1, &mut mem, line_addr(7).offset(8), 2);
        assert!(htm.is_doomed(T0).is_some(), "false sharing must conflict");
    }

    #[test]
    fn distinct_lines_do_not_conflict() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        htm.xbegin(T1).unwrap();
        htm.write(T0, &mut mem, line_addr(8), 1);
        htm.write(T1, &mut mem, line_addr(9), 2);
        assert!(htm.is_doomed(T0).is_none());
        assert!(htm.is_doomed(T1).is_none());
    }

    #[test]
    fn strong_isolation_nontx_write_aborts_readers() {
        let (mut htm, mut mem) = fresh(3);
        htm.xbegin(T0).unwrap();
        htm.xbegin(T1).unwrap();
        let flag = line_addr(12);
        let _ = htm.read(T0, &mut mem, flag);
        let _ = htm.read(T1, &mut mem, flag);
        // T2 is NOT in a transaction; its plain store must doom both.
        htm.write(T2, &mut mem, flag, 1);
        assert!(htm.is_doomed(T0).is_some());
        assert!(htm.is_doomed(T1).is_some());
        assert_eq!(mem.load(flag), 1, "non-tx store goes straight to memory");
        let recs = htm.oracle().records();
        assert!(recs.iter().all(|r| !r.requester_in_txn));
    }

    #[test]
    fn strong_isolation_nontx_read_aborts_writer() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        htm.write(T0, &mut mem, line_addr(13), 5);
        let v = htm.read(T1, &mut mem, line_addr(13));
        assert_eq!(v, 0, "uncommitted transactional store must be invisible");
        assert!(htm.is_doomed(T0).is_some());
    }

    #[test]
    fn aborted_writes_are_discarded() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        htm.write(T0, &mut mem, line_addr(14), 99);
        htm.write(T1, &mut mem, line_addr(14), 1); // dooms T0
        assert!(htm.xend(T0, &mut mem).is_err());
        assert_eq!(mem.load(line_addr(14)), 1);
    }

    #[test]
    fn zombie_doomed_txn_has_no_coherence_effects() {
        let (mut htm, mut mem) = fresh(3);
        htm.xbegin(T0).unwrap();
        htm.xbegin(T1).unwrap();
        htm.write(T0, &mut mem, line_addr(15), 1);
        htm.write(T2, &mut mem, line_addr(15), 2); // dooms T0 (T2 non-tx)
        assert!(htm.is_doomed(T0).is_some());
        // T1 reads a line T0 "writes" post-doom; T1 must not be doomed.
        let probe = line_addr(16);
        let _ = htm.read(T1, &mut mem, probe);
        htm.write(T0, &mut mem, probe, 3); // zombie write
        assert!(htm.is_doomed(T1).is_none());
        assert_eq!(mem.load(probe), 0);
    }

    #[test]
    fn capacity_abort_on_way_overflow() {
        let cfg = HtmConfig {
            write_sets: 4,
            write_ways: 2,
            ..HtmConfig::default()
        };
        let mut htm = HtmSystem::new(cfg, 1);
        let mut mem = Memory::new();
        htm.xbegin(T0).unwrap();
        // Lines 0, 4, 8 all map to set 0 with 4 sets; ways = 2 -> third dooms.
        htm.write(T0, &mut mem, line_addr(0), 1);
        htm.write(T0, &mut mem, line_addr(4), 1);
        assert!(htm.is_doomed(T0).is_none());
        htm.write(T0, &mut mem, line_addr(8), 1);
        assert_eq!(htm.is_doomed(T0).unwrap().reason(), AbortReason::Capacity);
        assert_eq!(htm.stats().capacity_aborts, 1);
    }

    #[test]
    fn capacity_abort_on_read_set_overflow() {
        let cfg = HtmConfig {
            read_set_max_lines: 3,
            ..HtmConfig::default()
        };
        let mut htm = HtmSystem::new(cfg, 1);
        let mut mem = Memory::new();
        htm.xbegin(T0).unwrap();
        for i in 0..3 {
            let _ = htm.read(T0, &mut mem, line_addr(20 + i));
        }
        assert!(htm.is_doomed(T0).is_none());
        let _ = htm.read(T0, &mut mem, line_addr(30));
        assert_eq!(htm.is_doomed(T0).unwrap().reason(), AbortReason::Capacity);
    }

    #[test]
    fn rereading_same_line_never_overflows() {
        let cfg = HtmConfig {
            read_set_max_lines: 1,
            ..HtmConfig::default()
        };
        let mut htm = HtmSystem::new(cfg, 1);
        let mut mem = Memory::new();
        htm.xbegin(T0).unwrap();
        for _ in 0..100 {
            let _ = htm.read(T0, &mut mem, line_addr(5));
        }
        assert!(htm.is_doomed(T0).is_none());
    }

    #[test]
    fn interrupt_dooms_with_unknown_status() {
        let (mut htm, mut mem) = fresh(1);
        htm.xbegin(T0).unwrap();
        htm.interrupt(T0, &mut mem, InterruptKind::ContextSwitch);
        assert_eq!(htm.is_doomed(T0).unwrap(), AbortStatus::UNKNOWN);
        assert_eq!(htm.stats().unknown_aborts, 1);
    }

    #[test]
    fn transient_interrupt_dooms_with_retry() {
        let (mut htm, mut mem) = fresh(1);
        htm.xbegin(T0).unwrap();
        htm.interrupt(T0, &mut mem, InterruptKind::Transient);
        assert_eq!(htm.is_doomed(T0).unwrap().reason(), AbortReason::Retry);
        assert_eq!(htm.stats().retry_aborts, 1);
    }

    #[test]
    fn interrupt_outside_txn_is_harmless() {
        let (mut htm, mut mem) = fresh(1);
        htm.interrupt(T0, &mut mem, InterruptKind::ContextSwitch);
        assert_eq!(htm.stats().unknown_aborts, 0);
    }

    #[test]
    fn xabort_reports_code() {
        let (mut htm, mut mem) = fresh(1);
        htm.xbegin(T0).unwrap();
        htm.xabort(T0, &mut mem, 0x42);
        let status = htm.xend(T0, &mut mem).unwrap_err();
        assert_eq!(status.explicit_code(), 0x42);
        assert_eq!(htm.stats().explicit_aborts, 1);
    }

    #[test]
    fn nested_xbegin_rejected() {
        let (mut htm, _mem) = fresh(1);
        htm.xbegin(T0).unwrap();
        assert_eq!(htm.xbegin(T0), Err(XbeginError::Nested));
    }

    #[test]
    fn slot_exhaustion_rejected() {
        let cfg = HtmConfig {
            max_concurrent_txns: 1,
            ..HtmConfig::default()
        };
        let mut htm = HtmSystem::new(cfg, 2);
        htm.xbegin(T0).unwrap();
        assert_eq!(htm.xbegin(T1), Err(XbeginError::NoSlot));
    }

    #[test]
    fn abort_rollback_frees_slot() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        htm.write(T0, &mut mem, line_addr(5), 1);
        htm.write(T1, &mut mem, line_addr(5), 2);
        let status = htm.abort_rollback(T0);
        assert_eq!(status.reason(), AbortReason::Conflict);
        assert!(!htm.in_txn(T0));
        htm.xbegin(T0).unwrap(); // slot reusable
    }

    #[test]
    fn doom_keeps_first_status() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        htm.write(T0, &mut mem, line_addr(5), 1);
        htm.write(T1, &mut mem, line_addr(5), 2); // conflict doom
        htm.interrupt(T0, &mut mem, InterruptKind::ContextSwitch); // must not overwrite
        assert_eq!(htm.is_doomed(T0).unwrap().reason(), AbortReason::Conflict);
        assert_eq!(htm.stats().total_aborts(), 1);
    }

    #[test]
    fn oracle_records_conflict_details() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        htm.xbegin(T1).unwrap();
        htm.write(T0, &mut mem, line_addr(6), 1);
        htm.write(T1, &mut mem, line_addr(6), 2);
        let rec = htm.oracle().last().copied().unwrap();
        assert_eq!(rec.requester, T1);
        assert_eq!(rec.victim, T0);
        assert_eq!(rec.line, CacheLine(6));
        assert!(rec.requester_in_txn);
    }

    #[test]
    fn committed_txn_lines_stop_conflicting() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        htm.write(T0, &mut mem, line_addr(5), 1);
        htm.xend(T0, &mut mem).unwrap();
        htm.xbegin(T1).unwrap();
        htm.write(T1, &mut mem, line_addr(5), 2);
        assert!(htm.is_doomed(T1).is_none());
    }

    #[test]
    fn rmw_is_read_and_write_for_conflicts() {
        let (mut htm, mut mem) = fresh(2);
        mem.store(line_addr(9), 10);
        htm.xbegin(T0).unwrap();
        let old = htm.rmw(T0, &mut mem, line_addr(9), 5);
        assert_eq!(old, 10);
        // A non-tx READ by T1 hits T0's write set -> dooms T0.
        let _ = htm.read(T1, &mut mem, line_addr(9));
        assert!(htm.is_doomed(T0).is_some());
        assert!(htm.xend(T0, &mut mem).is_err());
        assert_eq!(mem.load(line_addr(9)), 10, "rmw rolled back");
    }

    #[test]
    fn nontx_rmw_applies_directly_and_dooms_readers() {
        let (mut htm, mut mem) = fresh(2);
        htm.xbegin(T0).unwrap();
        let _ = htm.read(T0, &mut mem, line_addr(9));
        let old = htm.rmw(T1, &mut mem, line_addr(9), 3);
        assert_eq!(old, 0);
        assert_eq!(mem.load(line_addr(9)), 3);
        assert!(htm.is_doomed(T0).is_some());
    }

    #[test]
    fn footprint_counts_distinct_lines() {
        let (mut htm, mut mem) = fresh(1);
        htm.xbegin(T0).unwrap();
        assert_eq!(htm.txn_footprint_lines(T0), 0);
        let _ = htm.read(T0, &mut mem, line_addr(1));
        htm.write(T0, &mut mem, line_addr(1).offset(8), 1); // same line
        htm.write(T0, &mut mem, line_addr(2), 1);
        assert_eq!(htm.txn_footprint_lines(T0), 2);
        assert_eq!(htm.txn_accesses(T0), 3);
    }

    #[test]
    #[should_panic(expected = "xend without a transaction")]
    fn xend_without_txn_panics() {
        let (mut htm, mut mem) = fresh(1);
        let _ = htm.xend(T0, &mut mem);
    }
}
