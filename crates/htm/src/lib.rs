//! # txrace-htm
//!
//! A software simulation of a best-effort hardware transactional memory
//! with the semantics TxRace depends on, modeled after Intel's Restricted
//! Transactional Memory (RTM) as shipped in Haswell:
//!
//! * **Cache-line granularity conflict detection** (64-byte lines): two
//!   variables that merely share a line conflict, which is exactly the
//!   false-sharing false-positive source the paper's slow path filters.
//! * **Requester-wins conflict resolution**: on a conflicting access the
//!   requester proceeds and every conflicting *other* transaction is
//!   doomed with `CONFLICT | RETRY`.
//! * **Strong isolation**: non-transactional accesses participate in
//!   conflict detection, so a plain store to a line every transaction has
//!   read (the `TxFail` flag trick) aborts them all.
//! * **Bounded capacity**: the write set is tracked in an L1-shaped
//!   structure (64 sets x 8 ways of 64-byte lines ~ 32 KiB); overflowing a
//!   set — or the bounded read set — dooms the transaction with `CAPACITY`.
//! * **Best-effort aborts**: simulated context switches doom a transaction
//!   with an empty status word (an *unknown* abort), and transient events
//!   with `RETRY` only.
//! * **Isolated speculative stores**: a transaction's stores are never
//!   observed by another thread and vanish on abort. By default stores go
//!   to memory eagerly under a per-transaction undo journal that is
//!   unwound the instant the transaction is doomed — before the
//!   conflicting access proceeds — so isolation is preserved with O(1)
//!   begin/commit and O(stores) rollback; a lazy write-buffer policy is
//!   kept as the equivalence oracle (see [`VersionPolicy`]).
//!
//! Like the real hardware, the system reports *that* a transaction aborted
//! and a status word — never which instruction, address, or other
//! transaction was involved. (A [`ConflictOracle`] records that information
//! for tests and invariant checking only; the TxRace engine never reads it.)
//!
//! ```
//! use txrace_htm::{HtmConfig, HtmSystem};
//! use txrace_sim::{Addr, Memory, ThreadId};
//!
//! let mut htm = HtmSystem::new(HtmConfig::default(), 2);
//! let mut mem = Memory::new();
//! let (t0, t1) = (ThreadId(0), ThreadId(1));
//!
//! htm.xbegin(t0).unwrap();
//! htm.write(t0, &mut mem, Addr(0x1000), 7); // journaled, in place
//!
//! // t1's non-transactional read of the same line dooms t0 (requester
//! // wins + strong isolation) and unwinds t0's journal first.
//! let _ = htm.read(t1, &mut mem, Addr(0x1008));
//! assert!(htm.is_doomed(t0).is_some());
//! assert!(htm.xend(t0, &mut mem).is_err());
//! assert_eq!(mem.load(Addr(0x1000)), 0); // rolled back
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod status;
mod system;
mod txn;

pub use status::{AbortReason, AbortStatus};
pub use system::{
    ConflictOracle, ConflictRecord, HtmConfig, HtmStats, HtmSystem, VersionPolicy, XbeginError,
};
pub use txn::TxnState;
