//! Abort status words, mirroring the Intel RTM `EAX` bit layout.

use std::fmt;

/// The status word an aborted transaction reports, with the bit layout of
/// Intel RTM's `EAX` abort status.
///
/// An all-zero word is an *unknown* abort — the hardware gives no reason
/// at all (the paper attributes these mostly to OS context switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AbortStatus(u32);

impl AbortStatus {
    /// Bit 0: aborted by an explicit `xabort` (imm8 in bits 31:24).
    pub const EXPLICIT: AbortStatus = AbortStatus(1 << 0);
    /// Bit 1: the transaction may succeed on retry.
    pub const RETRY: AbortStatus = AbortStatus(1 << 1);
    /// Bit 2: a conflicting access by another logical processor.
    pub const CONFLICT: AbortStatus = AbortStatus(1 << 2);
    /// Bit 3: an internal buffer overflowed.
    pub const CAPACITY: AbortStatus = AbortStatus(1 << 3);
    /// Bit 4: a debug breakpoint was hit.
    pub const DEBUG: AbortStatus = AbortStatus(1 << 4);
    /// Bit 5: the abort occurred inside a nested transaction.
    pub const NESTED: AbortStatus = AbortStatus(1 << 5);

    /// The empty status word: an unknown abort.
    pub const UNKNOWN: AbortStatus = AbortStatus(0);

    /// Combines status bits with an explicit-abort code in bits 31:24.
    pub fn explicit_with_code(code: u8) -> AbortStatus {
        AbortStatus(Self::EXPLICIT.0 | (u32::from(code) << 24))
    }

    /// Raw status word.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// True if every bit of `flag` is set. Note `contains(UNKNOWN)` is
    /// vacuously true (the unknown status is the *absence* of bits); use
    /// [`AbortStatus::reason`] to classify a status word.
    pub fn contains(self, flag: AbortStatus) -> bool {
        self.0 & flag.0 & 0x3f == flag.0 & 0x3f
    }

    /// The `xabort` code, meaningful only when [`Self::EXPLICIT`] is set.
    pub fn explicit_code(self) -> u8 {
        (self.0 >> 24) as u8
    }

    /// Classifies this status the way the TxRace runtime does (paper §4.2):
    /// conflict dominates (conflict + retry is treated as conflict),
    /// then capacity, then pure retry, then explicit; an empty word is
    /// unknown.
    pub fn reason(self) -> AbortReason {
        if self.contains(Self::CONFLICT) {
            AbortReason::Conflict
        } else if self.contains(Self::CAPACITY) {
            AbortReason::Capacity
        } else if self.contains(Self::RETRY) {
            AbortReason::Retry
        } else if self.contains(Self::EXPLICIT) {
            AbortReason::Explicit
        } else {
            AbortReason::Unknown
        }
    }
}

impl std::ops::BitOr for AbortStatus {
    type Output = AbortStatus;
    fn bitor(self, rhs: AbortStatus) -> AbortStatus {
        AbortStatus(self.0 | rhs.0)
    }
}

impl fmt::Display for AbortStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 & 0x3f == 0 {
            return write!(f, "UNKNOWN");
        }
        let mut first = true;
        let mut emit = |name: &str, f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, "|")?;
            }
            first = false;
            write!(f, "{name}")
        };
        if self.contains(Self::EXPLICIT) {
            emit("EXPLICIT", f)?;
        }
        if self.contains(Self::RETRY) {
            emit("RETRY", f)?;
        }
        if self.contains(Self::CONFLICT) {
            emit("CONFLICT", f)?;
        }
        if self.contains(Self::CAPACITY) {
            emit("CAPACITY", f)?;
        }
        if self.contains(Self::DEBUG) {
            emit("DEBUG", f)?;
        }
        if self.contains(Self::NESTED) {
            emit("NESTED", f)?;
        }
        Ok(())
    }
}

/// The abort classification the TxRace runtime acts on (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Data conflict: a potential data race; trigger the global slow path.
    Conflict,
    /// Buffer overflow: only this thread falls back to the slow path.
    Capacity,
    /// Transient; retry the transaction (bounded times).
    Retry,
    /// Explicit `xabort`.
    Explicit,
    /// No reason reported; treated like capacity by TxRace.
    Unknown,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::Conflict => "conflict",
            AbortReason::Capacity => "capacity",
            AbortReason::Retry => "retry",
            AbortReason::Explicit => "explicit",
            AbortReason::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_with_retry_classifies_as_conflict() {
        let s = AbortStatus::CONFLICT | AbortStatus::RETRY;
        assert_eq!(s.reason(), AbortReason::Conflict);
        assert!(s.contains(AbortStatus::RETRY));
    }

    #[test]
    fn empty_word_is_unknown() {
        assert_eq!(AbortStatus::UNKNOWN.reason(), AbortReason::Unknown);
        assert_eq!(AbortStatus::UNKNOWN.to_string(), "UNKNOWN");
    }

    #[test]
    fn capacity_classification() {
        assert_eq!(AbortStatus::CAPACITY.reason(), AbortReason::Capacity);
        assert_eq!(
            (AbortStatus::CAPACITY | AbortStatus::RETRY).reason(),
            AbortReason::Capacity
        );
    }

    #[test]
    fn pure_retry_classification() {
        assert_eq!(AbortStatus::RETRY.reason(), AbortReason::Retry);
    }

    #[test]
    fn explicit_code_roundtrip() {
        let s = AbortStatus::explicit_with_code(0xAB);
        assert!(s.contains(AbortStatus::EXPLICIT));
        assert_eq!(s.explicit_code(), 0xAB);
        assert_eq!(s.reason(), AbortReason::Explicit);
    }

    #[test]
    fn display_lists_bits() {
        let s = AbortStatus::CONFLICT | AbortStatus::RETRY;
        assert_eq!(s.to_string(), "RETRY|CONFLICT");
    }

    #[test]
    fn contains_ignores_code_bits() {
        let s = AbortStatus::explicit_with_code(0xFF);
        assert!(!s.contains(AbortStatus::CONFLICT));
    }
}
