//! Property test: FastTrack (epoch-optimized) and the full-vector-clock
//! reference detector flag exactly the same set of *racy variables* on any
//! trace (DESIGN.md invariant 6), and FastTrack never reports a race the
//! reference considers ordered (completeness of the epoch optimization).

use std::collections::BTreeSet;

use proptest::prelude::*;
use txrace_hb::{FastTrack, ShadowMode, VectorClockDetector};
use txrace_sim::{Addr, CondId, LockId, SiteId, ThreadId};

#[derive(Debug, Clone)]
enum Ev {
    Read(u32, u64),
    Write(u32, u64),
    Acq(u32, u32),
    Rel(u32, u32),
    Signal(u32, u32),
    Wait(u32, u32),
}

fn ev_strategy(threads: u32, addrs: u64, locks: u32, conds: u32) -> impl Strategy<Value = Ev> {
    let t = 0..threads;
    prop_oneof![
        4 => (t.clone(), 0..addrs).prop_map(|(t, a)| Ev::Read(t, a)),
        4 => (t.clone(), 0..addrs).prop_map(|(t, a)| Ev::Write(t, a)),
        2 => (t.clone(), 0..locks).prop_map(|(t, l)| Ev::Acq(t, l)),
        2 => (t.clone(), 0..locks).prop_map(|(t, l)| Ev::Rel(t, l)),
        1 => (t.clone(), 0..conds).prop_map(|(t, c)| Ev::Signal(t, c)),
        1 => (t, 0..conds).prop_map(|(t, c)| Ev::Wait(t, c)),
    ]
}

/// Keeps lock usage well-formed: acquire only free locks, release only held
/// ones, and allow a `Wait` only after a pending `Signal` (like the real
/// interpreter would).
fn sanitize(events: Vec<Ev>, threads: usize, locks: usize, conds: usize) -> Vec<Ev> {
    let mut holder = vec![None::<u32>; locks];
    let mut sem = vec![0u32; conds];
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        match e {
            Ev::Acq(t, l) => {
                if holder[l as usize].is_none() {
                    holder[l as usize] = Some(t);
                    out.push(Ev::Acq(t, l));
                }
            }
            Ev::Rel(t, l) => {
                if holder[l as usize] == Some(t) {
                    holder[l as usize] = None;
                    out.push(Ev::Rel(t, l));
                }
            }
            Ev::Signal(t, c) => {
                sem[c as usize] += 1;
                out.push(Ev::Signal(t, c));
            }
            Ev::Wait(t, c) => {
                if sem[c as usize] > 0 {
                    sem[c as usize] -= 1;
                    out.push(Ev::Wait(t, c));
                }
            }
            other => out.push(other),
        }
    }
    let _ = threads;
    out
}

fn site_of(i: usize) -> SiteId {
    SiteId(i as u32 + 1)
}

fn addr_of(a: u64) -> Addr {
    Addr(0x1000 + a * 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn fasttrack_and_reference_agree_on_racy_variables(
        raw in proptest::collection::vec(ev_strategy(4, 6, 3, 2), 1..200)
    ) {
        let threads = 4;
        let events = sanitize(raw, threads, 3, 2);
        let mut ft = FastTrack::new(threads, ShadowMode::Exact);
        let mut vc = VectorClockDetector::new(threads);
        for (i, e) in events.iter().enumerate() {
            let s = site_of(i);
            match *e {
                Ev::Read(t, a) => {
                    ft.read(ThreadId(t), s, addr_of(a));
                    vc.read(ThreadId(t), s, addr_of(a));
                }
                Ev::Write(t, a) => {
                    ft.write(ThreadId(t), s, addr_of(a));
                    vc.write(ThreadId(t), s, addr_of(a));
                }
                Ev::Acq(t, l) => {
                    ft.lock_acquire(ThreadId(t), LockId(l));
                    vc.lock_acquire(ThreadId(t), LockId(l));
                }
                Ev::Rel(t, l) => {
                    ft.lock_release(ThreadId(t), LockId(l));
                    vc.lock_release(ThreadId(t), LockId(l));
                }
                Ev::Signal(t, c) => {
                    ft.signal(ThreadId(t), CondId(c));
                    vc.signal(ThreadId(t), CondId(c));
                }
                Ev::Wait(t, c) => {
                    ft.wait(ThreadId(t), CondId(c));
                    vc.wait(ThreadId(t), CondId(c));
                }
            }
        }
        let ft_addrs: BTreeSet<Addr> = ft.races().reports().iter().map(|r| r.addr).collect();
        let vc_addrs: BTreeSet<Addr> = vc.races().reports().iter().map(|r| r.addr).collect();
        // The FastTrack paper's equivalence theorem is at the granularity
        // of racy *variables*: both algorithms must flag exactly the same
        // set. (Which static pair gets blamed first can differ when
        // same-epoch writers alternate, so pair sets are not compared.)
        prop_assert_eq!(&ft_addrs, &vc_addrs,
            "FastTrack racy vars {:?} != reference {:?}", ft_addrs, vc_addrs);
    }
}
