//! Property tests relating the two detector families.
//!
//! Eraser's exclusive-phase blessing makes most cross-detector claims
//! false in general (a thread that took a lock during its *first* access
//! keeps that lock as a candidate through later unlocked writes, hiding
//! them). Two relationships do hold and are pinned here:
//!
//! 1. On **lock-free** traces, every FastTrack race whose later access is
//!    a write (the variable was demonstrably written while shared) is
//!    also a lockset violation — candidates are always empty, so
//!    Shared-Modified reports unconditionally.
//! 2. Fully lock-disciplined traces are never reported by either
//!    detector.

use std::collections::BTreeSet;

use proptest::prelude::*;
use txrace_hb::{FastTrack, Lockset, ShadowMode};
use txrace_sim::{Addr, LockId, SiteId, ThreadId};

#[derive(Debug, Clone)]
enum Ev {
    Read(u32, u64),
    Write(u32, u64),
    Locked(u32, u32, u64, bool),
}

fn ev_strategy(threads: u32, addrs: u64, locks: u32) -> impl Strategy<Value = Ev> {
    let t = 0..threads;
    if locks == 0 {
        prop_oneof![
            (t.clone(), 0..addrs).prop_map(|(t, a)| Ev::Read(t, a)),
            (t, 0..addrs).prop_map(|(t, a)| Ev::Write(t, a)),
        ]
        .boxed()
    } else {
        prop_oneof![
            (t.clone(), 0..addrs).prop_map(|(t, a)| Ev::Read(t, a)),
            (t.clone(), 0..addrs).prop_map(|(t, a)| Ev::Write(t, a)),
            (t, 0..locks, 0..addrs, any::<bool>()).prop_map(|(t, l, a, w)| Ev::Locked(t, l, a, w)),
        ]
        .boxed()
    }
}

fn addr_of(a: u64) -> Addr {
    Addr(0x4000 + a * 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn fasttrack_racy_vars_violate_lockset_discipline_lockfree(
        evs in proptest::collection::vec(ev_strategy(4, 5, 0), 1..150)
    ) {
        let mut ft = FastTrack::new(4, ShadowMode::Exact);
        let mut ls = Lockset::new(4);
        for (i, e) in evs.iter().enumerate() {
            let s = SiteId(i as u32 + 1);
            match *e {
                Ev::Read(t, a) => {
                    ft.read(ThreadId(t), s, addr_of(a));
                    ls.read(ThreadId(t), s, addr_of(a));
                }
                Ev::Write(t, a) => {
                    ft.write(ThreadId(t), s, addr_of(a));
                    ls.write(ThreadId(t), s, addr_of(a));
                }
                Ev::Locked(t, l, a, w) => {
                    ft.lock_acquire(ThreadId(t), LockId(l));
                    ls.lock_acquire(ThreadId(t), LockId(l));
                    if w {
                        ft.write(ThreadId(t), s, addr_of(a));
                        ls.write(ThreadId(t), s, addr_of(a));
                    } else {
                        ft.read(ThreadId(t), s, addr_of(a));
                        ls.read(ThreadId(t), s, addr_of(a));
                    }
                    ft.lock_release(ThreadId(t), LockId(l));
                    ls.lock_release(ThreadId(t), LockId(l));
                }
            }
        }
        // Only races whose current (later) access is a write: the write
        // happened while the variable was demonstrably shared, so Eraser's
        // state machine is in Shared-Modified with an empty candidate set
        // (a common lock would have ordered the pair and prevented the HB
        // race in the first place).
        let hb_write_addrs: BTreeSet<Addr> = ft
            .races()
            .reports()
            .iter()
            .filter(|r| r.current.kind == txrace_hb::AccessKind::Write)
            .map(|r| r.addr)
            .collect();
        let ls_addrs: BTreeSet<Addr> = ls.reports().iter().map(|r| r.addr).collect();
        prop_assert!(
            hb_write_addrs.is_subset(&ls_addrs),
            "write-while-shared HB races not flagged by lockset: {:?} vs {:?}",
            hb_write_addrs,
            ls_addrs
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Fully lock-disciplined accesses: neither detector reports.
    #[test]
    fn disciplined_traces_are_clean_for_both(
        evs in proptest::collection::vec(
            (0u32..4, 0u32..2, 0u64..5, proptest::bool::ANY), 1..100)
    ) {
        let mut ft = FastTrack::new(4, ShadowMode::Exact);
        let mut ls = Lockset::new(4);
        for (i, &(t, l, a, w)) in evs.iter().enumerate() {
            // Every access to addr `a` goes under lock `a % 2` — a
            // consistent per-variable discipline.
            let lock = LockId(a as u32 % 2);
            let _ = l;
            let s = SiteId(i as u32 + 1);
            ft.lock_acquire(ThreadId(t), lock);
            ls.lock_acquire(ThreadId(t), lock);
            if w {
                ft.write(ThreadId(t), s, addr_of(a));
                ls.write(ThreadId(t), s, addr_of(a));
            } else {
                ft.read(ThreadId(t), s, addr_of(a));
                ls.read(ThreadId(t), s, addr_of(a));
            }
            ft.lock_release(ThreadId(t), lock);
            ls.lock_release(ThreadId(t), lock);
        }
        prop_assert!(ft.races().is_empty(), "HB: {:?}", ft.races().reports());
        prop_assert!(ls.reports().is_empty(), "lockset: {:?}", ls.reports());
    }
}
