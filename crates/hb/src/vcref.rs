//! A reference happens-before detector using full vector clocks for every
//! variable (the DJIT+ design FastTrack was proven equivalent to).
//!
//! It exists to property-check [`crate::FastTrack`]: both detectors must
//! flag the same set of *racy variables* on any trace (FastTrack's epoch
//! compression can merge which static pair is blamed first, but never
//! which variables race).

use txrace_sim::{Addr, AddrMap, BarrierId, ChanId, CondId, LockId, SiteId, ThreadId};

use crate::clock::VectorClock;
use crate::report::{AccessInfo, AccessKind, RaceReport, RaceSet};

/// One thread's slice of a variable's access history: the clock and site
/// of that thread's last write and last read (clock 0 = none). Packing
/// all four into 16 bytes keeps a whole variable's history on one or two
/// cache lines instead of four separate arrays.
#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    w: u32,
    r: u32,
    w_site: SiteId,
    r_site: SiteId,
}

/// The full-vector-clock (DJIT+-style) reference detector. Same API shape
/// as [`crate::FastTrack`].
///
/// Shadow state is a flat table keyed by dense first-touch ids: variable
/// `v`'s per-thread `Cell`s live at `[v*n, (v+1)*n)`. An untouched
/// variable reads as all-zero clocks — exactly what the old
/// lazily-inserted per-variable record held, so every race decision and
/// report is unchanged.
#[derive(Debug)]
pub struct VectorClockDetector {
    n: usize,
    clocks: Vec<VectorClock>,
    locks: Vec<VectorClock>,
    conds: Vec<VectorClock>,
    chans: Vec<VectorClock>,
    barriers: Vec<VectorClock>,
    /// `Addr -> dense variable id`, assigned on first access.
    shadow_ids: AddrMap,
    cells: Vec<Cell>,
    races: RaceSet,
}

impl VectorClockDetector {
    /// Creates a detector for `threads` threads.
    pub fn new(threads: usize) -> Self {
        VectorClockDetector {
            n: threads,
            clocks: (0..threads)
                .map(|t| VectorClock::initial(ThreadId(t as u32), threads))
                .collect(),
            locks: Vec::new(),
            conds: Vec::new(),
            chans: Vec::new(),
            barriers: Vec::new(),
            shadow_ids: AddrMap::new(),
            cells: Vec::new(),
            races: RaceSet::new(),
        }
    }

    /// The base offset of `addr`'s per-thread cells, growing the flat
    /// table by one variable (n zeroed cells) on first touch.
    #[inline]
    fn shadow_base(&mut self, addr: Addr) -> usize {
        let i = self.shadow_ids.resolve(addr) as usize;
        let base = i * self.n;
        if base == self.cells.len() {
            self.cells.resize(base + self.n, Cell::default());
        }
        base
    }

    /// Races found so far.
    pub fn races(&self) -> &RaceSet {
        &self.races
    }

    fn sync_vc(table: &mut Vec<VectorClock>, idx: usize, n: usize) -> &mut VectorClock {
        if table.len() <= idx {
            table.resize(idx + 1, VectorClock::zero(n));
        }
        &mut table[idx]
    }

    /// Checks a read.
    pub fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        let n = self.n;
        let base = self.shadow_base(addr);
        let ct = self.clocks[t.index()].as_slice();
        let cells = &self.cells[base..base + n];
        for (u, (cell, &cu)) in cells.iter().zip(ct).enumerate() {
            if u == t.index() || cell.w == 0 {
                continue;
            }
            if cell.w > cu {
                self.races.record(RaceReport {
                    addr,
                    prior: AccessInfo {
                        site: cell.w_site,
                        thread: ThreadId(u as u32),
                        kind: AccessKind::Write,
                    },
                    current: AccessInfo {
                        site,
                        thread: t,
                        kind: AccessKind::Read,
                    },
                });
            }
        }
        // Keep the *first* site of each epoch (FastTrack's same-epoch
        // shortcut has the same blame behaviour).
        let me = ct[t.index()];
        let mine = &mut self.cells[base + t.index()];
        if mine.r != me {
            mine.r_site = site;
        }
        mine.r = me;
    }

    /// Checks a write.
    pub fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        let n = self.n;
        let base = self.shadow_base(addr);
        let ct = self.clocks[t.index()].as_slice();
        let cells = &self.cells[base..base + n];
        for (u, (cell, &cu)) in cells.iter().zip(ct).enumerate() {
            if u == t.index() {
                continue;
            }
            if cell.w > 0 && cell.w > cu {
                self.races.record(RaceReport {
                    addr,
                    prior: AccessInfo {
                        site: cell.w_site,
                        thread: ThreadId(u as u32),
                        kind: AccessKind::Write,
                    },
                    current: AccessInfo {
                        site,
                        thread: t,
                        kind: AccessKind::Write,
                    },
                });
            }
            if cell.r > 0 && cell.r > cu {
                self.races.record(RaceReport {
                    addr,
                    prior: AccessInfo {
                        site: cell.r_site,
                        thread: ThreadId(u as u32),
                        kind: AccessKind::Read,
                    },
                    current: AccessInfo {
                        site,
                        thread: t,
                        kind: AccessKind::Write,
                    },
                });
            }
        }
        // First-in-epoch blame, mirroring FastTrack's same-epoch shortcut.
        let me = ct[t.index()];
        let mine = &mut self.cells[base + t.index()];
        if mine.w != me {
            mine.w_site = site;
        }
        mine.w = me;
    }

    /// Tracks a mutex acquire.
    pub fn lock_acquire(&mut self, t: ThreadId, l: LockId) {
        let vc = Self::sync_vc(&mut self.locks, l.index(), self.n);
        self.clocks[t.index()].join(vc);
    }

    /// Tracks a mutex release.
    pub fn lock_release(&mut self, t: ThreadId, l: LockId) {
        let ct = self.clocks[t.index()].clone();
        Self::sync_vc(&mut self.locks, l.index(), self.n).join(&ct);
        self.clocks[t.index()].inc(t);
    }

    /// Tracks a semaphore post.
    pub fn signal(&mut self, t: ThreadId, c: CondId) {
        let ct = self.clocks[t.index()].clone();
        Self::sync_vc(&mut self.conds, c.index(), self.n).join(&ct);
        self.clocks[t.index()].inc(t);
    }

    /// Tracks a satisfied semaphore wait.
    pub fn wait(&mut self, t: ThreadId, c: CondId) {
        let vc = Self::sync_vc(&mut self.conds, c.index(), self.n);
        self.clocks[t.index()].join(vc);
    }

    /// Tracks a channel send (release semantics, like
    /// [`signal`](VectorClockDetector::signal); the send→recv edge is
    /// unidirectional — no backpressure edge).
    pub fn chan_send(&mut self, t: ThreadId, ch: ChanId) {
        let ct = self.clocks[t.index()].clone();
        Self::sync_vc(&mut self.chans, ch.index(), self.n).join(&ct);
        self.clocks[t.index()].inc(t);
    }

    /// Tracks a channel receive (acquire semantics).
    pub fn chan_recv(&mut self, t: ThreadId, ch: ChanId) {
        let vc = Self::sync_vc(&mut self.chans, ch.index(), self.n);
        self.clocks[t.index()].join(vc);
    }

    /// Tracks a spawn.
    pub fn spawn(&mut self, parent: ThreadId, child: ThreadId) {
        let cp = self.clocks[parent.index()].clone();
        self.clocks[child.index()].join(&cp);
        self.clocks[parent.index()].inc(parent);
    }

    /// Tracks a join.
    pub fn join(&mut self, parent: ThreadId, child: ThreadId) {
        let cc = self.clocks[child.index()].clone();
        self.clocks[parent.index()].join(&cc);
    }

    /// Tracks a barrier release.
    pub fn barrier(&mut self, b: BarrierId, participants: &[ThreadId]) {
        self.barrier_join(b, participants.len(), |i| participants[i]);
    }

    /// [`VectorClockDetector::barrier`] fed directly from a recorded
    /// arrival list, avoiding the intermediate thread vector on replay.
    pub fn barrier_arrivals(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        self.barrier_join(b, arrivals.len(), |i| arrivals[i].0);
    }

    fn barrier_join<F: Fn(usize) -> ThreadId>(&mut self, b: BarrierId, count: usize, tid: F) {
        let n = self.n;
        if self.barriers.len() <= b.index() {
            self.barriers.resize(b.index() + 1, VectorClock::zero(n));
        }
        let mut joined = self.barriers[b.index()].clone();
        for i in 0..count {
            joined.join(&self.clocks[tid(i).index()]);
        }
        for i in 0..count {
            let t = tid(i);
            self.clocks[t.index()].join(&joined);
            self.clocks[t.index()].inc(t);
        }
        self.barriers[b.index()] = joined;
    }
}

/// The reference detector as a pure trace consumer, mirroring the
/// [`FastTrack`](crate::FastTrack) mapping (atomic RMWs unchecked) so
/// the two implementations stay comparable event-for-event under both
/// live and replayed driving.
impl txrace_sim::TraceConsumer for VectorClockDetector {
    fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        VectorClockDetector::read(self, t, site, addr);
    }

    fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        VectorClockDetector::write(self, t, site, addr);
    }

    fn acquire(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.lock_acquire(t, l);
    }

    fn release(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.lock_release(t, l);
    }

    fn signal(&mut self, t: ThreadId, _site: SiteId, c: CondId) {
        VectorClockDetector::signal(self, t, c);
    }

    fn wait(&mut self, t: ThreadId, _site: SiteId, c: CondId) {
        VectorClockDetector::wait(self, t, c);
    }

    fn spawn(&mut self, t: ThreadId, _site: SiteId, child: ThreadId) {
        VectorClockDetector::spawn(self, t, child);
    }

    fn join(&mut self, t: ThreadId, _site: SiteId, child: ThreadId) {
        VectorClockDetector::join(self, t, child);
    }

    fn barrier_release(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        self.barrier_arrivals(b, arrivals);
    }

    fn chan_send(&mut self, t: ThreadId, _site: SiteId, ch: ChanId) {
        VectorClockDetector::chan_send(self, t, ch);
    }

    fn chan_recv(&mut self, t: ThreadId, _site: SiteId, ch: ChanId) {
        VectorClockDetector::chan_recv(self, t, ch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const X: Addr = Addr(0x800);

    #[test]
    fn detects_plain_write_write_race() {
        let mut d = VectorClockDetector::new(2);
        d.write(T0, SiteId(1), X);
        d.write(T1, SiteId(2), X);
        assert_eq!(d.races().distinct_count(), 1);
    }

    #[test]
    fn lock_discipline_is_race_free() {
        let mut d = VectorClockDetector::new(2);
        d.lock_acquire(T0, LockId(0));
        d.write(T0, SiteId(1), X);
        d.lock_release(T0, LockId(0));
        d.lock_acquire(T1, LockId(0));
        d.read(T1, SiteId(2), X);
        d.lock_release(T1, LockId(0));
        assert!(d.races().is_empty());
    }

    #[test]
    fn chan_send_recv_orders() {
        let mut d = VectorClockDetector::new(2);
        d.write(T0, SiteId(1), X);
        d.chan_send(T0, ChanId(0));
        d.chan_recv(T1, ChanId(0));
        d.write(T1, SiteId(2), X);
        assert!(d.races().is_empty());
    }

    #[test]
    fn remembers_older_writes_per_thread() {
        // Unlike FastTrack's single write epoch, DJIT+ keeps per-thread
        // writes; a third access ordered after only one of two racy writes
        // still races with the other.
        let mut d = VectorClockDetector::new(3);
        d.write(T0, SiteId(1), X);
        d.write(T1, SiteId(2), X); // races with site 1
        d.signal(T1, CondId(0));
        d.wait(ThreadId(2), CondId(0));
        d.read(ThreadId(2), SiteId(3), X); // ordered after site 2, races with site 1
        assert_eq!(d.races().distinct_count(), 2);
        assert!(d.races().contains(SiteId(1), SiteId(3)));
    }
}
