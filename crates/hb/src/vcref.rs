//! A reference happens-before detector using full vector clocks for every
//! variable (the DJIT+ design FastTrack was proven equivalent to).
//!
//! It exists to property-check [`crate::FastTrack`]: both detectors must
//! flag the same set of *racy variables* on any trace (FastTrack's epoch
//! compression can merge which static pair is blamed first, but never
//! which variables race).

use txrace_sim::{Addr, BarrierId, CondId, LockId, SiteId, ThreadId};

use crate::clock::VectorClock;
use crate::report::{AccessInfo, AccessKind, RaceReport, RaceSet};

#[derive(Debug, Clone)]
struct VarVc {
    /// Per-thread clock of that thread's last write (0 = none).
    w: Vec<u32>,
    w_sites: Vec<SiteId>,
    /// Per-thread clock of that thread's last read.
    r: Vec<u32>,
    r_sites: Vec<SiteId>,
}

impl VarVc {
    fn fresh(n: usize) -> Self {
        VarVc {
            w: vec![0; n],
            w_sites: vec![SiteId(0); n],
            r: vec![0; n],
            r_sites: vec![SiteId(0); n],
        }
    }
}

/// The full-vector-clock (DJIT+-style) reference detector. Same API shape
/// as [`crate::FastTrack`].
#[derive(Debug)]
pub struct VectorClockDetector {
    n: usize,
    clocks: Vec<VectorClock>,
    locks: Vec<VectorClock>,
    conds: Vec<VectorClock>,
    barriers: Vec<VectorClock>,
    /// Per-variable vector clocks indexed directly by `Addr.0`; an
    /// untouched slot equals `VarVc::fresh` (all-zero clocks), matching
    /// the old map's lazy insertion.
    shadow: Vec<VarVc>,
    races: RaceSet,
}

impl VectorClockDetector {
    /// Creates a detector for `threads` threads.
    pub fn new(threads: usize) -> Self {
        VectorClockDetector {
            n: threads,
            clocks: (0..threads)
                .map(|t| VectorClock::initial(ThreadId(t as u32), threads))
                .collect(),
            locks: Vec::new(),
            conds: Vec::new(),
            barriers: Vec::new(),
            shadow: Vec::new(),
            races: RaceSet::new(),
        }
    }

    #[inline]
    fn shadow_mut(shadow: &mut Vec<VarVc>, addr: Addr, n: usize) -> &mut VarVc {
        let i = addr.0 as usize;
        if i >= shadow.len() {
            shadow.resize_with(i + 1, || VarVc::fresh(n));
        }
        &mut shadow[i]
    }

    /// Races found so far.
    pub fn races(&self) -> &RaceSet {
        &self.races
    }

    fn sync_vc(table: &mut Vec<VectorClock>, idx: usize, n: usize) -> &mut VectorClock {
        if table.len() <= idx {
            table.resize(idx + 1, VectorClock::zero(n));
        }
        &mut table[idx]
    }

    /// Checks a read.
    pub fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        let n = self.n;
        let ct = &self.clocks[t.index()];
        let state = Self::shadow_mut(&mut self.shadow, addr, n);
        for u in 0..n {
            if u == t.index() || state.w[u] == 0 {
                continue;
            }
            if state.w[u] > ct.get(ThreadId(u as u32)) {
                self.races.record(RaceReport {
                    addr,
                    prior: AccessInfo {
                        site: state.w_sites[u],
                        thread: ThreadId(u as u32),
                        kind: AccessKind::Write,
                    },
                    current: AccessInfo {
                        site,
                        thread: t,
                        kind: AccessKind::Read,
                    },
                });
            }
        }
        // Keep the *first* site of each epoch (FastTrack's same-epoch
        // shortcut has the same blame behaviour).
        if state.r[t.index()] != ct.get(t) {
            state.r_sites[t.index()] = site;
        }
        state.r[t.index()] = ct.get(t);
    }

    /// Checks a write.
    pub fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        let n = self.n;
        let ct = &self.clocks[t.index()];
        let state = Self::shadow_mut(&mut self.shadow, addr, n);
        for u in 0..n {
            if u == t.index() {
                continue;
            }
            let cu = ct.get(ThreadId(u as u32));
            if state.w[u] > 0 && state.w[u] > cu {
                self.races.record(RaceReport {
                    addr,
                    prior: AccessInfo {
                        site: state.w_sites[u],
                        thread: ThreadId(u as u32),
                        kind: AccessKind::Write,
                    },
                    current: AccessInfo {
                        site,
                        thread: t,
                        kind: AccessKind::Write,
                    },
                });
            }
            if state.r[u] > 0 && state.r[u] > cu {
                self.races.record(RaceReport {
                    addr,
                    prior: AccessInfo {
                        site: state.r_sites[u],
                        thread: ThreadId(u as u32),
                        kind: AccessKind::Read,
                    },
                    current: AccessInfo {
                        site,
                        thread: t,
                        kind: AccessKind::Write,
                    },
                });
            }
        }
        // First-in-epoch blame, mirroring FastTrack's same-epoch shortcut.
        if state.w[t.index()] != ct.get(t) {
            state.w_sites[t.index()] = site;
        }
        state.w[t.index()] = ct.get(t);
    }

    /// Tracks a mutex acquire.
    pub fn lock_acquire(&mut self, t: ThreadId, l: LockId) {
        let vc = Self::sync_vc(&mut self.locks, l.index(), self.n);
        self.clocks[t.index()].join(vc);
    }

    /// Tracks a mutex release.
    pub fn lock_release(&mut self, t: ThreadId, l: LockId) {
        let ct = self.clocks[t.index()].clone();
        Self::sync_vc(&mut self.locks, l.index(), self.n).join(&ct);
        self.clocks[t.index()].inc(t);
    }

    /// Tracks a semaphore post.
    pub fn signal(&mut self, t: ThreadId, c: CondId) {
        let ct = self.clocks[t.index()].clone();
        Self::sync_vc(&mut self.conds, c.index(), self.n).join(&ct);
        self.clocks[t.index()].inc(t);
    }

    /// Tracks a satisfied semaphore wait.
    pub fn wait(&mut self, t: ThreadId, c: CondId) {
        let vc = Self::sync_vc(&mut self.conds, c.index(), self.n);
        self.clocks[t.index()].join(vc);
    }

    /// Tracks a spawn.
    pub fn spawn(&mut self, parent: ThreadId, child: ThreadId) {
        let cp = self.clocks[parent.index()].clone();
        self.clocks[child.index()].join(&cp);
        self.clocks[parent.index()].inc(parent);
    }

    /// Tracks a join.
    pub fn join(&mut self, parent: ThreadId, child: ThreadId) {
        let cc = self.clocks[child.index()].clone();
        self.clocks[parent.index()].join(&cc);
    }

    /// Tracks a barrier release.
    pub fn barrier(&mut self, b: BarrierId, participants: &[ThreadId]) {
        let n = self.n;
        if self.barriers.len() <= b.index() {
            self.barriers.resize(b.index() + 1, VectorClock::zero(n));
        }
        let mut joined = self.barriers[b.index()].clone();
        for &t in participants {
            joined.join(&self.clocks[t.index()]);
        }
        for &t in participants {
            self.clocks[t.index()].join(&joined);
            self.clocks[t.index()].inc(t);
        }
        self.barriers[b.index()] = joined;
    }
}

/// The reference detector as a pure trace consumer, mirroring the
/// [`FastTrack`](crate::FastTrack) mapping (atomic RMWs unchecked) so
/// the two implementations stay comparable event-for-event under both
/// live and replayed driving.
impl txrace_sim::TraceConsumer for VectorClockDetector {
    fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        VectorClockDetector::read(self, t, site, addr);
    }

    fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        VectorClockDetector::write(self, t, site, addr);
    }

    fn acquire(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.lock_acquire(t, l);
    }

    fn release(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.lock_release(t, l);
    }

    fn signal(&mut self, t: ThreadId, _site: SiteId, c: CondId) {
        VectorClockDetector::signal(self, t, c);
    }

    fn wait(&mut self, t: ThreadId, _site: SiteId, c: CondId) {
        VectorClockDetector::wait(self, t, c);
    }

    fn spawn(&mut self, t: ThreadId, _site: SiteId, child: ThreadId) {
        VectorClockDetector::spawn(self, t, child);
    }

    fn join(&mut self, t: ThreadId, _site: SiteId, child: ThreadId) {
        VectorClockDetector::join(self, t, child);
    }

    fn barrier_release(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        let threads: Vec<ThreadId> = arrivals.iter().map(|&(t, _)| t).collect();
        self.barrier(b, &threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const X: Addr = Addr(0x800);

    #[test]
    fn detects_plain_write_write_race() {
        let mut d = VectorClockDetector::new(2);
        d.write(T0, SiteId(1), X);
        d.write(T1, SiteId(2), X);
        assert_eq!(d.races().distinct_count(), 1);
    }

    #[test]
    fn lock_discipline_is_race_free() {
        let mut d = VectorClockDetector::new(2);
        d.lock_acquire(T0, LockId(0));
        d.write(T0, SiteId(1), X);
        d.lock_release(T0, LockId(0));
        d.lock_acquire(T1, LockId(0));
        d.read(T1, SiteId(2), X);
        d.lock_release(T1, LockId(0));
        assert!(d.races().is_empty());
    }

    #[test]
    fn remembers_older_writes_per_thread() {
        // Unlike FastTrack's single write epoch, DJIT+ keeps per-thread
        // writes; a third access ordered after only one of two racy writes
        // still races with the other.
        let mut d = VectorClockDetector::new(3);
        d.write(T0, SiteId(1), X);
        d.write(T1, SiteId(2), X); // races with site 1
        d.signal(T1, CondId(0));
        d.wait(ThreadId(2), CondId(0));
        d.read(ThreadId(2), SiteId(3), X); // ordered after site 2, races with site 1
        assert_eq!(d.races().distinct_count(), 2);
        assert!(d.races().contains(SiteId(1), SiteId(3)));
    }
}
