//! The FastTrack happens-before race detector (Flanagan & Freund,
//! PLDI '09) — the algorithm behind Google ThreadSanitizer, used by TxRace
//! both as its slow path and as the full-program baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txrace_sim::{Addr, AddrMap, BarrierId, ChanId, CondId, LockId, SiteId, ThreadId};

use crate::clock::{Epoch, VectorClock};
use crate::report::{AccessInfo, AccessKind, RaceReport, RaceSet};

/// Shadow-memory configuration.
///
/// TSan stores N shadow cells per application granule and randomly evicts
/// a cell when all are full, which "may affect soundness" (paper §5); the
/// paper configures enough cells to be sound. `Exact` is that sound
/// configuration; `Cells` models the bounded default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowMode {
    /// Unbounded reader tracking: sound.
    Exact,
    /// At most `per_granule` concurrent readers tracked per variable;
    /// adding one more randomly evicts an existing reader (seeded by
    /// `seed`), so races with the evicted reader can be missed.
    Cells {
        /// Reader cells per variable (TSan's default is 4).
        per_granule: usize,
        /// RNG seed for eviction.
        seed: u64,
    },
}

/// Concurrent readers: a read vector clock plus per-thread sites.
#[derive(Debug, Clone)]
struct SharedReaders {
    vc: Vec<u32>,
    sites: Vec<SiteId>,
}

#[derive(Debug, Clone)]
enum ReadState {
    /// No reads since the last write.
    Bottom,
    /// A single reader epoch (FastTrack's common case).
    Single(Epoch, SiteId),
    /// Concurrent readers, boxed so the common Bottom/Single states keep
    /// [`VarState`] at half a cache line instead of spilling past one.
    Shared(Box<SharedReaders>),
}

#[derive(Debug, Clone)]
struct VarState {
    w: Epoch,
    w_site: SiteId,
    r: ReadState,
}

impl VarState {
    fn fresh() -> Self {
        VarState {
            w: Epoch::BOTTOM,
            w_site: SiteId(0),
            r: ReadState::Bottom,
        }
    }
}

/// The FastTrack detector over a fixed set of threads.
///
/// Memory accesses are checked via [`read`](FastTrack::read) /
/// [`write`](FastTrack::write); synchronization is tracked via the
/// `lock_*`/`signal`/`wait`/`spawn`/`join`/`barrier` methods. TxRace calls
/// the sync methods on *every* path (fast and slow — paper §5, Figure 6)
/// but the access checks only on the slow path.
#[derive(Debug)]
pub struct FastTrack {
    n: usize,
    clocks: Vec<VectorClock>,
    locks: Vec<VectorClock>,
    conds: Vec<VectorClock>,
    chans: Vec<VectorClock>,
    barriers: Vec<VectorClock>,
    /// Paged map `Addr -> dense shadow index`, assigned on first access
    /// (O(touched) space — address spans can be hundreds of times larger
    /// than the touched set).
    shadow_ids: AddrMap,
    /// Shadow words indexed by the dense id from `shadow_ids` — the
    /// data-oriented layout. A slot is pushed as `VarState::fresh()` on
    /// first touch, which is exactly what the old map's
    /// `entry(..).or_insert_with(fresh)` produced, so behaviour (and
    /// every RNG decision) is unchanged.
    shadow: Vec<VarState>,
    races: RaceSet,
    cell_cap: Option<usize>,
    rng: StdRng,
    checks: u64,
    sync_ops: u64,
}

impl FastTrack {
    /// Creates a detector for `threads` threads.
    pub fn new(threads: usize, mode: ShadowMode) -> Self {
        let (cell_cap, seed) = match mode {
            ShadowMode::Exact => (None, 0),
            ShadowMode::Cells { per_granule, seed } => (Some(per_granule.max(1)), seed),
        };
        FastTrack {
            n: threads,
            clocks: (0..threads)
                .map(|t| VectorClock::initial(ThreadId(t as u32), threads))
                .collect(),
            locks: Vec::new(),
            conds: Vec::new(),
            chans: Vec::new(),
            barriers: Vec::new(),
            shadow_ids: AddrMap::new(),
            shadow: Vec::new(),
            races: RaceSet::new(),
            cell_cap,
            rng: StdRng::seed_from_u64(seed),
            checks: 0,
            sync_ops: 0,
        }
    }

    /// Races found so far.
    pub fn races(&self) -> &RaceSet {
        &self.races
    }

    /// Number of access checks performed (slow-path work metric).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of synchronization operations tracked.
    pub fn sync_ops(&self) -> u64 {
        self.sync_ops
    }

    /// The current clock of thread `t` (test/inspection use).
    pub fn clock_of(&self, t: ThreadId) -> &VectorClock {
        &self.clocks[t.index()]
    }

    /// Forgets all happens-before state (thread clocks, lock/cond/
    /// channel/barrier vector clocks) and every shadow cell, while
    /// keeping the races found so far, the check/sync counters, and the
    /// sampling RNG stream.
    ///
    /// Duty-cycled monitoring uses this when re-arming after an idle
    /// gap: accesses from before the gap must not pair with accesses
    /// after it, because the synchronization between them was never
    /// observed. Resetting the shadow guarantees any reported pair has
    /// both endpoints inside one contiguous monitored stretch, so no
    /// false positives can cross the gap. The address interning table
    /// is retained so existing dense indices stay valid.
    pub fn reset_shadow(&mut self) {
        for (t, c) in self.clocks.iter_mut().enumerate() {
            *c = VectorClock::initial(ThreadId(t as u32), self.n);
        }
        self.locks.clear();
        self.conds.clear();
        self.chans.clear();
        self.barriers.clear();
        for s in &mut self.shadow {
            *s = VarState::fresh();
        }
    }

    fn sync_vc(table: &mut Vec<VectorClock>, idx: usize, n: usize) -> &mut VectorClock {
        if table.len() <= idx {
            table.resize(idx + 1, VectorClock::zero(n));
        }
        &mut table[idx]
    }

    /// Pre-sizes the shadow map's page table for addresses below
    /// `addr_capacity` (from [`txrace_sim::Interner::addr_capacity`]), so
    /// the hot path never grows the top level mid-run. Costs 8 bytes per
    /// 4096 addresses of span.
    pub fn reserve_addrs(&mut self, addr_capacity: usize) {
        self.shadow_ids.reserve_span(addr_capacity);
    }

    #[inline]
    fn shadow_mut<'a>(
        ids: &mut AddrMap,
        shadow: &'a mut Vec<VarState>,
        addr: Addr,
    ) -> &'a mut VarState {
        let i = ids.resolve(addr) as usize;
        if i == shadow.len() {
            shadow.push(VarState::fresh());
        }
        &mut shadow[i]
    }

    /// Checks a read by `t` at `site` against the shadow word for `addr`.
    pub fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.checks += 1;
        let ct = &self.clocks[t.index()];
        let my = ct.epoch(t);
        let state = Self::shadow_mut(&mut self.shadow_ids, &mut self.shadow, addr);

        // Same-epoch fast path.
        match &state.r {
            ReadState::Single(e, _) if *e == my => return,
            ReadState::Shared(s) if s.vc[t.index()] == my.clock => return,
            _ => {}
        }

        // Write-read race check.
        if !state.w.leq(ct) {
            let report = RaceReport {
                addr,
                prior: AccessInfo {
                    site: state.w_site,
                    thread: state.w.tid,
                    kind: AccessKind::Write,
                },
                current: AccessInfo {
                    site,
                    thread: t,
                    kind: AccessKind::Read,
                },
            };
            self.races.record(report);
        }

        // Update the read state.
        match &mut state.r {
            ReadState::Bottom => state.r = ReadState::Single(my, site),
            ReadState::Single(e, s) => {
                let (e, s) = (*e, *s);
                if e.leq(ct) {
                    state.r = ReadState::Single(my, site);
                } else if self.cell_cap == Some(1) {
                    // One shadow cell: the new reader evicts the old one
                    // (the unsound bounded-cell behaviour being modeled).
                    state.r = ReadState::Single(my, site);
                } else {
                    let mut vc = vec![0u32; self.n];
                    let mut sites = vec![SiteId(0); self.n];
                    vc[e.tid.index()] = e.clock;
                    sites[e.tid.index()] = s;
                    vc[t.index()] = my.clock;
                    sites[t.index()] = site;
                    state.r = ReadState::Shared(Box::new(SharedReaders { vc, sites }));
                }
            }
            ReadState::Shared(shared) => {
                let SharedReaders { vc, sites } = shared.as_mut();
                let is_new_reader = vc[t.index()] == 0;
                if is_new_reader {
                    if let Some(cap) = self.cell_cap {
                        let occupied: Vec<usize> = vc
                            .iter()
                            .enumerate()
                            .filter(|&(u, &c)| c > 0 && u != t.index())
                            .map(|(u, _)| u)
                            .collect();
                        if occupied.len() + 1 > cap {
                            // TSan-style random cell eviction: forget one
                            // reader, potentially missing a future race.
                            let victim = occupied[self.rng.gen_range(0..occupied.len())];
                            vc[victim] = 0;
                            sites[victim] = SiteId(0);
                        }
                    }
                }
                vc[t.index()] = my.clock;
                sites[t.index()] = site;
            }
        }
    }

    /// Checks a write by `t` at `site` against the shadow word for `addr`.
    pub fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.checks += 1;
        let ct = &self.clocks[t.index()];
        let my = ct.epoch(t);
        let state = Self::shadow_mut(&mut self.shadow_ids, &mut self.shadow, addr);

        if state.w == my {
            return; // same-epoch fast path
        }

        // Write-write race.
        if !state.w.leq(ct) {
            let report = RaceReport {
                addr,
                prior: AccessInfo {
                    site: state.w_site,
                    thread: state.w.tid,
                    kind: AccessKind::Write,
                },
                current: AccessInfo {
                    site,
                    thread: t,
                    kind: AccessKind::Write,
                },
            };
            self.races.record(report);
        }

        // Read-write races.
        match &state.r {
            ReadState::Bottom => {}
            ReadState::Single(e, s) => {
                if !e.leq(ct) {
                    let report = RaceReport {
                        addr,
                        prior: AccessInfo {
                            site: *s,
                            thread: e.tid,
                            kind: AccessKind::Read,
                        },
                        current: AccessInfo {
                            site,
                            thread: t,
                            kind: AccessKind::Write,
                        },
                    };
                    self.races.record(report);
                }
            }
            ReadState::Shared(shared) => {
                let SharedReaders { vc, sites } = shared.as_ref();
                for u in 0..self.n {
                    if u == t.index() || vc[u] == 0 {
                        continue;
                    }
                    if vc[u] > ct.get(ThreadId(u as u32)) {
                        let report = RaceReport {
                            addr,
                            prior: AccessInfo {
                                site: sites[u],
                                thread: ThreadId(u as u32),
                                kind: AccessKind::Read,
                            },
                            current: AccessInfo {
                                site,
                                thread: t,
                                kind: AccessKind::Write,
                            },
                        };
                        self.races.record(report);
                    }
                }
            }
        }

        state.w = my;
        state.w_site = site;
        state.r = ReadState::Bottom;
    }

    /// Tracks a mutex acquire: `C_t ⊔= L`.
    pub fn lock_acquire(&mut self, t: ThreadId, l: LockId) {
        self.sync_ops += 1;
        let vc = Self::sync_vc(&mut self.locks, l.index(), self.n);
        self.clocks[t.index()].join(vc);
    }

    /// Tracks a mutex release: `L ⊔= C_t; C_t[t] += 1`.
    pub fn lock_release(&mut self, t: ThreadId, l: LockId) {
        self.sync_ops += 1;
        Self::sync_vc(&mut self.locks, l.index(), self.n).join(&self.clocks[t.index()]);
        self.clocks[t.index()].inc(t);
    }

    /// Tracks a semaphore post (release semantics on the cond's clock).
    pub fn signal(&mut self, t: ThreadId, c: CondId) {
        self.sync_ops += 1;
        Self::sync_vc(&mut self.conds, c.index(), self.n).join(&self.clocks[t.index()]);
        self.clocks[t.index()].inc(t);
    }

    /// Tracks a satisfied semaphore wait (acquire semantics).
    pub fn wait(&mut self, t: ThreadId, c: CondId) {
        self.sync_ops += 1;
        let vc = Self::sync_vc(&mut self.conds, c.index(), self.n);
        self.clocks[t.index()].join(vc);
    }

    /// Tracks a channel send (release semantics on the channel's clock):
    /// `Ch ⊔= C_t; C_t[t] += 1`. The send→recv edge is unidirectional —
    /// a receive never orders later sends (no backpressure edge), exactly
    /// like `signal`.
    pub fn chan_send(&mut self, t: ThreadId, ch: ChanId) {
        self.sync_ops += 1;
        Self::sync_vc(&mut self.chans, ch.index(), self.n).join(&self.clocks[t.index()]);
        self.clocks[t.index()].inc(t);
    }

    /// Tracks a channel receive (acquire semantics): `C_t ⊔= Ch`, so
    /// everything before any send that fed the channel happens-before
    /// everything after this receive.
    pub fn chan_recv(&mut self, t: ThreadId, ch: ChanId) {
        self.sync_ops += 1;
        let vc = Self::sync_vc(&mut self.chans, ch.index(), self.n);
        self.clocks[t.index()].join(vc);
    }

    /// Tracks a thread spawn: the child inherits the parent's history.
    pub fn spawn(&mut self, parent: ThreadId, child: ThreadId) {
        self.sync_ops += 1;
        debug_assert_ne!(parent, child);
        let (a, b) = (parent.index(), child.index());
        // Split the slice to join without cloning the parent's clock.
        if a < b {
            let (left, right) = self.clocks.split_at_mut(b);
            right[0].join(&left[a]);
        } else {
            let (left, right) = self.clocks.split_at_mut(a);
            left[b].join(&right[0]);
        }
        self.clocks[a].inc(parent);
    }

    /// Tracks a thread join: the parent inherits the child's history.
    pub fn join(&mut self, parent: ThreadId, child: ThreadId) {
        self.sync_ops += 1;
        debug_assert_ne!(parent, child);
        let (a, b) = (parent.index(), child.index());
        if a < b {
            let (left, right) = self.clocks.split_at_mut(b);
            left[a].join(&right[0]);
        } else {
            let (left, right) = self.clocks.split_at_mut(a);
            right[0].join(&left[b]);
        }
    }

    /// Tracks a barrier release over all `participants`: all clocks join.
    pub fn barrier(&mut self, b: BarrierId, participants: &[ThreadId]) {
        self.barrier_join(b, participants.len(), |i| participants[i]);
    }

    /// [`FastTrack::barrier`] fed directly from a recorded arrival list
    /// (`(thread, site)` pairs), avoiding the intermediate thread vector
    /// on the replay hot path.
    pub fn barrier_arrivals(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        self.barrier_join(b, arrivals.len(), |i| arrivals[i].0);
    }

    fn barrier_join<F: Fn(usize) -> ThreadId>(&mut self, b: BarrierId, count: usize, tid: F) {
        self.sync_ops += 1;
        let n = self.n;
        if self.barriers.len() <= b.index() {
            self.barriers.resize(b.index() + 1, VectorClock::zero(n));
        }
        let mut joined = self.barriers[b.index()].clone();
        for i in 0..count {
            joined.join(&self.clocks[tid(i).index()]);
        }
        for i in 0..count {
            let t = tid(i);
            self.clocks[t.index()].join(&joined);
            self.clocks[t.index()].inc(t);
        }
        self.barriers[b.index()] = joined;
    }
}

/// FastTrack as a pure trace consumer: accesses are checked, sync events
/// update the clocks, and — matching TSan — atomic RMWs are *not*
/// checked (atomics are never data races under the C11 model). Driving a
/// `FastTrack` through [`txrace_sim::Live`] live or through
/// [`txrace_sim::EventLog::replay`] on a log of the same run produces the
/// identical race set.
impl txrace_sim::TraceConsumer for FastTrack {
    fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        FastTrack::read(self, t, site, addr);
    }

    fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        FastTrack::write(self, t, site, addr);
    }

    fn acquire(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.lock_acquire(t, l);
    }

    fn release(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.lock_release(t, l);
    }

    fn signal(&mut self, t: ThreadId, _site: SiteId, c: CondId) {
        FastTrack::signal(self, t, c);
    }

    fn wait(&mut self, t: ThreadId, _site: SiteId, c: CondId) {
        FastTrack::wait(self, t, c);
    }

    fn spawn(&mut self, t: ThreadId, _site: SiteId, child: ThreadId) {
        FastTrack::spawn(self, t, child);
    }

    fn join(&mut self, t: ThreadId, _site: SiteId, child: ThreadId) {
        FastTrack::join(self, t, child);
    }

    fn barrier_release(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        self.barrier_arrivals(b, arrivals);
    }

    fn chan_send(&mut self, t: ThreadId, _site: SiteId, ch: ChanId) {
        FastTrack::chan_send(self, t, ch);
    }

    fn chan_recv(&mut self, t: ThreadId, _site: SiteId, ch: ChanId) {
        FastTrack::chan_recv(self, t, ch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const X: Addr = Addr(0x400);

    fn ft(n: usize) -> FastTrack {
        FastTrack::new(n, ShadowMode::Exact)
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let mut d = ft(2);
        d.write(T0, SiteId(1), X);
        d.write(T1, SiteId(2), X);
        assert_eq!(d.races().distinct_count(), 1);
        assert!(d.races().contains(SiteId(1), SiteId(2)));
    }

    #[test]
    fn unsynchronized_write_read_races() {
        let mut d = ft(2);
        d.write(T0, SiteId(1), X);
        d.read(T1, SiteId(2), X);
        assert_eq!(d.races().distinct_count(), 1);
    }

    #[test]
    fn unsynchronized_read_write_races() {
        let mut d = ft(2);
        d.read(T0, SiteId(1), X);
        d.write(T1, SiteId(2), X);
        assert_eq!(d.races().distinct_count(), 1);
    }

    #[test]
    fn concurrent_reads_do_not_race() {
        let mut d = ft(3);
        d.read(T0, SiteId(1), X);
        d.read(T1, SiteId(2), X);
        d.read(T2, SiteId(3), X);
        assert!(d.races().is_empty());
    }

    #[test]
    fn lock_ordering_prevents_race() {
        let mut d = ft(2);
        let l = LockId(0);
        d.lock_acquire(T0, l);
        d.write(T0, SiteId(1), X);
        d.lock_release(T0, l);
        d.lock_acquire(T1, l);
        d.write(T1, SiteId(2), X);
        d.lock_release(T1, l);
        assert!(d.races().is_empty());
    }

    #[test]
    fn different_locks_do_not_order() {
        let mut d = ft(2);
        d.lock_acquire(T0, LockId(0));
        d.write(T0, SiteId(1), X);
        d.lock_release(T0, LockId(0));
        d.lock_acquire(T1, LockId(1));
        d.write(T1, SiteId(2), X);
        d.lock_release(T1, LockId(1));
        assert_eq!(d.races().distinct_count(), 1);
    }

    #[test]
    fn signal_wait_orders() {
        let mut d = ft(2);
        d.write(T0, SiteId(1), X);
        d.signal(T0, CondId(0));
        d.wait(T1, CondId(0));
        d.write(T1, SiteId(2), X);
        assert!(d.races().is_empty());
    }

    #[test]
    fn chan_send_recv_orders() {
        let mut d = ft(2);
        d.write(T0, SiteId(1), X);
        d.chan_send(T0, ChanId(0));
        d.chan_recv(T1, ChanId(0));
        d.write(T1, SiteId(2), X);
        assert!(d.races().is_empty());
    }

    #[test]
    fn chan_edge_is_unidirectional() {
        // A receive does NOT order the receiver's earlier work before the
        // sender's later work (no backpressure edge): T1's pre-recv write
        // races with T0's post-send write.
        let mut d = ft(2);
        d.write(T1, SiteId(2), X);
        d.chan_send(T0, ChanId(0));
        d.chan_recv(T1, ChanId(0));
        d.write(T0, SiteId(1), X);
        assert!(d.races().contains(SiteId(2), SiteId(1)));
    }

    #[test]
    fn different_channels_do_not_order() {
        let mut d = ft(2);
        d.write(T0, SiteId(1), X);
        d.chan_send(T0, ChanId(0));
        d.chan_recv(T1, ChanId(1));
        d.write(T1, SiteId(2), X);
        assert_eq!(d.races().distinct_count(), 1);
    }

    #[test]
    fn spawn_orders_parent_before_child() {
        let mut d = ft(2);
        d.write(T0, SiteId(1), X);
        d.spawn(T0, T1);
        d.read(T1, SiteId(2), X);
        assert!(d.races().is_empty());
    }

    #[test]
    fn join_orders_child_before_parent() {
        let mut d = ft(2);
        d.spawn(T0, T1);
        d.write(T1, SiteId(1), X);
        d.join(T0, T1);
        d.read(T0, SiteId(2), X);
        assert!(d.races().is_empty());
    }

    #[test]
    fn init_idiom_without_sync_is_a_race() {
        // The bodytrack/facesim pattern: init early, read much later, no
        // happens-before edge. Temporal distance is irrelevant to HB.
        let mut d = ft(2);
        d.write(T0, SiteId(1), X);
        for i in 0..1000 {
            d.write(T0, SiteId(10), Addr(0x4000 + i * 8));
        }
        d.read(T1, SiteId(2), X);
        assert!(d.races().contains(SiteId(1), SiteId(2)));
    }

    #[test]
    fn barrier_orders_all_participants() {
        let mut d = ft(3);
        d.write(T0, SiteId(1), X);
        d.barrier(BarrierId(0), &[T0, T1, T2]);
        d.write(T1, SiteId(2), X);
        assert!(d.races().is_empty());
    }

    #[test]
    fn concurrent_readers_all_race_with_later_write() {
        let mut d = ft(3);
        d.read(T0, SiteId(1), X);
        d.read(T1, SiteId(2), X);
        d.write(T2, SiteId(3), X);
        assert_eq!(d.races().distinct_count(), 2);
        assert!(d.races().contains(SiteId(1), SiteId(3)));
        assert!(d.races().contains(SiteId(2), SiteId(3)));
    }

    #[test]
    fn same_epoch_accesses_are_cheap_and_racefree() {
        let mut d = ft(2);
        d.write(T0, SiteId(1), X);
        d.write(T0, SiteId(1), X);
        d.read(T0, SiteId(2), X);
        d.read(T0, SiteId(2), X);
        assert!(d.races().is_empty());
    }

    #[test]
    fn race_reported_once_per_static_pair() {
        let mut d = ft(2);
        for i in 0..10 {
            let a = Addr(0x1000 + i * 64);
            d.write(T0, SiteId(1), a);
            d.write(T1, SiteId(2), a);
        }
        assert_eq!(d.races().distinct_count(), 1);
    }

    #[test]
    fn word_granularity_filters_false_sharing() {
        // Two variables in one cache line: HTM would conflict; HB must not.
        let mut d = ft(2);
        d.write(T0, SiteId(1), Addr(0x400));
        d.write(T1, SiteId(2), Addr(0x408));
        assert!(d.races().is_empty());
    }

    #[test]
    fn cells_mode_can_miss_reader_races() {
        // With 1 reader cell and many readers, eviction loses readers, so
        // some read-write races with a later write can be missed; with
        // Exact mode all 8 are found.
        let readers = 8u32;
        let run = |mode: ShadowMode| {
            let mut d = FastTrack::new(readers as usize + 1, mode);
            for u in 0..readers {
                d.read(ThreadId(u), SiteId(u + 1), X);
            }
            d.write(ThreadId(readers), SiteId(100), X);
            d.races().distinct_count()
        };
        assert_eq!(run(ShadowMode::Exact), readers as usize);
        let cells = run(ShadowMode::Cells {
            per_granule: 1,
            seed: 42,
        });
        assert!(
            cells < readers as usize,
            "eviction should lose races, found {cells}"
        );
    }

    #[test]
    fn release_increments_own_clock() {
        let mut d = ft(2);
        let before = d.clock_of(T0).get(T0);
        d.lock_acquire(T0, LockId(0));
        d.lock_release(T0, LockId(0));
        assert_eq!(d.clock_of(T0).get(T0), before + 1);
        assert_eq!(d.sync_ops(), 2);
    }

    #[test]
    fn checks_counter_counts_accesses() {
        let mut d = ft(2);
        d.write(T0, SiteId(1), X);
        d.read(T0, SiteId(2), X);
        assert_eq!(d.checks(), 2);
    }
}
