//! Race reports: dynamic access pairs deduplicated into static
//! "racy instruction pairs", the unit the paper counts in Table 1.

use std::collections::BTreeSet;
use std::fmt;

use txrace_sim::{Addr, SiteId, ThreadId};

/// Whether an access read or wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// One side of a dynamic race: who accessed what, where, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessInfo {
    /// Static site of the access.
    pub site: SiteId,
    /// Accessing thread.
    pub thread: ThreadId,
    /// Read or write.
    pub kind: AccessKind,
}

/// A dynamic race report: two unordered conflicting accesses to `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RaceReport {
    /// The racing address.
    pub addr: Addr,
    /// The earlier access (the one recorded in shadow state).
    pub prior: AccessInfo,
    /// The access that exposed the race.
    pub current: AccessInfo,
}

impl RaceReport {
    /// The static identity of this race.
    pub fn pair(&self) -> RacePair {
        RacePair::new(self.prior.site, self.current.site)
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race on {}: {} {} at {} vs {} {} at {}",
            self.addr,
            self.prior.thread,
            self.prior.kind,
            self.prior.site,
            self.current.thread,
            self.current.kind,
            self.current.site
        )
    }
}

/// A static race: an unordered pair of sites. Normalized so `a <= b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RacePair {
    /// The smaller site.
    pub a: SiteId,
    /// The larger site.
    pub b: SiteId,
}

impl RacePair {
    /// Builds a normalized pair.
    pub fn new(x: SiteId, y: SiteId) -> Self {
        if x <= y {
            RacePair { a: x, b: y }
        } else {
            RacePair { a: y, b: x }
        }
    }
}

impl fmt::Display for RacePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.a, self.b)
    }
}

/// Accumulates dynamic race reports, deduplicating into static pairs.
#[derive(Debug, Clone, Default)]
pub struct RaceSet {
    pairs: BTreeSet<RacePair>,
    reports: Vec<RaceReport>,
}

impl RaceSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a dynamic report; returns true if its static pair is new.
    pub fn record(&mut self, report: RaceReport) -> bool {
        let fresh = self.pairs.insert(report.pair());
        if fresh {
            self.reports.push(report);
        }
        fresh
    }

    /// Number of distinct static racy pairs.
    pub fn distinct_count(&self) -> usize {
        self.pairs.len()
    }

    /// The distinct static pairs, ordered.
    pub fn pairs(&self) -> impl Iterator<Item = RacePair> + '_ {
        self.pairs.iter().copied()
    }

    /// Whether the pair `(x, y)` was reported (order-insensitive).
    pub fn contains(&self, x: SiteId, y: SiteId) -> bool {
        self.pairs.contains(&RacePair::new(x, y))
    }

    /// The first dynamic report for each distinct pair, in discovery order.
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// True if no race was recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Merges another set into this one (union of static pairs).
    pub fn merge(&mut self, other: &RaceSet) {
        for r in other.reports() {
            self.record(*r);
        }
    }
}

impl FromIterator<RaceReport> for RaceSet {
    fn from_iter<I: IntoIterator<Item = RaceReport>>(iter: I) -> Self {
        let mut set = RaceSet::new();
        for r in iter {
            set.record(r);
        }
        set
    }
}

impl Extend<RaceReport> for RaceSet {
    fn extend<I: IntoIterator<Item = RaceReport>>(&mut self, iter: I) {
        for r in iter {
            self.record(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(s1: u32, s2: u32) -> RaceReport {
        RaceReport {
            addr: Addr(0x100),
            prior: AccessInfo {
                site: SiteId(s1),
                thread: ThreadId(0),
                kind: AccessKind::Write,
            },
            current: AccessInfo {
                site: SiteId(s2),
                thread: ThreadId(1),
                kind: AccessKind::Read,
            },
        }
    }

    #[test]
    fn pairs_are_normalized() {
        assert_eq!(
            RacePair::new(SiteId(5), SiteId(2)),
            RacePair::new(SiteId(2), SiteId(5))
        );
    }

    #[test]
    fn record_dedups_static_pairs() {
        let mut set = RaceSet::new();
        assert!(set.record(report(1, 2)));
        assert!(!set.record(report(2, 1)), "swapped order is the same pair");
        assert!(set.record(report(1, 3)));
        assert_eq!(set.distinct_count(), 2);
        assert_eq!(set.reports().len(), 2);
        assert!(set.contains(SiteId(2), SiteId(1)));
        assert!(!set.contains(SiteId(2), SiteId(3)));
    }

    #[test]
    fn merge_unions() {
        let mut a: RaceSet = [report(1, 2)].into_iter().collect();
        let b: RaceSet = [report(1, 2), report(3, 4)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.distinct_count(), 2);
    }

    #[test]
    fn display_is_informative() {
        let r = report(1, 2);
        let s = r.to_string();
        assert!(s.contains("race on 0x100"));
        assert!(s.contains("write"));
        assert!(s.contains("read"));
        assert_eq!(r.pair().to_string(), "(s1, s2)");
    }
}
