//! An Eraser-style lockset detector (Savage et al., TOCS '97), kept as the
//! classic incomplete baseline the paper's related-work section contrasts
//! with happens-before detection: it ignores non-mutex synchronization
//! (signal/wait ordering), so it reports *false positives* that FastTrack
//! does not.

use std::collections::BTreeSet;
use std::fmt;

use txrace_sim::{Addr, AddrMap, LockId, SiteId, ThreadId};

/// The Eraser per-variable state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarPhase {
    Virgin,
    Exclusive(ThreadId),
    Shared,
    SharedModified,
}

#[derive(Debug, Clone)]
struct VarState {
    phase: VarPhase,
    candidates: BTreeSet<LockId>,
    first_site: SiteId,
    reported: bool,
}

/// A lockset violation: the candidate lockset of `addr` became empty while
/// shared-modified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocksetReport {
    /// The variable.
    pub addr: Addr,
    /// Site of the access that emptied the lockset.
    pub site: SiteId,
    /// An earlier access site to the same variable.
    pub earlier_site: SiteId,
}

impl fmt::Display for LocksetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lockset violation on {} at {} (earlier access {})",
            self.addr, self.site, self.earlier_site
        )
    }
}

/// The lockset detector.
#[derive(Debug)]
pub struct Lockset {
    held: Vec<BTreeSet<LockId>>,
    /// Paged map `Addr -> dense index into `vars``, assigned on first
    /// touch. Unlike the HB detectors' all-zero fresh state, Eraser's
    /// state captures the *site of the first access*, so initialization
    /// must stay lazy — first-touch id assignment gives exactly that.
    var_ids: AddrMap,
    vars: Vec<VarState>,
    reports: Vec<LocksetReport>,
}

impl Lockset {
    /// Creates a detector for `threads` threads.
    pub fn new(threads: usize) -> Self {
        Lockset {
            held: vec![BTreeSet::new(); threads],
            var_ids: AddrMap::new(),
            vars: Vec::new(),
            reports: Vec::new(),
        }
    }

    /// Violations found so far.
    pub fn reports(&self) -> &[LocksetReport] {
        &self.reports
    }

    /// Tracks a mutex acquire.
    pub fn lock_acquire(&mut self, t: ThreadId, l: LockId) {
        self.held[t.index()].insert(l);
    }

    /// Tracks a mutex release.
    pub fn lock_release(&mut self, t: ThreadId, l: LockId) {
        self.held[t.index()].remove(&l);
    }

    /// Checks a read.
    pub fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.access(t, site, addr, false);
    }

    /// Checks a write.
    pub fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.access(t, site, addr, true);
    }

    fn access(&mut self, t: ThreadId, site: SiteId, addr: Addr, is_write: bool) {
        let held = &self.held[t.index()];
        let i = self.var_ids.resolve(addr) as usize;
        if i == self.vars.len() {
            self.vars.push(VarState {
                phase: VarPhase::Virgin,
                candidates: BTreeSet::new(),
                first_site: site,
                reported: false,
            });
        }
        let state = &mut self.vars[i];
        match state.phase {
            VarPhase::Virgin => {
                state.phase = VarPhase::Exclusive(t);
                state.candidates = held.clone();
            }
            VarPhase::Exclusive(owner) => {
                if owner == t {
                    // Still exclusive; refine candidates only once shared.
                } else {
                    state.candidates = state.candidates.intersection(held).copied().collect();
                    state.phase = if is_write {
                        VarPhase::SharedModified
                    } else {
                        VarPhase::Shared
                    };
                }
            }
            VarPhase::Shared => {
                state.candidates = state.candidates.intersection(held).copied().collect();
                if is_write {
                    state.phase = VarPhase::SharedModified;
                }
            }
            VarPhase::SharedModified => {
                state.candidates = state.candidates.intersection(held).copied().collect();
            }
        }
        if state.phase == VarPhase::SharedModified && state.candidates.is_empty() && !state.reported
        {
            state.reported = true;
            self.reports.push(LocksetReport {
                addr,
                site,
                earlier_site: state.first_site,
            });
        }
    }
}

/// Eraser as a pure trace consumer. The mapping preserves its defining
/// blindness: only mutex events update the held sets — signal/wait,
/// spawn/join, and barriers are ignored, which is exactly where its
/// false positives come from.
impl txrace_sim::TraceConsumer for Lockset {
    fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        Lockset::read(self, t, site, addr);
    }

    fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        Lockset::write(self, t, site, addr);
    }

    fn acquire(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.lock_acquire(t, l);
    }

    fn release(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.lock_release(t, l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const X: Addr = Addr(0x900);
    const L: LockId = LockId(0);

    #[test]
    fn consistent_locking_is_clean() {
        let mut d = Lockset::new(2);
        for (t, s) in [(T0, 1u32), (T1, 2u32)] {
            d.lock_acquire(t, L);
            d.write(t, SiteId(s), X);
            d.lock_release(t, L);
        }
        assert!(d.reports().is_empty());
    }

    #[test]
    fn unlocked_shared_write_is_reported() {
        let mut d = Lockset::new(2);
        d.write(T0, SiteId(1), X);
        d.write(T1, SiteId(2), X);
        assert_eq!(d.reports().len(), 1);
        assert_eq!(d.reports()[0].addr, X);
    }

    #[test]
    fn exclusive_phase_never_reports() {
        let mut d = Lockset::new(2);
        for _ in 0..10 {
            d.write(T0, SiteId(1), X);
        }
        assert!(d.reports().is_empty());
    }

    #[test]
    fn read_sharing_without_writes_is_clean() {
        let mut d = Lockset::new(2);
        d.read(T0, SiteId(1), X);
        d.read(T1, SiteId(2), X);
        assert!(d.reports().is_empty());
    }

    #[test]
    fn signal_wait_ordering_still_reported_false_positive() {
        // Eraser's hallmark incompleteness: no lock is held, but the
        // accesses are actually ordered by signal/wait (which Eraser cannot
        // see), so this is a FALSE positive a HB detector would not emit.
        let mut d = Lockset::new(2);
        d.write(T0, SiteId(1), X);
        // (signal/wait happens here in the real program)
        d.write(T1, SiteId(2), X);
        assert_eq!(d.reports().len(), 1);
    }

    #[test]
    fn reports_once_per_variable() {
        let mut d = Lockset::new(2);
        d.write(T0, SiteId(1), X);
        d.write(T1, SiteId(2), X);
        d.write(T0, SiteId(3), X);
        d.write(T1, SiteId(4), X);
        assert_eq!(d.reports().len(), 1);
    }

    #[test]
    fn partial_lock_discipline_detected() {
        let mut d = Lockset::new(2);
        d.lock_acquire(T0, L);
        d.write(T0, SiteId(1), X);
        d.lock_release(T0, L);
        d.write(T1, SiteId(2), X); // no lock held: candidates empty
        assert_eq!(d.reports().len(), 1);
    }
}
