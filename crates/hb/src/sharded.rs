//! Address-sharded replay detection: FastTrack / lockset shadow state
//! partitioned across W workers over one shared, pre-indexed view of an
//! [`EventLog`].
//!
//! The parallelization rule is the classic one for per-variable race
//! detectors:
//!
//! * **Data accesses route.** Each address is owned by exactly one shard
//!   ([`shard_of`]); a shard checks only the accesses it owns, so the
//!   shadow-state work — the dominant cost on access-heavy traces — is
//!   split W ways.
//! * **Sync events broadcast.** Every shard processes every
//!   lock/unlock/signal/wait/spawn/join/barrier/channel event, so each
//!   shard maintains the *full* vector-clock state. A variable's race
//!   verdict depends only on the sync history plus that variable's own
//!   accesses, both of which its owning shard sees completely — hence
//!   every per-access verdict is identical to the serial detector's.
//! * **Reports merge deterministically.** Each shard tags its reports
//!   with the global index of the triggering event (indices come from
//!   the [`ShardPlan`], so shards agree without counting events).
//!   Concatenating the per-shard report lists in shard order and
//!   stable-sorting by event index reconstructs the serial discovery
//!   order exactly; feeding that sequence through a fresh [`RaceSet`]
//!   reproduces the serial first-report-per-pair dedup, because a
//!   pair's globally-first report is also first within its own shard
//!   (an address lives on one shard only).
//!
//! Since the sync-indexed rework, shards do **not** replay the log:
//! [`ShardPlan::build`] derives a [`SyncIndex`] plus per-shard
//! [`AccessPartition`] slices in one pass over the decoded log, and each
//! shard consumes (its slice + the shared sync stream) through the
//! two-cursor merge of
//! [`replay_indexed`](txrace_sim::replay_indexed). Per-shard work is
//! O(accesses/W + sync) instead of O(all events), and the decode +
//! partition happens once per log regardless of the shard count.
//!
//! Sharding supports [`ShadowMode::Exact`] only: `Cells` mode draws
//! evictions from a single global RNG stream whose state depends on the
//! interleaved access order across *all* addresses, which no
//! partitioning can reproduce.

use txrace_sim::{
    fan_out_indexed, Addr, AccessPartition, BarrierId, ChanId, CondId, EventLog, IndexedAccess,
    IndexedConsumer, LockId, SiteId, SyncIndex, ThreadId,
};

use crate::fasttrack::{FastTrack, ShadowMode};
use crate::lockset::{Lockset, LocksetReport};
use crate::report::{RaceReport, RaceSet};

/// The shard owning `addr` among `shards` shards.
///
/// Routing hashes the 8-byte word index (Fibonacci multiplicative hash)
/// and maps the hash to `0..shards` through its *top* bits (128-bit
/// multiply-shift) rather than a plain modulo: scalar variables are
/// allocated one per 64-byte cache line, so `word_index % shards` would
/// alias every scalar onto one shard whenever `shards` divides 8, and
/// the low bits of a multiplicative hash step too slowly for strided
/// inputs. The top-bits mapping spreads both line-aligned scalars and
/// dense array strides evenly.
#[inline]
pub fn shard_of(addr: Addr, shards: usize) -> usize {
    let h = (addr.0 >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h as u128 * shards as u128) >> 64) as usize
}

/// One log's pre-indexed sharding work plan: the shared sync stream plus
/// per-shard access slices, built once at decode time and consumed by
/// every sharded detector that replays the same log — heterogeneous
/// panels included ([`ShardedFastTrack::run_with_plan`],
/// [`ShardedLockset::run_with_plan`]).
///
/// The plan is always **derived** from a decoded [`EventLog`], never
/// deserialized from disk: the wire format carries only the flat event
/// stream, so an index can never disagree with the log it claims to
/// describe.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    sync: SyncIndex,
    partition: AccessPartition,
    threads: usize,
}

impl ShardPlan {
    /// Indexes `log` for `shards` shards: one pass to lift the sync
    /// stream, one to route accesses through [`shard_of`].
    pub fn build(log: &EventLog, shards: usize) -> Self {
        Self::with_sync(SyncIndex::of(log), log, shards)
    }

    /// Like [`ShardPlan::build`], but reuses an already-derived
    /// [`SyncIndex`] — the sync stream does not depend on the shard
    /// count, so a harness sweeping shard counts over one log indexes
    /// the sync events once and re-partitions only the accesses.
    pub fn with_sync(sync: SyncIndex, log: &EventLog, shards: usize) -> Self {
        assert_eq!(
            sync.total_events(),
            log.len() as u64,
            "sync index derived from a different log"
        );
        ShardPlan {
            sync,
            partition: AccessPartition::of(log, shards, shard_of),
            threads: log.thread_count(),
        }
    }

    /// Number of shards this plan routes to.
    pub fn shards(&self) -> usize {
        self.partition.shards()
    }

    /// The shared sync stream.
    pub fn sync(&self) -> &SyncIndex {
        &self.sync
    }

    /// The per-shard access slices.
    pub fn partition(&self) -> &AccessPartition {
        &self.partition
    }

    /// Thread count of the recorded program.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Events shard `shard` will dispatch: its access slice plus the
    /// shared sync stream.
    pub fn shard_events(&self, shard: usize) -> u64 {
        self.partition.slice(shard).len() as u64 + self.sync.len() as u64
    }
}

/// Per-shard timing and work counters, for imbalance diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Events this shard dispatched: its routed access slice plus the
    /// shared sync stream. Unlike the pre-index engine (where every
    /// shard walked the full log and this field equaled the log
    /// length), shards now differ in `events` by their slice sizes.
    pub events: u64,
    /// Access checks this shard performed (its routed share).
    pub checks: u64,
    /// Dynamic reports this shard produced before the merge.
    pub races_found: u64,
    /// Wall time of this shard's merge pass, in nanoseconds.
    pub wall_ns: u64,
}

/// One FastTrack shard: full sync state, 1/W of the shadow state.
///
/// A pure [`IndexedConsumer`]: the plan already routed its accesses, so
/// there is no ownership check and no event counting on the hot path —
/// report tags come from the pre-computed global indices.
struct FtShard {
    ft: FastTrack,
    /// `(global event index, report)` in within-shard discovery order.
    tagged: Vec<(u64, RaceReport)>,
}

impl FtShard {
    fn new(threads: usize) -> Self {
        FtShard {
            ft: FastTrack::new(threads, ShadowMode::Exact),
            tagged: Vec::new(),
        }
    }
}

impl IndexedConsumer for FtShard {
    fn access(&mut self, a: &IndexedAccess) {
        let before = self.ft.races().reports().len();
        if a.is_write {
            self.ft.write(a.thread, a.site, a.addr);
        } else {
            self.ft.read(a.thread, a.site, a.addr);
        }
        for r in &self.ft.races().reports()[before..] {
            self.tagged.push((a.idx, *r));
        }
    }
    fn acquire(&mut self, _idx: u64, t: ThreadId, _site: SiteId, l: LockId) {
        self.ft.lock_acquire(t, l);
    }
    fn release(&mut self, _idx: u64, t: ThreadId, _site: SiteId, l: LockId) {
        self.ft.lock_release(t, l);
    }
    fn signal(&mut self, _idx: u64, t: ThreadId, _site: SiteId, c: CondId) {
        self.ft.signal(t, c);
    }
    fn wait(&mut self, _idx: u64, t: ThreadId, _site: SiteId, c: CondId) {
        self.ft.wait(t, c);
    }
    fn spawn(&mut self, _idx: u64, t: ThreadId, _site: SiteId, child: ThreadId) {
        self.ft.spawn(t, child);
    }
    fn join(&mut self, _idx: u64, t: ThreadId, _site: SiteId, child: ThreadId) {
        self.ft.join(t, child);
    }
    fn barrier_release(&mut self, _idx: u64, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        self.ft.barrier_arrivals(b, arrivals);
    }
    fn chan_send(&mut self, _idx: u64, t: ThreadId, _site: SiteId, ch: ChanId) {
        self.ft.chan_send(t, ch);
    }
    fn chan_recv(&mut self, _idx: u64, t: ThreadId, _site: SiteId, ch: ChanId) {
        self.ft.chan_recv(t, ch);
    }
}

/// Result of a sharded FastTrack replay pass.
#[derive(Debug)]
pub struct ShardedFtOutcome {
    /// Merged races, byte-identical to a serial Exact-mode replay.
    pub races: RaceSet,
    /// Total access checks (sums to the serial count — each access is
    /// checked on exactly one shard).
    pub checks: u64,
    /// Sync operations tracked (per shard; identical on every shard
    /// because sync events broadcast).
    pub sync_ops: u64,
    /// Per-shard work/timing breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
}

/// FastTrack with shadow state partitioned across `workers` shards.
///
/// `run` indexes the log ([`ShardPlan::build`]) and merges the per-shard
/// verdicts; the outcome is byte-identical to a serial
/// `FastTrack::new(threads, ShadowMode::Exact)` replay of the same log
/// (races, report order, check totals). See the module docs for the
/// equivalence argument and why `Cells` mode is excluded.
#[derive(Debug, Clone, Copy)]
pub struct ShardedFastTrack {
    threads: usize,
    workers: usize,
}

impl ShardedFastTrack {
    /// Creates a sharded detector over `workers >= 1` shards.
    pub fn new(threads: usize, workers: usize) -> Self {
        ShardedFastTrack {
            threads,
            workers: workers.max(1),
        }
    }

    /// Indexes `log` and runs all shards on scoped threads.
    pub fn run(&self, log: &EventLog) -> ShardedFtOutcome {
        self.run_with_plan(&ShardPlan::build(log, self.workers))
    }

    /// [`ShardedFastTrack::run`] with the shards executed sequentially
    /// on the calling thread. Shards are fully independent, so the
    /// outcome is identical to the threaded path — this exists for
    /// single-core hosts (threading cannot help there) and for clean
    /// per-shard [`ShardStats::wall_ns`] measurements, which the
    /// threaded path pollutes with preemption whenever shards outnumber
    /// cores.
    pub fn run_serial(&self, log: &EventLog) -> ShardedFtOutcome {
        self.run_with_plan_serial(&ShardPlan::build(log, self.workers))
    }

    /// Runs the shards over an existing plan on scoped threads — the
    /// entry point for harnesses that amortize one [`ShardPlan`] across
    /// several detectors or repetitions.
    pub fn run_with_plan(&self, plan: &ShardPlan) -> ShardedFtOutcome {
        self.run_plan(plan, true)
    }

    /// [`ShardedFastTrack::run_with_plan`], sequentially on the calling
    /// thread.
    pub fn run_with_plan_serial(&self, plan: &ShardPlan) -> ShardedFtOutcome {
        self.run_plan(plan, false)
    }

    fn run_plan(&self, plan: &ShardPlan, parallel: bool) -> ShardedFtOutcome {
        assert_eq!(plan.shards(), self.workers, "plan built for another width");
        let consumers: Vec<FtShard> = (0..self.workers).map(|_| FtShard::new(self.threads)).collect();
        let reports = fan_out_indexed(plan.sync(), plan.partition(), consumers, parallel);
        let mut tagged: Vec<(u64, RaceReport)> = Vec::new();
        let mut shards = Vec::with_capacity(self.workers);
        let mut checks = 0;
        let mut sync_ops = 0;
        for r in reports {
            let w = r.consumer;
            shards.push(ShardStats {
                shard: r.shard,
                events: r.events,
                checks: w.ft.checks(),
                races_found: w.tagged.len() as u64,
                wall_ns: r.wall_ns,
            });
            checks += w.ft.checks();
            sync_ops = w.ft.sync_ops();
            tagged.extend(w.tagged);
        }
        // Stable sort: same-event reports all come from one shard (an
        // address has one owner), so their within-shard order survives.
        tagged.sort_by_key(|&(idx, _)| idx);
        let races: RaceSet = tagged.into_iter().map(|(_, r)| r).collect();
        ShardedFtOutcome {
            races,
            checks,
            sync_ops,
            shards,
        }
    }
}

/// One lockset shard: full held-lock state, 1/W of the variable state.
struct LsShard {
    ls: Lockset,
    checks: u64,
    tagged: Vec<(u64, LocksetReport)>,
}

impl LsShard {
    fn new(threads: usize) -> Self {
        LsShard {
            ls: Lockset::new(threads),
            checks: 0,
            tagged: Vec::new(),
        }
    }
}

impl IndexedConsumer for LsShard {
    fn access(&mut self, a: &IndexedAccess) {
        self.checks += 1;
        let before = self.ls.reports().len();
        if a.is_write {
            self.ls.write(a.thread, a.site, a.addr);
        } else {
            self.ls.read(a.thread, a.site, a.addr);
        }
        for r in &self.ls.reports()[before..] {
            self.tagged.push((a.idx, *r));
        }
    }
    fn acquire(&mut self, _idx: u64, t: ThreadId, _site: SiteId, l: LockId) {
        self.ls.lock_acquire(t, l);
    }
    fn release(&mut self, _idx: u64, t: ThreadId, _site: SiteId, l: LockId) {
        self.ls.lock_release(t, l);
    }
    // Eraser is blind to every other form of synchronization (signals,
    // barriers, channels, fork/join) — the defaults ignore them.
}

/// Result of a sharded lockset replay pass.
#[derive(Debug)]
pub struct ShardedLsOutcome {
    /// Merged violations, in serial discovery order.
    pub reports: Vec<LocksetReport>,
    /// Per-shard work/timing breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
}

/// Eraser lockset with variable state partitioned across `workers`
/// shards: accesses route by address, mutex events broadcast. Each
/// variable reports at most once and lives on exactly one shard, so
/// merging per-shard reports by global event index reproduces the
/// serial report list exactly.
#[derive(Debug, Clone, Copy)]
pub struct ShardedLockset {
    threads: usize,
    workers: usize,
}

impl ShardedLockset {
    /// Creates a sharded detector over `workers >= 1` shards.
    pub fn new(threads: usize, workers: usize) -> Self {
        ShardedLockset {
            threads,
            workers: workers.max(1),
        }
    }

    /// Indexes `log` and runs all shards on scoped threads.
    pub fn run(&self, log: &EventLog) -> ShardedLsOutcome {
        self.run_with_plan(&ShardPlan::build(log, self.workers))
    }

    /// [`ShardedLockset::run`] with the shards executed sequentially on
    /// the calling thread — identical outcome, clean per-shard timing
    /// (see [`ShardedFastTrack::run_serial`]).
    pub fn run_serial(&self, log: &EventLog) -> ShardedLsOutcome {
        self.run_with_plan_serial(&ShardPlan::build(log, self.workers))
    }

    /// Runs the shards over an existing plan on scoped threads.
    pub fn run_with_plan(&self, plan: &ShardPlan) -> ShardedLsOutcome {
        self.run_plan(plan, true)
    }

    /// [`ShardedLockset::run_with_plan`], sequentially on the calling
    /// thread.
    pub fn run_with_plan_serial(&self, plan: &ShardPlan) -> ShardedLsOutcome {
        self.run_plan(plan, false)
    }

    fn run_plan(&self, plan: &ShardPlan, parallel: bool) -> ShardedLsOutcome {
        assert_eq!(plan.shards(), self.workers, "plan built for another width");
        let consumers: Vec<LsShard> = (0..self.workers).map(|_| LsShard::new(self.threads)).collect();
        let reports = fan_out_indexed(plan.sync(), plan.partition(), consumers, parallel);
        let mut tagged: Vec<(u64, LocksetReport)> = Vec::new();
        let mut shards = Vec::with_capacity(self.workers);
        for r in reports {
            let w = r.consumer;
            shards.push(ShardStats {
                shard: r.shard,
                events: r.events,
                checks: w.checks,
                races_found: w.tagged.len() as u64,
                wall_ns: r.wall_ns,
            });
            tagged.extend(w.tagged);
        }
        tagged.sort_by_key(|&(idx, _)| idx);
        ShardedLsOutcome {
            reports: tagged.into_iter().map(|(_, r)| r).collect(),
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::{record_run, FairSched, ProgramBuilder, StepLimit};

    /// A 4-thread program with races on several addresses so reports
    /// span shards, plus locks/barriers so sync broadcast matters.
    fn racy_log(seed: u64) -> (EventLog, usize) {
        let n = 4;
        let mut b = ProgramBuilder::new(n);
        let vars: Vec<_> = (0..8).map(|i| b.var(&format!("v{i}"))).collect();
        let l = b.lock_id("l");
        let bar = b.barrier_id("bar");
        let ch = b.chan_id("ch", n as u64);
        for t in 0..n {
            let mut tb = b.thread(t);
            for (i, &v) in vars.iter().enumerate() {
                if i % 2 == 0 {
                    tb.write(v, t as u64 + 1);
                } else {
                    tb.read(v);
                }
            }
            // Every thread deposits before the barrier and drains after it, so
            // the channel traffic is balanced and deadlock-free while still
            // exercising the chan_send/chan_recv broadcast path in the shards.
            tb.send(ch)
                .lock(l)
                .rmw(vars[0], 1)
                .unlock(l)
                .barrier(bar)
                .recv(ch);
            for &v in &vars {
                tb.read(v);
            }
        }
        let p = b.build();
        let mut sched = FairSched::new(seed, 0.1);
        (record_run(&p, &mut sched, StepLimit::default()), n)
    }

    #[test]
    fn sharded_fasttrack_matches_serial_for_every_worker_count() {
        for seed in [1, 9, 77] {
            let (log, n) = racy_log(seed);
            let mut serial = FastTrack::new(n, ShadowMode::Exact);
            log.replay(&mut serial);
            for workers in [1, 2, 3, 4, 8] {
                let out = ShardedFastTrack::new(n, workers).run(&log);
                assert_eq!(
                    out.races.reports(),
                    serial.races().reports(),
                    "seed={seed} workers={workers}"
                );
                let seq = ShardedFastTrack::new(n, workers).run_serial(&log);
                assert_eq!(
                    seq.races.reports(),
                    out.races.reports(),
                    "sequential and threaded shard execution must agree"
                );
                assert_eq!(out.checks, serial.checks(), "seed={seed} workers={workers}");
                assert_eq!(out.sync_ops, serial.sync_ops());
                assert_eq!(out.shards.len(), workers);
                let routed: u64 = out.shards.iter().map(|s| s.checks).sum();
                assert_eq!(routed, serial.checks(), "routing must partition accesses");
            }
        }
    }

    #[test]
    fn sharded_lockset_matches_serial_for_every_worker_count() {
        for seed in [1, 9, 77] {
            let (log, n) = racy_log(seed);
            let mut serial = Lockset::new(n);
            log.replay(&mut serial);
            for workers in [1, 2, 4, 8] {
                let out = ShardedLockset::new(n, workers).run(&log);
                assert_eq!(
                    out.reports,
                    serial.reports(),
                    "seed={seed} workers={workers}"
                );
                let seq = ShardedLockset::new(n, workers).run_serial(&log);
                assert_eq!(seq.reports, out.reports);
            }
        }
    }

    #[test]
    fn one_plan_serves_both_detectors_and_all_reps() {
        let (log, n) = racy_log(5);
        let plan = ShardPlan::build(&log, 4);
        assert_eq!(plan.shards(), 4);
        assert_eq!(plan.threads(), n);
        let ft_a = ShardedFastTrack::new(n, 4).run_with_plan(&plan);
        let ft_b = ShardedFastTrack::new(n, 4).run_with_plan_serial(&plan);
        assert_eq!(ft_a.races.reports(), ft_b.races.reports());
        let ls = ShardedLockset::new(n, 4).run_with_plan(&plan);
        let mut serial_ls = Lockset::new(n);
        log.replay(&mut serial_ls);
        assert_eq!(ls.reports, serial_ls.reports());
        // Reusing the sync stream across shard counts is the sweep path.
        let sync = SyncIndex::of(&log);
        for workers in [1usize, 2, 8] {
            let p = ShardPlan::with_sync(sync.clone(), &log, workers);
            let out = ShardedFastTrack::new(n, workers).run_with_plan(&p);
            assert_eq!(out.races.reports(), ft_a.races.reports());
        }
    }

    #[test]
    fn shard_stats_expose_sliced_event_counts() {
        let (log, n) = racy_log(5);
        let plan = ShardPlan::build(&log, 4);
        let out = ShardedFastTrack::new(n, 4).run_with_plan_serial(&plan);
        let sync_len = plan.sync().len() as u64;
        let mut sliced_total = 0;
        for s in &out.shards {
            assert_eq!(
                s.events,
                plan.partition().slice(s.shard).len() as u64 + sync_len,
                "each shard dispatches its slice plus the sync stream"
            );
            assert_eq!(s.events, plan.shard_events(s.shard));
            assert!(
                s.events < log.len() as u64,
                "an indexed shard never walks the whole log"
            );
            sliced_total += s.events - sync_len;
        }
        assert_eq!(
            sliced_total,
            plan.partition().total_accesses(),
            "slices partition the accesses"
        );
        assert!(out.shards.iter().filter(|s| s.checks > 0).count() > 1);
    }

    #[test]
    fn shard_of_is_total_and_stable() {
        for shards in 1..=8 {
            for a in 0..64u64 {
                let s = shard_of(Addr(a * 8), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(Addr(a * 8), shards));
            }
        }
    }
}
