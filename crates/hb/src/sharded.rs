//! Address-sharded replay detection: FastTrack / lockset shadow state
//! partitioned across W workers, each replaying the same [`EventLog`].
//!
//! The parallelization rule is the classic one for per-variable race
//! detectors:
//!
//! * **Data accesses route.** Each address is owned by exactly one shard
//!   ([`shard_of`]); a shard checks only the accesses it owns, so the
//!   shadow-state work — the dominant cost on access-heavy traces — is
//!   split W ways.
//! * **Sync events broadcast.** Every shard processes every
//!   lock/unlock/signal/wait/spawn/join/barrier event, so each shard
//!   maintains the *full* vector-clock state. A variable's race verdict
//!   depends only on the sync history plus that variable's own accesses,
//!   both of which its owning shard sees completely — hence every
//!   per-access verdict is identical to the serial detector's.
//! * **Reports merge deterministically.** Each shard tags its reports
//!   with the global index of the triggering event (all shards count
//!   every event, so indices agree). Concatenating the per-shard report
//!   lists in shard order and stable-sorting by event index reconstructs
//!   the serial discovery order exactly; feeding that sequence through a
//!   fresh [`RaceSet`] reproduces the serial first-report-per-pair
//!   dedup, because a pair's globally-first report is also first within
//!   its own shard (an address lives on one shard only).
//!
//! Sharding supports [`ShadowMode::Exact`] only: `Cells` mode draws
//! evictions from a single global RNG stream whose state depends on the
//! interleaved access order across *all* addresses, which no
//! partitioning can reproduce.

use std::time::Instant;

use txrace_sim::{
    Addr, BarrierId, ChanId, CondId, EventLog, LockId, SiteId, ThreadId, TraceConsumer,
};

use crate::fasttrack::{FastTrack, ShadowMode};
use crate::lockset::{Lockset, LocksetReport};
use crate::report::{RaceReport, RaceSet};

/// The shard owning `addr` among `shards` shards.
///
/// Routing hashes the 8-byte word index (Fibonacci multiplicative hash)
/// and maps the hash to `0..shards` through its *top* bits (128-bit
/// multiply-shift) rather than a plain modulo: scalar variables are
/// allocated one per 64-byte cache line, so `word_index % shards` would
/// alias every scalar onto one shard whenever `shards` divides 8, and
/// the low bits of a multiplicative hash step too slowly for strided
/// inputs. The top-bits mapping spreads both line-aligned scalars and
/// dense array strides evenly.
#[inline]
pub fn shard_of(addr: Addr, shards: usize) -> usize {
    let h = (addr.0 >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h as u128 * shards as u128) >> 64) as usize
}

/// Per-shard timing and work counters, for imbalance diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Total events this shard observed (identical across shards).
    pub events: u64,
    /// Access checks this shard performed (its routed share).
    pub checks: u64,
    /// Dynamic reports this shard produced before the merge.
    pub races_found: u64,
    /// Wall time of this shard's replay pass, in nanoseconds.
    pub wall_ns: u64,
}

/// One FastTrack shard: full sync state, 1/W of the shadow state.
///
/// Bumps a global event counter in *every* consumer method so report
/// tags align with absolute log positions across shards.
struct FtShard {
    shard: usize,
    shards: usize,
    ft: FastTrack,
    event_idx: u64,
    /// `(global event index, report)` in within-shard discovery order.
    tagged: Vec<(u64, RaceReport)>,
}

impl FtShard {
    fn new(threads: usize, shard: usize, shards: usize) -> Self {
        FtShard {
            shard,
            shards,
            ft: FastTrack::new(threads, ShadowMode::Exact),
            event_idx: 0,
            tagged: Vec::new(),
        }
    }

    /// Tags any reports the last access produced with the event index.
    fn collect_new_reports(&mut self, idx: u64, before: usize) {
        for r in &self.ft.races().reports()[before..] {
            self.tagged.push((idx, *r));
        }
    }

    fn owns(&self, addr: Addr) -> bool {
        shard_of(addr, self.shards) == self.shard
    }
}

impl TraceConsumer for FtShard {
    fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        let idx = self.event_idx;
        self.event_idx += 1;
        if self.owns(addr) {
            let before = self.ft.races().reports().len();
            self.ft.read(t, site, addr);
            self.collect_new_reports(idx, before);
        }
    }
    fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        let idx = self.event_idx;
        self.event_idx += 1;
        if self.owns(addr) {
            let before = self.ft.races().reports().len();
            self.ft.write(t, site, addr);
            self.collect_new_reports(idx, before);
        }
    }
    fn rmw(&mut self, _t: ThreadId, _site: SiteId, _addr: Addr) {
        self.event_idx += 1; // atomics are never checked (C11 model)
    }
    fn acquire(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.event_idx += 1;
        self.ft.lock_acquire(t, l);
    }
    fn release(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.event_idx += 1;
        self.ft.lock_release(t, l);
    }
    fn signal(&mut self, t: ThreadId, _site: SiteId, c: CondId) {
        self.event_idx += 1;
        self.ft.signal(t, c);
    }
    fn wait(&mut self, t: ThreadId, _site: SiteId, c: CondId) {
        self.event_idx += 1;
        self.ft.wait(t, c);
    }
    fn spawn(&mut self, t: ThreadId, _site: SiteId, child: ThreadId) {
        self.event_idx += 1;
        self.ft.spawn(t, child);
    }
    fn join(&mut self, t: ThreadId, _site: SiteId, child: ThreadId) {
        self.event_idx += 1;
        self.ft.join(t, child);
    }
    fn barrier_arrive(&mut self, _t: ThreadId, _site: SiteId, _b: BarrierId) {
        self.event_idx += 1;
    }
    fn barrier_release(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        self.event_idx += 1;
        self.ft.barrier_arrivals(b, arrivals);
    }
    fn chan_send(&mut self, t: ThreadId, _site: SiteId, ch: ChanId) {
        self.event_idx += 1;
        self.ft.chan_send(t, ch);
    }
    fn chan_recv(&mut self, t: ThreadId, _site: SiteId, ch: ChanId) {
        self.event_idx += 1;
        self.ft.chan_recv(t, ch);
    }
    fn compute(&mut self, _t: ThreadId, _site: SiteId, _units: u32) {
        self.event_idx += 1;
    }
    fn syscall(&mut self, _t: ThreadId, _site: SiteId, _kind: txrace_sim::SyscallKind) {
        self.event_idx += 1;
    }
    fn thread_done(&mut self, _t: ThreadId) {
        self.event_idx += 1;
    }
}

/// Result of a sharded FastTrack replay pass.
#[derive(Debug)]
pub struct ShardedFtOutcome {
    /// Merged races, byte-identical to a serial Exact-mode replay.
    pub races: RaceSet,
    /// Total access checks (sums to the serial count — each access is
    /// checked on exactly one shard).
    pub checks: u64,
    /// Sync operations tracked (per shard; identical on every shard
    /// because sync events broadcast).
    pub sync_ops: u64,
    /// Per-shard work/timing breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
}

/// One FastTrack shard's raw output before the merge: its stats, its
/// event-index-tagged reports, and its sync-op count.
type FtShardResult = (ShardStats, Vec<(u64, RaceReport)>, u64);

/// FastTrack with shadow state partitioned across `workers` shards.
///
/// `run` replays the log once per shard on scoped threads; the merged
/// outcome is byte-identical to a serial
/// `FastTrack::new(threads, ShadowMode::Exact)` replay of the same log
/// (races, report order, check totals). See the module docs for the
/// equivalence argument and why `Cells` mode is excluded.
#[derive(Debug, Clone, Copy)]
pub struct ShardedFastTrack {
    threads: usize,
    workers: usize,
}

impl ShardedFastTrack {
    /// Creates a sharded detector over `workers >= 1` shards.
    pub fn new(threads: usize, workers: usize) -> Self {
        ShardedFastTrack {
            threads,
            workers: workers.max(1),
        }
    }

    /// Replays `log` across all shards on scoped threads (one per
    /// shard) and merges the verdicts.
    pub fn run(&self, log: &EventLog) -> ShardedFtOutcome {
        let results = if self.workers == 1 {
            vec![self.run_shard(log, 0)]
        } else {
            run_sharded(self.workers, |shard| self.run_shard(log, shard))
        };
        self.merge(results)
    }

    /// [`ShardedFastTrack::run`] with the shards executed sequentially
    /// on the calling thread. Shards are fully independent, so the
    /// outcome is identical to the threaded path — this exists for
    /// single-core hosts (threading cannot help there) and for clean
    /// per-shard [`ShardStats::wall_ns`] measurements, which the
    /// threaded path pollutes with preemption whenever shards outnumber
    /// cores.
    pub fn run_serial(&self, log: &EventLog) -> ShardedFtOutcome {
        self.merge((0..self.workers).map(|s| self.run_shard(log, s)).collect())
    }

    fn run_shard(&self, log: &EventLog, shard: usize) -> FtShardResult {
        let t0 = Instant::now();
        let mut w = FtShard::new(self.threads, shard, self.workers);
        log.replay(&mut w);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let stats = ShardStats {
            shard,
            events: w.event_idx,
            checks: w.ft.checks(),
            races_found: w.tagged.len() as u64,
            wall_ns,
        };
        (stats, w.tagged, w.ft.sync_ops())
    }

    fn merge(&self, results: Vec<FtShardResult>) -> ShardedFtOutcome {
        let mut tagged: Vec<(u64, RaceReport)> = Vec::new();
        let mut shards = Vec::with_capacity(self.workers);
        let mut checks = 0;
        let sync_ops = results[0].2;
        for (stats, t, _) in results {
            checks += stats.checks;
            shards.push(stats);
            tagged.extend(t);
        }
        // Stable sort: same-event reports all come from one shard (an
        // address has one owner), so their within-shard order survives.
        tagged.sort_by_key(|&(idx, _)| idx);
        let races: RaceSet = tagged.into_iter().map(|(_, r)| r).collect();
        ShardedFtOutcome {
            races,
            checks,
            sync_ops,
            shards,
        }
    }
}

/// One lockset shard: full held-lock state, 1/W of the variable state.
struct LsShard {
    shard: usize,
    shards: usize,
    ls: Lockset,
    event_idx: u64,
    checks: u64,
    tagged: Vec<(u64, LocksetReport)>,
}

impl LsShard {
    fn new(threads: usize, shard: usize, shards: usize) -> Self {
        LsShard {
            shard,
            shards,
            ls: Lockset::new(threads),
            event_idx: 0,
            checks: 0,
            tagged: Vec::new(),
        }
    }

    fn access(&mut self, t: ThreadId, site: SiteId, addr: Addr, is_write: bool) {
        let idx = self.event_idx;
        self.event_idx += 1;
        if shard_of(addr, self.shards) != self.shard {
            return;
        }
        self.checks += 1;
        let before = self.ls.reports().len();
        if is_write {
            self.ls.write(t, site, addr);
        } else {
            self.ls.read(t, site, addr);
        }
        for r in &self.ls.reports()[before..] {
            self.tagged.push((idx, *r));
        }
    }
}

impl TraceConsumer for LsShard {
    fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.access(t, site, addr, false);
    }
    fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.access(t, site, addr, true);
    }
    fn rmw(&mut self, _t: ThreadId, _site: SiteId, _addr: Addr) {
        self.event_idx += 1;
    }
    fn acquire(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.event_idx += 1;
        self.ls.lock_acquire(t, l);
    }
    fn release(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.event_idx += 1;
        self.ls.lock_release(t, l);
    }
    fn signal(&mut self, _t: ThreadId, _site: SiteId, _c: CondId) {
        self.event_idx += 1; // Eraser is blind to non-mutex sync
    }
    fn wait(&mut self, _t: ThreadId, _site: SiteId, _c: CondId) {
        self.event_idx += 1;
    }
    fn spawn(&mut self, _t: ThreadId, _site: SiteId, _child: ThreadId) {
        self.event_idx += 1;
    }
    fn join(&mut self, _t: ThreadId, _site: SiteId, _child: ThreadId) {
        self.event_idx += 1;
    }
    fn barrier_arrive(&mut self, _t: ThreadId, _site: SiteId, _b: BarrierId) {
        self.event_idx += 1;
    }
    fn barrier_release(&mut self, _b: BarrierId, _arrivals: &[(ThreadId, SiteId)]) {
        self.event_idx += 1;
    }
    fn chan_send(&mut self, _t: ThreadId, _site: SiteId, _ch: ChanId) {
        self.event_idx += 1; // Eraser is blind to non-mutex sync
    }
    fn chan_recv(&mut self, _t: ThreadId, _site: SiteId, _ch: ChanId) {
        self.event_idx += 1;
    }
    fn compute(&mut self, _t: ThreadId, _site: SiteId, _units: u32) {
        self.event_idx += 1;
    }
    fn syscall(&mut self, _t: ThreadId, _site: SiteId, _kind: txrace_sim::SyscallKind) {
        self.event_idx += 1;
    }
    fn thread_done(&mut self, _t: ThreadId) {
        self.event_idx += 1;
    }
}

/// Result of a sharded lockset replay pass.
#[derive(Debug)]
pub struct ShardedLsOutcome {
    /// Merged violations, in serial discovery order.
    pub reports: Vec<LocksetReport>,
    /// Per-shard work/timing breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
}

/// Eraser lockset with variable state partitioned across `workers`
/// shards: accesses route by address, mutex events broadcast. Each
/// variable reports at most once and lives on exactly one shard, so
/// merging per-shard reports by global event index reproduces the
/// serial report list exactly.
#[derive(Debug, Clone, Copy)]
pub struct ShardedLockset {
    threads: usize,
    workers: usize,
}

impl ShardedLockset {
    /// Creates a sharded detector over `workers >= 1` shards.
    pub fn new(threads: usize, workers: usize) -> Self {
        ShardedLockset {
            threads,
            workers: workers.max(1),
        }
    }

    /// Replays `log` across all shards on scoped threads (one per
    /// shard) and merges the verdicts.
    pub fn run(&self, log: &EventLog) -> ShardedLsOutcome {
        let results = if self.workers == 1 {
            vec![self.run_shard(log, 0)]
        } else {
            run_sharded(self.workers, |shard| self.run_shard(log, shard))
        };
        self.merge(results)
    }

    /// [`ShardedLockset::run`] with the shards executed sequentially on
    /// the calling thread — identical outcome, clean per-shard timing
    /// (see [`ShardedFastTrack::run_serial`]).
    pub fn run_serial(&self, log: &EventLog) -> ShardedLsOutcome {
        self.merge((0..self.workers).map(|s| self.run_shard(log, s)).collect())
    }

    fn run_shard(&self, log: &EventLog, shard: usize) -> (ShardStats, Vec<(u64, LocksetReport)>) {
        let t0 = Instant::now();
        let mut w = LsShard::new(self.threads, shard, self.workers);
        log.replay(&mut w);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let stats = ShardStats {
            shard,
            events: w.event_idx,
            checks: w.checks,
            races_found: w.tagged.len() as u64,
            wall_ns,
        };
        (stats, w.tagged)
    }

    fn merge(&self, results: Vec<(ShardStats, Vec<(u64, LocksetReport)>)>) -> ShardedLsOutcome {
        let mut tagged: Vec<(u64, LocksetReport)> = Vec::new();
        let mut shards = Vec::with_capacity(self.workers);
        for (stats, t) in results {
            shards.push(stats);
            tagged.extend(t);
        }
        tagged.sort_by_key(|&(idx, _)| idx);
        ShardedLsOutcome {
            reports: tagged.into_iter().map(|(_, r)| r).collect(),
            shards,
        }
    }
}

/// Runs `f(0..workers)` on scoped threads, returning results in shard
/// order.
fn run_sharded<R: Send>(workers: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let mut slots: Vec<Option<R>> = (0..workers).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (shard, slot) in slots.iter_mut().enumerate() {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(shard));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every shard thread fills its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::{record_run, FairSched, ProgramBuilder, StepLimit};

    /// A 4-thread program with races on several addresses so reports
    /// span shards, plus locks/barriers so sync broadcast matters.
    fn racy_log(seed: u64) -> (EventLog, usize) {
        let n = 4;
        let mut b = ProgramBuilder::new(n);
        let vars: Vec<_> = (0..8).map(|i| b.var(&format!("v{i}"))).collect();
        let l = b.lock_id("l");
        let bar = b.barrier_id("bar");
        let ch = b.chan_id("ch", n as u64);
        for t in 0..n {
            let mut tb = b.thread(t);
            for (i, &v) in vars.iter().enumerate() {
                if i % 2 == 0 {
                    tb.write(v, t as u64 + 1);
                } else {
                    tb.read(v);
                }
            }
            // Every thread deposits before the barrier and drains after it, so
            // the channel traffic is balanced and deadlock-free while still
            // exercising the chan_send/chan_recv broadcast path in the shards.
            tb.send(ch)
                .lock(l)
                .rmw(vars[0], 1)
                .unlock(l)
                .barrier(bar)
                .recv(ch);
            for &v in &vars {
                tb.read(v);
            }
        }
        let p = b.build();
        let mut sched = FairSched::new(seed, 0.1);
        (record_run(&p, &mut sched, StepLimit::default()), n)
    }

    #[test]
    fn sharded_fasttrack_matches_serial_for_every_worker_count() {
        for seed in [1, 9, 77] {
            let (log, n) = racy_log(seed);
            let mut serial = FastTrack::new(n, ShadowMode::Exact);
            log.replay(&mut serial);
            for workers in [1, 2, 3, 4, 8] {
                let out = ShardedFastTrack::new(n, workers).run(&log);
                assert_eq!(
                    out.races.reports(),
                    serial.races().reports(),
                    "seed={seed} workers={workers}"
                );
                let seq = ShardedFastTrack::new(n, workers).run_serial(&log);
                assert_eq!(
                    seq.races.reports(),
                    out.races.reports(),
                    "sequential and threaded shard execution must agree"
                );
                assert_eq!(out.checks, serial.checks(), "seed={seed} workers={workers}");
                assert_eq!(out.sync_ops, serial.sync_ops());
                assert_eq!(out.shards.len(), workers);
                let routed: u64 = out.shards.iter().map(|s| s.checks).sum();
                assert_eq!(routed, serial.checks(), "routing must partition accesses");
            }
        }
    }

    #[test]
    fn sharded_lockset_matches_serial_for_every_worker_count() {
        for seed in [1, 9, 77] {
            let (log, n) = racy_log(seed);
            let mut serial = Lockset::new(n);
            log.replay(&mut serial);
            for workers in [1, 2, 4, 8] {
                let out = ShardedLockset::new(n, workers).run(&log);
                assert_eq!(
                    out.reports,
                    serial.reports(),
                    "seed={seed} workers={workers}"
                );
                let seq = ShardedLockset::new(n, workers).run_serial(&log);
                assert_eq!(seq.reports, out.reports);
            }
        }
    }

    #[test]
    fn shard_stats_expose_balanced_event_counts() {
        let (log, n) = racy_log(5);
        let out = ShardedFastTrack::new(n, 4).run(&log);
        for s in &out.shards {
            assert_eq!(s.events, log.len() as u64, "broadcast sees every event");
        }
        assert!(out.shards.iter().filter(|s| s.checks > 0).count() > 1);
    }

    #[test]
    fn shard_of_is_total_and_stable() {
        for shards in 1..=8 {
            for a in 0..64u64 {
                let s = shard_of(Addr(a * 8), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(Addr(a * 8), shards));
            }
        }
    }
}
