//! # txrace-hb
//!
//! Software happens-before data-race detection: the *slow path* of TxRace
//! and the full-program TSan baseline it is compared against.
//!
//! The core is [`FastTrack`], an implementation of the FastTrack algorithm
//! (Flanagan & Freund, PLDI '09) — the same epoch/vector-clock design
//! Google ThreadSanitizer implements, which the paper uses both as its
//! baseline and as TxRace's on-demand precise detector. It is *sound* (no
//! missed races on the analyzed trace) and *complete* (no false reports),
//! and works at word granularity, which is how the slow path filters out
//! the cache-line false sharing the HTM fast path cannot distinguish.
//!
//! TSan bounds its shadow memory to N cells per granule and randomly
//! evicts when full, sacrificing soundness; [`ShadowMode::Cells`] models
//! that, and [`ShadowMode::Exact`] models the paper's configuration of
//! "enough shadow cells to be sound" (§5).
//!
//! [`VectorClockDetector`] is a reference implementation using full vector
//! clocks everywhere (no epoch optimization); property tests check that
//! FastTrack reports exactly the same races. [`Lockset`] is an
//! Eraser-style detector kept as an incomplete-but-cheap baseline.
//!
//! ```
//! use txrace_hb::{FastTrack, ShadowMode};
//! use txrace_sim::{Addr, SiteId, ThreadId};
//!
//! let mut ft = FastTrack::new(2, ShadowMode::Exact);
//! let x = Addr(0x400);
//! ft.write(ThreadId(0), SiteId(1), x);
//! ft.read(ThreadId(1), SiteId(2), x); // unordered: a race
//! assert_eq!(ft.races().distinct_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod fasttrack;
pub mod lockset;
pub mod report;
pub mod sharded;
pub mod vcref;

pub use clock::{Epoch, VectorClock};
pub use fasttrack::{FastTrack, ShadowMode};
pub use lockset::{Lockset, LocksetReport};
pub use report::{AccessInfo, AccessKind, RacePair, RaceReport, RaceSet};
pub use sharded::{
    shard_of, ShardPlan, ShardStats, ShardedFastTrack, ShardedFtOutcome, ShardedLockset,
    ShardedLsOutcome,
};
pub use vcref::VectorClockDetector;
