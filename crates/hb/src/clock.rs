//! Vector clocks and epochs.

use std::fmt;

use txrace_sim::ThreadId;

/// A dense vector clock over a fixed thread universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    clocks: Vec<u32>,
}

impl VectorClock {
    /// The all-zero clock over `n` threads.
    pub fn zero(n: usize) -> Self {
        VectorClock { clocks: vec![0; n] }
    }

    /// The initial clock of thread `t` in a universe of `n`: everything 0
    /// except the own component, which starts at 1 (the FastTrack
    /// convention, so the bottom epoch `0@0` happens-before everything).
    pub fn initial(t: ThreadId, n: usize) -> Self {
        let mut vc = Self::zero(n);
        vc.clocks[t.index()] = 1;
        vc
    }

    /// Number of threads in the universe.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// True if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// The component for thread `t`.
    #[inline]
    pub fn get(&self, t: ThreadId) -> u32 {
        self.clocks[t.index()]
    }

    /// Increments the component for thread `t`.
    #[inline]
    pub fn inc(&mut self, t: ThreadId) {
        self.clocks[t.index()] += 1;
    }

    /// Pointwise maximum: `self := self ⊔ other`.
    pub fn join(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.clocks.len(), other.clocks.len());
        for (a, b) in self.clocks.iter_mut().zip(&other.clocks) {
            *a = (*a).max(*b);
        }
    }

    /// Pointwise comparison: true if `self[u] <= other[u]` for all `u`.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.clocks.iter().zip(&other.clocks).all(|(a, b)| a <= b)
    }

    /// The epoch of thread `t` under this clock.
    #[inline]
    pub fn epoch(&self, t: ThreadId) -> Epoch {
        Epoch {
            tid: t,
            clock: self.clocks[t.index()],
        }
    }

    /// The raw per-thread components (indexed by thread index), for hot
    /// loops that want one bounds check instead of one per component.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u32] {
        &self.clocks
    }

    /// Iterates `(thread, clock)` pairs with nonzero clocks.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (ThreadId, u32)> + '_ {
        self.clocks
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (ThreadId(i as u32), c))
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, c) in self.clocks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ">")
    }
}

/// A scalar clock value paired with its owning thread: `c@t`.
///
/// FastTrack's key optimization: most variables' access histories are
/// representable by a single epoch instead of a whole vector clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Epoch {
    /// Owning thread.
    pub tid: ThreadId,
    /// Clock value.
    pub clock: u32,
}

impl Epoch {
    /// The bottom epoch `0@t0`, which happens-before everything (thread
    /// clocks start at 1).
    pub const BOTTOM: Epoch = Epoch {
        tid: ThreadId(0),
        clock: 0,
    };

    /// True if this epoch happens-before (or equals) the point described
    /// by `vc`: `clock <= vc[tid]`.
    #[inline]
    pub fn leq(self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.tid)
    }

    /// True if this is the bottom epoch.
    pub fn is_bottom(self) -> bool {
        self.clock == 0
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_clock_starts_at_one() {
        let vc = VectorClock::initial(ThreadId(1), 3);
        assert_eq!(vc.get(ThreadId(0)), 0);
        assert_eq!(vc.get(ThreadId(1)), 1);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::zero(3);
        a.inc(ThreadId(0));
        a.inc(ThreadId(0));
        let mut b = VectorClock::zero(3);
        b.inc(ThreadId(1));
        a.join(&b);
        assert_eq!(a.get(ThreadId(0)), 2);
        assert_eq!(a.get(ThreadId(1)), 1);
        assert_eq!(a.get(ThreadId(2)), 0);
    }

    #[test]
    fn leq_is_pointwise() {
        let mut a = VectorClock::zero(2);
        let mut b = VectorClock::zero(2);
        assert!(a.leq(&b));
        a.inc(ThreadId(0));
        assert!(!a.leq(&b));
        b.join(&a);
        b.inc(ThreadId(1));
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn bottom_epoch_precedes_initial_clocks() {
        let vc = VectorClock::initial(ThreadId(2), 4);
        assert!(Epoch::BOTTOM.leq(&vc));
        assert!(Epoch::BOTTOM.is_bottom());
    }

    #[test]
    fn epoch_ordering_against_clock() {
        let mut vc = VectorClock::initial(ThreadId(0), 2);
        let e = vc.epoch(ThreadId(0)); // 1@t0
        vc.inc(ThreadId(0));
        assert!(e.leq(&vc));
        let later = vc.epoch(ThreadId(0)); // 2@t0
        let old = VectorClock::initial(ThreadId(0), 2);
        assert!(!later.leq(&old));
    }

    #[test]
    fn display_formats() {
        let vc = VectorClock::initial(ThreadId(1), 3);
        assert_eq!(vc.to_string(), "<0,1,0>");
        assert_eq!(vc.epoch(ThreadId(1)).to_string(), "1@t1");
    }

    #[test]
    fn iter_nonzero_skips_zeroes() {
        let mut vc = VectorClock::zero(4);
        vc.inc(ThreadId(2));
        let v: Vec<_> = vc.iter_nonzero().collect();
        assert_eq!(v, vec![(ThreadId(2), 1)]);
    }
}
