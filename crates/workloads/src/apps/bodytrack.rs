//! bodytrack: particle-filter body tracking. The paper's most
//! interrupt-prone app (2M unknown aborts against 10M committed txns —
//! its Figure 7 bar is dominated by unknown-abort handling), with 8 true
//! races: 6 hot ones TxRace catches and 2 instances of the init idiom
//! (§8.3) it misses because the accesses never overlap (TSan 8 / TxRace 6,
//! TSan 12.78x, TxRace 8.9x).

use txrace::{CostModel, SchedKind};
use txrace_sim::{elem, ProgramBuilder, SyscallKind};

use crate::patterns::{main_scaffold, scaled_interrupts, woven_racy_iters, IterBody};
use crate::spec::{calibrate_shadow_factor, PlantedRace, RaceKind, Workload};

/// Particle iterations across all workers.
const TOTAL_ITERS: u32 = 9600;
/// Hot racy weight cells.
const HOT_RACES: usize = 6;

/// Builds bodytrack for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 25, 10);
    let weights: Vec<_> = (0..HOT_RACES)
        .map(|j| b.var(&format!("weight_{j}")))
        .collect();
    let pose_model = b.var("pose_model");
    let edge_map = b.var("edge_map");
    let iters = (TOTAL_ITERS / workers as u32).max(40);

    let mut planted: Vec<PlantedRace> = (0..HOT_RACES)
        .map(|j| {
            PlantedRace::new(
                format!("weight_w_{j}"),
                format!("weight_r_{j}"),
                RaceKind::Overlapping,
            )
        })
        .collect();
    planted.push(PlantedRace::new(
        "pose_init",
        "pose_use",
        RaceKind::InitIdiom,
    ));
    planted.push(PlantedRace::new(
        "edge_init",
        "edge_use",
        RaceKind::InitIdiom,
    ));

    for w in 1..=workers {
        let scratch = b.array(&format!("particles_{w}"), 16);
        let flush = (70 * 4 / workers as u64).max(8);
        let likelihood = b.array(&format!("likelihood_{w}"), (flush as usize + 1) * 8 * 8);
        let body = IterBody {
            accesses: 8,
            compute: 4,
            scratch,
        };
        let mut tb = b.thread(w);
        // Init idiom, write side: worker 1 initializes shared model
        // structures at startup, while they are logically thread-local —
        // no synchronization publishes them.
        if w == 1 {
            for a in 0..4 {
                tb.write(elem(scratch, a), 1);
            }
            tb.write_l(pose_model, 7, "pose_init");
            tb.write_l(edge_map, 9, "edge_init");
            tb.syscall(SyscallKind::Io);
        }
        // Main particle loop, in thirds so hot races sit mid-stream.
        tb.loop_n(iters / 3, |tb| {
            body.emit(tb);
            tb.syscall(SyscallKind::Io);
        });
        // Hot races on the weight array, each woven across a segment of
        // the middle third (all workers run identical-length segments so
        // participants stay position-aligned).
        for (j, &wt) in weights.iter().enumerate() {
            let writer = (j % workers) + 1;
            let reader = ((j + 1) % workers) + 1;
            let seg = (iters / 3 / HOT_RACES as u32).max(8);
            if w == writer || w == reader {
                let label = if w == writer {
                    format!("weight_w_{j}")
                } else {
                    format!("weight_r_{j}")
                };
                woven_racy_iters(&mut tb, seg / 4, 4, &body, wt, &label, w == writer);
            } else {
                tb.loop_n(seg / 4 * 4, |tb| {
                    body.emit(tb);
                    tb.syscall(SyscallKind::Io);
                });
            }
        }
        // Image-likelihood buffers overflow the write structure in a
        // straight line, repeatedly.
        tb.loop_n(24, |tb| {
            tb.loop_n(iters / 80, |tb| {
                body.emit(tb);
                tb.syscall(SyscallKind::Io);
            });
            for k in 0..flush {
                tb.write(likelihood.offset(k * 8 * 64), 1);
            }
            tb.syscall(SyscallKind::Io);
        });
        // Init idiom, read side: the last worker consumes the model
        // structures long after initialization.
        if w == workers {
            for a in 0..4 {
                tb.read(elem(scratch, a));
            }
            tb.read_l(pose_model, "pose_use");
            tb.read_l(edge_map, "edge_use");
            tb.syscall(SyscallKind::Io);
        }
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 12.78);
    Workload {
        name: "bodytrack",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.03, 0.006, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted,
        scale: "transactions 1:1000 vs paper",
    }
}
