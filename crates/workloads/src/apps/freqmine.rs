//! freqmine: frequent-itemset mining with few, very large mining regions
//! plus a stream of tiny bookkeeping regions around its I/O. The paper's
//! best case for TxRace (1.15x vs TSan's 14x): the huge transactions
//! amortize management cost, and what aborts (mostly unknown aborts near
//! the I/O bookkeeping) re-executes only cheap regions.

use txrace::{CostModel, SchedKind};
use txrace_sim::{ProgramBuilder, SyscallKind};

use crate::patterns::{capacity_walk, main_scaffold, scaled_interrupts, IterBody};
use crate::spec::{calibrate_shadow_factor, Workload};

/// Mining rounds per worker at 4 workers.
const ROUNDS_PER_WORKER_AT4: u32 = 20;
/// Tiny bookkeeping regions per round.
const TINY_PER_ROUND: u32 = 1;

/// Builds freqmine for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 40, 20);
    let rounds = (ROUNDS_PER_WORKER_AT4 * 4 / workers as u32).max(2);
    for w in 1..=workers {
        let tree = b.array(&format!("fptree_{w}"), 512);
        let body = IterBody {
            accesses: 320,
            compute: 180,
            scratch: tree,
        };
        let mut tb = b.thread(w);
        tb.loop_n(rounds, |tb| {
            body.emit(tb);
            tb.syscall(SyscallKind::Io);
            // Tiny I/O bookkeeping regions: these soak up most of the OS
            // interrupts, so unknown aborts are frequent but cheap.
            tb.loop_n(TINY_PER_ROUND, |tb| {
                tb.read(txrace_sim::elem(tree, 0));
                tb.write(txrace_sim::elem(tree, 1), 1);
                tb.read(txrace_sim::elem(tree, 2));
                tb.read(txrace_sim::elem(tree, 3));
                tb.read(txrace_sim::elem(tree, 4));
                tb.syscall(SyscallKind::Io);
            });
        });
        // One conditional-pattern-base build per worker walks a strided
        // buffer big enough to overflow the write structure (loop-cut
        // fixes it after the first abort).
        if w <= 3 {
            let walk = (90 * 4 / workers as u32).max(8);
            let base = b.array(&format!("cpb_{w}"), (walk as usize + 1) * 8 * 8);
            let mut tb = b.thread(w);
            tb.loop_n(3, |tb| {
                capacity_walk(tb, base, walk, 8);
                tb.syscall(SyscallKind::Io);
            });
        }
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 14.0);
    Workload {
        name: "freqmine",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.00003, 0.00001, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted: Vec::new(),
        scale: "transactions ~1:1 vs paper (plus tiny bookkeeping regions)",
    }
}
