//! streamcluster: online clustering with barrier phases and very tight
//! syscall-bearing loops — conflict-heavy on the shared cluster centers
//! (the second-highest conflict rate in Table 1) yet cheap for TxRace
//! because the conflicting regions are tiny while the bulk of the work is
//! private (paper: 171K conflict aborts on 757K committed txns, TSan
//! 25.9x, TxRace 2.97x, 4 races found by both).

use txrace::{CostModel, SchedKind};
use txrace_sim::{elem, ProgramBuilder, SyscallKind};

use crate::patterns::{main_scaffold, scaled_interrupts, IterBody};
use crate::spec::{calibrate_shadow_factor, PlantedRace, RaceKind, Workload};

/// Clustering phases.
const PHASES: u32 = 4;
/// Points processed per worker per phase.
const POINTS_PER_PHASE_AT4: u32 = 44;
/// Racy center coordinates.
const HOT_RACES: usize = 4;

/// Builds streamcluster for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 20, 10);
    let bar = b.barrier_id("phase");
    let centers: Vec<_> = (0..HOT_RACES)
        .map(|j| b.var(&format!("center_{j}")))
        .collect();
    let cost_acc = b.var("global_cost");
    let points = (POINTS_PER_PHASE_AT4 * 4 / workers as u32).max(8);

    let planted = (0..HOT_RACES)
        .map(|j| {
            PlantedRace::new(
                format!("center_w_{j}"),
                format!("center_r_{j}"),
                RaceKind::Overlapping,
            )
        })
        .collect();

    for w in 1..=workers {
        let scratch = b.array(&format!("points_{w}"), 256);
        let big = IterBody {
            accesses: 150,
            compute: 60,
            scratch,
        };
        let mut tb = b.thread(w);
        tb.loop_n(PHASES, |tb| {
            // Big private distance computation once per phase.
            big.emit(tb);
            tb.syscall(SyscallKind::Io);
            // Tight loop: tiny regions, each touching the shared cost
            // accumulator (atomic -> benign conflicts) — the conflict-
            // and management-heavy part.
            tb.loop_n(points / 8, |tb| {
                tb.loop_n(7, |tb| {
                    tb.read(elem(scratch, 0));
                    tb.read(elem(scratch, 1));
                    tb.write(elem(scratch, 2), 1);
                    tb.read(elem(scratch, 3));
                    tb.read(elem(scratch, 4));
                    tb.syscall(SyscallKind::Io);
                });
                tb.read(elem(scratch, 0));
                tb.read(elem(scratch, 1));
                tb.write(elem(scratch, 2), 1);
                tb.read(elem(scratch, 3));
                tb.read(elem(scratch, 4));
                tb.rmw(cost_acc, 1);
                tb.syscall(SyscallKind::Io);
            });
            // The true races: unsynchronized center updates, woven —
            // each participant touches its center every few points, so
            // writer and reader instances overlap many times per phase.
            for (j, &c) in centers.iter().enumerate() {
                let writer = (j % workers) + 1;
                let reader = ((j + 1) % workers) + 1;
                if w == writer || w == reader {
                    let label = if w == writer {
                        format!("center_w_{j}")
                    } else {
                        format!("center_r_{j}")
                    };
                    let is_writer = w == writer;
                    tb.loop_n(if is_writer { 6 } else { 5 }, |tb| {
                        tb.read(elem(scratch, 0));
                        tb.read(elem(scratch, 1));
                        if is_writer {
                            tb.write_l(c, 1, &label);
                        } else {
                            tb.read_l(c, &label);
                        }
                        tb.read(elem(scratch, 2));
                        tb.read(elem(scratch, 3));
                        tb.compute(3);
                        tb.syscall(SyscallKind::Io);
                    });
                }
            }
            tb.barrier(bar);
        });
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 25.9);
    Workload {
        name: "streamcluster",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.00002, 0.00001, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted,
        scale: "transactions 1:1000 vs paper",
    }
}
