//! swaptions: Monte-Carlo pricing whose workers run tight loops with
//! system calls in the body — the transactions are tiny and transaction
//! management dominates TxRace's overhead (the big black bar in Figure 7).
//! Strided intermediate buffers overflow the HTM write set periodically
//! (paper: 160M committed txns, 557K capacity aborts, TSan 6.77x,
//! TxRace 3.97x, no races).

use txrace::{CostModel, SchedKind};
use txrace_sim::ProgramBuilder;

use crate::patterns::{capacity_walk, main_scaffold, scaled_interrupts, IterBody};
use crate::spec::{calibrate_shadow_factor, Workload};

/// Total tight iterations across workers.
const TOTAL_ITERS: u32 = 15680;
/// Distinct strided-buffer loops per worker (each a separate static loop,
/// so each learns its own loop-cut threshold).
const WALKS_PER_WORKER: usize = 14;

/// Builds swaptions for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 15, 5);
    let iters = (TOTAL_ITERS / workers as u32).max(WALKS_PER_WORKER as u32);
    let per_block = iters / WALKS_PER_WORKER as u32;
    for w in 1..=workers {
        let scratch = b.array(&format!("path_{w}"), 8);
        // Strided simulation buffer: a stride-8-line walk overflows the
        // 8-way write structure after ~64 writes. The walk length is the
        // worker's data share, so more workers -> smaller footprints ->
        // fewer capacity aborts (the paper's Figure 8 observation).
        let walk = (90 * 4 / workers as u32).max(8);
        let sim = b.array(&format!("sim_{w}"), (walk as usize + 1) * 8 * 8);
        let body = IterBody {
            accesses: 6,
            compute: 2,
            scratch,
        };
        // One static simulation walk executed WALKS_PER_WORKER times:
        // NoOpt capacity-aborts every execution; DynLoopcut learns a
        // threshold after the first and cuts from then on; ProfLoopcut
        // starts with the profiled threshold and avoids even the first.
        // A per-batch result flush with no loop structure: these overflow
        // the write set every time, in every loop-cut mode (most of the
        // paper's 557K capacity aborts).
        let flush_len = (70 * 4 / workers as u64).max(8);
        let flush = b.array(&format!("results_{w}"), (flush_len as usize + 1) * 8 * 8);
        let mut tb = b.thread(w);
        tb.loop_n(WALKS_PER_WORKER as u32, |tb| {
            tb.loop_n(per_block, |tb| {
                body.emit(tb);
                tb.syscall(txrace_sim::SyscallKind::Io);
            });
            capacity_walk(tb, sim, walk, 8);
            tb.syscall(txrace_sim::SyscallKind::Io);
            for k in 0..flush_len {
                tb.write(flush.offset(k * 8 * 64), 1);
            }
            tb.syscall(txrace_sim::SyscallKind::Io);
        });
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 6.77);
    Workload {
        name: "swaptions",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.00003, 0.00001, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted: Vec::new(),
        scale: "transactions 1:10000 vs paper",
    }
}
