//! ferret: a similarity-search pipeline whose stages hand work over
//! through lock-protected queues, with one race on the result-list tail
//! pointer (paper: 208K committed txns, TSan 10.74x, TxRace 5.52x,
//! 1 race found by both).

use txrace::{CostModel, SchedKind};
use txrace_sim::{elem, ProgramBuilder, SyscallKind};

use crate::patterns::{main_scaffold, scaled_interrupts, woven_racy_iters, IterBody};
use crate::spec::{calibrate_shadow_factor, PlantedRace, RaceKind, Workload};

/// Pipeline items across all workers.
const TOTAL_ITEMS: u32 = 200;
/// Items between unsynchronized tail-pointer touches.
const RACE_EVERY: u32 = 10;

/// Builds ferret for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 20, 10);
    let queue = b.array("queue", 8);
    let qlock = b.lock_id("queue_lock");
    let tail = b.var("result_tail");
    let items = (TOTAL_ITEMS / workers as u32).max(RACE_EVERY);
    let blocks = items / RACE_EVERY;
    for w in 1..=workers {
        let scratch = b.array(&format!("features_{w}"), 16);
        let body = IterBody {
            accesses: 12,
            compute: 8,
            scratch,
        };
        let mut tb = b.thread(w);
        tb.loop_n(blocks, |tb| {
            tb.loop_n(RACE_EVERY - 1, |tb| {
                body.emit(tb);
                // Queue handoff under the lock (a tiny critical section:
                // slow-path-only region under the K heuristic).
                tb.lock(qlock);
                tb.read(elem(queue, 0)).write(elem(queue, 1), 1);
                tb.unlock(qlock);
            });
            body.emit(tb);
            tb.syscall(SyscallKind::Io);
        });
        // The buggy stage skips the lock for the result-list tail,
        // woven across the item stream.
        if w == 1 {
            woven_racy_iters(&mut tb, 12, 3, &body, tail, "tail_write", true);
        } else if w == 2 {
            // A different weave period than the writer: the phase offset
            // between the two streams sweeps, guaranteeing overlap.
            woven_racy_iters(&mut tb, 9, 4, &body, tail, "tail_read", false);
        }
        // One big feature-extraction buffer per worker overflows the HTM
        // write structure (a straight-line region: loop-cut cannot help).
        if w <= 2 {
            let buf = b.array(&format!("extract_{w}"), 80 * 8 * 8);
            let mut tb = b.thread(w);
            for k in 0..80u64 {
                tb.write(buf.offset(k * 8 * 64), 1);
            }
            tb.syscall(SyscallKind::Io);
        }
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 10.74);
    Workload {
        name: "ferret",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.0008, 0.0002, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted: vec![PlantedRace::new(
            "tail_write",
            "tail_read",
            RaceKind::Overlapping,
        )],
        scale: "transactions 1:1000 vs paper",
    }
}
