//! x264: frame encoding where the lookahead thread reads reconstructed
//! rows the encoder is still writing — 64 distinct racy pairs, all hot
//! enough that TxRace finds every one (paper: TSan 64 / TxRace 64 races,
//! TSan 6.45x, TxRace 5.6x — the slow path runs often, so TxRace's win is
//! small here).
//!
//! The 64 racy sites are interleaved round-robin through the encoding
//! stream (not segment-per-pair), so abort-rollback skew cannot shift one
//! pair's accesses past its partner's: every pair recurs across the whole
//! run, and the encoder and lookahead weave at different periods so their
//! phase offset sweeps through overlap.

use txrace::{CostModel, SchedKind};
use txrace_sim::{elem, ProgramBuilder, SyscallKind};

use crate::patterns::{main_scaffold, scaled_interrupts, straight_capacity_region, IterBody};
use crate::spec::{calibrate_shadow_factor, PlantedRace, RaceKind, Workload};

/// Distinct racy row pairs (Table 1: 64).
pub const RACE_PAIRS: usize = 64;
/// Encoder/lookahead rounds over all rows.
const WRITER_ROUNDS: u32 = 8;

/// Builds x264 for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 20, 10);
    let rows: Vec<_> = (0..RACE_PAIRS)
        .map(|j| b.var(&format!("row_{j}")))
        .collect();
    // Per-frame synchronization (as in the real encoder): threads realign
    // at every frame boundary, so racy row accesses at the same in-frame
    // position reliably overlap.
    let frame_sync = b.barrier_id("frame_sync");
    let planted = (0..RACE_PAIRS)
        .map(|j| {
            PlantedRace::new(
                format!("row_w_{j}"),
                format!("row_r_{j}"),
                RaceKind::Overlapping,
            )
        })
        .collect();

    for w in 1..=workers {
        let scratch = b.array(&format!("mb_{w}"), 16);
        let recon = b.array(&format!("recon_{w}"), 70 * 8 * 8);
        let body = IterBody {
            accesses: 10,
            compute: 6,
            scratch,
        };
        let mut tb = b.thread(w);
        if w == 1 {
            // Encoder: each round encodes one macroblock then publishes
            // one row, cycling over all 64 rows.
            tb.loop_n(WRITER_ROUNDS, |tb| {
                for (j, &row) in rows.iter().enumerate() {
                    body.emit(tb);
                    tb.syscall(SyscallKind::Io);
                    for a in 0..12 {
                        tb.read(elem(scratch, a));
                    }
                    tb.write_l(row, 1, &format!("row_w_{j}"));
                    for a in 0..12 {
                        tb.read(elem(scratch, a % 12));
                    }
                    tb.syscall(SyscallKind::Io);
                }
                tb.barrier(frame_sync);
            });
        } else if w == 2 {
            // Lookahead: structurally identical stream to the encoder's,
            // so fair scheduling keeps the row accesses position-aligned
            // and every pair overlaps.
            tb.loop_n(WRITER_ROUNDS, |tb| {
                for (j, &row) in rows.iter().enumerate() {
                    body.emit(tb);
                    tb.syscall(SyscallKind::Io);
                    for a in 0..12 {
                        tb.read(elem(scratch, a));
                    }
                    tb.read_l(row, &format!("row_r_{j}"));
                    for a in 0..12 {
                        tb.read(elem(scratch, a % 12));
                    }
                    tb.syscall(SyscallKind::Io);
                }
                tb.barrier(frame_sync);
            });
        } else {
            tb.loop_n(WRITER_ROUNDS, |tb| {
                tb.loop_n(2 * RACE_PAIRS as u32, |tb| {
                    body.emit(tb);
                    tb.syscall(SyscallKind::Io);
                });
                tb.barrier(frame_sync);
            });
        }
        // One reconstructed-frame flush per worker overflows the write
        // structure in a straight line.
        straight_capacity_region(&mut tb, recon, 70, 8);
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 6.45);
    Workload {
        name: "x264",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.001, 0.0003, workers),
        sched: SchedKind::Fair {
            jitter: 0.0,
            slack: 8,
        },
        planted,
        scale: "transactions 1:100 vs paper",
    }
}
