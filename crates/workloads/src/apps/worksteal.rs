//! worksteal: a work-stealing executor modeled as a ring of workers (not
//! paper Table 1 — a message-passing family added alongside the paper
//! apps). Each worker owns a bounded deque (channel); every round it
//! pushes a batch of tasks into its own deque, then steals and runs its
//! neighbour's batch. All task handoff is channel-synchronized (task
//! state itself stays worker-private: the channel edge is unidirectional
//! send→recv with no backpressure edge, so shared payload slots reused
//! across rounds would be genuinely racy) — there are no data races.

use txrace::{CostModel, SchedKind};
use txrace_sim::ProgramBuilder;

use crate::patterns::{hot_rmw, main_scaffold, scaled_interrupts, IterBody};
use crate::spec::{calibrate_shadow_factor, Workload};

/// Rounds of produce-then-steal per worker.
const ROUNDS: u32 = 12;
/// Tasks per batch; also each deque's capacity, so a worker can always
/// publish a full batch once its previous batch has been stolen.
const BATCH: u32 = 4;

/// Builds worksteal for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 10, 6);
    let deques: Vec<_> = (1..=workers)
        .map(|w| b.chan_id(&format!("deque_{w}"), u64::from(BATCH)))
        .collect();
    let tasks_done = b.var("tasks_done");
    for w in 1..=workers {
        let scratch = b.array(&format!("task_buf_{w}"), 32);
        let body = IterBody {
            accesses: 26,
            compute: 14,
            scratch,
        };
        // Worker w steals from its ring successor, so deque_w is filled
        // by w and drained by w's predecessor: per-round send and recv
        // counts match on every deque at any worker count, and the
        // round-r batch a steal consumes was published in round r — the
        // ring never deadlocks.
        let own = deques[w - 1];
        let victim = deques[w % workers];
        let mut tb = b.thread(w);
        tb.loop_n(ROUNDS, move |tb| {
            tb.loop_n(BATCH, move |tb| {
                body.emit(tb);
                tb.send(own);
            });
            tb.loop_n(BATCH, move |tb| {
                tb.recv(victim);
                body.emit(tb);
            });
            hot_rmw(tb, tasks_done);
        });
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 3.8);
    Workload {
        name: "worksteal",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.001, 0.0003, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted: Vec::new(),
        scale: "tasks 1:1000 vs an executor benchmark",
    }
}
