//! apache: the web server under ApacheBench load — request handlers take
//! the accept lock, do I/O-heavy per-request work, and bump shared
//! statistics atomically. No data races; modest overheads for both
//! detectors (paper: 311K committed txns, TSan 3.05x, TxRace 1.97x).

use txrace::{CostModel, SchedKind};
use txrace_sim::{elem, ProgramBuilder, SyscallKind};

use crate::patterns::{main_scaffold, scaled_interrupts, straight_capacity_region, IterBody};
use crate::spec::{calibrate_shadow_factor, Workload};

/// Requests across all workers.
const TOTAL_REQUESTS: u32 = 300;

/// Builds apache for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 15, 8);
    let accept_lock = b.lock_id("accept");
    let conn_queue = b.array("conn_queue", 8);
    let stats = b.var("request_count");
    let requests = (TOTAL_REQUESTS / workers as u32).max(4);
    for w in 1..=workers {
        let scratch = b.array(&format!("reqbuf_{w}"), 32);
        let body = IterBody {
            accesses: 18,
            compute: 45,
            scratch,
        };
        let mut tb = b.thread(w);
        tb.loop_n(requests, |tb| {
            // Accept: tiny critical section (slow-path-only under K).
            tb.lock(accept_lock);
            tb.read(elem(conn_queue, 0)).write(elem(conn_queue, 1), 1);
            tb.unlock(accept_lock);
            // Parse + respond: private work with I/O syscalls around it.
            body.emit(tb);
            tb.syscall(SyscallKind::Io);
            body.emit(tb);
            tb.rmw(stats, 1);
            tb.syscall(SyscallKind::Io);
        });
        if w == 1 {
            let logbuf = b.array("logbuf", 70 * 8 * 8);
            let mut tb = b.thread(1);
            straight_capacity_region(&mut tb, logbuf, 70, 8);
        }
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 3.05);
    Workload {
        name: "apache",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.001, 0.0003, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted: Vec::new(),
        scale: "requests 1:1000 vs ab run",
    }
}
