//! vips: the image-processing pipeline that is pathological for TSan
//! (shadow-memory traffic pushes it to ~1195x) and carries the paper's
//! largest race population: 112 distinct racy pairs between pipeline
//! stages.
//!
//! The racy band accesses are grouped four to a region and woven
//! round-robin through the stages' streams; whether a given group's write
//! and read regions overlap depends on how far the two stages have
//! drifted apart at that point of the schedule. A single TxRace run
//! therefore finds only a subset of the pairs (the paper finds ~79 of
//! 112) and different seeds find different subsets — accumulating across
//! runs recovers all 112 (Figure 10). TSan finds all 112 every run.

use txrace::{CostModel, SchedKind};
use txrace_sim::{elem, Addr, ProgramBuilder, SyscallKind, ThreadBuilder};

use crate::patterns::{capacity_walk, main_scaffold, scaled_interrupts, IterBody};
use crate::spec::{calibrate_shadow_factor, PlantedRace, RaceKind, Workload};

/// Distinct racy pairs (Table 1: 112 TSan races).
pub const RACE_PAIRS: usize = 112;
/// Band accesses per racy region.
const GROUP: usize = 4;
/// Rounds over all band groups.
const ROUNDS: u32 = 20;
/// Extra ops per reader group region (the sawtooth slope). Kept larger
/// than the overlap window so a conflict episode's realignment does not
/// cascade through every following group: detection happens only where
/// the ramp crosses the window.
const SKEW: usize = 10;

/// Builds vips for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 25, 10);

    let bands: Vec<_> = (0..RACE_PAIRS)
        .map(|j| b.var(&format!("band_{j}")))
        .collect();
    let planted = (0..RACE_PAIRS)
        .map(|j| {
            PlantedRace::new(
                format!("band_w_{j}"),
                format!("band_r_{j}"),
                RaceKind::SchedulerSensitive,
            )
        })
        .collect();

    // One racy region touching a group of four bands. The reader's
    // regions are `SKEW` ops longer than the writer's, so the relative
    // offset of the two stages ramps up along each round (a sawtooth:
    // the writer repays the difference at the end of its round). Which
    // part of the ramp falls inside the overlap window depends on the
    // schedule, so each seed detects a different subset of the pairs.
    let band_group_region =
        |tb: &mut ThreadBuilder<'_>, group: &[Addr], g: usize, scratch: Addr, write: bool| {
            for (i, &band) in group.iter().enumerate() {
                let j = g * GROUP + i;
                if write {
                    tb.write_l(band, 1, &format!("band_w_{j}"));
                } else {
                    tb.read_l(band, &format!("band_r_{j}"));
                }
            }
            for a in 0..32 {
                tb.read(elem(scratch, a));
            }
            if !write {
                for a in 2..2 + SKEW {
                    tb.read(elem(scratch, a));
                }
            }
            tb.syscall(SyscallKind::Io);
        };

    for w in 1..=workers {
        let scratch = b.array(&format!("tile_{w}"), 32);
        let walk = (70 * 4 / workers as u32).max(8);
        let buf = b.array(&format!("linebuf_{w}"), (walk as usize + 1) * 8 * 8);
        let body = IterBody {
            accesses: 26,
            compute: 3,
            scratch,
        };
        let mut tb = b.thread(w);
        if w <= 2 {
            // The two pipeline stages sharing image bands unsafely: each
            // round processes one tile per band group, then touches the
            // group. Whether the stages' group regions align at any given
            // group depends on accumulated scheduling drift.
            // Rounds are a runtime loop so each band keeps one static
            // site across rounds.
            tb.loop_n(ROUNDS, |tb| {
                for g in 0..(RACE_PAIRS / GROUP) {
                    body.emit(tb);
                    tb.syscall(SyscallKind::Io);
                    let group = &bands[g * GROUP..(g + 1) * GROUP];
                    band_group_region(tb, group, g, scratch, w == 1);
                }
                if w == 1 {
                    // The writer repays the reader's per-group skew so
                    // both rounds are equally long (sawtooth reset).
                    tb.loop_n((RACE_PAIRS / GROUP) as u32, |tb| {
                        for a in 2..2 + SKEW {
                            tb.read(elem(scratch, a));
                        }
                        tb.compute(1);
                    });
                }
            });
            // Line-buffer flushes (stage 1 only) are a big strided loop:
            // they overflow the write structure every time under NoOpt,
            // but the loop-cut optimization learns to split them — a large
            // part of vips's Figure 9 gap between NoOpt and Prof.
            if w == 1 {
                tb.loop_n(4, |tb| {
                    capacity_walk(tb, buf, walk, 8);
                    tb.syscall(SyscallKind::Io);
                });
            }
        } else {
            // Other stages stream many small tile regions; they make up
            // most of the committed transactions.
            tb.loop_n(4 * (RACE_PAIRS / GROUP) as u32 * ROUNDS, |tb| {
                tb.read(elem(scratch, 0));
                tb.read(elem(scratch, 1));
                tb.write(elem(scratch, 2), 1);
                tb.read(elem(scratch, 3));
                tb.read(elem(scratch, 4));
                tb.read(elem(scratch, 5));
                tb.compute(2);
                tb.syscall(SyscallKind::Io);
            });
        }
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 1195.0);
    Workload {
        name: "vips",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.0001, 0.00003, workers),
        sched: SchedKind::Fair {
            jitter: 0.0,
            slack: 140,
        },
        planted,
        scale: "transactions 1:1000 vs paper",
    }
}
