//! pipeline: a producer/consumer chain handing items stage-to-stage over
//! bounded channels (not paper Table 1 — a message-passing family added
//! to exercise the channel happens-before path end-to-end). The payload
//! handoff is fully channel-synchronized; the bug is a shared statistics
//! counter both ends bump with plain writes, skipping any channel or
//! lock — one hot overlapping race found by TSan and TxRace alike.

use txrace::{CostModel, SchedKind};
use txrace_sim::{elem, ProgramBuilder, SyscallKind};

use crate::patterns::{main_scaffold, scaled_interrupts, IterBody};
use crate::spec::{calibrate_shadow_factor, PlantedRace, RaceKind, Workload};

/// Items flowing through the whole chain (every stage touches each one).
const ITEMS: u32 = 120;
/// Bounded-channel capacity between adjacent stages.
const STAGE_CAP: u64 = 4;
/// Producer bumps the shared stat counter once per this many items.
const PROD_EVERY: u32 = 3;
/// Consumer period — different from the producer's so the phase offset
/// between the two streams sweeps and instances keep overlapping no
/// matter how far channel slack lets the stages drift apart.
const CONS_EVERY: u32 = 4;

/// Builds pipeline for `workers` worker threads (stages of the chain).
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 12, 6);
    // Stage w sends on stages[w - 1] and receives on stages[w - 2].
    let stages: Vec<_> = (1..workers)
        .map(|w| b.chan_id(&format!("stage_{w}"), STAGE_CAP))
        .collect();
    let config = b.array("pipe_config", 4);
    let stat = b.var("items_done");
    for w in 1..=workers {
        let scratch = b.array(&format!("stagebuf_{w}"), 16);
        let body = IterBody {
            accesses: 14,
            compute: 12,
            scratch,
        };
        let mut tb = b.thread(w);
        if w == 1 {
            // One-time handoff: the config written here is read by the
            // last stage after its final receive — ordered only by the
            // transitive send→recv chain, never by a lock or barrier.
            for i in 0..4 {
                tb.write(elem(config, i), i as u64);
            }
            let ch = stages[0];
            tb.loop_n(ITEMS / PROD_EVERY, move |tb| {
                tb.loop_n(PROD_EVERY - 1, move |tb| {
                    body.emit(tb);
                    tb.send(ch);
                });
                body.emit(tb);
                tb.send(ch);
                // The bug: a plain (non-atomic, unlocked) stat bump next
                // to the periodic progress log. The send before and the
                // syscall after leave it in a tiny slow-path-only region
                // (under the K heuristic), the shape of real logging code.
                tb.write_l(stat, 1, "prod_stat");
                tb.syscall(SyscallKind::Io);
            });
        } else if w < workers {
            let (rx, tx) = (stages[w - 2], stages[w - 1]);
            tb.loop_n(ITEMS, move |tb| {
                tb.recv(rx);
                body.emit(tb);
                tb.send(tx);
            });
        } else {
            let rx = stages[w - 2];
            tb.loop_n(ITEMS / CONS_EVERY, move |tb| {
                tb.loop_n(CONS_EVERY - 1, move |tb| {
                    tb.recv(rx);
                    body.emit(tb);
                });
                tb.recv(rx);
                body.emit(tb);
                // Same logging-idiom bug on the consumer end.
                tb.syscall(SyscallKind::Io);
                tb.write_l(stat, 1, "cons_stat");
            });
            // Channel-ordered read of the producer's one-time config.
            for i in 0..4 {
                tb.read(elem(config, i));
            }
        }
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 4.6);
    Workload {
        name: "pipeline",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.001, 0.0003, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted: vec![PlantedRace::new(
            "prod_stat",
            "cons_stat",
            RaceKind::Overlapping,
        )],
        scale: "items 1:1000 vs a streaming run",
    }
}
