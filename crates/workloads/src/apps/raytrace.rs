//! raytrace: ray bundles over a shared scene with two hot races on the
//! frame statistics (paper: only 143 committed transactions, 12 conflict
//! aborts, TSan 5.09x, TxRace 2.68x, 2 races found by both).

use txrace::{CostModel, SchedKind};
use txrace_sim::{ProgramBuilder, SyscallKind};

use crate::patterns::{main_scaffold, scaled_interrupts, woven_racy_iters, IterBody};
use crate::spec::{calibrate_shadow_factor, PlantedRace, RaceKind, Workload};

/// Ray-bundle iterations across all workers.
const TOTAL_ITERS: u32 = 120;
/// Statistics-flush blocks per worker.
const BLOCKS: u32 = 5;

/// Builds raytrace for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 15, 8);
    let stats_hits = b.var("stats_hits");
    let stats_depth = b.var("stats_depth");
    let iters = (TOTAL_ITERS / workers as u32).max(BLOCKS * 3);
    let blocks = BLOCKS * 2;
    // Worker 1 writes both statistics; the depth statistic is read by
    // worker 3 when it exists, else by worker 2 alongside the hit count.
    let depth_reader = if workers >= 3 { 3 } else { 2 };
    for w in 1..=workers {
        let scratch = b.array(&format!("rays_{w}"), 32);
        let body = IterBody {
            accesses: 20,
            compute: 45,
            scratch,
        };
        let k = (iters / blocks).max(2);
        let mut tb = b.thread(w);
        // Frame statistics are updated without the stats lock on every
        // k-th ray bundle: hot races woven through the whole run.
        match w {
            1 => {
                // Both statistics are flushed in the same racy iteration.
                tb.loop_n(blocks, |tb| {
                    tb.loop_n(k - 1, |tb| {
                        body.emit(tb);
                        tb.syscall(SyscallKind::Io);
                    });
                    body.emit(tb);
                    tb.write_l(stats_hits, 1, "hits_write");
                    tb.write_l(stats_depth, 1, "depth_write");
                    for a in 0..3 {
                        tb.read(txrace_sim::elem(scratch, a));
                    }
                    tb.syscall(SyscallKind::Io);
                });
            }
            2 => {
                woven_racy_iters(&mut tb, blocks, k, &body, stats_hits, "hits_read", false);
                if depth_reader == 2 {
                    woven_racy_iters(&mut tb, blocks, k, &body, stats_depth, "depth_read", false);
                }
            }
            3 => {
                woven_racy_iters(&mut tb, blocks, k, &body, stats_depth, "depth_read", false);
            }
            _ => {
                tb.loop_n(blocks * k, |tb| {
                    body.emit(tb);
                    tb.syscall(SyscallKind::Io);
                });
            }
        }
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 5.09);
    Workload {
        name: "raytrace",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.005, 0.001, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted: vec![
            PlantedRace::new("hits_write", "hits_read", RaceKind::Overlapping),
            PlantedRace::new("depth_write", "depth_read", RaceKind::Overlapping),
        ],
        scale: "transactions 1:1 vs paper",
    }
}
