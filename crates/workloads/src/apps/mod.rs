//! One module per paper application. Each `build(workers)` returns a
//! [`crate::Workload`] whose structure (region sizes, syscall density,
//! abort sources, planted races) models what the paper's Table 1 reports
//! for the original program, scaled down per the module's `scale` note.

pub mod actors;
pub mod apache;
pub mod blackscholes;
pub mod bodytrack;
pub mod canneal;
pub mod dedup;
pub mod facesim;
pub mod ferret;
pub mod fluidanimate;
pub mod freqmine;
pub mod pipeline;
pub mod raytrace;
pub mod streamcluster;
pub mod swaptions;
pub mod vips;
pub mod worksteal;
pub mod x264;

#[cfg(test)]
mod tests {
    use txrace_sim::{DirectRuntime, Machine, RoundRobin, RunStatus};

    /// Every app must build and run to completion uninstrumented, at every
    /// evaluated worker count.
    #[test]
    fn all_apps_run_to_completion() {
        for workers in [2, 4, 8] {
            for w in crate::all_workloads(workers) {
                let mut m = Machine::new(&w.program);
                let mut rt = DirectRuntime::default();
                let mut s = RoundRobin::new();
                let r = m.run(&mut rt, &mut s);
                assert_eq!(
                    r.status,
                    RunStatus::Done,
                    "{} with {workers} workers: {:?}",
                    w.name,
                    r
                );
            }
        }
    }

    /// Planted manifests must resolve to real sites.
    #[test]
    fn manifests_resolve() {
        for w in crate::all_workloads(4) {
            let pairs = w.planted_pairs();
            assert_eq!(pairs.len(), w.planted.len(), "{}", w.name);
        }
    }

    /// The paper's per-app TSan race counts (Table 1, "TSan races").
    #[test]
    fn planted_race_counts_match_table1() {
        let expected = [
            ("blackscholes", 0),
            ("fluidanimate", 1),
            ("swaptions", 0),
            ("freqmine", 0),
            ("vips", 112),
            ("raytrace", 2),
            ("ferret", 1),
            ("x264", 64),
            ("bodytrack", 8),
            ("facesim", 9),
            ("streamcluster", 4),
            ("dedup", 0),
            ("canneal", 1),
            ("apache", 0),
        ];
        let workloads = crate::all_workloads(4);
        for (name, count) in expected {
            let w = workloads.iter().find(|w| w.name == name).expect(name);
            assert_eq!(w.planted.len(), count, "{name}");
        }
    }
}

#[cfg(test)]
mod structure_tests {
    //! Cheap structural assertions pinning each app's modeling intent,
    //! without running any detector.

    use txrace_sim::Op;

    fn dynamic_count(p: &txrace_sim::Program, f: impl Fn(&Op) -> bool) -> u64 {
        p.fold_dynamic(|op| u64::from(f(op)))
    }

    #[test]
    fn syscall_density_separates_tight_loop_apps() {
        // swaptions/streamcluster model tight loops with syscalls in the
        // body (the big Figure 7 management bars); freqmine is the
        // opposite extreme.
        let density = |name: &str| {
            let w = crate::by_name(name, 4).unwrap();
            let sys = dynamic_count(&w.program, |op| matches!(op, Op::Syscall(_))) as f64;
            let acc = w.program.dynamic_access_count() as f64;
            sys / acc
        };
        assert!(density("swaptions") > 4.0 * density("freqmine"));
        assert!(density("streamcluster") > 2.0 * density("freqmine"));
    }

    #[test]
    fn freqmine_has_the_biggest_regions() {
        // Few, huge synchronization-free regions: freqmine's accesses per
        // syscall dwarf everyone else's.
        let per_region = |name: &str| {
            let w = crate::by_name(name, 4).unwrap();
            let sys = dynamic_count(&w.program, |op| matches!(op, Op::Syscall(_))).max(1);
            w.program.dynamic_access_count() / sys
        };
        let fm = per_region("freqmine");
        for other in ["swaptions", "bodytrack", "apache", "canneal"] {
            assert!(fm > 5 * per_region(other), "{other}");
        }
    }

    #[test]
    fn vips_is_the_shadow_pathological_app() {
        let sf = |name: &str| crate::by_name(name, 4).unwrap().shadow_factor;
        let vips = sf("vips");
        for other in [
            "blackscholes",
            "fluidanimate",
            "swaptions",
            "freqmine",
            "raytrace",
            "ferret",
            "x264",
            "bodytrack",
            "facesim",
            "streamcluster",
            "dedup",
            "canneal",
            "apache",
        ] {
            assert!(vips > 5.0 * sf(other), "{other}");
        }
    }

    #[test]
    fn bodytrack_is_the_interrupt_pathological_app() {
        let p = |name: &str| crate::by_name(name, 4).unwrap().interrupts.context_switch_p;
        let bt = p("bodytrack");
        for other in [
            "blackscholes",
            "fluidanimate",
            "swaptions",
            "freqmine",
            "facesim",
        ] {
            assert!(bt > 4.0 * p(other), "{other}");
        }
    }

    #[test]
    fn barrier_phased_apps_use_barriers() {
        for name in ["fluidanimate", "streamcluster", "x264"] {
            let w = crate::by_name(name, 4).unwrap();
            assert!(w.program.barrier_count() > 0, "{name}");
        }
        for name in ["blackscholes", "freqmine", "apache"] {
            let w = crate::by_name(name, 4).unwrap();
            assert_eq!(w.program.barrier_count(), 0, "{name}");
        }
    }

    #[test]
    fn lock_based_apps_use_locks() {
        for name in ["ferret", "apache"] {
            let w = crate::by_name(name, 4).unwrap();
            assert!(
                dynamic_count(&w.program, |op| matches!(op, Op::Lock(_))) > 0,
                "{name}"
            );
        }
    }

    #[test]
    fn atomic_conflict_apps_use_rmw() {
        // dedup/canneal/streamcluster/fluidanimate model benign atomic
        // contention (conflicts with no races).
        for name in [
            "dedup",
            "canneal",
            "streamcluster",
            "fluidanimate",
            "apache",
        ] {
            let w = crate::by_name(name, 4).unwrap();
            assert!(
                dynamic_count(&w.program, |op| matches!(op, Op::Rmw(_, _))) > 0,
                "{name}"
            );
        }
    }

    #[test]
    fn main_thread_spawns_and_joins_every_worker() {
        for workers in [2, 4, 8] {
            for w in crate::all_workloads(workers) {
                assert_eq!(w.program.thread_count(), workers + 1, "{}", w.name);
                for t in 1..=workers {
                    assert!(
                        w.program.starts_parked(txrace_sim::ThreadId(t as u32)),
                        "{} worker {t}",
                        w.name
                    );
                }
            }
        }
    }

    #[test]
    fn message_passing_apps_use_channels_and_nobody_else_does() {
        for workers in [2, 4, 8] {
            for w in crate::all_workloads(workers) {
                let chan_ops = dynamic_count(&w.program, |op| {
                    matches!(op, Op::ChanSend(_) | Op::ChanRecv(_))
                });
                let is_mp = matches!(w.name, "pipeline" | "actors" | "worksteal");
                if is_mp {
                    assert!(w.program.chan_count() > 0, "{}", w.name);
                    assert!(chan_ops > 0, "{}", w.name);
                    // Balanced traffic: the lint would flag a workload
                    // that strands messages or starves a receiver.
                    let sends = dynamic_count(&w.program, |op| matches!(op, Op::ChanSend(_)));
                    assert_eq!(sends * 2, chan_ops, "{} at {workers}", w.name);
                } else {
                    assert_eq!(w.program.chan_count(), 0, "{}", w.name);
                }
            }
        }
    }

    #[test]
    fn capacity_apps_have_big_footprint_regions() {
        // The straight-line flush / strided walk signature: WriteArr with
        // a full cache-line stride, or >= 32 distinct static write lines.
        for name in [
            "swaptions",
            "freqmine",
            "vips",
            "bodytrack",
            "dedup",
            "ferret",
            "x264",
        ] {
            let w = crate::by_name(name, 4).unwrap();
            let mut strided = 0u64;
            let mut lines = std::collections::BTreeSet::new();
            w.program.visit_static(&mut |_, _, op| match op {
                Op::WriteArr { stride, .. } if *stride >= 64 => strided += 1,
                Op::Write(a, _) => {
                    lines.insert(a.line());
                }
                _ => {}
            });
            assert!(
                strided > 0 || lines.len() >= 32,
                "{name}: no capacity-prone structure found"
            );
        }
    }
}
