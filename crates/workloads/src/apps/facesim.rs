//! facesim: face-mesh simulation whose kernels alternate big vectorized
//! regions with a multitude of tiny ones — the tiny regions fall under
//! TxRace's `K < 5` heuristic and run software-checked, which is why
//! facesim keeps a sizable TxRace overhead despite almost no aborts
//! (paper: TSan 36.59x, TxRace 11.49x; 9 races, 8 found — the missed one
//! is a thread-pool structure initialized at startup and shared later,
//! §8.3).

use txrace::{CostModel, SchedKind};
use txrace_sim::{elem, ProgramBuilder, SyscallKind};

use crate::patterns::{
    main_scaffold, scaled_interrupts, straight_capacity_region, woven_racy_iters, IterBody,
};
use crate::spec::{calibrate_shadow_factor, PlantedRace, RaceKind, Workload};

/// Mesh-node iterations across all workers.
const TOTAL_ITERS: u32 = 6000;
/// Hot racy mesh cells.
const HOT_RACES: usize = 8;

/// Builds facesim for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 30, 10);
    let cells: Vec<_> = (0..HOT_RACES)
        .map(|j| b.var(&format!("cell_{j}")))
        .collect();
    let pool_state = b.var("pool_state");
    let iters = (TOTAL_ITERS / workers as u32).max(40);

    let mut planted: Vec<PlantedRace> = (0..HOT_RACES)
        .map(|j| {
            PlantedRace::new(
                format!("cell_w_{j}"),
                format!("cell_r_{j}"),
                RaceKind::Overlapping,
            )
        })
        .collect();
    planted.push(PlantedRace::new(
        "pool_init",
        "pool_use",
        RaceKind::InitIdiom,
    ));

    for w in 1..=workers {
        let scratch = b.array(&format!("mesh_{w}"), 16);
        let b_arr = b.array(&format!("stiffness_{w}"), 70 * 8 * 8);
        let big = IterBody {
            accesses: 10,
            compute: 3,
            scratch,
        };
        let mut tb = b.thread(w);
        // Thread-pool init idiom: worker 1 fills the pool structure when
        // it is still private (races with the late reader below).
        if w == 1 {
            tb.write_l(pool_state, 1, "pool_init");
            for a in 0..5 {
                tb.write(elem(scratch, a), 1);
            }
            tb.syscall(SyscallKind::Io);
        }
        // Kernel: each iteration is one big region followed by two tiny
        // (< K accesses) bookkeeping regions that go slow-path-only.
        tb.loop_n(iters / 2, |tb| {
            big.emit(tb);
            tb.syscall(SyscallKind::Io);
            tb.read(elem(scratch, 0)).write(elem(scratch, 1), 1);
            tb.syscall(SyscallKind::Io);
            tb.read(elem(scratch, 2)).write(elem(scratch, 3), 1);
            tb.syscall(SyscallKind::Io);
        });
        // Hot races on shared mesh cells, each woven across an
        // equal-length segment on every worker.
        for (j, &cell) in cells.iter().enumerate() {
            let writer = (j % workers) + 1;
            let reader = ((j + 1) % workers) + 1;
            if w == writer {
                // Writer and reader weave at different periods so their
                // phase offset sweeps through overlap.
                woven_racy_iters(&mut tb, 16, 3, &big, cell, &format!("cell_w_{j}"), true);
            } else if w == reader {
                woven_racy_iters(&mut tb, 12, 4, &big, cell, &format!("cell_r_{j}"), false);
            } else {
                tb.loop_n(16 * 3, |tb| {
                    big.emit(tb);
                    tb.syscall(SyscallKind::Io);
                });
            }
        }
        tb.loop_n(iters / 2, |tb| {
            big.emit(tb);
            tb.syscall(SyscallKind::Io);
            tb.read(elem(scratch, 4)).write(elem(scratch, 5), 1);
            tb.syscall(SyscallKind::Io);
        });
        if w <= 3 {
            let stiffness = b_arr;
            straight_capacity_region(&mut tb, stiffness, 70, 8);
        }
        // Late pool reader: unordered with worker 1's init, far apart.
        if w == workers {
            tb.read_l(pool_state, "pool_use");
            for a in 0..5 {
                tb.read(elem(scratch, a));
            }
            tb.syscall(SyscallKind::Io);
        }
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 36.59);
    Workload {
        name: "facesim",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.0003, 0.0001, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted,
        scale: "transactions 1:1000 vs paper",
    }
}
