//! blackscholes: embarrassingly parallel option pricing. Almost no
//! sharing, compute-dominated, no races — the cheapest app for both
//! detectors (paper: TSan 1.85x, TxRace 1.82x; 131K committed
//! transactions, essentially no aborts).

use txrace::{CostModel, SchedKind};
use txrace_sim::ProgramBuilder;

use crate::patterns::{main_scaffold, scaled_interrupts, syscall_iters, IterBody};
use crate::spec::{calibrate_shadow_factor, Workload};

/// Total option-batch iterations across all workers.
const TOTAL_ITERS: u32 = 132;

/// Builds blackscholes for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2, "blackscholes needs at least two workers");
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 20, 10);
    let iters = (TOTAL_ITERS / workers as u32).max(1);
    for w in 1..=workers {
        let scratch = b.array(&format!("prices_{w}"), 16);
        let body = IterBody {
            accesses: 12,
            compute: 90,
            scratch,
        };
        syscall_iters(&mut b.thread(w), iters, &body);
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 1.85);
    Workload {
        name: "blackscholes",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.005, 0.001, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted: Vec::new(),
        scale: "transactions 1:1000 vs paper",
    }
}
