//! actors: an actor-style web service (not paper Table 1 — a
//! message-passing family added alongside the paper apps). A dispatcher
//! thread routes simulated request traffic to per-actor mailboxes
//! (bounded channels); each actor drains its own mailbox, does private
//! handler work with I/O, and bumps a shared request counter atomically.
//! Fully channel-synchronized: no data races.

use txrace::{CostModel, SchedKind};
use txrace_sim::{elem, ProgramBuilder, SyscallKind};

use crate::patterns::{main_scaffold, scaled_interrupts, IterBody};
use crate::spec::{calibrate_shadow_factor, Workload};

/// Requests delivered to each actor's mailbox.
const REQUESTS_PER_ACTOR: u32 = 40;
/// Mailbox depth: the dispatcher blocks when an actor falls this far
/// behind (bounded-channel backpressure in the interpreter).
const MAILBOX_CAP: u64 = 4;

/// Builds actors for `workers` worker threads (one dispatcher plus
/// `workers - 1` actors; with 2 workers, a single actor).
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 10, 6);
    let mailboxes: Vec<_> = (2..=workers)
        .map(|a| b.chan_id(&format!("mailbox_{a}"), MAILBOX_CAP))
        .collect();
    let routes = b.array("route_table", 8);
    let served = b.var("requests_served");
    {
        // Worker 1 is the dispatcher: write the routing table once, then
        // deliver one round of requests to every mailbox per traffic tick.
        let scratch = b.array("dispatch_buf", 16);
        let body = IterBody {
            accesses: 10,
            compute: 8,
            scratch,
        };
        let boxes = mailboxes.clone();
        let mut tb = b.thread(1);
        for i in 0..8 {
            tb.write(elem(routes, i), i as u64);
        }
        tb.loop_n(REQUESTS_PER_ACTOR, move |tb| {
            body.emit(tb);
            for &mb in &boxes {
                tb.send(mb);
            }
            tb.syscall(SyscallKind::Io);
        });
    }
    for a in 2..=workers {
        let scratch = b.array(&format!("handler_buf_{a}"), 16);
        let body = IterBody {
            accesses: 14,
            compute: 20,
            scratch,
        };
        let mb = mailboxes[a - 2];
        let mut tb = b.thread(a);
        tb.loop_n(REQUESTS_PER_ACTOR, move |tb| {
            tb.recv(mb);
            body.emit(tb);
            tb.syscall(SyscallKind::Io);
            tb.rmw(served, 1);
        });
        // The routing table was written before the first send, so every
        // post-drain read is channel-ordered after it.
        for i in 0..8 {
            tb.read(elem(routes, i));
        }
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 3.1);
    Workload {
        name: "actors",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.0012, 0.0003, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted: Vec::new(),
        scale: "requests 1:1000 vs a load-test run",
    }
}
