//! fluidanimate: barrier-phased particle simulation with a hot shared
//! progress counter (benign atomic conflicts), big conflict-prone cell
//! regions, recurring straight-line capacity regions, and one true race
//! on a partition-boundary cell (paper: 17.8M committed txns, 697K
//! conflict aborts, 10K capacity aborts, TSan 15.23x, TxRace 6.9x,
//! 1 race found by both).

use txrace::{CostModel, SchedKind};
use txrace_sim::{ProgramBuilder, SyscallKind};

use crate::patterns::{
    hot_rmw, main_scaffold, scaled_interrupts, straight_capacity_region, woven_racy_iters, IterBody,
};
use crate::spec::{calibrate_shadow_factor, PlantedRace, RaceKind, Workload};

/// Simulation phases (time steps).
const PHASES: u32 = 5;
/// Total per-phase cell updates across all workers.
const TOTAL_CELLS_PER_PHASE: u32 = 3800;
/// Iterations per hot block (the last iteration of each block touches the
/// shared counter in a *large* region, so conflict episodes re-check a
/// meaningful amount of work).
const HOT_EVERY: u32 = 20;
/// Straight-line capacity regions per worker per run.
const CAP_REGIONS: u32 = 3;

/// Builds fluidanimate for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 30, 10);
    let bar = b.barrier_id("phase_barrier");
    let hot = b.var("particles_done");
    let boundary_cell = b.var("boundary_cell");
    let cells_per_worker = (TOTAL_CELLS_PER_PHASE / workers as u32).max(HOT_EVERY);
    let blocks = cells_per_worker / HOT_EVERY;

    for w in 1..=workers {
        let scratch = b.array(&format!("cells_{w}"), 40);
        let grid = b.array(&format!("grid_{w}"), 70 * 8 * 8);
        let body = IterBody {
            accesses: 8,
            compute: 5,
            scratch,
        };
        let big = IterBody {
            accesses: 30,
            compute: 8,
            scratch,
        };
        let mut tb = b.thread(w);
        tb.loop_n(PHASES, |tb| {
            tb.loop_n(blocks, |tb| {
                tb.loop_n(HOT_EVERY - 1, |tb| {
                    body.emit(tb);
                    tb.syscall(SyscallKind::Io);
                });
                // A big cell-update region that also bumps the shared
                // progress counter: an atomic, so the HTM conflicts but
                // there is no race — and the conflict episode re-checks
                // this whole region.
                big.emit(tb);
                hot_rmw(tb, hot);
                big.emit(tb);
                tb.syscall(SyscallKind::Io);
            });
            // Per-phase grid rebuild overflows the write buffer in a
            // straight line (not loop-cuttable).
            if (w as u32) < CAP_REGIONS {
                straight_capacity_region(tb, grid, 70, 8);
            }
            tb.barrier(bar);
        });
        // The partition-boundary bug: workers 1 and 2 share a cell without
        // the cell lock, woven across the stream tail.
        if w == 1 {
            let mut tb = b.thread(w);
            woven_racy_iters(&mut tb, 24, 3, &body, boundary_cell, "boundary_write", true);
        } else if w == 2 {
            // Different weave period: the phase offset sweeps (see ferret).
            let mut tb = b.thread(w);
            woven_racy_iters(&mut tb, 18, 4, &body, boundary_cell, "boundary_read", false);
        }
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 15.23);
    Workload {
        name: "fluidanimate",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.0002, 0.00005, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted: vec![PlantedRace::new(
            "boundary_write",
            "boundary_read",
            RaceKind::Overlapping,
        )],
        scale: "transactions 1:1000 vs paper",
    }
}
