//! dedup: a compression pipeline whose stages contend on shared hash-
//! bucket headers through atomic operations — plenty of HTM conflicts,
//! zero true races (the slow path filters every one of them; paper: 107K
//! conflict aborts on 2.2M committed txns, TSan 4.84x, TxRace 4.19x,
//! 0 races).

use txrace::{CostModel, SchedKind};
use txrace_sim::{ProgramBuilder, SyscallKind};

use crate::patterns::{main_scaffold, scaled_interrupts, straight_capacity_region, IterBody};
use crate::spec::{calibrate_shadow_factor, Workload};

/// Chunks across all workers.
const TOTAL_CHUNKS: u32 = 2100;
/// Chunks between hash-bucket touches.
const HOT_EVERY: u32 = 3;
/// Straight-line big buffers per worker (capacity aborts, not cuttable).
const BIG_BUFFERS: usize = 3;

/// Builds dedup for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 20, 10);
    let bucket = b.var("hash_bucket");
    let bucket2 = b.var_sharing_line(bucket, 16); // false sharing, too
    let chunks = (TOTAL_CHUNKS / workers as u32).max(HOT_EVERY);
    let blocks = chunks / HOT_EVERY;
    for w in 1..=workers {
        let scratch = b.array(&format!("chunk_{w}"), 16);
        let body = IterBody {
            accesses: 8,
            compute: 5,
            scratch,
        };
        let mut tb = b.thread(w);
        tb.loop_n(blocks, |tb| {
            tb.loop_n(HOT_EVERY - 1, |tb| {
                body.emit(tb);
                tb.syscall(SyscallKind::Io);
            });
            // Bucket insertion: atomic header bump plus a falsely-shared
            // neighbour — conflicts in the HTM, never a race.
            body.emit(tb);
            tb.rmw(bucket, 1);
            if w % 2 == 0 {
                tb.rmw(bucket2, 1);
            }
            tb.syscall(SyscallKind::Io);
        });
        // Compression working sets that overflow the write structure in a
        // straight line (loop-cut cannot help these).
        let window = (80 * 4 / workers as u32).max(8);
        for k in 0..BIG_BUFFERS {
            let buf = b.array(&format!("window_{w}_{k}"), (window as usize + 1) * 8 * 8);
            let mut tb = b.thread(w);
            straight_capacity_region(&mut tb, buf, window, 8);
        }
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 4.84);
    Workload {
        name: "dedup",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.0006, 0.0002, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted: Vec::new(),
        scale: "transactions 1:1000 vs paper",
    }
}
