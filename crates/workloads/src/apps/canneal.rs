//! canneal: simulated-annealing netlist routing with lock-free element
//! swaps — moderate conflicts from the shared temperature/netlist state
//! and one true race on the routing-cost cache (paper: 3.2M committed
//! txns, 25K conflict aborts, TSan 4.39x, TxRace 2.97x, 1 race).

use txrace::{CostModel, SchedKind};
use txrace_sim::{ProgramBuilder, SyscallKind};

use crate::patterns::{
    main_scaffold, scaled_interrupts, straight_capacity_region, woven_racy_iters, IterBody,
};
use crate::spec::{calibrate_shadow_factor, PlantedRace, RaceKind, Workload};

/// Swap attempts across all workers.
const TOTAL_SWAPS: u32 = 3100;
/// Swaps between shared-state touches.
const HOT_EVERY: u32 = 11;

/// Builds canneal for `workers` worker threads.
pub fn build(workers: usize) -> Workload {
    assert!(workers >= 2);
    let mut b = ProgramBuilder::new(workers + 1);
    main_scaffold(&mut b, workers, 20, 10);
    let temperature = b.var("temperature");
    let cost_cache = b.var("cost_cache");
    let swaps = (TOTAL_SWAPS / workers as u32).max(HOT_EVERY);
    let blocks = swaps / HOT_EVERY;
    for w in 1..=workers {
        let scratch = b.array(&format!("elements_{w}"), 16);
        let body = IterBody {
            accesses: 7,
            compute: 9,
            scratch,
        };
        let mut tb = b.thread(w);
        tb.loop_n(blocks, |tb| {
            tb.loop_n(HOT_EVERY - 1, |tb| {
                body.emit(tb);
                tb.syscall(SyscallKind::Io);
            });
            // Temperature check: atomic read-modify (benign conflicts).
            body.emit(tb);
            tb.rmw(temperature, 1);
            tb.syscall(SyscallKind::Io);
        });
        // The true race: workers 1 and 2 share the cost cache without
        // synchronization, woven through their whole swap streams.
        if w <= 2 {
            let label = if w == 1 { "cache_write" } else { "cache_read" };
            let mut tb = b.thread(w);
            woven_racy_iters(&mut tb, blocks, 4, &body, cost_cache, label, w == 1);
        }
        if w <= 3 {
            let netlist = b.array(&format!("netlist_{w}"), 70 * 8 * 8);
            let mut tb = b.thread(w);
            straight_capacity_region(&mut tb, netlist, 70, 8);
        }
    }
    let program = b.build();
    let shadow_factor = calibrate_shadow_factor(&program, &CostModel::default(), 4.39);
    Workload {
        name: "canneal",
        program,
        shadow_factor,
        interrupts: scaled_interrupts(0.004, 0.001, workers),
        sched: SchedKind::Fair {
            jitter: 0.1,
            slack: 0,
        },
        planted: vec![PlantedRace::new(
            "cache_write",
            "cache_read",
            RaceKind::Overlapping,
        )],
        scale: "transactions 1:1000 vs paper",
    }
}
