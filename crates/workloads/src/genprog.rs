//! A seeded random program generator, used by property tests to exercise
//! the detectors on arbitrary (but deadlock-free) concurrent programs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txrace_sim::{elem, Program, ProgramBuilder, SyscallKind};

/// Shape parameters for [`random_program`].
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of threads (all start immediately; no spawn structure).
    pub threads: usize,
    /// Operations generated per thread.
    pub ops_per_thread: usize,
    /// Shared variables (each on its own line).
    pub shared_vars: usize,
    /// Mutexes (acquired in ascending order only — no deadlock).
    pub locks: usize,
    /// Condition semaphores.
    pub conds: usize,
    /// Bounded message channels.
    pub chans: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            threads: 3,
            ops_per_thread: 60,
            shared_vars: 6,
            locks: 2,
            conds: 2,
            chans: 2,
        }
    }
}

/// Generates a random, runnable, deadlock-free program.
///
/// Deadlock freedom: locks are taken one at a time and released
/// immediately after a few accesses; `Wait`s are pre-funded by surplus
/// `Signal`s emitted on thread 0 before anything else, so every wait is
/// eventually satisfiable regardless of scheduling. Channels follow the
/// same scheme: random `ChanRecv`s appear only on threads other than 0,
/// thread 0 funds every one of them with a matching trailing `ChanSend`
/// (channel capacity is sized so no send can ever block), and thread 0
/// then drains the randomly-emitted sends so per-channel traffic stays
/// balanced and the lint stays clean. The drain must not race the other
/// threads for the funding messages (a thread whose recv precedes its own
/// send would starve), so thread 0 first waits on a completion semaphore
/// each other thread signals as its last op.
pub fn random_program(cfg: &GenConfig, seed: u64) -> Program {
    assert!(cfg.threads >= 2, "need at least two threads");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(cfg.threads);
    let vars: Vec<_> = (0..cfg.shared_vars.max(1))
        .map(|i| b.var(&format!("v{i}")))
        .collect();
    let locks: Vec<_> = (0..cfg.locks)
        .map(|i| b.lock_id(&format!("l{i}")))
        .collect();
    let conds: Vec<_> = (0..cfg.conds)
        .map(|i| b.cond_id(&format!("c{i}")))
        .collect();
    // Capacity exceeding every send the generator could possibly emit:
    // sends never block, which is what makes the funding scheme sound.
    let chan_cap = (cfg.threads * cfg.ops_per_thread * 2).max(1) as u64;
    let chans: Vec<_> = (0..cfg.chans)
        .map(|i| b.chan_id(&format!("ch{i}"), chan_cap))
        .collect();
    let scratches: Vec<_> = (0..cfg.threads)
        .map(|t| b.array(&format!("scratch{t}"), 8))
        .collect();

    let mut waits_per_cond = vec![0u32; cfg.conds];
    let mut sends_per_chan = vec![0u32; cfg.chans];
    let mut recvs_per_chan = vec![0u32; cfg.chans];
    let done = (cfg.chans > 0).then(|| b.cond_id("gen_done"));

    for (t, &scratch) in scratches.iter().enumerate() {
        let mut tb = b.thread(t);
        let mut emitted = 0usize;
        while emitted < cfg.ops_per_thread {
            match rng.gen_range(0..100) {
                0..=29 => {
                    let v = vars[rng.gen_range(0..vars.len())];
                    if rng.gen_bool(0.5) {
                        tb.read(v);
                    } else {
                        tb.write(v, rng.gen_range(1..100));
                    }
                    emitted += 1;
                }
                30..=49 => {
                    tb.read(elem(scratch, rng.gen_range(0..8)));
                    emitted += 1;
                }
                50..=59 => {
                    tb.compute(rng.gen_range(1..20));
                    emitted += 1;
                }
                60..=74 if !locks.is_empty() => {
                    // A short critical section on one lock.
                    let l = locks[rng.gen_range(0..locks.len())];
                    tb.lock(l);
                    for _ in 0..rng.gen_range(1..4) {
                        let v = vars[rng.gen_range(0..vars.len())];
                        if rng.gen_bool(0.5) {
                            tb.read(v);
                        } else {
                            tb.write(v, 1);
                        }
                        emitted += 1;
                    }
                    tb.unlock(l);
                }
                75..=79 => {
                    tb.syscall(SyscallKind::Io);
                    emitted += 1;
                }
                80..=84 if !conds.is_empty() => {
                    let c = rng.gen_range(0..conds.len());
                    tb.signal(conds[c]);
                    emitted += 1;
                }
                85..=88 if !conds.is_empty() && t != 0 => {
                    let c = rng.gen_range(0..conds.len());
                    waits_per_cond[c] += 1;
                    tb.wait(conds[c]);
                    emitted += 1;
                }
                89..=90 => {
                    let v = vars[rng.gen_range(0..vars.len())];
                    tb.rmw(v, 1);
                    emitted += 1;
                }
                91..=92 if !chans.is_empty() => {
                    let c = rng.gen_range(0..chans.len());
                    sends_per_chan[c] += 1;
                    tb.send(chans[c]);
                    emitted += 1;
                }
                93..=94 if !chans.is_empty() && t != 0 => {
                    let c = rng.gen_range(0..chans.len());
                    recvs_per_chan[c] += 1;
                    tb.recv(chans[c]);
                    emitted += 1;
                }
                _ => {
                    let trips = rng.gen_range(2..6);
                    let v = vars[rng.gen_range(0..vars.len())];
                    tb.loop_n(trips, |tb| {
                        tb.read(elem(scratch, 0));
                        tb.read(v);
                        tb.compute(2);
                    });
                    emitted += 2 * trips as usize;
                }
            }
        }
        if let (Some(done), true) = (done, t != 0) {
            tb.signal(done);
        }
    }
    // Pre-fund every wait: surplus signals on thread 0, before its body.
    // ProgramBuilder appends, so rebuild thread 0 by prefixing is not
    // possible — instead emit the funding signals on thread 0 *after* its
    // body; they are still guaranteed to run because signals never block.
    {
        let mut tb = b.thread(0);
        for (c, &n) in waits_per_cond.iter().enumerate() {
            for _ in 0..n {
                tb.signal(conds[c]);
            }
        }
        // Fund every randomly-emitted recv (sends cannot block at this
        // capacity). Thread 0 never blocks before this point — it has no
        // waits and no recvs — so the funding always happens and every
        // other thread can run to completion.
        for (c, &n) in recvs_per_chan.iter().enumerate() {
            for _ in 0..n {
                tb.send(chans[c]);
            }
        }
        // Wait for every other thread, then drain the randomly-emitted
        // sends to balance the books. Draining earlier could steal a
        // funding message from a thread whose recv precedes its own send.
        if let Some(done) = done {
            for _ in 1..cfg.threads {
                tb.wait(done);
            }
        }
        for (c, &n) in sends_per_chan.iter().enumerate() {
            for _ in 0..n {
                tb.recv(chans[c]);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::{DirectRuntime, Machine, RandomSched, RunStatus};

    #[test]
    fn generated_programs_complete() {
        for seed in 0..30 {
            let p = random_program(&GenConfig::default(), seed);
            let mut m = Machine::new(&p);
            let mut rt = DirectRuntime::default();
            let mut s = RandomSched::new(seed ^ 0xABCD);
            let r = m.run(&mut rt, &mut s);
            assert_eq!(r.status, RunStatus::Done, "seed {seed}: {r:?}");
        }
    }

    #[test]
    fn generated_channel_traffic_is_balanced_and_exercised() {
        use txrace_sim::Op;
        let mut any_chans = false;
        for seed in 0..30 {
            let p = random_program(&GenConfig::default(), seed);
            for c in 0..p.chan_count() {
                let sends = p.fold_dynamic(|op| match op {
                    Op::ChanSend(ch) if ch.0 == c => 1,
                    _ => 0,
                });
                let recvs = p.fold_dynamic(|op| match op {
                    Op::ChanRecv(ch) if ch.0 == c => 1,
                    _ => 0,
                });
                assert_eq!(sends, recvs, "seed {seed} channel {c}");
                any_chans |= sends > 0;
            }
        }
        assert!(any_chans, "no seed in 0..30 produced channel traffic");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_program(&GenConfig::default(), 7);
        let b = random_program(&GenConfig::default(), 7);
        assert_eq!(a.site_count(), b.site_count());
        assert_eq!(a.dynamic_access_count(), b.dynamic_access_count());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_program(&GenConfig::default(), 1);
        let b = random_program(&GenConfig::default(), 2);
        assert_ne!(
            (a.site_count(), a.dynamic_access_count()),
            (b.site_count(), b.dynamic_access_count())
        );
    }
}
