//! # txrace-workloads
//!
//! Synthetic analogues of the paper's evaluation workloads: the 13 PARSEC
//! applications (simlarge) plus the Apache web server, and three
//! message-passing families (a producer/consumer pipeline, an actor-style
//! web service, and a work-stealing executor) that exercise the bounded
//! channel primitives end-to-end.
//!
//! The real benchmarks cannot run on the simulator, so each app here is a
//! *parameterized concurrent program* matched to what the paper's Table 1
//! measures about the original: transaction counts (scaled down, see each
//! app's `scale` note), the rough mix of conflict/capacity/unknown aborts,
//! the number and character of its true data races (hot overlapping races,
//! bodytrack/facesim's init-idiom races TxRace misses, vips's large
//! scheduler-sensitive race population), syscall density, and the TSan
//! overhead level (via the shadow-cost factor, auto-calibrated so the TSan
//! baseline lands on the paper's per-app overhead).
//!
//! ```
//! use txrace_workloads::{all_workloads, by_name};
//! let w = by_name("streamcluster", 4).expect("known app");
//! assert_eq!(w.name, "streamcluster");
//! assert!(!w.planted.is_empty());
//! assert_eq!(all_workloads(4).len(), 17);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod genprog;
pub mod patterns;
pub mod spec;

pub use genprog::{random_program, GenConfig};
pub use spec::{calibrate_shadow_factor, PlantedRace, RaceKind, Workload};

/// Builds every workload at the given worker-thread count: the paper's
/// Table 1 apps in paper order, then the message-passing families.
pub fn all_workloads(workers: usize) -> Vec<Workload> {
    vec![
        apps::blackscholes::build(workers),
        apps::fluidanimate::build(workers),
        apps::swaptions::build(workers),
        apps::freqmine::build(workers),
        apps::vips::build(workers),
        apps::raytrace::build(workers),
        apps::ferret::build(workers),
        apps::x264::build(workers),
        apps::bodytrack::build(workers),
        apps::facesim::build(workers),
        apps::streamcluster::build(workers),
        apps::dedup::build(workers),
        apps::canneal::build(workers),
        apps::apache::build(workers),
        apps::pipeline::build(workers),
        apps::actors::build(workers),
        apps::worksteal::build(workers),
    ]
}

/// Builds one workload by its paper name.
pub fn by_name(name: &str, workers: usize) -> Option<Workload> {
    let f: fn(usize) -> Workload = match name {
        "blackscholes" => apps::blackscholes::build,
        "fluidanimate" => apps::fluidanimate::build,
        "swaptions" => apps::swaptions::build,
        "freqmine" => apps::freqmine::build,
        "vips" => apps::vips::build,
        "raytrace" => apps::raytrace::build,
        "ferret" => apps::ferret::build,
        "x264" => apps::x264::build,
        "bodytrack" => apps::bodytrack::build,
        "facesim" => apps::facesim::build,
        "streamcluster" => apps::streamcluster::build,
        "dedup" => apps::dedup::build,
        "canneal" => apps::canneal::build,
        "apache" => apps::apache::build,
        "pipeline" => apps::pipeline::build,
        "actors" => apps::actors::build,
        "worksteal" => apps::worksteal::build,
        _ => return None,
    };
    Some(f(workers))
}
