//! Workload descriptors: the program, its run-configuration hints, and the
//! ground-truth race manifest.

use txrace::{CostModel, RunConfig, SchedKind, Scheme};
use txrace_hb::RacePair;
use txrace_sim::{InterruptModel, Op, Program};

/// How a planted race is expected to behave under the two detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// Both accesses recur in hot, temporally-overlapping regions: TSan
    /// and TxRace both find it.
    Overlapping,
    /// The init idiom (paper §8.3): a structure is written while
    /// thread-local and read long after becoming shared — HB-racy, but the
    /// transactions never overlap, so TxRace misses it.
    InitIdiom,
    /// Touched in a narrow window whose alignment depends on the
    /// schedule; found by TxRace only on some seeds (vips, Figure 10).
    SchedulerSensitive,
}

/// A ground-truth race planted in a workload, identified by the labels of
/// its two sites.
#[derive(Debug, Clone)]
pub struct PlantedRace {
    /// Label of the first access site.
    pub a: String,
    /// Label of the second access site.
    pub b: String,
    /// Expected detection behaviour.
    pub kind: RaceKind,
}

impl PlantedRace {
    /// Builds a manifest entry.
    pub fn new(a: impl Into<String>, b: impl Into<String>, kind: RaceKind) -> Self {
        PlantedRace {
            a: a.into(),
            b: b.into(),
            kind,
        }
    }
}

/// One benchmark workload: the program plus everything a harness needs to
/// run and score it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Paper name of the application.
    pub name: &'static str,
    /// The synthetic program.
    pub program: Program,
    /// TSan shadow-cost factor, calibrated so the TSan baseline hits the
    /// paper's per-app overhead.
    pub shadow_factor: f64,
    /// OS interrupt injection rates (at the build's worker count).
    pub interrupts: InterruptModel,
    /// Scheduler policy (fair-with-jitter models parallel cores; random
    /// models heavy timeslicing).
    pub sched: SchedKind,
    /// Ground-truth planted races.
    pub planted: Vec<PlantedRace>,
    /// How far transaction counts were scaled down from the paper.
    pub scale: &'static str,
}

impl Workload {
    /// A run configuration for this workload under `scheme`.
    pub fn config(&self, scheme: Scheme, seed: u64) -> RunConfig {
        RunConfig::new(scheme, seed)
            .with_shadow_factor(self.shadow_factor)
            .with_interrupts(self.interrupts)
            .with_sched(self.sched)
    }

    /// Resolves the planted manifest to site pairs.
    ///
    /// # Panics
    ///
    /// Panics if a manifest label does not exist in the program (a
    /// workload construction bug).
    pub fn planted_pairs(&self) -> Vec<(RacePair, RaceKind)> {
        self.planted
            .iter()
            .map(|r| {
                let a = self
                    .program
                    .site(&r.a)
                    .unwrap_or_else(|| panic!("unknown label {:?}", r.a));
                let b = self
                    .program
                    .site(&r.b)
                    .unwrap_or_else(|| panic!("unknown label {:?}", r.b));
                (RacePair::new(a, b), r.kind)
            })
            .collect()
    }

    /// Planted races a sound HB detector must find (all of them).
    pub fn expected_tsan_races(&self) -> usize {
        self.planted.len()
    }

    /// Planted races TxRace reliably finds (everything but the init idiom
    /// and the scheduler-sensitive tail).
    pub fn expected_txrace_reliable_races(&self) -> usize {
        self.planted
            .iter()
            .filter(|r| r.kind == RaceKind::Overlapping)
            .count()
    }
}

/// Solves for the shadow-cost factor that makes the full-TSan baseline hit
/// `target_overhead` on `p`:
///
/// `overhead = (base + checked_accesses*tsan_check*sf + syncs*tsan_sync) / base`
///
/// Atomic RMWs are not checked by TSan and are excluded. Returns at least
/// a small positive factor.
pub fn calibrate_shadow_factor(p: &Program, cost: &CostModel, target_overhead: f64) -> f64 {
    let base = cost.baseline_cycles(p) as f64;
    let checked = p.fold_dynamic(|op| {
        u64::from(matches!(
            op,
            Op::Read(_) | Op::Write(_, _) | Op::ReadArr { .. } | Op::WriteArr { .. }
        ))
    }) as f64;
    let syncs = p.fold_dynamic(|op| u64::from(op.is_sync())) as f64;
    if checked == 0.0 || base == 0.0 {
        return 1.0;
    }
    let extra_needed = (target_overhead - 1.0) * base - syncs * cost.tsan_sync as f64;
    (extra_needed / (checked * cost.tsan_check as f64)).max(0.01)
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace::{Detector, Scheme};
    use txrace_sim::ProgramBuilder;

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            b.thread(t).loop_n(200, |tb| {
                tb.read(x).compute(10);
            });
        }
        b.build()
    }

    #[test]
    fn calibration_hits_target_overhead() {
        let p = sample_program();
        let cost = CostModel::default();
        for target in [2.0, 10.0, 100.0] {
            let sf = calibrate_shadow_factor(&p, &cost, target);
            let cfg = RunConfig::new(Scheme::Tsan, 1).with_shadow_factor(sf);
            let out = Detector::new(cfg).run(&p);
            let rel = (out.overhead - target).abs() / target;
            assert!(rel < 0.1, "target {target}, got {} (sf {sf})", out.overhead);
        }
    }

    #[test]
    fn calibration_floors_below_one() {
        let p = sample_program();
        let sf = calibrate_shadow_factor(&p, &CostModel::default(), 0.5);
        assert!(sf > 0.0);
    }

    #[test]
    fn planted_manifest_resolves() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write_l(x, 1, "wa");
        b.thread(1).read_l(x, "rb");
        let w = Workload {
            name: "t",
            program: b.build(),
            shadow_factor: 1.0,
            interrupts: InterruptModel::NONE,
            sched: SchedKind::Fair {
                jitter: 0.1,
                slack: 0,
            },
            planted: vec![PlantedRace::new("wa", "rb", RaceKind::Overlapping)],
            scale: "1:1",
        };
        let pairs = w.planted_pairs();
        assert_eq!(pairs.len(), 1);
        assert_eq!(w.expected_tsan_races(), 1);
        assert_eq!(w.expected_txrace_reliable_races(), 1);
    }
}
