//! Reusable program-construction patterns shared by the application
//! models: worker scaffolding, plain per-iteration work, critical
//! sections, barrier phases, capacity-overflowing walks, and hot shared
//! lines.

use txrace_sim::{
    elem, Addr, BarrierId, InterruptModel, LockId, ProgramBuilder, SyscallKind, ThreadBuilder,
    ThreadId,
};

/// The private part of one worker iteration: `accesses` alternating
/// reads/writes over the worker's scratch area plus `compute` cycles.
#[derive(Debug, Clone, Copy)]
pub struct IterBody {
    /// Private accesses per iteration.
    pub accesses: usize,
    /// Compute cycles per iteration.
    pub compute: u32,
    /// Worker-private scratch base (at least `accesses` words).
    pub scratch: Addr,
}

impl IterBody {
    /// Emits one iteration's private work.
    pub fn emit(&self, tb: &mut ThreadBuilder<'_>) {
        for a in 0..self.accesses {
            if a % 2 == 0 {
                tb.read(elem(self.scratch, a));
            } else {
                tb.write(elem(self.scratch, a), a as u64);
            }
        }
        if self.compute > 0 {
            tb.compute(self.compute);
        }
    }
}

/// `n` iterations, each its own transaction (cut by a trailing syscall):
/// the shape of PARSEC's I/O-in-loop workers (swaptions, streamcluster).
pub fn syscall_iters(tb: &mut ThreadBuilder<'_>, n: u32, body: &IterBody) {
    let b = *body;
    tb.loop_n(n, move |tb| {
        b.emit(tb);
        tb.syscall(SyscallKind::Io);
    });
}

/// `n` iterations of private work, each followed by a small critical
/// section touching `shared_accesses` words of `shared` under `lock`.
pub fn locked_iters(
    tb: &mut ThreadBuilder<'_>,
    n: u32,
    body: &IterBody,
    lock: LockId,
    shared: Addr,
    shared_accesses: usize,
) {
    let b = *body;
    tb.loop_n(n, move |tb| {
        b.emit(tb);
        tb.lock(lock);
        for a in 0..shared_accesses {
            if a % 2 == 0 {
                tb.read(elem(shared, a));
            } else {
                tb.write(elem(shared, a), 1);
            }
        }
        tb.unlock(lock);
    });
}

/// `phases` data-parallel phases of `iters_per_phase` syscall-cut
/// iterations, separated by a barrier (the fluidanimate/streamcluster
/// shape).
pub fn barrier_phases(
    tb: &mut ThreadBuilder<'_>,
    phases: u32,
    iters_per_phase: u32,
    body: &IterBody,
    barrier: BarrierId,
) {
    let b = *body;
    tb.loop_n(phases, move |tb| {
        tb.loop_n(iters_per_phase, move |tb| {
            b.emit(tb);
            tb.syscall(SyscallKind::Io);
        });
        tb.barrier(barrier);
    });
}

/// An inner loop writing `writes` array slots spaced `line_stride` cache
/// lines apart — with a stride that aliases cache sets this overflows the
/// HTM write structure after `ways * (sets / gcd)` writes, modelling the
/// big-footprint loops behind capacity aborts. The loop is pure, so the
/// instrumentation pass gives it a loop-cut probe.
pub fn capacity_walk(tb: &mut ThreadBuilder<'_>, arr: Addr, writes: u32, line_stride: u64) {
    tb.loop_n(writes, move |tb| {
        tb.write_arr(arr, line_stride * 64, 1);
        tb.compute(1);
    });
}

/// One atomic increment of a hot shared counter: a benign conflict source
/// (HTM conflicts on it; the race detector correctly ignores atomics).
pub fn hot_rmw(tb: &mut ThreadBuilder<'_>, counter: Addr) {
    tb.rmw(counter, 1);
}

/// A straight-line region whose write footprint overflows the HTM write
/// structure — capacity aborts that recur on every execution because
/// there is no loop for the loop-cut optimization to split. The region is
/// closed by a syscall. `arr` must span `writes * line_stride` lines.
pub fn straight_capacity_region(
    tb: &mut ThreadBuilder<'_>,
    arr: Addr,
    writes: u32,
    line_stride: u64,
) {
    for k in 0..u64::from(writes) {
        tb.write(arr.offset(k * line_stride * 64), 1);
    }
    tb.syscall(SyscallKind::Io);
}

/// The hot-race weave: `blocks` repetitions of `k - 1` plain iterations
/// followed by one iteration that also performs a labeled access to
/// `var`. The racy site executes `blocks` times spread across the whole
/// stream, so no matter how abort rollbacks skew thread positions, some
/// writer instance overlaps some reader instance — which is exactly how
/// hot races behave in the real applications.
#[allow(clippy::too_many_arguments)]
pub fn woven_racy_iters(
    tb: &mut ThreadBuilder<'_>,
    blocks: u32,
    k: u32,
    body: &IterBody,
    var: Addr,
    label: &str,
    is_writer: bool,
) {
    let b = *body;
    tb.loop_n(blocks, |tb| {
        tb.loop_n(k.saturating_sub(1).max(1), |tb| {
            b.emit(tb);
            tb.syscall(SyscallKind::Io);
        });
        b.emit(tb);
        if is_writer {
            tb.write_l(var, 1, label);
        } else {
            tb.read_l(var, label);
        }
        for a in 0..3 {
            tb.read(elem(b.scratch, a));
        }
        tb.syscall(SyscallKind::Io);
    });
}

/// Emits the main thread: a single-threaded prologue, spawning `workers`
/// workers (threads `1..=workers`), joining them, and an epilogue. The
/// prologue/epilogue are candidates for the pass's single-threaded-mode
/// elision.
pub fn main_scaffold(
    b: &mut ProgramBuilder,
    workers: usize,
    prologue_accesses: u32,
    epilogue_accesses: u32,
) {
    let setup = b.array("main_setup", prologue_accesses.max(1) as usize);
    {
        let mut tb = b.thread(0);
        if prologue_accesses > 0 {
            tb.loop_n(prologue_accesses, move |tb| {
                tb.write_arr(setup, 8, 1);
                tb.compute(2);
            });
        }
        for w in 1..=workers {
            tb.spawn(ThreadId(w as u32));
        }
        for w in 1..=workers {
            tb.join(ThreadId(w as u32));
        }
        if epilogue_accesses > 0 {
            tb.loop_n(epilogue_accesses, move |tb| {
                tb.read_arr(setup, 8);
                tb.compute(2);
            });
        }
    }
}

/// Interrupt rates at a given worker count. Rates are specified for the
/// paper's 4-worker baseline; 2 workers see slightly fewer OS events and
/// 8 workers (hyperthread-saturated) dramatically more — the paper
/// measured 5–9x more unknown aborts at 8 threads (§8.2, Figure 8).
pub fn scaled_interrupts(
    context_switch_p: f64,
    transient_p: f64,
    workers: usize,
) -> InterruptModel {
    let f = match workers {
        0..=2 => 0.7,
        3..=4 => 1.0,
        5..=6 => 2.0,
        _ => 7.0,
    };
    InterruptModel {
        context_switch_p: context_switch_p * f,
        transient_p: transient_p * f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::{DirectRuntime, Machine, Program, RoundRobin, RunStatus};

    fn run(p: &Program) -> RunStatus {
        let mut m = Machine::new(p);
        let mut rt = DirectRuntime::default();
        let mut s = RoundRobin::new();
        m.run(&mut rt, &mut s).status
    }

    #[test]
    fn scaffold_spawns_and_joins() {
        let mut b = ProgramBuilder::new(3);
        main_scaffold(&mut b, 2, 5, 5);
        let s0 = b.array("s0", 8);
        let s1 = b.array("s1", 8);
        let body0 = IterBody {
            accesses: 4,
            compute: 2,
            scratch: s0,
        };
        let body1 = IterBody {
            accesses: 4,
            compute: 2,
            scratch: s1,
        };
        syscall_iters(&mut b.thread(1), 3, &body0);
        syscall_iters(&mut b.thread(2), 3, &body1);
        let p = b.build();
        assert!(p.starts_parked(ThreadId(1)));
        assert_eq!(run(&p), RunStatus::Done);
    }

    #[test]
    fn locked_iters_are_well_formed() {
        let mut b = ProgramBuilder::new(3);
        main_scaffold(&mut b, 2, 0, 0);
        let shared = b.array("shared", 8);
        let l = b.lock_id("l");
        for w in 1..=2 {
            let s = b.array("s", 8);
            let body = IterBody {
                accesses: 4,
                compute: 1,
                scratch: s,
            };
            locked_iters(&mut b.thread(w), 10, &body, l, shared, 3);
        }
        assert_eq!(run(&b.build()), RunStatus::Done);
    }

    #[test]
    fn barrier_phases_complete() {
        let mut b = ProgramBuilder::new(3);
        main_scaffold(&mut b, 2, 0, 0);
        let bar = b.barrier_id("bar");
        for w in 1..=2 {
            let s = b.array("s", 8);
            let body = IterBody {
                accesses: 2,
                compute: 1,
                scratch: s,
            };
            barrier_phases(&mut b.thread(w), 4, 5, &body, bar);
        }
        assert_eq!(run(&b.build()), RunStatus::Done);
    }

    #[test]
    fn capacity_walk_touches_distinct_lines() {
        let mut b = ProgramBuilder::new(1);
        let arr = b.array("arr", 64 * 9 * 8); // room for stride-8-line walk
        let mut tb = b.thread(0);
        capacity_walk(&mut tb, arr, 16, 8);
        let p = b.build();
        let mut m = Machine::new(&p);
        let mut rt = DirectRuntime::default();
        let mut s = RoundRobin::new();
        assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);
        // 16 writes at 8-line stride: lines 0, 8, ..., 120 of the array.
        let touched: Vec<u64> = m.memory().iter().map(|(a, _)| a.0).collect();
        assert_eq!(touched.len(), 16);
        assert!(touched.windows(2).all(|w| w[1] - w[0] == 8 * 64));
    }

    #[test]
    fn scaled_interrupts_blow_up_at_eight() {
        let base = scaled_interrupts(0.01, 0.0, 4);
        let eight = scaled_interrupts(0.01, 0.0, 8);
        let two = scaled_interrupts(0.01, 0.0, 2);
        assert!(eight.context_switch_p > 5.0 * base.context_switch_p);
        assert!(two.context_switch_p < base.context_switch_p);
    }
}
