//! Vendored stand-in for the slice of the `criterion` API this
//! workspace's benches use, so `cargo bench` works with no registry
//! access.
//!
//! Methodology is deliberately simple: a short warm-up, then repeated
//! timed batches with the batch size grown until one batch takes long
//! enough to measure (≥ ~5 ms), reporting the minimum per-iteration
//! time over the batches. No statistics, plots, or baselines — just a
//! stable wall-clock number per benchmark on stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each registered benchmark function.
pub struct Criterion {
    /// Target number of timed batches per benchmark.
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        run_benchmark(id, self.sample_count, f);
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_count = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.group, id);
        run_benchmark(&full, self.criterion.sample_count, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.group, id.0);
        run_benchmark(&full, self.criterion.sample_count, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// A benchmark name of the form `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Joins a function name and a parameter value.
    pub fn new(function: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Times the routine under measurement.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `batch` invocations of `routine` as one measurement.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // Grow the batch until a single measurement is long enough to trust.
    let mut batch = 1u64;
    let mut b = Bencher {
        batch,
        elapsed: Duration::ZERO,
    };
    loop {
        b.batch = batch;
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || batch >= 1 << 24 {
            break;
        }
        batch *= 4;
    }
    let mut best = Duration::MAX;
    for _ in 0..samples {
        b.batch = batch;
        f(&mut b);
        if b.elapsed < best {
            best = b.elapsed;
        }
    }
    let per_iter = best.as_nanos() as f64 / batch as f64;
    println!("bench {id:60} {per_iter:>12.1} ns/iter  (batch {batch}, {samples} samples)");
}

/// Declares a group of benchmark functions, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring the real macro.
/// Command-line arguments from `cargo bench` are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut calls = 0u64;
        g.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        assert!(calls > 0);
    }
}
