//! Stateless model checking of the TxRace engine: on a small program
//! containing a true race, a lock-protected counter, and a false-sharing
//! pair, explore **every** thread interleaving and verify, on each one:
//!
//! * forward progress (the run completes),
//! * completeness (nothing but the true race is ever reported),
//! * final-state correctness for the lock-protected state.
//!
//! This is the strongest form of DESIGN.md invariants 4 and 8: not
//! sampled over seeds, but proven over the complete schedule space of the
//! program.

use txrace::{instrument, EngineConfig, InstrumentConfig, TsanConsumer, TxRaceEngine};
use txrace_hb::ShadowMode;
use txrace_sim::explore::{explore, ExploreLimits};
use txrace_sim::{Live, Program, ProgramBuilder, RunStatus};

/// Two threads; per thread: one racy access, one locked increment, one
/// false-shared private write. Small enough to explore exhaustively
/// (instrumented with `K = 2` so the three-access region still runs as a
/// transaction without padding that would blow up the schedule space).
fn model_program() -> Program {
    let mut b = ProgramBuilder::new(2);
    let racy = b.var("racy");
    let counter = b.var("counter");
    let fs_base = b.var("fs0");
    let fs1 = b.var_sharing_line(fs_base, 8);
    let l = b.lock_id("l");
    for t in 0..2 {
        let fs = if t == 0 { fs_base } else { fs1 };
        let mut tb = b.thread(t);
        // The true race.
        if t == 0 {
            tb.write_l(racy, 1, "race_w");
        } else {
            tb.read_l(racy, "race_r");
        }
        tb.write(fs, 7); // false sharing: same line, disjoint words
        tb.lock(l).rmw(counter, 1).unlock(l);
    }
    b.build()
}

#[test]
fn txrace_is_complete_and_live_on_every_interleaving() {
    let p = model_program();
    let cfg = InstrumentConfig {
        k_min_ops: 2,
        ..InstrumentConfig::default()
    };
    let ip = instrument(&p, &cfg);
    let race_w = p.site("race_w").unwrap();
    let race_r = p.site("race_r").unwrap();
    let counter = {
        // Recover the counter address for the final-state check.
        let mut b = ProgramBuilder::new(1);
        let _racy = b.var("racy");
        b.var("counter")
    };

    let mut detected = 0u64;
    let ip_ref = &ip;
    let stats = explore(
        &ip.program,
        || TxRaceEngine::new(ip_ref, EngineConfig::default()),
        |machine, engine, result| {
            assert_eq!(result.status, RunStatus::Done, "forward progress");
            // Completeness: the only reportable pair is the true race.
            for pair in engine.races().pairs() {
                assert!(
                    pair == txrace_hb::RacePair::new(race_w, race_r),
                    "false positive: {pair}"
                );
            }
            detected += u64::from(engine.races().contains(race_w, race_r));
            // Lock-protected increments both land on every schedule.
            assert_eq!(machine.memory().load(counter), 2, "atomicity");
        },
        ExploreLimits {
            max_paths: 2_000_000,
            max_steps: 10_000,
        },
    );
    assert!(
        stats.complete,
        "schedule space not covered ({} paths)",
        stats.paths
    );
    assert!(stats.paths > 100, "suspiciously few paths: {}", stats.paths);
    assert!(
        detected > 0,
        "the race overlaps on some schedules; at least one must catch it"
    );
}

#[test]
fn tsan_reports_exactly_the_race_on_every_interleaving() {
    let p = model_program();
    let race_w = p.site("race_w").unwrap();
    let race_r = p.site("race_r").unwrap();
    let n = p.thread_count();
    let stats = explore(
        &p,
        || {
            Live::new(TsanConsumer::full(
                n,
                txrace::CostModel::default(),
                1.0,
                ShadowMode::Exact,
            ))
        },
        |_machine, rt, result| {
            assert_eq!(result.status, RunStatus::Done);
            // The racy pair is unordered on every schedule; everything
            // else is lock-protected, thread-local, or atomic.
            assert_eq!(rt.consumer().races().distinct_count(), 1);
            assert!(rt.consumer().races().contains(race_w, race_r));
        },
        ExploreLimits {
            max_paths: 2_000_000,
            max_steps: 10_000,
        },
    );
    assert!(stats.complete);
}
