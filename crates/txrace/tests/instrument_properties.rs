//! Property tests for the transactionalization pass on randomly generated
//! programs: marker balance, region-table consistency, semantic
//! neutrality, and site preservation must hold for *any* program shape.

use proptest::prelude::*;
use txrace::{instrument, InstrumentConfig, RegionKind};
use txrace_sim::{DirectRuntime, Machine, Op, Program, RandomSched, RunStatus, Stmt, ThreadId};
use txrace_workloads::{random_program, GenConfig};

/// Walks one thread checking TxBegin/TxEnd alternation, no nesting, no
/// boundary ops inside regions, and loop-local region balance.
fn check_markers(p: &Program) {
    for t in 0..p.thread_count() {
        fn walk(stmts: &[Stmt], open: &mut Option<txrace_sim::RegionId>) {
            for s in stmts {
                match s {
                    Stmt::Op {
                        op: Op::TxBegin(r), ..
                    } => {
                        assert!(open.is_none(), "nested TxBegin");
                        *open = Some(*r);
                    }
                    Stmt::Op {
                        op: Op::TxEnd(r), ..
                    } => {
                        assert_eq!(*open, Some(*r), "mismatched TxEnd");
                        *open = None;
                    }
                    Stmt::Op { op, .. } if op.is_sync() || matches!(op, Op::Syscall(_)) => {
                        assert!(open.is_none(), "boundary op inside a region");
                    }
                    Stmt::Loop { body, .. } => {
                        let outer = *open;
                        walk(body, open);
                        assert_eq!(*open, outer, "region crosses a loop boundary");
                    }
                    _ => {}
                }
            }
        }
        let mut open = None;
        walk(p.thread(ThreadId(t as u32)), &mut open);
        assert!(open.is_none(), "unclosed region at thread exit");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn markers_are_balanced_on_random_programs(
        gen_seed in 0u64..1000,
        k in prop_oneof![Just(0u64), Just(5), Just(12)],
        probes in any::<bool>(),
    ) {
        let p = random_program(&GenConfig::default(), gen_seed);
        let cfg = InstrumentConfig {
            k_min_ops: k,
            loopcut_probes: probes,
            single_thread_elision: true,
        };
        let ip = instrument(&p, &cfg);
        check_markers(&ip.program);

        // Region table consistency: kinds respect K, every region id is
        // referenced by exactly one static TxBegin.
        let mut begins = vec![0u32; ip.region_count()];
        for t in 0..ip.program.thread_count() {
            fn count(stmts: &[Stmt], begins: &mut [u32]) {
                for s in stmts {
                    match s {
                        Stmt::Op { op: Op::TxBegin(r), .. } => begins[r.index()] += 1,
                        Stmt::Loop { body, .. } => count(body, begins),
                        _ => {}
                    }
                }
            }
            count(ip.program.thread(ThreadId(t as u32)), &mut begins);
        }
        for (i, region) in ip.regions.iter().enumerate() {
            prop_assert_eq!(begins[i], 1, "region {} has {} begins", i, begins[i]);
            prop_assert!(region.mem_ops > 0, "empty region in the table");
            match region.kind {
                RegionKind::SlowOnly => prop_assert!(region.mem_ops < k.max(1)),
                RegionKind::Fast => prop_assert!(region.mem_ops >= k),
            }
        }
    }

    /// The instrumented program computes the same final memory as the
    /// original under an identical deterministic schedule modulo the
    /// marker no-ops (markers never touch memory).
    #[test]
    fn instrumentation_is_semantically_neutral(gen_seed in 0u64..300) {
        let p = random_program(&GenConfig::default(), gen_seed);
        let ip = instrument(&p, &InstrumentConfig::default());
        prop_assert_eq!(p.site_count() <= ip.program.site_count(), true);
        // Accesses and syncs are untouched.
        prop_assert_eq!(
            p.dynamic_access_count(),
            ip.program.dynamic_access_count()
        );
        // Same final state under plain execution (schedules differ because
        // markers consume steps; totals of atomic counters still match for
        // commutative programs, so compare access counts executed instead).
        let run = |prog: &Program| {
            let mut m = Machine::new(prog);
            let mut rt = DirectRuntime::default();
            let mut s = RandomSched::new(7);
            let r = m.run(&mut rt, &mut s);
            prop_assert_eq!(r.status, RunStatus::Done);
            Ok(())
        };
        run(&p)?;
        run(&ip.program)?;
    }
}
