//! End-to-end scenario tests of the TxRace two-phase protocol, one per
//! paper mechanism: conflict-triggered slow path (Figure 3), false-sharing
//! filtering, capacity fallback with concurrent fast/slow detection
//! (Figure 5), fast-path happens-before tracking (Figure 6),
//! non-overlapping false negatives (Figure 4), loop-cut, and the forward
//! progress / correctness invariants of DESIGN.md §6.

use txrace::{recall, Detector, LoopcutMode, RunConfig, SchedKind, Scheme, TxRaceOpts};
use txrace_htm::HtmConfig;
use txrace_sim::{InterruptModel, Program, ProgramBuilder, ThreadId};

fn txrace_cfg(seed: u64) -> RunConfig {
    RunConfig::new(Scheme::txrace(), seed)
}

fn tsan_cfg(seed: u64) -> RunConfig {
    RunConfig::new(Scheme::Tsan, seed)
}

/// Two threads hammer the same variable in big unsynchronized regions:
/// the HTM must conflict, the slow path must pinpoint the planted pair.
fn racy_program() -> Program {
    // The racy accesses recur throughout both threads' main loops, so the
    // conflicting accesses overlap in flight under any fair schedule.
    let mut b = ProgramBuilder::new(2);
    let x = b.var("x");
    let scratch = b.array("scratch", 64);
    for t in 0..2u32 {
        b.thread(t as usize).loop_n(50, |tb| {
            tb.compute(5);
            for i in 0..6 {
                tb.read(txrace_sim::elem(scratch, (t as usize) * 8 + i));
            }
            if t == 0 {
                tb.write_l(x, 1, "racy_write");
            } else {
                tb.read_l(x, "racy_read");
            }
            tb.compute(4);
            // A syscall cuts the region, so each iteration is its own
            // transaction: most commit, the overlapping ones conflict.
            tb.syscall(txrace_sim::SyscallKind::Io);
        });
    }
    b.build()
}

#[test]
fn conflict_abort_triggers_slow_path_and_pinpoints_race() {
    let p = racy_program();
    let out =
        Detector::new(txrace_cfg(7).with_sched(SchedKind::Random { stickiness: 0.5 })).run(&p);
    assert!(out.completed());
    let htm = out.htm.expect("txrace run has HTM stats");
    assert!(htm.conflict_aborts > 0, "expected conflict aborts: {htm:?}");
    assert!(htm.committed > 0);
    let w = p.site("racy_write").unwrap();
    let r = p.site("racy_read").unwrap();
    assert!(
        out.races.contains(w, r),
        "planted race not found; races: {:?}",
        out.races.pairs().collect::<Vec<_>>()
    );
    let es = out.engine.expect("engine stats");
    assert!(es.slow_conflict > 0);
    assert!(es.txfail_writes > 0, "conflict episode must write TxFail");
}

#[test]
fn false_sharing_conflicts_are_filtered_by_slow_path() {
    // Distinct variables in one cache line: the fast path conflicts, the
    // word-granular slow path must not report anything.
    let mut b = ProgramBuilder::new(2);
    let base = b.var("padded");
    let x0 = base;
    let x1 = b.var_sharing_line(base, 8);
    for (t, v) in [(0usize, x0), (1usize, x1)] {
        b.thread(t).loop_n(60, |tb| {
            tb.write(v, t as u64).read(v).compute(3);
        });
    }
    let p = b.build();
    let out =
        Detector::new(txrace_cfg(3).with_sched(SchedKind::Random { stickiness: 0.3 })).run(&p);
    assert!(out.completed());
    let htm = out.htm.unwrap();
    assert!(
        htm.conflict_aborts > 0,
        "false sharing should conflict in HTM: {htm:?}"
    );
    assert!(
        out.races.is_empty(),
        "false sharing must be filtered (completeness): {:?}",
        out.races.reports()
    );
}

#[test]
fn lock_protected_accesses_never_race_and_never_conflict() {
    let mut b = ProgramBuilder::new(4);
    let x = b.var("x");
    let l = b.lock_id("l");
    for t in 0..4 {
        b.thread(t).loop_n(25, |tb| {
            tb.lock(l);
            for _ in 0..6 {
                tb.read(x);
            }
            tb.write(x, t as u64);
            tb.unlock(l);
        });
    }
    let p = b.build();
    let out = Detector::new(txrace_cfg(11)).run(&p);
    assert!(out.completed());
    assert!(out.races.is_empty());
    // Critical sections on one lock cannot overlap, so their transactions
    // cannot conflict with each other.
    assert_eq!(out.htm.unwrap().conflict_aborts, 0);
}

#[test]
fn capacity_abort_sends_only_that_thread_slow() {
    // Thread 0 writes far more lines than the (shrunken) HTM holds;
    // thread 1 does small clean work.
    let mut b = ProgramBuilder::new(2);
    let big = b.array("big", 1024); // 128 lines
    let y = b.var("y");
    b.thread(0).loop_n(3, |tb| {
        for i in 0..128 {
            tb.write(txrace_sim::elem(big, i * 8), 1);
        }
        tb.compute(10);
    });
    b.thread(1).loop_n(50, |tb| {
        tb.read(y).read(y).read(y).write(y, 1).read(y).read(y);
    });
    let p = b.build();
    let htm = HtmConfig {
        write_sets: 8,
        write_ways: 4, // 32-line write capacity
        ..HtmConfig::default()
    };
    let cfg = RunConfig::new(
        Scheme::TxRace(TxRaceOpts {
            loopcut: LoopcutMode::NoOpt,
            ..TxRaceOpts::default()
        }),
        5,
    )
    .with_htm(htm);
    let out = Detector::new(cfg).run(&p);
    assert!(out.completed());
    let stats = out.htm.unwrap();
    assert!(stats.capacity_aborts > 0, "{stats:?}");
    let es = out.engine.unwrap();
    assert!(es.slow_capacity > 0);
    // No conflicts, no TxFail episodes: thread 1 stays fast.
    assert_eq!(es.txfail_writes, 0);
    assert!(out.races.is_empty());
}

#[test]
fn loopcut_dyn_reduces_capacity_aborts() {
    // Each loop iteration writes a fresh cache line (stride 64); the
    // shrunken HTM holds 32 write lines, so a 200-iteration transaction
    // always overflows unless it is cut.
    let mut b = ProgramBuilder::new(2);
    let big0 = b.array("big0", 8192);
    let big1 = b.array("big1", 8192);
    for (t, base) in [(0usize, big0), (1usize, big1)] {
        // Ten dynamic instances of the region (cut by the syscall), each
        // walking 60 fresh lines: NoOpt capacity-aborts every instance;
        // Dyn learns after the first; Prof avoids even that one.
        b.thread(t).loop_n(10, |tb| {
            tb.loop_n(60, |tb| {
                tb.write_arr(base, 64, 1);
                tb.compute(2);
            });
            tb.syscall(txrace_sim::SyscallKind::Io);
        });
    }
    let p = b.build();
    let htm = HtmConfig {
        write_sets: 8,
        write_ways: 4, // 32-line write capacity
        ..HtmConfig::default()
    };
    let run = |mode: LoopcutMode| {
        let cfg = RunConfig::new(
            Scheme::TxRace(TxRaceOpts {
                loopcut: mode,
                ..TxRaceOpts::default()
            }),
            9,
        )
        .with_htm(htm);
        Detector::new(cfg).run(&p)
    };
    let noopt = run(LoopcutMode::NoOpt);
    let dynr = run(LoopcutMode::Dyn);
    let prof = run(LoopcutMode::Prof);
    assert!(noopt.completed() && dynr.completed() && prof.completed());
    let (n_cap, d_cap, p_cap) = (
        noopt.htm.unwrap().capacity_aborts,
        dynr.htm.unwrap().capacity_aborts,
        prof.htm.unwrap().capacity_aborts,
    );
    assert!(n_cap > 0);
    assert!(d_cap < n_cap, "Dyn should cut: {d_cap} vs {n_cap}");
    assert!(
        p_cap <= d_cap,
        "Prof avoids early aborts: {p_cap} vs {d_cap}"
    );
    assert!(dynr.engine.unwrap().loop_cuts > 0);
    assert!(
        dynr.overhead < noopt.overhead,
        "loopcut should pay off: {} vs {}",
        dynr.overhead,
        noopt.overhead
    );
}

#[test]
fn fast_slow_concurrent_detection_via_strong_isolation() {
    // Figure 5: thread 0 runs big fast regions touching X; thread 1 runs
    // tiny (SlowOnly) regions also touching X. The slow thread's plain
    // access must doom thread 0's transaction (strong isolation), pulling
    // it into the slow path where the race is confirmed.
    let mut b = ProgramBuilder::new(2);
    let x = b.var("x");
    let pad = b.array("pad", 64);
    b.thread(0).loop_n(80, |tb| {
        for i in 0..6 {
            tb.read(txrace_sim::elem(pad, i));
        }
        tb.write_l(x, 7, "fast_write");
        tb.compute(3);
    });
    b.thread(1).loop_n(80, |tb| {
        tb.read_l(x, "slow_read").compute(6);
        tb.syscall(txrace_sim::SyscallKind::Io); // keeps regions tiny (SlowOnly)
    });
    let p = b.build();
    let out =
        Detector::new(txrace_cfg(21).with_sched(SchedKind::Random { stickiness: 0.4 })).run(&p);
    assert!(out.completed());
    assert!(
        out.engine.unwrap().slow_small > 0,
        "thread 1 regions are SlowOnly"
    );
    let w = p.site("fast_write").unwrap();
    let r = p.site("slow_read").unwrap();
    assert!(
        out.races.contains(w, r),
        "fast/slow race not detected: {:?}",
        out.races.pairs().collect::<Vec<_>>()
    );
}

#[test]
fn fast_path_sync_tracking_prevents_false_positives() {
    // Figure 6: a signal/wait edge whose endpoints run on the fast path
    // must still order slow-path accesses before and after it.
    let mut b = ProgramBuilder::new(2);
    let x = b.var("x");
    let c = b.cond_id("c");
    // Thread 0: writes X in a tiny SlowOnly region, then signals.
    b.thread(0).write_l(x, 1, "before_signal").signal(c);
    // Thread 1: waits, runs a big fast region (clean), then a tiny
    // SlowOnly region writing X.
    let pad = b.array("pad", 64);
    b.thread(1).wait(c);
    b.thread(1).loop_n(10, |tb| {
        for i in 0..6 {
            tb.read(txrace_sim::elem(pad, i));
        }
    });
    b.thread(1).syscall(txrace_sim::SyscallKind::Io);
    b.thread(1).write_l(x, 2, "after_wait");
    let p = b.build();
    let out = Detector::new(txrace_cfg(2)).run(&p);
    assert!(out.completed());
    assert!(
        out.races.is_empty(),
        "signal/wait-ordered accesses misreported: {:?}",
        out.races.reports()
    );
}

#[test]
fn non_overlapping_race_is_missed_but_tsan_finds_it() {
    // Figure 4(b) / the bodytrack init idiom: write early, read much
    // later; transactions never overlap, so TxRace misses what TSan finds.
    let mut b = ProgramBuilder::new(2);
    let x = b.var("x");
    let pad0 = b.array("pad0", 64);
    let pad1 = b.array("pad1", 64);
    // Thread 0: racy write in its own early region (closed by a syscall),
    // then long quiet work.
    b.thread(0).write_l(x, 1, "init_write");
    b.thread(0).write(x, 1).write(x, 1).write(x, 1).write(x, 1); // pad region >= K
    b.thread(0).syscall(txrace_sim::SyscallKind::Io);
    b.thread(0).loop_n(400, |tb| {
        tb.read(txrace_sim::elem(pad0, 0)).compute(20);
    });
    // Thread 1: long quiet work, then the racy read in its own region.
    b.thread(1).loop_n(400, |tb| {
        tb.read(txrace_sim::elem(pad1, 0)).compute(20);
    });
    b.thread(1).syscall(txrace_sim::SyscallKind::Io);
    b.thread(1)
        .read_l(x, "late_read")
        .read(x)
        .read(x)
        .read(x)
        .read(x);
    let p = b.build();

    // Round-robin keeps the two ends of the race hundreds of steps apart.
    let tx = Detector::new(txrace_cfg(1).with_sched(SchedKind::RoundRobin)).run(&p);
    let ts = Detector::new(tsan_cfg(1).with_sched(SchedKind::RoundRobin)).run(&p);
    let w = p.site("init_write").unwrap();
    let r = p.site("late_read").unwrap();
    assert!(ts.races.contains(w, r), "HB detector must find it");
    assert!(
        !tx.races.contains(w, r),
        "overlap-based TxRace should miss the temporally-distant race"
    );
    assert!(recall(&tx.races, &ts.races) < 1.0);
}

#[test]
fn unknown_aborts_from_interrupts_are_survivable() {
    let p = racy_program();
    let cfg = txrace_cfg(13).with_interrupts(InterruptModel {
        context_switch_p: 0.02,
        transient_p: 0.01,
    });
    let out = Detector::new(cfg).run(&p);
    assert!(out.completed());
    let htm = out.htm.unwrap();
    assert!(htm.unknown_aborts > 0, "{htm:?}");
    assert!(htm.retry_aborts > 0, "{htm:?}");
    let es = out.engine.unwrap();
    assert!(es.slow_unknown > 0);
    assert!(es.fast_retries > 0);
}

#[test]
fn final_memory_matches_uninstrumented_semantics() {
    // Deterministic final state under locks: every scheme must agree.
    let mut b = ProgramBuilder::new(3);
    let counter = b.var("counter");
    let l = b.lock_id("l");
    for t in 0..3 {
        b.thread(t).loop_n(40, |tb| {
            tb.lock(l).rmw(counter, 1).unlock(l);
        });
    }
    let p = b.build();
    for scheme in [Scheme::Tsan, Scheme::txrace()] {
        let out = Detector::new(RunConfig::new(scheme, 17)).run(&p);
        assert!(out.completed());
        assert_eq!(out.memory.load(counter), 120, "atomicity violated");
    }
}

#[test]
fn same_seed_same_outcome() {
    let p = racy_program();
    let run = || {
        let out = Detector::new(txrace_cfg(99)).run(&p);
        (
            out.races.pairs().collect::<Vec<_>>(),
            out.breakdown,
            out.htm,
            out.engine,
            out.run.steps,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_can_find_different_schedules() {
    let p = racy_program();
    let steps: Vec<u64> = (0..4)
        .map(|s| Detector::new(txrace_cfg(s)).run(&p).run.steps)
        .collect();
    assert!(
        steps.windows(2).any(|w| w[0] != w[1]),
        "seeds should vary schedules: {steps:?}"
    );
}

#[test]
fn txrace_is_complete_every_report_is_a_tsan_race() {
    // Completeness (no false positives): on the same seed, everything
    // TxRace reports must be HB-racy per full TSan on a matching trace.
    // (TSan ground truth is schedule-dependent; use the same seed & sched.)
    let p = racy_program();
    for seed in 0..5 {
        let tx = Detector::new(txrace_cfg(seed)).run(&p);
        let ts = Detector::new(tsan_cfg(seed)).run(&p);
        for pair in tx.races.pairs() {
            assert!(
                ts.races.contains(pair.a, pair.b),
                "seed {seed}: TxRace reported {pair} unknown to TSan"
            );
        }
    }
}

#[test]
fn slow_only_small_regions_still_detect_races() {
    // Both sides tiny (< K): everything runs SlowOnly, detection is pure
    // software and still works.
    let mut b = ProgramBuilder::new(2);
    let x = b.var("x");
    for t in 0..2 {
        b.thread(t).loop_n(10, |tb| {
            tb.write_l(x, t as u64, &format!("w{t}_{}", 0)).compute(2);
            tb.syscall(txrace_sim::SyscallKind::Io);
        });
    }
    let p = b.build();
    let out = Detector::new(txrace_cfg(4)).run(&p);
    assert!(out.completed());
    let es = out.engine.unwrap();
    assert!(es.slow_small > 0);
    assert_eq!(out.races.distinct_count(), 1);
}

#[test]
fn single_threaded_phases_cost_nothing_extra() {
    // A program that is mostly single-threaded prologue/epilogue: TxRace
    // overhead should stay close to 1x thanks to the elision.
    let mut b = ProgramBuilder::new(2);
    let x = b.var("x");
    b.thread(0).loop_n(2000, |tb| {
        tb.write(x, 1).compute(2);
    });
    b.thread(0).spawn(ThreadId(1));
    b.thread(0).read(x).read(x).read(x).read(x).read(x);
    b.thread(0).join(ThreadId(1));
    b.thread(0).loop_n(2000, |tb| {
        tb.write(x, 2).compute(2);
    });
    b.thread(1).read(x).read(x).read(x).read(x).read(x);
    let p = b.build();
    let out = Detector::new(txrace_cfg(6)).run(&p);
    assert!(out.completed());
    assert!(
        out.overhead < 1.2,
        "single-threaded elision should keep overhead tiny, got {}",
        out.overhead
    );
}

/// Figure 4(a) vs 4(b): the *same* temporally-distant race is caught when
/// each thread is one long transaction (the accesses' transactions
/// overlap) and missed when the regions are cut short.
#[test]
fn transaction_length_controls_detection_figure4() {
    let build = |cut: bool| {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let pad0 = b.array("pad0", 8);
        let pad1 = b.array("pad1", 8);
        // Thread 0 writes X early; thread 1 reads X late. With no cuts,
        // each thread is a single long transaction and the two overlap;
        // with per-iteration cuts the racy accesses sit in short
        // transactions hundreds of steps apart.
        // The racy regions carry enough private accesses to stay above the
        // K threshold, so they run as transactions rather than being
        // software-checked outright.
        b.thread(0).write_l(x, 1, "early_write");
        for i in 0..5 {
            b.thread(0).read(txrace_sim::elem(pad0, i));
        }
        if cut {
            b.thread(0).syscall(txrace_sim::SyscallKind::Io);
        }
        // The writer runs longer than the reader, so in the uncut case its
        // transaction is still in flight when the reader's late access
        // arrives.
        b.thread(0).loop_n(90, |tb| {
            for i in 0..4 {
                tb.read(txrace_sim::elem(pad0, i));
            }
            tb.compute(4);
            if cut {
                tb.syscall(txrace_sim::SyscallKind::Io);
            }
        });
        b.thread(1).loop_n(60, |tb| {
            for i in 0..4 {
                tb.read(txrace_sim::elem(pad1, i));
            }
            tb.compute(4);
            if cut {
                tb.syscall(txrace_sim::SyscallKind::Io);
            }
        });
        if cut {
            b.thread(1).syscall(txrace_sim::SyscallKind::Io);
        }
        for i in 0..5 {
            b.thread(1).read(txrace_sim::elem(pad1, i));
        }
        b.thread(1).read_l(x, "late_read");
        b.build()
    };
    let run = |p: &Program| Detector::new(txrace_cfg(1).with_sched(SchedKind::RoundRobin)).run(p);
    let long = build(false);
    let short = build(true);
    let long_out = run(&long);
    let short_out = run(&short);
    assert!(
        long_out.races.contains(
            long.site("early_write").unwrap(),
            long.site("late_read").unwrap()
        ),
        "long transactions overlap: race must be caught (Fig. 4a)"
    );
    assert!(
        !short_out.races.contains(
            short.site("early_write").unwrap(),
            short.site("late_read").unwrap()
        ),
        "short transactions never overlap: race must be missed (Fig. 4b)"
    );
    // TSan finds it either way — transaction length is an HTM-side limit.
    let ts = Detector::new(tsan_cfg(1).with_sched(SchedKind::RoundRobin)).run(&short);
    assert!(ts.races.contains(
        short.site("early_write").unwrap(),
        short.site("late_read").unwrap()
    ));
}
