//! Integration tests for the unified control plane: the adaptive
//! `ProductionMode` controller must be deterministic (a pure function of
//! the telemetry prefix), respect its overhead budget, trade recall
//! monotonically against that budget, and re-tune the knobs it owns.

use txrace::{recall, Detector, RunOutcome, Scheme, StaticPruneMode};
use txrace_workloads::by_name;

fn production(app: &str, budget: f64, seed: u64) -> RunOutcome {
    let w = by_name(app, 4).expect("known app");
    let out = Detector::new(w.config(Scheme::production(budget), seed)).run(&w.program);
    assert!(out.completed(), "{app}: production run did not complete");
    out
}

fn truth(app: &str, seed: u64) -> RunOutcome {
    let w = by_name(app, 4).expect("known app");
    Detector::new(
        w.config(Scheme::txrace(), seed)
            .with_prune(StaticPruneMode::FullFlow),
    )
    .run(&w.program)
}

/// Same workload, seed, and budget → the exact same epoch-by-epoch knob
/// schedule and the exact same race set. The controller consumes only
/// the telemetry prefix, so nothing nondeterministic can leak in.
#[test]
fn controller_is_deterministic() {
    for app in ["streamcluster", "facesim", "vips"] {
        let a = production(app, 1.2, 42);
        let b = production(app, 1.2, 42);
        let (ta, tb) = (a.telemetry.unwrap(), b.telemetry.unwrap());
        assert_eq!(
            ta.knob_schedule(),
            tb.knob_schedule(),
            "{app}: knob schedule diverged between identical runs"
        );
        assert!(
            a.races.pairs().eq(b.races.pairs()),
            "{app}: race set diverged between identical runs"
        );
        assert_eq!(a.overhead, b.overhead, "{app}: overhead diverged");
    }
}

/// Loosening the budget never loses races: mean recall over a subset of
/// throttled apps is non-decreasing across the budget grid.
#[test]
fn recall_is_monotone_in_budget() {
    let apps = ["streamcluster", "facesim", "bodytrack", "x264"];
    let truths: Vec<RunOutcome> = apps.iter().map(|a| truth(a, 42)).collect();
    let mut prev = 0.0f64;
    for budget in [1.05, 1.2, 1.5, 2.0] {
        let mean: f64 = apps
            .iter()
            .zip(&truths)
            .map(|(app, t)| recall(&production(app, budget, 42).races, &t.races))
            .sum::<f64>()
            / apps.len() as f64;
        assert!(
            mean + 1e-9 >= prev,
            "mean recall regressed at budget {budget}: {mean:.3} < {prev:.3}"
        );
        prev = mean;
    }
}

/// The controller's hard cap holds: modeled overhead stays within the
/// budget plus the demotion-granularity slack (one epoch of spending).
#[test]
fn overhead_respects_budget() {
    for app in ["streamcluster", "vips", "ferret", "facesim", "pipeline"] {
        for budget in [1.2, 1.5] {
            let out = production(app, budget, 42);
            assert!(
                out.overhead <= budget * 1.05,
                "{app}: overhead {:.3} exceeds budget {budget} (+5% slack)",
                out.overhead
            );
        }
    }
}

/// Demotion escalates K (tiny regions stop paying transaction
/// management); apps that never overspend keep the default knobs all
/// the way through.
#[test]
fn knobs_escalate_only_on_demotion() {
    let throttled = production("streamcluster", 1.2, 42).telemetry.unwrap();
    assert!(
        throttled.epochs.iter().any(|e| e.k_min_ops > 5),
        "a demoted run must escalate K past the default"
    );
    assert!(
        throttled.active_epochs() < throttled.epochs.len(),
        "a demoted run must have idle epochs"
    );

    let easy = production("blackscholes", 1.2, 42).telemetry.unwrap();
    assert!(
        easy.epochs.iter().all(|e| e.k_min_ops == 5 && e.active),
        "an always-on run must keep default knobs and stay active"
    );
}

/// Telemetry is internally consistent: epochs partition the event
/// stream, cumulative overhead is non-decreasing, and the final epoch's
/// cumulative overhead matches the run's reported overhead.
#[test]
fn telemetry_is_consistent() {
    for app in ["streamcluster", "raytrace", "canneal"] {
        let out = production(app, 1.2, 42);
        let tm = out.telemetry.as_ref().unwrap();
        assert!(!tm.epochs.is_empty(), "{app}: no epochs recorded");
        assert!(tm.total_events() > 0, "{app}: no events recorded");
        assert_eq!(
            tm.total_events(),
            tm.epochs.iter().map(|e| e.events).sum::<u64>()
        );
        let mut prev = 0.0;
        for e in &tm.epochs {
            assert!(
                e.cum_overhead + 1e-9 >= prev,
                "{app}: cumulative overhead decreased at epoch {}",
                e.index
            );
            prev = e.cum_overhead;
        }
        let last = tm.epochs.last().unwrap();
        assert!(
            (last.cum_overhead - out.overhead).abs() < 1e-6,
            "{app}: final cum overhead {:.4} != run overhead {:.4}",
            last.cum_overhead,
            out.overhead
        );
    }
}
