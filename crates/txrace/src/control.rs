//! The unified control plane: runtime knobs, epoch-structured telemetry,
//! and the adaptive production-mode controller.
//!
//! Before this module, the tunables that shape a run were scattered —
//! transaction capacity `K` in [`mod@crate::instrument`], the sampling rate
//! in [`crate::TxRaceOpts`]/[`crate::TsanConsumer`], loop-cut thresholds
//! in [`crate::loopcut`], the prune mode in [`crate::RunConfig`] — and
//! telemetry existed only as end-of-run aggregates, so nothing could
//! close the loop at runtime. [`Knobs`] gathers the tunables into one
//! value consumed uniformly by the instrumentation pass, the engine, the
//! loop-cut learner, and the baselines; [`Telemetry`] structures the
//! engine's counters into fixed-size event epochs; and
//! [`AdaptiveController`] re-tunes the knobs at epoch boundaries to hold
//! a [`ProductionMode`] overhead budget.
//!
//! ## The controller
//!
//! The budget buys an *extra-cycle allowance* `A = (budget - 1) ×
//! baseline_cycles`. The controller is a pure function of `(budget,
//! telemetry prefix)` — it draws no randomness and reads no clocks, so
//! the same `(workload, seed, budget)` always produces the same
//! epoch-by-epoch knob schedule and race set:
//!
//! * **Warmup**: monitoring starts fully on. At each epoch boundary the
//!   spend so far is compared against the *paced* allowance
//!   `A × progress` (progress = events so far / estimated total events),
//!   with a grace floor of `A ×` [`AdaptiveController::GRACE`] so cheap
//!   early epochs don't demote a workload that would comfortably fit.
//!   Overspending demotes the run to duty-cycled monitoring and
//!   escalates the knobs (larger `K` so tiny regions stop paying HTM
//!   management, a higher initial loop-cut threshold when capacity
//!   aborts drove the spend).
//! * **Duty-cycling**: once demoted, monitoring re-arms only through
//!   *watch hits* — slow-path accesses to statically race-candidate
//!   sites (the [`crate::sa::MayRacePairs`] set, the debug-register
//!   analogy of HardRace). A hit opens a window of
//!   [`AdaptiveController::WINDOW_EPOCHS`] epochs iff the paced
//!   allowance has credit; the engine resets its FastTrack shadow state
//!   at every window open, so a reported pair always has both endpoints
//!   inside one contiguous monitored stretch (no false positives across
//!   unmonitored gaps).
//! * **Hard cap**: spend at or beyond `A` forces monitoring off for the
//!   rest of the run — the budget is a ceiling, not a suggestion.

use crate::loopcut;
use crate::sa::StaticPruneMode;

/// Every runtime tunable in one place, consumed uniformly by
/// [`mod@crate::instrument`] (via [`crate::InstrumentConfig::from_knobs`]),
/// the engine, the loop-cut learner, and the TSan baselines.
///
/// The defaults reproduce the paper's configuration exactly (`K = 5`,
/// no sampling, loop-cut initial threshold 2, no static pruning), so a
/// default-knob run is byte-identical to the pre-control-plane code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Knobs {
    /// Transaction capacity threshold: regions with fewer checkable
    /// memory ops run slow-path-only (paper §4.3, `K = 5`).
    pub k_min_ops: u64,
    /// Slow-path/TSan check sampling rate in `[0, 1]`; `None` checks
    /// everything (the paper's configuration).
    pub sampling: Option<f64>,
    /// Initial loop-cut threshold installed when a capacity abort first
    /// activates a loop (paper: "a small initial estimate").
    pub loopcut_threshold: u32,
    /// Static race-freedom pruning mode.
    pub prune: StaticPruneMode,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            k_min_ops: 5,
            sampling: None,
            loopcut_threshold: loopcut::INITIAL_THRESHOLD,
            prune: StaticPruneMode::Off,
        }
    }
}

impl Knobs {
    /// Knobs with a specific `K` (the ablation sweep's axis).
    pub fn with_k(mut self, k: u64) -> Self {
        self.k_min_ops = k;
        self
    }

    /// Knobs with a slow-path sampling rate.
    pub fn with_sampling(mut self, rate: f64) -> Self {
        self.sampling = Some(rate);
        self
    }

    /// Knobs with a static pruning mode.
    pub fn with_prune(mut self, p: StaticPruneMode) -> Self {
        self.prune = p;
        self
    }
}

/// The always-on production scheme: TxRace+SA-flow detection under an
/// overhead budget, held by the [`AdaptiveController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductionMode {
    /// Target overhead ceiling as a factor of baseline cycles (e.g.
    /// `1.2` buys 20% extra cycles).
    pub budget: f64,
}

/// One epoch's worth of engine telemetry: counter deltas over a window
/// of [`Telemetry::epoch_events`] executed operations, plus the knob
/// values in force while the epoch ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub index: u64,
    /// Operations executed in this epoch (the final epoch may be short).
    pub events: u64,
    /// Whether slow-path monitoring was armed at the end of the epoch.
    pub active: bool,
    /// Effective sampling rate in force (1.0 = full checking).
    pub sampling: f64,
    /// The `K` small-region threshold in force.
    pub k_min_ops: u64,
    /// The loop-cut initial threshold in force.
    pub loopcut_threshold: u32,
    /// HTM conflict aborts in this epoch.
    pub conflict_aborts: u64,
    /// HTM capacity aborts in this epoch.
    pub capacity_aborts: u64,
    /// HTM unknown aborts in this epoch.
    pub unknown_aborts: u64,
    /// Software access checks performed in this epoch.
    pub checks: u64,
    /// Checks elided (static pruning or duty-cycle idling) this epoch.
    pub elided_checks: u64,
    /// Cycles charged to software detection (checks + HB sync tracking).
    pub tsan_cycles: u64,
    /// Cycles charged to HTM management (xbegin/xend, wasted
    /// transactional work, rollbacks).
    pub htm_cycles: u64,
    /// Baseline (uninstrumented-equivalent) cycles retired this epoch.
    pub baseline_cycles: u64,
    /// Cumulative overhead factor at the end of this epoch.
    pub cum_overhead: f64,
}

impl EpochRecord {
    /// Fraction of would-be checks elided in this epoch (static pruning
    /// plus duty-cycle idling); 0.0 when the epoch performed no checks
    /// at all.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.checks + self.elided_checks;
        if total == 0 {
            return 0.0;
        }
        self.elided_checks as f64 / total as f64
    }
}

/// The epoch-structured telemetry stream of one engine run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Nominal epoch length in executed operations.
    pub epoch_events: u64,
    /// The per-epoch records, in execution order.
    pub epochs: Vec<EpochRecord>,
}

impl Telemetry {
    /// Total operations covered by the recorded epochs.
    pub fn total_events(&self) -> u64 {
        self.epochs.iter().map(|e| e.events).sum()
    }

    /// The knob schedule as `(epoch index, K, sampling, loop-cut
    /// threshold, active)` tuples — the controller-determinism test's
    /// comparison key.
    pub fn knob_schedule(&self) -> Vec<(u64, u64, f64, u32, bool)> {
        self.epochs
            .iter()
            .map(|e| {
                (
                    e.index,
                    e.k_min_ops,
                    e.sampling,
                    e.loopcut_threshold,
                    e.active,
                )
            })
            .collect()
    }

    /// Number of epochs with monitoring armed at the epoch boundary.
    pub fn active_epochs(&self) -> usize {
        self.epochs.iter().filter(|e| e.active).count()
    }
}

/// What the controller decided at an epoch boundary (telemetry/debug).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlDecision {
    /// Monitoring stays fully on (warmup, within paced allowance).
    Stay,
    /// Overspend: demoted from always-on to duty-cycled monitoring.
    Demote,
    /// A duty-cycle window expired or the hard cap fired.
    WindowClosed,
    /// Idle and staying idle.
    Idle,
    /// Inside an open watch window.
    InWindow,
}

/// Re-tunes [`Knobs`] at epoch boundaries to hold a [`ProductionMode`]
/// budget. Decisions are a pure function of the construction inputs and
/// the sequence of `(events, spent)` observations — no randomness, no
/// clocks — which is what makes production runs replayable and golden-
/// testable.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    mode: ProductionMode,
    /// Extra-cycle allowance: `(budget - 1) × baseline_cycles`.
    allowance: f64,
    /// Estimated total executed operations (paces the allowance).
    est_events: u64,
    knobs: Knobs,
    /// False once the warmup overspend check demoted the run.
    warm: bool,
    /// Monitoring armed (always true during warmup).
    active: bool,
    /// Remaining epochs of the open watch window.
    window_left: u32,
    epoch: u64,
}

impl AdaptiveController {
    /// Grace fraction of the allowance that warmup may spend regardless
    /// of progress, so cheap early epochs don't demote a run that fits.
    pub const GRACE: f64 = 0.15;
    /// Epochs a watch hit keeps monitoring armed.
    pub const WINDOW_EPOCHS: u32 = 2;
    /// Default epoch length in executed operations.
    pub const EPOCH_EVENTS: u64 = 64;

    /// Creates a controller for a run with the given static baseline
    /// cost and estimated event count, starting from `knobs`.
    pub fn new(mode: ProductionMode, baseline_cycles: u64, est_events: u64, knobs: Knobs) -> Self {
        AdaptiveController {
            mode,
            allowance: (mode.budget - 1.0).max(0.0) * baseline_cycles as f64,
            est_events: est_events.max(1),
            knobs,
            warm: true,
            active: true,
            window_left: 0,
            epoch: 0,
        }
    }

    /// The budget being held.
    pub fn mode(&self) -> ProductionMode {
        self.mode
    }

    /// The knobs currently in force.
    pub fn knobs(&self) -> &Knobs {
        &self.knobs
    }

    /// Whether slow-path monitoring is currently armed.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Fraction of the estimated run completed after `events` ops.
    fn progress(&self, events: u64) -> f64 {
        (events as f64 / self.est_events as f64).min(1.0)
    }

    /// The allowance credit available at `events` ops: spend is paced
    /// linearly with progress so a run can't burn the whole budget in
    /// its first percent and then exceed the cap on a longer input.
    fn paced(&self, events: u64) -> f64 {
        self.allowance * self.progress(events)
    }

    /// Epoch-boundary decision. `events` is the cumulative executed-op
    /// count, `spent` the cumulative extra (non-baseline) cycles, and
    /// `capacity_delta` the epoch's capacity aborts (drives the
    /// loop-cut escalation on demotion). Returns the decision; read the
    /// updated knobs from [`AdaptiveController::knobs`].
    pub fn on_epoch(&mut self, events: u64, spent: u64, capacity_delta: u64) -> ControlDecision {
        self.epoch += 1;
        let spent = spent as f64;
        // Hard cap first: at or beyond the allowance nothing re-arms.
        if spent >= self.allowance {
            let was_active = self.active;
            self.warm = false;
            self.active = false;
            self.window_left = 0;
            if was_active {
                self.escalate(capacity_delta);
                return ControlDecision::Demote;
            }
            return ControlDecision::Idle;
        }
        if self.warm {
            let credit = self.paced(events).max(self.allowance * Self::GRACE);
            if spent > credit {
                self.warm = false;
                self.active = false;
                self.window_left = 0;
                self.escalate(capacity_delta);
                return ControlDecision::Demote;
            }
            return ControlDecision::Stay;
        }
        if self.window_left > 0 {
            self.window_left -= 1;
            if self.window_left == 0 {
                self.active = false;
                self.knobs.sampling = Some(0.0);
                return ControlDecision::WindowClosed;
            }
            return ControlDecision::InWindow;
        }
        ControlDecision::Idle
    }

    /// A slow-path access hit a watched (statically race-candidate)
    /// site while monitoring was idle. Opens a watch window iff the
    /// paced allowance has credit; returns true when the window opened
    /// (the engine must reset its shadow state before checking).
    ///
    /// The pacing check carries the same [`Self::GRACE`] margin warmup
    /// gets: demotion fires the first time `spent` crosses the paced
    /// curve, which leaves `spent ≈ paced + ε` — and the overshoot `ε`
    /// is largest right after a check spike, i.e. exactly when a race
    /// cluster is still in flight. Without the margin the reopen would
    /// sit out the rest of the cluster waiting for `paced` to outgrow
    /// the overshoot.
    pub fn on_watch_hit(&mut self, events: u64, spent: u64) -> bool {
        if self.active || self.warm {
            return false;
        }
        let spent = spent as f64;
        let margin = self.allowance * Self::GRACE;
        if spent >= self.allowance || spent >= self.paced(events) + margin {
            return false;
        }
        self.active = true;
        self.window_left = Self::WINDOW_EPOCHS;
        self.knobs.sampling = None;
        true
    }

    /// Knob escalation applied on demotion: quadruple `K` (tiny regions
    /// stop paying transaction management) and, when capacity aborts
    /// drove the epoch's spend, double the initial loop-cut threshold so
    /// newly-activated loops start closer to their stable cut point.
    fn escalate(&mut self, capacity_delta: u64) {
        self.knobs.sampling = Some(0.0);
        if self.knobs.k_min_ops < Knobs::default().k_min_ops * 4 {
            self.knobs.k_min_ops = self.knobs.k_min_ops.saturating_mul(4).max(1);
        }
        if capacity_delta > 0 && self.knobs.loopcut_threshold < 64 {
            self.knobs.loopcut_threshold *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(budget: f64, baseline: u64, est: u64) -> AdaptiveController {
        AdaptiveController::new(ProductionMode { budget }, baseline, est, Knobs::default())
    }

    #[test]
    fn defaults_reproduce_paper_configuration() {
        let k = Knobs::default();
        assert_eq!(k.k_min_ops, 5);
        assert_eq!(k.sampling, None);
        assert_eq!(k.loopcut_threshold, 2);
        assert_eq!(k.prune, StaticPruneMode::Off);
    }

    #[test]
    fn warmup_stays_active_within_paced_allowance() {
        // budget 1.2 on 10_000 baseline cycles: allowance 2000.
        let mut c = ctl(1.2, 10_000, 1000);
        assert!(c.active());
        // 100/1000 events, 150 spent <= max(200 paced, 300 grace): stay.
        assert_eq!(c.on_epoch(100, 150, 0), ControlDecision::Stay);
        assert!(c.active());
    }

    #[test]
    fn warmup_overspend_demotes_and_escalates() {
        let mut c = ctl(1.2, 10_000, 1000);
        // 100/1000 events but 900 spent > max(200, 300): demote.
        assert_eq!(c.on_epoch(100, 900, 5), ControlDecision::Demote);
        assert!(!c.active());
        assert_eq!(c.knobs().k_min_ops, 20, "K escalated x4");
        assert_eq!(c.knobs().loopcut_threshold, 4, "capacity-driven bump");
        assert_eq!(c.knobs().sampling, Some(0.0));
    }

    #[test]
    fn grace_floor_protects_early_epochs() {
        let mut c = ctl(1.2, 10_000, 100_000);
        // Tiny progress (paced ~ 2) but spend 250 < 300 grace: stay.
        assert_eq!(c.on_epoch(100, 250, 0), ControlDecision::Stay);
        assert!(c.active());
    }

    #[test]
    fn watch_hit_opens_window_and_expiry_closes_it() {
        let mut c = ctl(1.2, 10_000, 1000);
        assert_eq!(c.on_epoch(100, 900, 0), ControlDecision::Demote);
        // Paced credit at 500 events is 1000 > 950 spent: window opens.
        assert!(c.on_watch_hit(500, 950));
        assert!(c.active());
        assert!(!c.on_watch_hit(500, 950), "already open: no re-grant");
        assert_eq!(c.on_epoch(600, 1000, 0), ControlDecision::InWindow);
        assert_eq!(c.on_epoch(700, 1100, 0), ControlDecision::WindowClosed);
        assert!(!c.active());
    }

    #[test]
    fn watch_hit_denied_without_paced_credit() {
        let mut c = ctl(1.2, 10_000, 1000);
        assert_eq!(c.on_epoch(100, 900, 0), ControlDecision::Demote);
        // Paced credit at 200 events is 400 < 900 spent: denied.
        assert!(!c.on_watch_hit(200, 900));
        assert!(!c.active());
    }

    #[test]
    fn hard_cap_forces_idle_forever() {
        let mut c = ctl(1.2, 10_000, 1000);
        assert_eq!(c.on_epoch(999, 2000, 0), ControlDecision::Demote);
        assert!(!c.on_watch_hit(1000, 2000), "no credit at the cap");
        assert_eq!(c.on_epoch(1000, 2000, 0), ControlDecision::Idle);
    }

    #[test]
    fn controller_is_deterministic() {
        let run = || {
            let mut c = ctl(1.3, 50_000, 5000);
            let mut trace = Vec::new();
            for e in 1..=50u64 {
                let spent = e * e * 7; // superlinear spend
                trace.push((c.on_epoch(e * 100, spent, e % 3), *c.knobs()));
                if e % 7 == 0 {
                    trace.push((
                        if c.on_watch_hit(e * 100, spent) {
                            ControlDecision::InWindow
                        } else {
                            ControlDecision::Idle
                        },
                        *c.knobs(),
                    ));
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn epoch_record_pruned_fraction() {
        let mut e = EpochRecord {
            index: 0,
            events: 64,
            active: true,
            sampling: 1.0,
            k_min_ops: 5,
            loopcut_threshold: 2,
            conflict_aborts: 0,
            capacity_aborts: 0,
            unknown_aborts: 0,
            checks: 30,
            elided_checks: 10,
            tsan_cycles: 0,
            htm_cycles: 0,
            baseline_cycles: 0,
            cum_overhead: 1.0,
        };
        assert!((e.pruned_fraction() - 0.25).abs() < 1e-12);
        e.checks = 0;
        e.elided_checks = 0;
        assert_eq!(e.pruned_fraction(), 0.0);
    }
}
