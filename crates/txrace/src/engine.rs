//! The TxRace two-phase runtime (paper §3–§5).
//!
//! Implements [`txrace_sim::Runtime`]: each thread alternates between the
//! HTM-backed **fast path** and the FastTrack-checked **slow path** at the
//! granularity of transactional regions.
//!
//! Abort handling (§4.2):
//!
//! * **Conflict** — a potential race. The aborted thread writes the shared
//!   `TxFail` flag; since every transaction reads `TxFail` at begin,
//!   strong isolation + requester-wins artificially abort all in-flight
//!   transactions. Every involved thread rolls back to its region start
//!   and re-executes under FastTrack, which pinpoints the racy pair and
//!   filters cache-line false sharing.
//! * **Capacity** — only the aborted thread re-executes on the slow path
//!   (no evidence of a race), concurrently with others' fast paths
//!   (Figure 5); the loop-cut learner is fed.
//! * **Retry** — retried on the fast path a bounded number of times, then
//!   treated like capacity.
//! * **Unknown** — treated like capacity (§4.2).
//!
//! Happens-before of synchronization operations is tracked on *every*
//! path (§5, Figure 6): skipping it on the fast path would make the slow
//! path report false positives across fast-path sync edges.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txrace_hb::{FastTrack, RaceSet, ShadowMode};
use txrace_htm::{
    AbortReason, AbortStatus, HtmConfig, HtmStats, HtmSystem, VersionPolicy, XbeginError,
};
use txrace_sim::CacheLine;
use txrace_sim::{
    Addr, BarrierId, Directive, Interner, LoopId, Memory, Op, OpEvent, RegionId, Runtime, SiteId,
    Snapshot, ThreadId,
};

use crate::control::{AdaptiveController, EpochRecord, Knobs, ProductionMode, Telemetry};
use crate::cost::{CostModel, CycleBreakdown};
use crate::instrument::{InstrumentedProgram, RegionInfo, RegionKind};
use crate::loopcut::{LoopcutMode, LoopcutProfile, LoopcutState};
use crate::sa::SiteClassTable;

/// The shared `TxFail` flag lives at address 0; the variable layout
/// reserves the low cache lines for runtime-internal state.
pub const TXFAIL_ADDR: Addr = Addr(0);

/// Why a region instance ran on the slow path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowTrigger {
    /// A conflict abort (potential race) — the global episode.
    Conflict,
    /// A capacity abort on this thread.
    Capacity,
    /// An unknown abort on this thread.
    Unknown,
    /// The region is statically too small to be worth a transaction.
    SmallRegion,
    /// No free hardware transaction slot.
    NoSlot,
    /// Transient retries exhausted.
    RetryExhausted,
}

/// Counters describing one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Region instances re-executed slowly after a conflict abort.
    pub slow_conflict: u64,
    /// Region instances re-executed slowly after a capacity abort.
    pub slow_capacity: u64,
    /// Region instances re-executed slowly after an unknown abort.
    pub slow_unknown: u64,
    /// Region instances run slowly because they are statically tiny.
    pub slow_small: u64,
    /// Region instances run slowly because no HTM slot was free.
    pub slow_noslot: u64,
    /// Region instances run slowly after exhausting transient retries.
    pub slow_retry: u64,
    /// Writes to the `TxFail` flag (conflict episodes originated).
    pub txfail_writes: u64,
    /// Fast-path transaction retries after transient aborts.
    pub fast_retries: u64,
    /// Transactions split by the loop-cut optimization.
    pub loop_cuts: u64,
    /// Slow-path checks elided because the static race-freedom analysis
    /// proved the site race-free.
    pub elided_checks: u64,
    /// Slow-path checks skipped because production-mode monitoring was
    /// idle (duty-cycling under the overhead budget).
    pub idle_skips: u64,
}

impl EngineStats {
    /// Total region instances diverted to the slow path.
    pub fn slow_total(&self) -> u64 {
        self.slow_conflict
            + self.slow_capacity
            + self.slow_unknown
            + self.slow_small
            + self.slow_noslot
            + self.slow_retry
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Outside,
    Fast(RegionId),
    Slow(RegionId, SlowTrigger),
}

/// Tunables for the engine (see [`crate::TxRaceOpts`] for the user-facing
/// configuration).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// HTM hardware parameters.
    pub htm: HtmConfig,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Workload-specific TSan shadow-cost multiplier.
    pub shadow_factor: f64,
    /// Loop-cut scheme.
    pub loopcut: LoopcutMode,
    /// Profile for [`LoopcutMode::Prof`].
    pub profile: Option<LoopcutProfile>,
    /// Transient-abort retries before falling back to the slow path.
    pub max_retries: u32,
    /// Slow-path shadow configuration.
    pub shadow: ShadowMode,
    /// Track happens-before of sync operations on the fast path (paper
    /// §5, Figure 6). Disabling this is an *ablation*: the slow path then
    /// reports false positives across fast-path synchronization edges,
    /// which is exactly why the paper pays this cost on every path.
    pub track_fast_sync: bool,
    /// Extension (paper §9, the TxIntro direction): when the HTM reports
    /// the conflicting cache line ([`HtmConfig::report_conflict_address`]),
    /// restrict the conflict slow path to accesses on that line — much
    /// cheaper re-execution, same racy pair. Requires the HTM feature; has
    /// no effect otherwise.
    pub conflict_hints: bool,
    /// The unified control-plane knobs: the slow-path sampling rate is
    /// read from [`Knobs::sampling`], the dynamic `K` override (production
    /// mode only) from [`Knobs::k_min_ops`], and the loop-cut initial
    /// threshold from [`Knobs::loopcut_threshold`]. Default knobs
    /// reproduce the paper's configuration.
    pub knobs: Knobs,
    /// Static race-freedom classification: slow-path checks at sites the
    /// table proves race-free are elided (their would-be cost is recorded
    /// in [`CycleBreakdown::elided`]). `None` checks every site (the
    /// paper's configuration).
    pub prune: Option<SiteClassTable>,
    /// Emit epoch-structured [`Telemetry`] with this nominal epoch
    /// length in executed operations; `None` keeps only the end-of-run
    /// aggregates (no per-event counting overhead beyond one branch).
    pub epoch_events: Option<u64>,
    /// Run under an [`AdaptiveController`] holding this budget. Implies
    /// telemetry (an epoch length must also be set) and enables the
    /// dynamic `K` override, duty-cycled monitoring, and the watch set.
    pub production: Option<ProductionMode>,
    /// Watched sites for duty-cycled re-arming (production mode): a
    /// slow-path access to one of these while idle may re-open a
    /// monitoring window. Built from [`crate::sa::watch_sites`].
    pub watch: Vec<txrace_sim::SiteId>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            htm: HtmConfig::default(),
            cost: CostModel::default(),
            shadow_factor: 1.0,
            loopcut: LoopcutMode::Dyn,
            profile: None,
            max_retries: 3,
            shadow: ShadowMode::Exact,
            track_fast_sync: true,
            conflict_hints: false,
            knobs: Knobs::default(),
            prune: None,
            epoch_events: None,
            production: None,
            watch: Vec::new(),
        }
    }
}

/// The TxRace runtime. Construct per run with [`TxRaceEngine::new`], drive
/// it through [`txrace_sim::Machine::run`], then harvest
/// [`races`](TxRaceEngine::races), [`breakdown`](TxRaceEngine::breakdown)
/// and [`stats`](TxRaceEngine::stats).
#[derive(Debug)]
pub struct TxRaceEngine {
    regions: Vec<RegionInfo>,
    htm: HtmSystem,
    ft: FastTrack,
    cost: CostModel,
    eff_check: u64,
    breakdown: CycleBreakdown,
    mode: Vec<Mode>,
    snaps: Vec<Option<(Snapshot, RegionId)>>,
    /// [`VersionPolicy::CloneSnapshot`] only: the full-memory checkpoint
    /// cloned at transaction begin (and again on abort). Pure modeled
    /// cost — restoration always goes through the HTM's undo journal, so
    /// detection outputs are identical across policies.
    clone_snaps: Vec<Option<Memory>>,
    pending_slow: Vec<Option<(RegionId, SlowTrigger)>>,
    txn_base_acc: Vec<u64>,
    retry_count: Vec<u32>,
    txfail_seen: Vec<u64>,
    txfail_value: u64,
    max_retries: u32,
    loopcut: LoopcutState,
    last_cut_loop: Vec<Option<LoopId>>,
    track_fast_sync: bool,
    conflict_hints: bool,
    pending_hint: Vec<Option<CacheLine>>,
    slow_hint: Vec<Option<CacheLine>>,
    episode_hint: Option<CacheLine>,
    sampler: Option<(f64, StdRng)>,
    prune: Option<SiteClassTable>,
    sync_dead: bool,
    stats: EngineStats,
    /// Knobs currently in force (production mode re-tunes them at epoch
    /// boundaries; otherwise they stay at their configured values).
    knobs: Knobs,
    /// The production-mode controller, when this is a budgeted run.
    controller: Option<AdaptiveController>,
    /// Whether slow-path monitoring is armed (always true outside
    /// production mode).
    monitoring_on: bool,
    /// `watch[site]`: an idle-mode access here may re-arm monitoring.
    watch: Vec<bool>,
    /// Epoch telemetry under construction (`epoch_events` set).
    telemetry: Option<Telemetry>,
    epoch_events: Option<u64>,
    /// Executed operations, total and within the current epoch.
    events_total: u64,
    epoch_acc: u64,
    /// Static baseline cycles of the program (the overhead denominator).
    static_baseline: u64,
    /// Checks skipped because monitoring was idle (duty-cycling).
    idle_skips: u64,
    /// Cycles charged to software detection / HTM management, for the
    /// telemetry split (subsets of the paid breakdown buckets).
    tsan_cycles: u64,
    htm_cycles: u64,
    /// Previous-epoch snapshots for delta telemetry.
    prev_events: u64,
    prev_htm: HtmStats,
    prev_checks: u64,
    prev_elided: u64,
    prev_baseline: u64,
    prev_tsan_cycles: u64,
    prev_htm_cycles: u64,
}

impl TxRaceEngine {
    /// Builds an engine for one run of `ip`.
    ///
    /// All per-access state downstream is a flat table indexed by a dense
    /// id (raw address, cache line, site, loop, thread). The interner
    /// enumerates the program's id spaces once here, at load time, and
    /// pre-sizes every table, so the per-access dispatch below does zero
    /// hashing and zero growth.
    pub fn new(ip: &InstrumentedProgram, cfg: EngineConfig) -> Self {
        let n = ip.program.thread_count();
        let interner = Interner::of_program(&ip.program);
        let mut htm = HtmSystem::new(cfg.htm, n);
        htm.reserve_capacity(interner.addr_capacity(), interner.line_capacity());
        let mut ft = FastTrack::new(n, cfg.shadow);
        ft.reserve_addrs(interner.addr_capacity());
        let mut loopcut = LoopcutState::new(cfg.loopcut, n, cfg.profile.as_ref());
        loopcut.reserve_loops(interner.loop_count() as usize);
        loopcut.set_initial_threshold(cfg.knobs.loopcut_threshold);
        // Happens-before tracking exists to order slow-path checks; when
        // the prune table proves every checkable site race-free, no check
        // can ever consult the FastTrack state, so the per-sync-op
        // tracking is dead and its cost is elided with the checks.
        let sync_dead = cfg.prune.as_ref().is_some_and(|table| {
            let mut live = false;
            ip.program.visit_static(&mut |_, site, op| {
                if crate::sa::op_is_checkable(op) && !table.is_race_free(site) {
                    live = true;
                }
            });
            !live
        });
        let static_baseline = cfg.cost.baseline_cycles(&ip.program);
        let controller = cfg.production.map(|mode| {
            // The event estimate paces the controller's allowance; one
            // executed op is one event, so the loop-weighted static op
            // count is the estimate (re-execution makes actual counts
            // run a little over — pacing only needs the right scale).
            let est_events = ip.program.fold_dynamic(|_| 1);
            AdaptiveController::new(mode, static_baseline, est_events, cfg.knobs)
        });
        let mut watch = Vec::new();
        if !cfg.watch.is_empty() {
            watch = vec![false; ip.program.site_count() as usize];
            for s in &cfg.watch {
                if let Some(slot) = watch.get_mut(s.index()) {
                    *slot = true;
                }
            }
        }
        TxRaceEngine {
            regions: ip.regions.clone(),
            htm,
            ft,
            eff_check: cfg.cost.effective_tsan_check(cfg.shadow_factor),
            cost: cfg.cost,
            breakdown: CycleBreakdown::default(),
            mode: vec![Mode::Outside; n],
            snaps: vec![None; n],
            clone_snaps: vec![None; n],
            pending_slow: vec![None; n],
            txn_base_acc: vec![0; n],
            retry_count: vec![0; n],
            txfail_seen: vec![0; n],
            txfail_value: 0,
            max_retries: cfg.max_retries,
            loopcut,
            last_cut_loop: vec![None; n],
            track_fast_sync: cfg.track_fast_sync,
            conflict_hints: cfg.conflict_hints,
            pending_hint: vec![None; n],
            slow_hint: vec![None; n],
            episode_hint: None,
            sampler: cfg
                .knobs
                .sampling
                .map(|rate| (rate.clamp(0.0, 1.0), StdRng::seed_from_u64(0x7852_11e5))),
            prune: cfg.prune,
            sync_dead,
            stats: EngineStats::default(),
            knobs: cfg.knobs,
            controller,
            monitoring_on: true,
            watch,
            telemetry: cfg.epoch_events.map(|e| Telemetry {
                epoch_events: e,
                epochs: Vec::new(),
            }),
            epoch_events: cfg.epoch_events,
            events_total: 0,
            epoch_acc: 0,
            static_baseline,
            idle_skips: 0,
            tsan_cycles: 0,
            htm_cycles: 0,
            prev_events: 0,
            prev_htm: HtmStats::default(),
            prev_checks: 0,
            prev_elided: 0,
            prev_baseline: 0,
            prev_tsan_cycles: 0,
            prev_htm_cycles: 0,
        }
    }

    /// Races detected (slow-path FastTrack reports).
    pub fn races(&self) -> &RaceSet {
        self.ft.races()
    }

    /// Cycle breakdown in the categories of Figure 7.
    pub fn breakdown(&self) -> CycleBreakdown {
        self.breakdown
    }

    /// HTM transaction statistics (Table 1 columns).
    pub fn htm_stats(&self) -> HtmStats {
        *self.htm.stats()
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.loop_cuts = self.loopcut.cuts();
        s.idle_skips = self.idle_skips;
        s
    }

    /// The loop-cut thresholds learned in this run (profile export).
    pub fn loopcut_profile(&self) -> LoopcutProfile {
        self.loopcut.to_profile()
    }

    /// Slow-path access checks performed.
    pub fn checks(&self) -> u64 {
        self.ft.checks()
    }

    /// The knobs currently in force (production mode re-tunes them).
    pub fn knobs(&self) -> &Knobs {
        &self.knobs
    }

    /// Takes the epoch telemetry stream, flushing the partial final
    /// epoch first. `None` unless [`EngineConfig::epoch_events`] was
    /// set. Call once, after the run.
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.flush_epoch();
        self.telemetry.take()
    }

    /// Closes the current epoch: records the counter deltas and lets
    /// the production controller re-tune the knobs.
    fn flush_epoch(&mut self) {
        if self.telemetry.is_none() || self.epoch_acc == 0 {
            return;
        }
        self.epoch_acc = 0;
        let htm_stats = *self.htm.stats();
        let checks = self.ft.checks();
        let elided_now = self.stats.elided_checks + self.idle_skips;
        let bd = self.breakdown;
        let tm = self.telemetry.as_mut().expect("telemetry enabled");
        let rec = EpochRecord {
            index: tm.epochs.len() as u64,
            events: self.events_total - self.prev_events,
            active: self.monitoring_on,
            sampling: if self.monitoring_on {
                self.knobs.sampling.unwrap_or(1.0)
            } else {
                0.0
            },
            k_min_ops: self.knobs.k_min_ops,
            loopcut_threshold: self.knobs.loopcut_threshold,
            conflict_aborts: htm_stats.conflict_aborts - self.prev_htm.conflict_aborts,
            capacity_aborts: htm_stats.capacity_aborts - self.prev_htm.capacity_aborts,
            unknown_aborts: htm_stats.unknown_aborts - self.prev_htm.unknown_aborts,
            checks: checks - self.prev_checks,
            elided_checks: elided_now - self.prev_elided,
            tsan_cycles: self.tsan_cycles - self.prev_tsan_cycles,
            htm_cycles: self.htm_cycles - self.prev_htm_cycles,
            baseline_cycles: bd.baseline - self.prev_baseline,
            cum_overhead: bd.overhead_vs(self.static_baseline),
        };
        let capacity_delta = rec.capacity_aborts;
        tm.epochs.push(rec);
        self.prev_events = self.events_total;
        self.prev_htm = htm_stats;
        self.prev_checks = checks;
        self.prev_elided = elided_now;
        self.prev_baseline = bd.baseline;
        self.prev_tsan_cycles = self.tsan_cycles;
        self.prev_htm_cycles = self.htm_cycles;
        if let Some(ctl) = self.controller.as_mut() {
            ctl.on_epoch(self.events_total, bd.extra(), capacity_delta);
            self.monitoring_on = ctl.active();
            self.knobs = *ctl.knobs();
            self.loopcut
                .set_initial_threshold(self.knobs.loopcut_threshold);
        }
    }

    /// Production-mode slow-path gate. Returns true when the access at
    /// `site` should be software-checked. While idle, a watched site
    /// may re-arm monitoring (with a shadow reset, so no reported pair
    /// can span the unmonitored gap); any other idle access charges its
    /// skipped check to the elided bucket.
    fn production_gate(&mut self, site: SiteId) -> bool {
        if self.controller.is_none() || self.monitoring_on {
            return true;
        }
        let watched = self.watch.get(site.index()).copied().unwrap_or(false);
        let events = self.events_total;
        let spent = self.breakdown.extra();
        let opened = watched
            && self
                .controller
                .as_mut()
                .is_some_and(|c| c.on_watch_hit(events, spent));
        if opened {
            // Every re-arm starts a fresh monitored stretch: accesses
            // from before the idle gap must not pair with accesses
            // after it (their ordering sync was never observed).
            self.ft.reset_shadow();
            self.monitoring_on = true;
            if let Some(c) = &self.controller {
                self.knobs = *c.knobs();
            }
            return true;
        }
        self.idle_skips += 1;
        self.breakdown.elided += self.eff_check;
        false
    }

    fn bucket_of(&mut self, trigger: SlowTrigger) -> &mut u64 {
        match trigger {
            SlowTrigger::Conflict => &mut self.breakdown.conflict,
            SlowTrigger::Capacity | SlowTrigger::NoSlot => &mut self.breakdown.capacity,
            SlowTrigger::Unknown | SlowTrigger::RetryExhausted => &mut self.breakdown.unknown,
            SlowTrigger::SmallRegion => &mut self.breakdown.txn_mgmt,
        }
    }

    fn region(&self, r: RegionId) -> &RegionInfo {
        &self.regions[r.index()]
    }

    /// Bookkeeping after a successful `xend`: the transaction's
    /// provisional work becomes baseline, management cost is charged, and
    /// the retry budget resets.
    fn on_fast_commit(&mut self, ti: usize) {
        self.breakdown.txn_mgmt += self.cost.xend;
        self.htm_cycles += self.cost.xend;
        self.breakdown.baseline += self.txn_base_acc[ti];
        self.txn_base_acc[ti] = 0;
        self.retry_count[ti] = 0;
        self.clone_snaps[ti] = None;
    }

    /// Consumes any pending slow-path demand for thread `ti`, entering
    /// slow mode for region `r`; returns false if nothing was pending.
    fn take_pending_slow(&mut self, ti: usize, expected: Option<RegionId>) -> bool {
        if let Some((r, trigger)) = self.pending_slow[ti].take() {
            if let Some(e) = expected {
                debug_assert_eq!(r, e, "pending slow region mismatch");
            }
            self.slow_hint[ti] = self.pending_hint[ti].take();
            self.mode[ti] = Mode::Slow(r, trigger);
            true
        } else {
            false
        }
    }

    fn enter_region(&mut self, t: ThreadId, r: RegionId, mem: &mut Memory, ev: &OpEvent<'_>) {
        let ti = t.index();
        debug_assert_eq!(self.mode[ti], Mode::Outside, "region entered while busy");
        // Production mode re-tunes K online: a region whose checked-op
        // count falls below the current knob runs slow-only (its markers
        // were kept precisely so this decision can move at run time).
        // While the controller is idle the fast path is suspended too —
        // a transaction whose conflict abort we would not act on is pure
        // management cost, and letting it run would drain the pacing
        // allowance the watch-hit reopen is waiting to refill.
        // Outside production mode the static instrumentation decides.
        let kind = {
            let info = self.region(r);
            let idle = self.controller.is_some() && !self.monitoring_on;
            if idle || (self.controller.is_some() && info.checked_ops < self.knobs.k_min_ops) {
                RegionKind::SlowOnly
            } else {
                info.kind
            }
        };
        match kind {
            RegionKind::SlowOnly => {
                self.stats.slow_small += 1;
                self.mode[ti] = Mode::Slow(r, SlowTrigger::SmallRegion);
            }
            RegionKind::Fast => {
                if !self.take_pending_slow(ti, Some(r)) {
                    self.begin_fast_txn(t, r, mem, ev);
                }
            }
        }
    }

    /// Starts a hardware transaction with its snapshot at the current op
    /// (a `TxBegin` or a loop-cut probe).
    fn begin_fast_txn(&mut self, t: ThreadId, r: RegionId, mem: &mut Memory, ev: &OpEvent<'_>) {
        let ti = t.index();
        match self.htm.xbegin(t) {
            Ok(()) => {
                self.mode[ti] = Mode::Fast(r);
                // O(1): the interpreter snapshot is pc + loop stack, and
                // memory rollback state is the HTM's journal watermark.
                self.snaps[ti] = Some((ev.snapshot(), r));
                if self.htm.config().version == VersionPolicy::CloneSnapshot {
                    // Baseline policy: checkpoint the whole simulated
                    // memory at every begin (the O(heap) cost the journal
                    // removes). black_box keeps the clone from being
                    // optimized away — it is never read back.
                    self.clone_snaps[ti] = Some(std::hint::black_box(mem.clone()));
                }
                self.breakdown.txn_mgmt += self.cost.xbegin;
                self.htm_cycles += self.cost.xbegin;
                self.loopcut.on_txn_start(t);
                // Subscribe to artificial aborts: every transaction reads
                // TxFail first, so any non-transactional write to it dooms
                // all in-flight transactions (strong isolation). Recording
                // the observed value keeps the origin/victim test below
                // current — a stale value would misclassify a later direct
                // conflict as an artificial abort and skip the TxFail
                // write, silently shrinking episodes.
                self.txfail_seen[ti] = self.htm.read(t, mem, TXFAIL_ADDR);
            }
            Err(XbeginError::NoSlot) => {
                self.stats.slow_noslot += 1;
                self.mode[ti] = Mode::Slow(r, SlowTrigger::NoSlot);
            }
            Err(XbeginError::Nested) => unreachable!("engine never nests transactions"),
        }
    }

    fn end_region(
        &mut self,
        t: ThreadId,
        r: RegionId,
        mem: &mut Memory,
        ev: &OpEvent<'_>,
    ) -> Directive {
        let ti = t.index();
        match self.mode[ti] {
            Mode::Fast(cur) => {
                debug_assert_eq!(cur, r, "TxEnd region mismatch");
                // Read the (optional) conflict hint before xend frees the
                // hardware slot.
                let hint = if self.conflict_hints {
                    self.htm.conflict_line_hint(t)
                } else {
                    None
                };
                match self.htm.xend(t, mem) {
                    Ok(()) => {
                        self.on_fast_commit(ti);
                        if let Some(l) = self.last_cut_loop[ti].take() {
                            self.loopcut.on_cut_commit(l);
                        }
                        self.snaps[ti] = None;
                        self.mode[ti] = Mode::Outside;
                        Directive::Continue
                    }
                    Err(status) => self.handle_abort_hinted(t, status, hint, mem, ev),
                }
            }
            Mode::Slow(cur, _) => {
                debug_assert_eq!(cur, r, "TxEnd region mismatch (slow)");
                self.retry_count[ti] = 0;
                self.snaps[ti] = None;
                self.clone_snaps[ti] = None;
                self.last_cut_loop[ti] = None;
                self.slow_hint[ti] = None;
                self.mode[ti] = Mode::Outside;
                Directive::Continue
            }
            Mode::Outside => unreachable!("TxEnd without an open region"),
        }
    }

    /// Consumes an abort observed while the transaction slot is still
    /// live (the lazy `before_op` doom check).
    fn handle_abort(
        &mut self,
        t: ThreadId,
        status: AbortStatus,
        mem: &mut Memory,
        ev: &OpEvent<'_>,
    ) -> Directive {
        let hint = if self.conflict_hints {
            self.htm.conflict_line_hint(t)
        } else {
            None
        };
        self.handle_abort_hinted(t, status, hint, mem, ev)
    }

    /// Consumes an abort: classifies the status, applies the §4.2 policy,
    /// and rolls the thread back to its region snapshot. `hw_hint` must be
    /// captured by the caller while the slot was still live (an `xend`
    /// frees it).
    fn handle_abort_hinted(
        &mut self,
        t: ThreadId,
        status: AbortStatus,
        hint_before: Option<CacheLine>,
        mem: &mut Memory,
        ev: &OpEvent<'_>,
    ) -> Directive {
        let ti = t.index();
        if self.htm.in_txn(t) {
            let s = self.htm.abort_rollback(t);
            debug_assert_eq!(s, status);
        }
        if self.htm.config().version == VersionPolicy::CloneSnapshot {
            // Baseline policy: the abort path re-checkpoints memory (the
            // second O(heap) clone the journal removes).
            self.clone_snaps[ti] = Some(std::hint::black_box(mem.clone()));
        }
        let r = self.snaps[ti].as_ref().expect("abort without a snapshot").1;
        let reason = status.reason();
        // Wasted transactional work plus the rollback itself are overhead
        // attributed to the abort reason.
        let wasted = self.txn_base_acc[ti] + self.cost.rollback_penalty;
        self.txn_base_acc[ti] = 0;
        self.htm_cycles += wasted;
        let hw_hint = hint_before;
        let trigger = match reason {
            AbortReason::Conflict => {
                self.stats.slow_conflict += 1;
                // TxFail protocol: the episode origin (first to observe an
                // unchanged flag) writes it, artificially aborting every
                // in-flight transaction; artificial-abort victims only
                // record the new value.
                let seen = self.htm.read(t, mem, TXFAIL_ADDR);
                if seen == self.txfail_seen[ti] {
                    self.txfail_value = seen + 1;
                    self.htm.write(t, mem, TXFAIL_ADDR, self.txfail_value);
                    self.stats.txfail_writes += 1;
                    self.breakdown.conflict += 2 * self.cost.mem_access;
                    self.htm_cycles += 2 * self.cost.mem_access;
                    self.txfail_seen[ti] = self.txfail_value;
                    // Episode origin publishes the conflicting line next
                    // to TxFail (extension: one extra shared write).
                    if self.conflict_hints {
                        self.episode_hint = hw_hint;
                        self.breakdown.conflict += self.cost.mem_access;
                        self.htm_cycles += self.cost.mem_access;
                    }
                } else {
                    self.txfail_seen[ti] = seen;
                }
                if self.conflict_hints {
                    // Artificial-abort victims read the published line;
                    // the origin uses the hardware-reported one.
                    let hint = hw_hint
                        .filter(|&l| l != TXFAIL_ADDR.line())
                        .or(self.episode_hint);
                    self.pending_hint[ti] = hint;
                }
                Some(SlowTrigger::Conflict)
            }
            AbortReason::Capacity | AbortReason::Explicit => {
                self.stats.slow_capacity += 1;
                // Attribute the overflow to the innermost running loop
                // (the LBR-based attribution of the paper), falling back
                // to the region's last loop.
                let l = ev
                    .innermost_loop()
                    .or_else(|| self.region(r).loops.last().copied());
                self.loopcut.on_capacity_abort(l);
                Some(SlowTrigger::Capacity)
            }
            AbortReason::Unknown => {
                self.stats.slow_unknown += 1;
                Some(SlowTrigger::Unknown)
            }
            AbortReason::Retry => {
                self.retry_count[ti] += 1;
                if self.retry_count[ti] <= self.max_retries {
                    self.stats.fast_retries += 1;
                    None // retry on the fast path
                } else {
                    self.retry_count[ti] = 0;
                    self.stats.slow_retry += 1;
                    Some(SlowTrigger::RetryExhausted)
                }
            }
        };
        // The slot is consumed on the slow-path triggers (the rollback
        // lands on an op that consumes `pending_slow` instead), so take
        // the stored snapshot rather than cloning it; only a fast-path
        // retry re-reads the slot and must leave it in place.
        let snap = match trigger {
            Some(trig) => {
                *self.bucket_of(trig) += wasted;
                self.pending_slow[ti] = Some((r, trig));
                self.snaps[ti].take().expect("abort without a snapshot").0
            }
            None => {
                self.breakdown.unknown += wasted;
                self.snaps[ti]
                    .as_ref()
                    .expect("abort without a snapshot")
                    .0
                    .clone()
            }
        };
        self.last_cut_loop[ti] = None;
        self.mode[ti] = Mode::Outside;
        Directive::Rollback(snap)
    }

    /// Loop-cut probe handling. In fast mode, may split the transaction;
    /// after a rollback that targeted this probe, re-enters the region.
    fn probe(&mut self, t: ThreadId, l: LoopId, mem: &mut Memory, ev: &OpEvent<'_>) -> Directive {
        let ti = t.index();
        match self.mode[ti] {
            Mode::Fast(r) => {
                if !self.loopcut.probe(t, l) {
                    return Directive::Continue;
                }
                let hint = if self.conflict_hints {
                    self.htm.conflict_line_hint(t)
                } else {
                    None
                };
                match self.htm.xend(t, mem) {
                    Ok(()) => {
                        self.on_fast_commit(ti);
                        self.loopcut.on_cut_commit(l);
                        self.mode[ti] = Mode::Outside;
                        self.begin_fast_txn(t, r, mem, ev);
                        if matches!(self.mode[ti], Mode::Fast(_)) {
                            self.last_cut_loop[ti] = Some(l);
                        }
                        Directive::Continue
                    }
                    Err(status) => self.handle_abort_hinted(t, status, hint, mem, ev),
                }
            }
            Mode::Slow(_, _) => Directive::Continue,
            Mode::Outside => {
                // A rollback landed on this probe: resume the region here,
                // slow if an abort demanded it, fast otherwise (retry).
                if self.take_pending_slow(ti, None) {
                    // Entered slow mode for the pending region.
                } else if let Some((_, r)) = self.snaps[ti].as_ref() {
                    let r = *r;
                    self.begin_fast_txn(t, r, mem, ev);
                }
                // A probe with neither pending slow work nor a snapshot is
                // orphaned (it sits outside any region); ignore it.
                Directive::Continue
            }
        }
    }

    fn charge_access_base(&mut self, t: ThreadId) {
        let ti = t.index();
        match self.mode[ti] {
            Mode::Fast(_) => self.txn_base_acc[ti] += self.cost.mem_access,
            _ => self.breakdown.baseline += self.cost.mem_access,
        }
    }

    fn charge_check(&mut self, trigger: SlowTrigger) {
        let c = self.eff_check;
        *self.bucket_of(trigger) += c;
        self.tsan_cycles += c;
    }

    /// True when the static prune table elides this slow-path check;
    /// records the avoided cost in the `elided` breakdown category.
    fn prune_elides(&mut self, site: SiteId) -> bool {
        if self.prune.as_ref().is_some_and(|t| t.is_race_free(site)) {
            self.stats.elided_checks += 1;
            self.breakdown.elided += self.eff_check;
            true
        } else {
            false
        }
    }

    /// Whether a slow-path access at `addr` should be software-checked,
    /// honouring the conflict-hint and sampling extensions.
    fn slow_check_decision(&mut self, ti: usize, addr: Addr) -> bool {
        if let Some(line) = self.slow_hint[ti] {
            if addr.line() != line {
                return false;
            }
        }
        if let Some((rate, rng)) = &mut self.sampler {
            if rng.gen::<f64>() >= *rate {
                return false;
            }
        }
        true
    }
}

impl Runtime for TxRaceEngine {
    fn before_op(&mut self, mem: &mut Memory, ev: &OpEvent<'_>) -> Directive {
        let t = ev.thread;
        // Epoch clock: one executed op is one event. Off (a single
        // branch) unless telemetry was requested.
        if let Some(len) = self.epoch_events {
            self.events_total += 1;
            self.epoch_acc += 1;
            if self.epoch_acc >= len {
                self.flush_epoch();
            }
        }
        // Simulated OS interrupts abort in-flight transactions.
        if let Some(kind) = ev.interrupted {
            self.htm.interrupt(t, mem, kind);
        }
        // A doomed transaction is observed at the thread's next operation
        // (the hardware transfers control lazily in this simulation, which
        // preserves the paper's commit-before-TxFail race window, §6).
        if matches!(self.mode[t.index()], Mode::Fast(_)) {
            if let Some(status) = self.htm.is_doomed(t) {
                return self.handle_abort(t, status, mem, ev);
            }
        }
        match ev.op {
            Op::TxBegin(r) => {
                self.enter_region(t, r, mem, ev);
                Directive::Continue
            }
            Op::TxEnd(r) => self.end_region(t, r, mem, ev),
            Op::LoopCutProbe(l) => self.probe(t, l, mem, ev),
            ref op if op.is_data_access() => {
                self.charge_access_base(t);
                Directive::Continue
            }
            ref op if op.is_sync() => {
                debug_assert!(
                    !self.htm.in_txn(t),
                    "sync op inside a transaction: instrumentation bug"
                );
                self.breakdown.baseline += self.cost.base_op_cost(op);
                Directive::Continue
            }
            ref op => {
                // Compute (and any other non-access op) inside a fast
                // transaction is provisional work: on abort it is wasted
                // and must move to the abort bucket with the accesses.
                let c = self.cost.base_op_cost(op);
                match self.mode[t.index()] {
                    Mode::Fast(_) => self.txn_base_acc[t.index()] += c,
                    _ => self.breakdown.baseline += c,
                }
                Directive::Continue
            }
        }
    }

    fn read(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr) -> u64 {
        let t = ev.thread;
        if let Mode::Slow(_, trigger) = self.mode[t.index()] {
            if !self.prune_elides(ev.site)
                && self.production_gate(ev.site)
                && self.slow_check_decision(t.index(), addr)
            {
                self.ft.read(t, ev.site, addr);
                self.charge_check(trigger);
            }
        }
        // Fast mode: transactional access. Slow/outside: non-transactional
        // access with strong isolation against others' transactions.
        self.htm.read(t, mem, addr)
    }

    fn write(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, val: u64) {
        let t = ev.thread;
        if let Mode::Slow(_, trigger) = self.mode[t.index()] {
            if !self.prune_elides(ev.site)
                && self.production_gate(ev.site)
                && self.slow_check_decision(t.index(), addr)
            {
                self.ft.write(t, ev.site, addr);
                self.charge_check(trigger);
            }
        }
        self.htm.write(t, mem, addr, val);
    }

    fn rmw(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, delta: u64) -> u64 {
        // Atomic RMWs cannot race under the C11 model, so the detector does
        // not check them; they still participate in HTM conflict detection
        // (a benign-conflict source the slow path then filters).
        self.htm.rmw(ev.thread, mem, addr, delta)
    }

    fn after_sync(&mut self, _mem: &mut Memory, ev: &OpEvent<'_>) {
        let t = ev.thread;
        if !self.track_fast_sync && !matches!(self.mode[t.index()], Mode::Slow(_, _)) {
            return; // ablation: fast-path sync edges are lost
        }
        if self.sync_dead {
            // Nothing will ever consult the happens-before state: record
            // the avoided tracking cost with the elided checks.
            if matches!(
                ev.op,
                Op::Lock(_)
                    | Op::Unlock(_)
                    | Op::Signal(_)
                    | Op::Wait(_)
                    | Op::Spawn(_)
                    | Op::Join(_)
                    | Op::ChanSend(_)
                    | Op::ChanRecv(_)
            ) {
                self.breakdown.elided += self.cost.tsan_sync;
            }
            return;
        }
        if self.controller.is_some() && !self.monitoring_on {
            // Idle duty cycle: the happens-before state is reset before
            // monitoring re-arms, so anything tracked now would be
            // discarded — skip it and record the avoided cost.
            if matches!(
                ev.op,
                Op::Lock(_)
                    | Op::Unlock(_)
                    | Op::Signal(_)
                    | Op::Wait(_)
                    | Op::Spawn(_)
                    | Op::Join(_)
                    | Op::ChanSend(_)
                    | Op::ChanRecv(_)
            ) {
                self.breakdown.elided += self.cost.tsan_sync;
            }
            return;
        }
        match ev.op {
            Op::Lock(l) => self.ft.lock_acquire(t, l),
            Op::Unlock(l) => self.ft.lock_release(t, l),
            Op::Signal(c) => self.ft.signal(t, c),
            Op::Wait(c) => self.ft.wait(t, c),
            Op::Spawn(u) => self.ft.spawn(t, u),
            Op::Join(u) => self.ft.join(t, u),
            // Channel send/recv is a happens-before edge like any other
            // sync primitive; since channel ops are `is_sync()` they also
            // cut transactions in `instrument`, so they only ever fire
            // outside a hardware transaction (like syscalls).
            Op::ChanSend(ch) => self.ft.chan_send(t, ch),
            Op::ChanRecv(ch) => self.ft.chan_recv(t, ch),
            _ => return,
        }
        // Happens-before tracking happens on every path (§5, Figure 6).
        self.breakdown.txn_mgmt += self.cost.tsan_sync;
        self.tsan_cycles += self.cost.tsan_sync;
    }

    fn after_barrier(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        if !self.track_fast_sync {
            return; // ablation: see after_sync
        }
        if self.sync_dead || (self.controller.is_some() && !self.monitoring_on) {
            self.breakdown.elided += self.cost.tsan_sync * arrivals.len() as u64;
            return;
        }
        self.ft.barrier_arrivals(b, arrivals);
        self.breakdown.txn_mgmt += self.cost.tsan_sync * arrivals.len() as u64;
        self.tsan_cycles += self.cost.tsan_sync * arrivals.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::{instrument, InstrumentConfig};
    use txrace_sim::{
        FairSched, InterruptModel, Machine, Program, ProgramBuilder, RoundRobin, RunStatus,
    };

    fn instrumented(p: &Program) -> InstrumentedProgram {
        instrument(p, &InstrumentConfig::default())
    }

    fn run_engine(ip: &InstrumentedProgram, cfg: EngineConfig, seed: u64) -> TxRaceEngine {
        let mut engine = TxRaceEngine::new(ip, cfg);
        let mut m = Machine::new(&ip.program);
        let mut s = FairSched::new(seed, 0.1);
        let r = m.run(&mut engine, &mut s);
        assert_eq!(r.status, RunStatus::Done);
        engine
    }

    /// A clean two-thread program with mid-size regions.
    fn clean_program() -> Program {
        let mut b = ProgramBuilder::new(2);
        for t in 0..2 {
            let arr = b.array(&format!("a{t}"), 16);
            b.thread(t).loop_n(20, |tb| {
                for i in 0..6 {
                    tb.read(txrace_sim::elem(arr, i));
                }
                tb.compute(10);
                tb.syscall(txrace_sim::SyscallKind::Io);
            });
        }
        b.build()
    }

    #[test]
    fn baseline_bucket_matches_static_baseline_without_aborts() {
        let p = clean_program();
        let ip = instrumented(&p);
        let engine = run_engine(&ip, EngineConfig::default(), 1);
        let bd = engine.breakdown();
        let static_base = CostModel::default().baseline_cycles(&p);
        // No aborts: every op executed exactly once, so the baseline
        // bucket is exactly the static baseline.
        assert_eq!(engine.htm_stats().total_aborts(), 0);
        assert_eq!(bd.baseline, static_base);
        assert_eq!(bd.conflict + bd.capacity + bd.unknown, 0);
        assert!(bd.txn_mgmt > 0, "xbegin/xend must be charged");
    }

    #[test]
    fn retry_exhaustion_falls_back_to_slow_path() {
        let p = clean_program();
        let ip = instrumented(&p);
        let cfg = EngineConfig {
            max_retries: 1,
            ..EngineConfig::default()
        };
        let mut engine = TxRaceEngine::new(&ip, cfg);
        let mut m = Machine::new(&ip.program);
        // Transient events on nearly every step: every transaction aborts
        // with RETRY, exhausting the single retry immediately.
        let mut s = FairSched::new(3, 0.0).with_interrupts(InterruptModel {
            context_switch_p: 0.0,
            transient_p: 0.9,
        });
        let r = m.run(&mut engine, &mut s);
        assert_eq!(
            r.status,
            RunStatus::Done,
            "forward progress despite retries"
        );
        let es = engine.stats();
        assert!(es.fast_retries > 0, "{es:?}");
        assert!(es.slow_retry > 0, "{es:?}");
    }

    #[test]
    fn slot_exhaustion_diverts_to_slow_path_and_still_completes() {
        let p = clean_program();
        let ip = instrumented(&p);
        let cfg = EngineConfig {
            htm: HtmConfig {
                max_concurrent_txns: 1,
                ..HtmConfig::default()
            },
            ..EngineConfig::default()
        };
        let engine = run_engine(&ip, cfg, 5);
        assert!(engine.stats().slow_noslot > 0);
    }

    #[test]
    fn one_conflict_episode_writes_txfail_once() {
        // Two threads conflict on one line; the episode origin writes
        // TxFail, the artificially-aborted victims must not write again.
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        for t in 0..3 {
            let arr = b.array(&format!("a{t}"), 8);
            b.thread(t).loop_n(1, |tb| {
                for i in 0..5 {
                    tb.read(txrace_sim::elem(arr, i));
                }
                if t < 2 {
                    tb.write(x, t as u64);
                }
                for i in 0..5 {
                    tb.read(txrace_sim::elem(arr, i));
                }
            });
        }
        let p = b.build();
        let ip = instrumented(&p);
        let mut engine = TxRaceEngine::new(&ip, EngineConfig::default());
        let mut m = Machine::new(&ip.program);
        let mut s = RoundRobin::new();
        let r = m.run(&mut engine, &mut s);
        assert_eq!(r.status, RunStatus::Done);
        let es = engine.stats();
        assert!(
            es.slow_conflict >= 2,
            "origin and victims re-run slow: {es:?}"
        );
        assert_eq!(es.txfail_writes, 1, "only the episode origin writes TxFail");
    }

    #[test]
    fn small_region_checks_are_charged_to_txn_mgmt() {
        // All regions are below K: everything is SlowOnly, so the check
        // cost lands in the fast-path (txn_mgmt) bucket and no transaction
        // ever starts.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            b.thread(t).loop_n(10, |tb| {
                tb.read(x).write(x, t as u64);
                tb.syscall(txrace_sim::SyscallKind::Io);
            });
        }
        let p = b.build();
        let ip = instrumented(&p);
        let engine = run_engine(&ip, EngineConfig::default(), 2);
        assert_eq!(engine.htm_stats().committed, 0);
        assert!(engine.stats().slow_small > 0);
        let bd = engine.breakdown();
        assert!(bd.txn_mgmt > 0);
        assert_eq!(bd.conflict + bd.capacity + bd.unknown, 0);
        // And the races on x are still found (software-checked regions):
        // write/write plus both write/read pairs.
        assert_eq!(engine.races().distinct_count(), 3);
    }

    #[test]
    fn capacity_abort_attributes_cycles_to_capacity_bucket() {
        let mut b = ProgramBuilder::new(2);
        let big = b.array("big", 80 * 8 * 8);
        b.thread(0).loop_n(80, |tb| {
            tb.write_arr(big, 8 * 64, 1);
        });
        let quiet = b.array("quiet", 8);
        b.thread(1).loop_n(10, |tb| {
            for i in 0..5 {
                tb.read(txrace_sim::elem(quiet, i));
            }
            tb.syscall(txrace_sim::SyscallKind::Io);
        });
        let p = b.build();
        let ip = instrumented(&p);
        let cfg = EngineConfig {
            loopcut: LoopcutMode::NoOpt,
            ..EngineConfig::default()
        };
        let engine = run_engine(&ip, cfg, 7);
        assert!(engine.htm_stats().capacity_aborts > 0);
        let bd = engine.breakdown();
        assert!(bd.capacity > 0);
        assert_eq!(bd.conflict, 0);
    }

    #[test]
    fn engine_exposes_learned_loopcut_profile() {
        let mut b = ProgramBuilder::new(2);
        for t in 0..2 {
            let big = b.array(&format!("big{t}"), 90 * 8 * 8);
            b.thread(t).loop_n(3, |tb| {
                tb.loop_n(90, |tb| {
                    tb.write_arr(big, 8 * 64, 1);
                });
                tb.syscall(txrace_sim::SyscallKind::Io);
            });
        }
        let p = b.build();
        let ip = instrumented(&p);
        let engine = run_engine(&ip, EngineConfig::default(), 9);
        let profile = engine.loopcut_profile();
        assert!(
            !profile.thresholds.is_empty(),
            "capacity aborts should have taught thresholds"
        );
        assert!(engine.stats().loop_cuts > 0);
    }

    #[test]
    fn channel_handoff_synchronizes_the_slow_path() {
        // Producer writes the payload then sends; consumer receives then
        // reads it. The send→recv happens-before edge must be tracked on
        // every path, so even with tiny (SlowOnly) regions FastTrack sees
        // the handoff as ordered. A second, unsynchronized variable is the
        // control: it must still be reported.
        let mut b = ProgramBuilder::new(2);
        let payload = b.var("payload");
        let racy = b.var("racy");
        let ch = b.chan_id("ch", 4);
        // A single handoff: the channel edge is unidirectional (send→recv,
        // no backpressure), so re-writing the same payload slot across
        // iterations would be a true race — see the hb crate docs.
        b.thread(0).write(payload, 7).send(ch).loop_n(10, |tb| {
            tb.write(racy, 1);
        });
        b.thread(1).recv(ch).read(payload).loop_n(10, |tb| {
            tb.write(racy, 2);
        });
        let p = b.build();
        let ip = instrumented(&p);
        let engine = run_engine(&ip, EngineConfig::default(), 13);
        let races = engine.races();
        // The payload handoff is channel-ordered: no report touches it.
        assert!(
            !races.reports().iter().any(|r| r.addr == payload),
            "channel-synchronized handoff must not be reported: {races:?}"
        );
        assert!(
            races.reports().iter().any(|r| r.addr == racy),
            "the unsynchronized control variable must still race"
        );
    }

    #[test]
    fn prune_table_elides_slow_path_checks_without_losing_races() {
        use crate::sa::SiteClassTable;
        // Tiny regions (SlowOnly) so every access runs on the slow path:
        // the racy accesses to x must still be checked and reported, the
        // race-free accesses to each thread's private variable must be
        // elided and charged to the elided bucket.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            let mine = b.var(&format!("mine{t}"));
            b.thread(t).loop_n(10, |tb| {
                tb.write(x, t as u64).read(mine);
                tb.syscall(txrace_sim::SyscallKind::Io);
            });
        }
        let p = b.build();
        let table = SiteClassTable::analyze(&p);
        let ip = instrumented(&p);
        let run_with = |prune: Option<SiteClassTable>| {
            let cfg = EngineConfig {
                prune,
                ..EngineConfig::default()
            };
            let mut engine = TxRaceEngine::new(&ip, cfg);
            let mut m = Machine::new(&ip.program);
            let mut s = FairSched::new(11, 0.1);
            assert_eq!(m.run(&mut engine, &mut s).status, RunStatus::Done);
            engine
        };
        let off = run_with(None);
        let on = run_with(Some(table));
        assert!(on.stats().elided_checks > 0, "private reads elided");
        assert_eq!(on.races().distinct_count(), off.races().distinct_count());
        assert_eq!(off.stats().elided_checks, 0);
        assert_eq!(off.breakdown().elided, 0);
        // Identical schedule, so the pruned run's paid cycles plus its
        // elided cycles reproduce the unpruned total exactly.
        assert_eq!(
            off.breakdown().total(),
            on.breakdown().total() + on.breakdown().elided
        );
        assert_eq!(on.checks() + on.stats().elided_checks, off.checks());
    }
}
