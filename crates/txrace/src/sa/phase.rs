//! Phase-aware may-happen-in-parallel (MHP) analysis: proving that two
//! accesses on different threads can never overlap in time, because
//! barrier generations or fork-join structure order them.
//!
//! Two mechanisms, both conservative:
//!
//! * **Barrier arrival intervals.** For every data-access site and every
//!   barrier, the oracle computes the exact interval `[lo, hi]` of
//!   "arrivals at that barrier by the site's own thread before the site
//!   executes", over every dynamic occurrence of the site. The IR is
//!   branch-free, so per-iteration arrival deltas are deterministic and
//!   the interval is computed structurally — the first occurrence gives
//!   `lo`, and each enclosing `trips`-loop widens `hi` (and the running
//!   count) by `(trips - 1) * delta` — no fixpoint, no over-widening.
//! * **Fork-join spans.** When a thread spawns and joins workers at its
//!   top level, a worker joined before another is spawned is fully
//!   ordered against it, and a spawner-side access before a worker's
//!   spawn (or after its join) is ordered against that worker — even
//!   when the spawner's [`Phase`] is `Concurrent` because *other*
//!   workers are still live (staged pipelines).
//!
//! **Why barrier generations align.** A barrier's width is its syntactic
//! member count, an arriving thread blocks until the generation
//! releases, and a blocked thread cannot arrive again — so generation
//! `i` completes exactly when every member has made its `i`-th arrival.
//! Site `x` (thread `u`) is therefore ordered before site `y` (thread
//! `v`) by barrier `b` when:
//!
//! 1. `u` arrives at `b` again after `x` (`total_u > x.hi`), so `x`
//!    happens-before `u`'s arrival number `x.hi + 1`; and
//! 2. `y` runs after `v` returns from arrival number `y.lo > x.hi`,
//!    whose generation's release requires `u`'s arrival `x.hi + 1` —
//!    generations complete in order, so the release happens-after `x`
//!    and happens-before `y`.
//!
//! Both bounds quantify over *all* dynamic occurrences, so the claim
//! holds for every occurrence pair. Threads that provably never run
//! (parked, and spawned only from dead code) are excluded from arrival
//! counting and get no intervals; a dead barrier member merely makes
//! later generations unreachable, which leaves every claim about code
//! beyond them vacuously true.

use std::collections::BTreeSet;

use txrace_sim::summary::Phase;
use txrace_sim::{Op, Program, SiteAccess, Stmt, ThreadId};

/// The may-happen-in-parallel oracle for one program.
#[derive(Debug)]
pub(super) struct MhpOracle {
    /// Per site index: per-barrier `[lo, hi]` arrival intervals; `None`
    /// for sites without a record (dead code or non-data ops).
    intervals: Vec<Option<(Vec<u64>, Vec<u64>)>>,
    /// Per thread, per barrier: total arrivals across the whole run
    /// (zero rows for threads that never run).
    arrivals: Vec<Vec<u64>>,
    /// Per thread: `(spawner, top-level index)` of its `Spawn`, if the
    /// spawn sits at the spawner's top level and the thread starts
    /// parked (the precondition for the spawn happens-before edge).
    spawn_at: Vec<Option<(ThreadId, usize)>>,
    /// Per thread: `(joiner, top-level index)` of its `Join`, same
    /// top-level requirement.
    join_at: Vec<Option<(ThreadId, usize)>>,
    /// Per site index: `(thread, top-level statement index)` containing
    /// the site — every dynamic occurrence happens within that span.
    top_idx: Vec<Option<(ThreadId, usize)>>,
}

impl MhpOracle {
    /// Builds the oracle for `p`.
    pub fn build(p: &Program) -> Self {
        let nb = barrier_count(p);
        let nt = p.thread_count();
        let runs = running_threads(p);

        let mut intervals: Vec<Option<(Vec<u64>, Vec<u64>)>> = vec![None; p.site_count() as usize];
        let mut arrivals = vec![vec![0u64; nb]; nt];
        for (t, total) in arrivals.iter_mut().enumerate() {
            if !runs[t] {
                continue;
            }
            walk_arrivals(p.thread(ThreadId(t as u32)), total, &mut intervals);
        }

        // Fork-join spans: top-level Spawn/Join positions per target.
        let mut spawn_at = vec![None; nt];
        let mut join_at = vec![None; nt];
        let mut top_idx = vec![None; p.site_count() as usize];
        for t in 0..nt {
            for (i, s) in p.thread(ThreadId(t as u32)).iter().enumerate() {
                index_top(s, ThreadId(t as u32), i, &mut top_idx);
                if let Stmt::Op { op, .. } = s {
                    match op {
                        Op::Spawn(u) if p.starts_parked(*u) => {
                            spawn_at[u.index()] = Some((ThreadId(t as u32), i));
                        }
                        Op::Join(u) => {
                            join_at[u.index()] = Some((ThreadId(t as u32), i));
                        }
                        _ => {}
                    }
                }
            }
        }

        MhpOracle {
            intervals,
            arrivals,
            spawn_at,
            join_at,
            top_idx,
        }
    }

    /// True iff every dynamic occurrence of `x` is ordered (by
    /// happens-before) against every occurrence of `y`, so the two can
    /// never execute in parallel. Trivially true for same-thread sites
    /// and for sites in a single-threaded phase.
    ///
    /// Only barrier and fork-join structure count as evidence. Channel
    /// send/recv does create happens-before edges at runtime, but which
    /// send pairs with which recv is schedule-dependent, so the oracle
    /// conservatively grants channels no ordering credit — channel-
    /// synchronized sites stay "may happen in parallel" here and rely on
    /// the dynamic detectors for their race-freedom.
    pub fn ordered(&self, x: &SiteAccess, y: &SiteAccess) -> bool {
        if x.thread == y.thread {
            return true;
        }
        if x.phase != Phase::Concurrent || y.phase != Phase::Concurrent {
            return true;
        }
        self.barrier_before(x, y)
            || self.barrier_before(y, x)
            || self.fork_join_before(x, y)
            || self.fork_join_before(y, x)
    }

    /// True iff some barrier proves every occurrence of `x` happens
    /// before every occurrence of `y` (see the module docs for the
    /// two-condition argument).
    fn barrier_before(&self, x: &SiteAccess, y: &SiteAccess) -> bool {
        let (Some((_, xhi)), Some((ylo, _))) = (
            self.intervals[x.site.index()].as_ref(),
            self.intervals[y.site.index()].as_ref(),
        ) else {
            return false;
        };
        let xt = &self.arrivals[x.thread.index()];
        (0..xt.len()).any(|b| xt[b] > xhi[b] && ylo[b] > xhi[b])
    }

    /// True iff `x` is wholly before `y` by fork-join structure.
    fn fork_join_before(&self, x: &SiteAccess, y: &SiteAccess) -> bool {
        // Worker-to-worker: x's thread joined before y's thread spawned,
        // by the same parent thread.
        if let (Some((jt, ji)), Some((st, si))) = (
            self.join_at[x.thread.index()],
            self.spawn_at[y.thread.index()],
        ) {
            if jt == st && ji < si {
                return true;
            }
        }
        // Spawner-side access before the worker's spawn.
        if let (Some((xt, xi)), Some((st, si))) = (
            self.top_idx[x.site.index()],
            self.spawn_at[y.thread.index()],
        ) {
            if xt == st && xi < si {
                return true;
            }
        }
        // Worker access before the joiner's post-join access.
        if let (Some((jt, ji)), Some((yt, yi))) =
            (self.join_at[x.thread.index()], self.top_idx[y.site.index()])
        {
            if jt == yt && yi > ji {
                return true;
            }
        }
        false
    }
}

/// Number of distinct barriers referenced by `p`'s code (dense ids).
fn barrier_count(p: &Program) -> usize {
    let mut max = 0usize;
    p.visit_static(&mut |_, _, op| {
        if let Op::Barrier(b) = op {
            max = max.max(b.index() + 1);
        }
    });
    max
}

/// Threads that can actually execute: not parked, or (transitively)
/// spawned by a running thread from non-dead code.
fn running_threads(p: &Program) -> Vec<bool> {
    let nt = p.thread_count();
    let mut runs: Vec<bool> = (0..nt)
        .map(|t| !p.starts_parked(ThreadId(t as u32)))
        .collect();
    loop {
        let mut changed = false;
        for t in 0..nt {
            if !runs[t] {
                continue;
            }
            for u in spawns_in(p.thread(ThreadId(t as u32))) {
                if !runs[u.index()] {
                    runs[u.index()] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            return runs;
        }
    }
}

fn spawns_in(stmts: &[Stmt]) -> BTreeSet<ThreadId> {
    fn walk(stmts: &[Stmt], out: &mut BTreeSet<ThreadId>) {
        for s in stmts {
            match s {
                Stmt::Op {
                    op: Op::Spawn(u), ..
                } => {
                    out.insert(*u);
                }
                Stmt::Op { .. } => {}
                Stmt::Loop { trips: 0, .. } => {}
                Stmt::Loop { body, .. } => walk(body, out),
            }
        }
    }
    let mut out = BTreeSet::new();
    walk(stmts, &mut out);
    out
}

/// Structural arrival walk for one thread: `cnt[b]` is the running
/// arrival count; data-access sites snapshot it as `[lo, hi]`, and each
/// enclosing multi-trip loop widens `hi` (and advances `cnt`) by
/// `(trips - 1) * delta`. On return, `cnt` holds the thread's totals.
fn walk_arrivals(stmts: &[Stmt], cnt: &mut [u64], intervals: &mut [Option<(Vec<u64>, Vec<u64>)>]) {
    fn inner(
        stmts: &[Stmt],
        cnt: &mut [u64],
        intervals: &mut [Option<(Vec<u64>, Vec<u64>)>],
        recorded: &mut Vec<usize>,
    ) {
        for s in stmts {
            match s {
                Stmt::Op { site, op } => {
                    if let Op::Barrier(b) = op {
                        cnt[b.index()] += 1;
                    } else if op.is_data_access() {
                        intervals[site.index()] = Some((cnt.to_vec(), cnt.to_vec()));
                        recorded.push(site.index());
                    }
                }
                Stmt::Loop { trips: 0, .. } => {}
                Stmt::Loop { trips, body, .. } => {
                    let save = cnt.to_vec();
                    let mark = recorded.len();
                    inner(body, cnt, intervals, recorded);
                    let extra = u64::from(*trips) - 1;
                    if extra > 0 {
                        for b in 0..cnt.len() {
                            let delta = cnt[b] - save[b];
                            if delta == 0 {
                                continue;
                            }
                            for &si in &recorded[mark..] {
                                let (_, hi) = intervals[si]
                                    .as_mut()
                                    .expect("recorded sites have intervals");
                                hi[b] += extra * delta;
                            }
                            cnt[b] += extra * delta;
                        }
                    }
                }
            }
        }
    }
    let mut recorded = Vec::new();
    inner(stmts, cnt, intervals, &mut recorded);
}

/// Records the top-level statement index for every site in `s`.
fn index_top(s: &Stmt, t: ThreadId, i: usize, top_idx: &mut [Option<(ThreadId, usize)>]) {
    match s {
        Stmt::Op { site, .. } => top_idx[site.index()] = Some((t, i)),
        Stmt::Loop { body, .. } => {
            for inner in body {
                index_top(inner, t, i, top_idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::{summarize, ProgramBuilder};

    fn oracle_and_records(p: &Program) -> (MhpOracle, Vec<SiteAccess>) {
        (MhpOracle::build(p), summarize(p).accesses().to_vec())
    }

    fn rec<'a>(p: &Program, rs: &'a [SiteAccess], label: &str) -> &'a SiteAccess {
        let s = p.site(label).expect("label exists");
        rs.iter().find(|r| r.site == s).expect("record exists")
    }

    #[test]
    fn barrier_separates_write_phase_from_read_phase() {
        // Both threads touch the SAME address on opposite sides of the
        // barrier: unordered without MHP, ordered with it.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let bar = b.barrier_id("bar");
        b.thread(0).write_l(x, 1, "before").barrier(bar);
        b.thread(1).barrier(bar).read_l(x, "after");
        let p = b.build();
        let (o, rs) = oracle_and_records(&p);
        assert!(o.ordered(rec(&p, &rs, "before"), rec(&p, &rs, "after")));
    }

    #[test]
    fn same_side_of_barrier_stays_unordered() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let bar = b.barrier_id("bar");
        b.thread(0).write_l(x, 1, "w0").barrier(bar);
        b.thread(1).write_l(x, 2, "w1").barrier(bar);
        let p = b.build();
        let (o, rs) = oracle_and_records(&p);
        assert!(!o.ordered(rec(&p, &rs, "w0"), rec(&p, &rs, "w1")));
    }

    #[test]
    fn loop_carried_barrier_intervals_widen() {
        // Each thread: 3 iterations of { write; barrier }. The writes'
        // intervals are [0,2] in both threads: overlapping, unordered.
        // A post-loop read in thread 1 has interval [3,3]: ordered
        // against thread 0's in-loop writes (hi 2 < lo 3).
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let bar = b.barrier_id("bar");
        b.thread(0).loop_n(3, |tb| {
            tb.write_l(x, 1, "w0").barrier(bar);
        });
        b.thread(1).loop_n(3, |tb| {
            tb.write_l(y, 2, "w1").barrier(bar);
        });
        b.thread(1).read_l(x, "post");
        let p = b.build();
        let (o, rs) = oracle_and_records(&p);
        assert!(!o.ordered(rec(&p, &rs, "w0"), rec(&p, &rs, "w1")));
        assert!(o.ordered(rec(&p, &rs, "w0"), rec(&p, &rs, "post")));
    }

    #[test]
    fn no_arrival_after_the_access_gives_no_credit() {
        // Thread 0's write is after its LAST arrival (total 3, hi 3):
        // nothing orders it before anything, and thread 1's write (after
        // arrival 1 of 1) likewise has no post-access arrival. Neither
        // direction holds; the pair stays unordered.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let bar = b.barrier_id("bar");
        b.thread(0).loop_n(3, |tb| {
            tb.barrier(bar);
        });
        b.thread(0).write_l(x, 1, "w0");
        b.thread(1).barrier(bar).write_l(x, 2, "w1");
        let p = b.build();
        let (o, rs) = oracle_and_records(&p);
        assert!(!o.ordered(rec(&p, &rs, "w0"), rec(&p, &rs, "w1")));
    }

    #[test]
    fn non_member_threads_get_no_barrier_credit() {
        // Barrier between threads 0 and 1; thread 2 never arrives, so
        // nothing orders it against anyone.
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        let bar = b.barrier_id("bar");
        b.thread(0).write_l(x, 1, "w0").barrier(bar);
        b.thread(1).barrier(bar).read_l(x, "r1");
        b.thread(2).write_l(x, 9, "w2");
        let p = b.build();
        let (o, rs) = oracle_and_records(&p);
        assert!(o.ordered(rec(&p, &rs, "w0"), rec(&p, &rs, "r1")));
        assert!(!o.ordered(rec(&p, &rs, "w0"), rec(&p, &rs, "w2")));
        assert!(!o.ordered(rec(&p, &rs, "r1"), rec(&p, &rs, "w2")));
    }

    #[test]
    fn staged_workers_are_ordered_by_join_before_spawn() {
        // Pipeline: spawn w1, join w1, then spawn w2 — w1 and w2 touch
        // the same cell but can never overlap. The whole-program phase
        // analysis calls the main thread's middle section Concurrent
        // (some worker is always live), so only fork-join spans prove
        // the w1/w2 and main/worker orderings.
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        b.thread(0)
            .spawn(ThreadId(1))
            .join(ThreadId(1))
            .write_l(x, 5, "mid")
            .spawn(ThreadId(2))
            .join(ThreadId(2));
        b.thread(1).write_l(x, 1, "w1");
        b.thread(2).write_l(x, 2, "w2");
        let p = b.build();
        let (o, rs) = oracle_and_records(&p);
        assert!(o.ordered(rec(&p, &rs, "w1"), rec(&p, &rs, "w2")));
        assert!(o.ordered(rec(&p, &rs, "mid"), rec(&p, &rs, "w1")));
        assert!(o.ordered(rec(&p, &rs, "mid"), rec(&p, &rs, "w2")));
    }

    #[test]
    fn concurrent_workers_stay_unordered() {
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        b.thread(0)
            .spawn(ThreadId(1))
            .spawn(ThreadId(2))
            .write_l(x, 5, "mid")
            .join(ThreadId(1))
            .join(ThreadId(2));
        b.thread(1).write_l(x, 1, "w1");
        b.thread(2).write_l(x, 2, "w2");
        let p = b.build();
        let (o, rs) = oracle_and_records(&p);
        assert!(!o.ordered(rec(&p, &rs, "w1"), rec(&p, &rs, "w2")));
        assert!(!o.ordered(rec(&p, &rs, "mid"), rec(&p, &rs, "w1")));
    }

    #[test]
    fn dead_threads_are_excluded_from_arrival_counting() {
        // Thread 2 is parked (its Spawn sits in a zero-trip loop) and
        // never runs: it gets no intervals and its sites stay unordered
        // against everyone, while the live pair still resolves. (Its
        // syntactic barrier membership makes generation 1 unreachable at
        // runtime, so the live ordering claim is vacuously sound.)
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        let bar = b.barrier_id("bar");
        b.thread(0).loop_n(0, |tb| {
            tb.spawn(ThreadId(2));
        });
        b.thread(0).write_l(x, 1, "w0").barrier(bar);
        b.thread(1).barrier(bar).read_l(x, "r1");
        b.thread(2).barrier(bar).write_l(x, 9, "w2");
        let p = b.build();
        assert!(p.starts_parked(ThreadId(2)));
        let (o, rs) = oracle_and_records(&p);
        assert!(o.ordered(rec(&p, &rs, "w0"), rec(&p, &rs, "r1")));
        assert!(!o.ordered(rec(&p, &rs, "w0"), rec(&p, &rs, "w2")));
        assert!(!o.ordered(rec(&p, &rs, "r1"), rec(&p, &rs, "w2")));
    }
}
