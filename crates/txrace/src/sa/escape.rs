//! The flow-insensitive base classification: thread-escape, phase,
//! read-only, and whole-program common-lockset reasoning over the
//! [`txrace_sim::summary`] records.
//!
//! This is the original `sa` analysis, byte-for-byte: [`classify`] is the
//! sole classification used by [`StaticPruneMode::Full`], and the first
//! stage of the flow-sensitive pipeline
//! ([`SiteClassTable::analyze_flow`]), which only ever *adds* race-free
//! verdicts on top of these.
//!
//! [`StaticPruneMode::Full`]: crate::sa::StaticPruneMode::Full
//! [`SiteClassTable::analyze_flow`]: crate::sa::SiteClassTable::analyze_flow

use std::collections::BTreeMap;

use txrace_sim::summary::Phase;
use txrace_sim::{Addr, Program, SiteAccess};

use super::{RaceFreeReason, SiteClass};

/// Classifies every site of `p` with the flow-insensitive analyses.
/// `records` must be the access records of `txrace_sim::summarize(p)`.
pub(super) fn classify(p: &Program, records: &[SiteAccess]) -> Vec<SiteClass> {
    // Conflict sets: for every address, the concurrent-phase,
    // non-atomic records whose footprint covers it. Atomics are
    // excluded because detectors neither check nor record them — an
    // RMW can never appear on either side of a race report.
    let mut by_addr: BTreeMap<Addr, Vec<usize>> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        if r.phase != Phase::Concurrent || r.atomic {
            continue;
        }
        for &a in &r.addrs {
            by_addr.entry(a).or_default().push(i);
        }
    }

    let addr_safety = |a: Addr| -> AddrSafety {
        let set = by_addr.get(&a).map(Vec::as_slice).unwrap_or(&[]);
        let single_thread = set
            .windows(2)
            .all(|w| records[w[0]].thread == records[w[1]].thread);
        let write_free = set.iter().all(|&i| !records[i].writes);
        let common_lock = match set {
            [] => true,
            [first, rest @ ..] => {
                let mut locks = records[*first].locks.clone();
                for &i in rest {
                    locks = locks.intersection(&records[i].locks).copied().collect();
                }
                !locks.is_empty()
            }
        };
        AddrSafety {
            safe: single_thread || write_free || common_lock,
            single_thread,
            write_free,
        }
    };

    // Which sites are data accesses at all (and their record, if any).
    let mut is_data = vec![false; p.site_count() as usize];
    p.visit_static(&mut |_, site, op| {
        // Sync ops, compute, and syscalls are never checked; their
        // class stays PotentiallyRacy, which is vacuously sound.
        if op.is_data_access() {
            is_data[site.index()] = true;
        }
    });
    let mut record_of: Vec<Option<usize>> = vec![None; p.site_count() as usize];
    for (i, r) in records.iter().enumerate() {
        record_of[r.site.index()] = Some(i);
    }

    (0..p.site_count() as usize)
        .map(|s| {
            if !is_data[s] {
                return SiteClass::PotentiallyRacy;
            }
            let Some(ri) = record_of[s] else {
                // A data site with no record sits under a zero-trip
                // loop: it never executes.
                return SiteClass::RaceFree(RaceFreeReason::Dead);
            };
            let r = &records[ri];
            if r.atomic {
                return SiteClass::PotentiallyRacy;
            }
            if r.phase != Phase::Concurrent {
                return SiteClass::RaceFree(RaceFreeReason::SinglePhase);
            }
            let safety: Vec<AddrSafety> = r.addrs.iter().map(|&a| addr_safety(a)).collect();
            if safety.iter().any(|s| !s.safe) {
                return SiteClass::PotentiallyRacy;
            }
            let reason = if safety.iter().all(|s| s.single_thread) {
                RaceFreeReason::ThreadLocal
            } else if safety.iter().all(|s| s.write_free) {
                RaceFreeReason::ReadOnly
            } else {
                RaceFreeReason::Lockset
            };
            SiteClass::RaceFree(reason)
        })
        .collect()
}

struct AddrSafety {
    safe: bool,
    single_thread: bool,
    write_free: bool,
}
