//! Static race-freedom analysis: prune provably race-free sites before
//! transactionalization.
//!
//! The paper's pass transactionalizes *every* synchronization-free region
//! and lets the HTM sort out which accesses actually conflict. A lot of
//! that work is provably unnecessary at compile time: accesses whose
//! address set is touched by one thread only, accesses in the
//! single-threaded prologue/epilogue of the main thread, read-only shared
//! data, and accesses consistently guarded by a common lock can never be
//! part of a data race. This module classifies every static [`SiteId`]
//! with three sound analyses over the [`txrace_sim::summary`] records:
//!
//! * **thread-escape / phase**: an address touched by one thread, or an
//!   access in a single-threaded phase, cannot race
//!   ([`RaceFreeReason::ThreadLocal`], [`RaceFreeReason::SinglePhase`]);
//! * **read-only**: addresses never written concurrently cannot race
//!   ([`RaceFreeReason::ReadOnly`]);
//! * **static lockset**: if every concurrent access to an address holds a
//!   common lock, mutual exclusion orders them
//!   ([`RaceFreeReason::Lockset`]).
//!
//! The resulting [`SiteClassTable`] feeds four consumers: the
//! instrumentation pass (skip transactions around fully race-free
//! regions and re-apply the `K` threshold to the pruned op counts), the
//! slow-path engine and the TSan baselines (skip FastTrack checks at
//! race-free sites), the cost model (an `elided` breakdown category), and
//! the benchmark ablations.
//!
//! Soundness bar: a site the table calls race-free must never appear in a
//! race report of an unpruned run. Everything conservative lives in the
//! summary pass (footprints widen, locksets shrink, phases default to
//! concurrent); this module only combines the records. Atomic RMW sites
//! are deliberately classified [`SiteClass::PotentiallyRacy`] even though
//! detectors never check them: pruning them would also strip their HTM
//! conflict footprint (e.g. shared-counter lines), changing the paper's
//! Table 1 abort counts rather than just eliding redundant checks.

use std::collections::BTreeMap;
use std::fmt;

use txrace_sim::summary::{summarize, Phase};
use txrace_sim::{Addr, Op, Program, SiteId};

/// How much of the pruning analysis a run applies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StaticPruneMode {
    /// No pruning (the paper's configuration).
    #[default]
    Off,
    /// Keep instrumentation identical, but skip the software
    /// happens-before check at race-free sites. Schedule-preserving, so
    /// the race set is *exactly* the unpruned one.
    ChecksOnly,
    /// Additionally re-run the transactionalization pass against the
    /// pruned op counts: regions whose checked ops all prune away lose
    /// their transaction markers, and the `K` small-region threshold is
    /// applied to the pruned counts.
    Full,
}

/// Why a site is provably race-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceFreeReason {
    /// Executes in a single-threaded phase of the main thread (before the
    /// first spawn or after all threads are joined).
    SinglePhase,
    /// Every address it touches is touched by at most one thread.
    ThreadLocal,
    /// Every address it touches is never concurrently written.
    ReadOnly,
    /// Every address it touches has a common lock across all concurrent
    /// accesses.
    Lockset,
    /// The site sits in dead code (a zero-trip loop) and never executes.
    Dead,
}

impl fmt::Display for RaceFreeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RaceFreeReason::SinglePhase => "single-phase",
            RaceFreeReason::ThreadLocal => "thread-local",
            RaceFreeReason::ReadOnly => "read-only",
            RaceFreeReason::Lockset => "lockset",
            RaceFreeReason::Dead => "dead",
        };
        f.write_str(s)
    }
}

/// The verdict for one static site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// Provably not part of any data race; its check may be elided.
    RaceFree(RaceFreeReason),
    /// Not provably race-free (includes sync ops, markers, and atomics).
    PotentiallyRacy,
}

/// Aggregate classification counts (for reports and ablation tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Data-access sites in the program.
    pub data_sites: u64,
    /// Data sites classified race-free, total.
    pub race_free: u64,
    /// Race-free via a single-threaded phase.
    pub single_phase: u64,
    /// Race-free via thread-locality.
    pub thread_local: u64,
    /// Race-free via read-only-ness.
    pub read_only: u64,
    /// Race-free via a common lock.
    pub lockset: u64,
    /// Race-free because the code is dead.
    pub dead: u64,
}

impl PruneStats {
    /// Fraction of data sites pruned, in `[0, 1]`.
    pub fn pruned_fraction(&self) -> f64 {
        if self.data_sites == 0 {
            return 0.0;
        }
        self.race_free as f64 / self.data_sites as f64
    }
}

/// Per-site classification for one program. Indexed by the *original*
/// program's sites; marker sites minted later by the instrumentation pass
/// are out of range and always report potentially-racy.
#[derive(Debug, Clone)]
pub struct SiteClassTable {
    classes: Vec<SiteClass>,
}

impl SiteClassTable {
    /// Runs the analysis over `p` (the uninstrumented program).
    pub fn analyze(p: &Program) -> Self {
        let summary = summarize(p);
        let records = summary.accesses();

        // Conflict sets: for every address, the concurrent-phase,
        // non-atomic records whose footprint covers it. Atomics are
        // excluded because detectors neither check nor record them — an
        // RMW can never appear on either side of a race report.
        let mut by_addr: BTreeMap<Addr, Vec<usize>> = BTreeMap::new();
        for (i, r) in records.iter().enumerate() {
            if r.phase != Phase::Concurrent || r.atomic {
                continue;
            }
            for &a in &r.addrs {
                by_addr.entry(a).or_default().push(i);
            }
        }

        let addr_safety = |a: Addr| -> AddrSafety {
            let set = by_addr.get(&a).map(Vec::as_slice).unwrap_or(&[]);
            let single_thread = set
                .windows(2)
                .all(|w| records[w[0]].thread == records[w[1]].thread);
            let write_free = set.iter().all(|&i| !records[i].writes);
            let common_lock = match set {
                [] => true,
                [first, rest @ ..] => {
                    let mut locks = records[*first].locks.clone();
                    for &i in rest {
                        locks = locks.intersection(&records[i].locks).copied().collect();
                    }
                    !locks.is_empty()
                }
            };
            AddrSafety {
                safe: single_thread || write_free || common_lock,
                single_thread,
                write_free,
            }
        };

        // Which sites are data accesses at all (and their record, if any).
        let mut is_data = vec![false; p.site_count() as usize];
        p.visit_static(&mut |_, site, op| {
            // Sync ops, compute, and syscalls are never checked; their
            // class stays PotentiallyRacy, which is vacuously sound.
            if op.is_data_access() {
                is_data[site.index()] = true;
            }
        });
        let mut record_of: Vec<Option<usize>> = vec![None; p.site_count() as usize];
        for (i, r) in records.iter().enumerate() {
            record_of[r.site.index()] = Some(i);
        }

        let classes = (0..p.site_count() as usize)
            .map(|s| {
                if !is_data[s] {
                    return SiteClass::PotentiallyRacy;
                }
                let Some(ri) = record_of[s] else {
                    // A data site with no record sits under a zero-trip
                    // loop: it never executes.
                    return SiteClass::RaceFree(RaceFreeReason::Dead);
                };
                let r = &records[ri];
                if r.atomic {
                    return SiteClass::PotentiallyRacy;
                }
                if r.phase != Phase::Concurrent {
                    return SiteClass::RaceFree(RaceFreeReason::SinglePhase);
                }
                let safety: Vec<AddrSafety> = r.addrs.iter().map(|&a| addr_safety(a)).collect();
                if safety.iter().any(|s| !s.safe) {
                    return SiteClass::PotentiallyRacy;
                }
                let reason = if safety.iter().all(|s| s.single_thread) {
                    RaceFreeReason::ThreadLocal
                } else if safety.iter().all(|s| s.write_free) {
                    RaceFreeReason::ReadOnly
                } else {
                    RaceFreeReason::Lockset
                };
                SiteClass::RaceFree(reason)
            })
            .collect();
        SiteClassTable { classes }
    }

    /// The verdict for `site`. Sites outside the analyzed program (e.g.
    /// instrumentation markers) are potentially racy.
    pub fn class(&self, site: SiteId) -> SiteClass {
        self.classes
            .get(site.index())
            .copied()
            .unwrap_or(SiteClass::PotentiallyRacy)
    }

    /// True iff the site's check can be soundly elided.
    pub fn is_race_free(&self, site: SiteId) -> bool {
        matches!(self.class(site), SiteClass::RaceFree(_))
    }

    /// Aggregate counts over `p`'s data sites (pass the same program the
    /// table was built from).
    pub fn stats(&self, p: &Program) -> PruneStats {
        let mut st = PruneStats::default();
        p.visit_static(&mut |_, site, op| {
            if !op.is_data_access() {
                return;
            }
            // visit_static walks each static site exactly once.
            st.data_sites += 1;
            if let SiteClass::RaceFree(reason) = self.class(site) {
                st.race_free += 1;
                match reason {
                    RaceFreeReason::SinglePhase => st.single_phase += 1,
                    RaceFreeReason::ThreadLocal => st.thread_local += 1,
                    RaceFreeReason::ReadOnly => st.read_only += 1,
                    RaceFreeReason::Lockset => st.lockset += 1,
                    RaceFreeReason::Dead => st.dead += 1,
                }
            }
        });
        st
    }
}

struct AddrSafety {
    safe: bool,
    single_thread: bool,
    write_free: bool,
}

/// Convenience: true when an op kind is subject to slow-path checking at
/// all (plain reads/writes; atomics are never checked).
pub fn op_is_checkable(op: &Op) -> bool {
    op.is_data_access() && !matches!(op, Op::Rmw(_, _))
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::{ProgramBuilder, ThreadId};

    fn class_of(p: &Program, t: &SiteClassTable, label: &str) -> SiteClass {
        t.class(p.site(label).expect("label exists"))
    }

    #[test]
    fn unlocked_shared_write_is_racy() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write_l(x, 1, "w0");
        b.thread(1).write_l(x, 2, "w1");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "w0"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "w1"), SiteClass::PotentiallyRacy);
    }

    #[test]
    fn common_lock_proves_race_freedom() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        for t in 0..2 {
            b.thread(t)
                .lock(l)
                .write_l(x, 1, &format!("w{t}"))
                .unlock(l);
        }
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "w0"),
            SiteClass::RaceFree(RaceFreeReason::Lockset)
        );
    }

    #[test]
    fn lock_held_in_only_one_thread_gives_no_credit() {
        // Adversarial: a lock protects nothing if the other thread skips it.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).lock(l).write_l(x, 1, "locked").unlock(l);
        b.thread(1).write_l(x, 2, "unlocked");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "locked"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "unlocked"), SiteClass::PotentiallyRacy);
    }

    #[test]
    fn different_locks_give_no_credit() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        let m = b.lock_id("m");
        b.thread(0).lock(l).write_l(x, 1, "wl").unlock(l);
        b.thread(1).lock(m).write_l(x, 2, "wm").unlock(m);
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "wl"), SiteClass::PotentiallyRacy);
    }

    #[test]
    fn false_sharing_is_race_free_despite_shared_line() {
        // Two threads write distinct words of the same cache line: the
        // HTM aborts on this, but no data race exists and the analysis
        // proves it (the measurable win of Full pruning).
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let y = b.var_sharing_line(x, 8);
        assert_eq!(x.line(), y.line());
        b.thread(0).write_l(x, 1, "wx");
        b.thread(1).write_l(y, 2, "wy");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "wx"),
            SiteClass::RaceFree(RaceFreeReason::ThreadLocal)
        );
        assert_eq!(
            class_of(&p, &t, "wy"),
            SiteClass::RaceFree(RaceFreeReason::ThreadLocal)
        );
    }

    #[test]
    fn read_only_sharing_is_race_free() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).read_l(x, "r0");
        b.thread(1).read_l(x, "r1");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "r0"),
            SiteClass::RaceFree(RaceFreeReason::ReadOnly)
        );
    }

    #[test]
    fn prespawn_write_then_concurrent_reads() {
        // Adversarial ordering: the address is *written*, but only before
        // any other thread exists; the concurrent accesses are all reads.
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        b.thread(0)
            .write_l(x, 7, "init")
            .spawn(ThreadId(1))
            .spawn(ThreadId(2))
            .join(ThreadId(1))
            .join(ThreadId(2));
        b.thread(1).read_l(x, "r1");
        b.thread(2).read_l(x, "r2");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "init"),
            SiteClass::RaceFree(RaceFreeReason::SinglePhase)
        );
        assert_eq!(
            class_of(&p, &t, "r1"),
            SiteClass::RaceFree(RaceFreeReason::ReadOnly)
        );
    }

    #[test]
    fn concurrent_write_poisons_concurrent_readers() {
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        b.thread(0)
            .spawn(ThreadId(1))
            .spawn(ThreadId(2))
            .join(ThreadId(1))
            .join(ThreadId(2));
        b.thread(1).write_l(x, 1, "w");
        b.thread(2).read_l(x, "r");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "w"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "r"), SiteClass::PotentiallyRacy);
    }

    #[test]
    fn rmw_is_never_race_free() {
        // Even a thread-local RMW stays unpruned: its HTM conflict
        // footprint must survive Full-mode re-instrumentation.
        let mut b = ProgramBuilder::new(2);
        let c = b.var("counter");
        b.thread(0).rmw_l(c, 1, "inc0");
        b.thread(1).rmw_l(c, 1, "inc1");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "inc0"), SiteClass::PotentiallyRacy);
        // But the RMWs do not poison plain accesses: detectors never
        // check or record atomics, so a read beside them is still safe.
        let mut b = ProgramBuilder::new(2);
        let c = b.var("counter");
        b.thread(0).rmw(c, 1).read_l(c, "peek0");
        b.thread(1).rmw(c, 1).read_l(c, "peek1");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "peek0"),
            SiteClass::RaceFree(RaceFreeReason::ReadOnly)
        );
    }

    #[test]
    fn overlapping_array_footprints_are_racy_disjoint_are_not() {
        let mut b = ProgramBuilder::new(2);
        let arr = b.array("arr", 16);
        // Thread 0 writes elements 0..4, thread 1 writes elements 4..8:
        // element 4 overlaps.
        b.thread(0).loop_n(5, |tb| {
            tb.write_arr_l(arr, 8, 1, "lo");
        });
        b.thread(1).loop_n(4, |tb| {
            tb.write_arr_l(arr.offset(4 * 8), 8, 2, "hi");
        });
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "lo"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "hi"), SiteClass::PotentiallyRacy);

        // Truly disjoint halves: race-free.
        let mut b = ProgramBuilder::new(2);
        let arr = b.array("arr", 16);
        b.thread(0).loop_n(4, |tb| {
            tb.write_arr_l(arr, 8, 1, "lo");
        });
        b.thread(1).loop_n(4, |tb| {
            tb.write_arr_l(arr.offset(4 * 8), 8, 2, "hi");
        });
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "lo"),
            SiteClass::RaceFree(RaceFreeReason::ThreadLocal)
        );
        assert_eq!(
            class_of(&p, &t, "hi"),
            SiteClass::RaceFree(RaceFreeReason::ThreadLocal)
        );
    }

    #[test]
    fn lock_drifting_loop_disables_lockset_credit() {
        // Adversarial: thread 0's lock depth drifts across iterations, so
        // the summary drops the lock and the classifier must not prune.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).loop_n(3, |tb| {
            tb.lock(l).write_l(x, 1, "drift");
        });
        b.thread(1).lock(l).write_l(x, 2, "clean").unlock(l);
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "drift"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "clean"), SiteClass::PotentiallyRacy);
    }

    #[test]
    fn dead_code_and_marker_sites() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).loop_n(0, |tb| {
            tb.write_l(x, 1, "dead");
        });
        b.thread(1).write(x, 2);
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "dead"),
            SiteClass::RaceFree(RaceFreeReason::Dead)
        );
        // Out-of-range (marker) sites are never pruned.
        assert!(!t.is_race_free(SiteId(p.site_count() + 3)));
    }

    #[test]
    fn stats_count_by_reason() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let l = b.lock_id("l");
        b.thread(0).read_l(x, "rx").lock(l).write(y, 1).unlock(l);
        b.thread(1).read(x).lock(l).write(y, 2).unlock(l);
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        let st = t.stats(&p);
        assert_eq!(st.data_sites, 4);
        assert_eq!(st.race_free, 4);
        assert_eq!(st.read_only, 2);
        assert_eq!(st.lockset, 2);
        assert!((st.pruned_fraction() - 1.0).abs() < 1e-12);
    }
}
