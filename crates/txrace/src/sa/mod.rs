//! Static race-freedom analysis: prune provably race-free sites before
//! transactionalization.
//!
//! The paper's pass transactionalizes *every* synchronization-free region
//! and lets the HTM sort out which accesses actually conflict. A lot of
//! that work is provably unnecessary at compile time. Two analysis layers
//! establish race freedom, in increasing precision:
//!
//! The **flow-insensitive base layer** (`escape`, the original `sa`
//! analysis) classifies sites from the [`txrace_sim::summary`] records:
//!
//! * **thread-escape / phase**: an address touched by one thread, or an
//!   access in a single-threaded phase, cannot race
//!   ([`RaceFreeReason::ThreadLocal`], [`RaceFreeReason::SinglePhase`]);
//! * **read-only**: addresses never written concurrently cannot race
//!   ([`RaceFreeReason::ReadOnly`]);
//! * **static lockset**: if every concurrent access to an address holds a
//!   common lock, mutual exclusion orders them
//!   ([`RaceFreeReason::Lockset`]).
//!
//! The **flow-sensitive layer** ([`SiteClassTable::analyze_flow`],
//! [`StaticPruneMode::FullFlow`]) reasons about *pairs* of accesses with
//! dataflow over per-thread region graphs (`flow`) and a
//! may-happen-in-parallel oracle (`phase`):
//!
//! * **must-locksets**: a forward fixpoint through `Lock`/`Unlock`
//!   recovers locks the single-pass summary must conservatively drop
//!   (e.g. re-acquiring loops), and lock credit is taken per *pair*
//!   rather than per address ([`RaceFreeReason::MustLocked`]);
//! * **MHP**: barrier generations and fork-join spans prove cross-thread
//!   pairs can never overlap in time
//!   ([`RaceFreeReason::OrderedByPhase`]);
//! * **redundant checks**: a re-check of an address already checked
//!   earlier in the same sync-free, loop-free span detects nothing its
//!   witness would not ([`RaceFreeReason::RedundantCheck`]);
//! * **benign atomics**: an atomic RMW whose cache lines no surviving
//!   checked access touches keeps its semantics but loses its HTM
//!   conflict footprint — pruning it removes transactions (and their
//!   aborts) around atomic-only regions without affecting any reportable
//!   race ([`RaceFreeReason::BenignAtomic`]).
//!
//! The same pairwise machinery yields the [`MayRacePairs`] candidate
//! set: every cross-thread pair the analyses could not prove non-racing,
//! a static over-approximation of what FastTrack can ever report.
//!
//! The resulting [`SiteClassTable`] feeds four consumers: the
//! instrumentation pass (skip transactions around fully race-free
//! regions and re-apply the `K` threshold to the pruned op counts), the
//! slow-path engine and the TSan baselines (skip FastTrack checks at
//! race-free sites), the cost model (an `elided` breakdown category), and
//! the benchmark ablations.
//!
//! Soundness bar: a site the table calls race-free must never appear in a
//! race report of an unpruned run. Everything conservative lives in the
//! summary pass (footprints widen, locksets shrink, phases default to
//! concurrent); this module only combines the records. Under
//! [`SiteClassTable::analyze`] (the `Full` mode), atomic RMW sites are
//! deliberately classified [`SiteClass::PotentiallyRacy`] even though
//! detectors never check them: pruning them would also strip their HTM
//! conflict footprint (e.g. shared-counter lines), changing the paper's
//! Table 1 abort counts rather than just eliding redundant checks. The
//! `FullFlow` mode strips that footprint *only* where the line-disjointness
//! argument above shows no reportable race can be affected.

mod escape;
mod flow;
pub mod pairs;
mod phase;

pub use pairs::{Confirmation, MayRacePairs};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use txrace_hb::RacePair;
use txrace_sim::summary::Phase;
use txrace_sim::{dynamic_site_counts, summarize, Addr, Op, Program, SiteId};

/// How much of the pruning analysis a run applies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StaticPruneMode {
    /// No pruning (the paper's configuration).
    #[default]
    Off,
    /// Keep instrumentation identical, but skip the software
    /// happens-before check at race-free sites. Schedule-preserving, so
    /// the race set is *exactly* the unpruned one.
    ChecksOnly,
    /// Additionally re-run the transactionalization pass against the
    /// pruned op counts: regions whose checked ops all prune away lose
    /// their transaction markers, and the `K` small-region threshold is
    /// applied to the pruned counts. Uses the flow-insensitive layer
    /// only ([`SiteClassTable::analyze`]).
    Full,
    /// `Full` with the flow-sensitive layer
    /// ([`SiteClassTable::analyze_flow`]): must-lockset and MHP dataflow,
    /// redundant-check elimination, and benign-atomic footprint pruning.
    FullFlow,
}

/// Why a site is provably race-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceFreeReason {
    /// Executes in a single-threaded phase of the main thread (before the
    /// first spawn or after all threads are joined).
    SinglePhase,
    /// Every address it touches is touched by at most one thread.
    ThreadLocal,
    /// Every address it touches is never concurrently written.
    ReadOnly,
    /// Every address it touches has a common lock across all concurrent
    /// accesses.
    Lockset,
    /// The site sits in dead code (a zero-trip loop) and never executes.
    Dead,
    /// Flow-sensitive: every conflicting cross-thread access shares a
    /// must-held lock with this one (pairwise, after the must-lockset
    /// fixpoint recovered locks the summary dropped).
    MustLocked,
    /// Flow-sensitive: barrier generations or fork-join structure order
    /// this site against every conflicting cross-thread access.
    OrderedByPhase,
    /// Flow-sensitive: an earlier check in the same sync-free,
    /// loop-free span (the *witness*, see
    /// [`SiteClassTable::witness_of`]) already detects any race this
    /// check could.
    RedundantCheck,
    /// Flow-sensitive: an atomic RMW whose cache lines no surviving
    /// checked access touches; stripping its HTM footprint cannot
    /// affect any reportable race.
    BenignAtomic,
}

impl fmt::Display for RaceFreeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RaceFreeReason::SinglePhase => "single-phase",
            RaceFreeReason::ThreadLocal => "thread-local",
            RaceFreeReason::ReadOnly => "read-only",
            RaceFreeReason::Lockset => "lockset",
            RaceFreeReason::Dead => "dead",
            RaceFreeReason::MustLocked => "must-locked",
            RaceFreeReason::OrderedByPhase => "ordered-by-phase",
            RaceFreeReason::RedundantCheck => "redundant-check",
            RaceFreeReason::BenignAtomic => "benign-atomic",
        };
        f.write_str(s)
    }
}

/// The verdict for one static site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// Provably not part of any data race; its check may be elided.
    RaceFree(RaceFreeReason),
    /// Not provably race-free (includes sync ops, markers, and atomics).
    PotentiallyRacy,
}

/// Aggregate classification counts (for reports and ablation tables).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PruneStats {
    /// Data-access sites in the program.
    pub data_sites: u64,
    /// Data sites classified race-free, total.
    pub race_free: u64,
    /// Race-free via a single-threaded phase.
    pub single_phase: u64,
    /// Race-free via thread-locality.
    pub thread_local: u64,
    /// Race-free via read-only-ness.
    pub read_only: u64,
    /// Race-free via a common lock.
    pub lockset: u64,
    /// Race-free because the code is dead.
    pub dead: u64,
    /// Race-free via pairwise must-locksets (flow mode only).
    pub must_locked: u64,
    /// Race-free via MHP ordering (flow mode only).
    pub ordered_by_phase: u64,
    /// Elided as redundant re-checks (flow mode only).
    pub redundant_check: u64,
    /// Atomic footprints pruned as benign (flow mode only).
    pub benign_atomic: u64,
    /// Dynamic data accesses in one run (trip-weighted).
    pub dyn_data_ops: u64,
    /// Dynamic data accesses at race-free sites (trip-weighted).
    pub dyn_race_free: u64,
}

impl PruneStats {
    /// Fraction of *dynamic* data accesses pruned, in `[0, 1]` —
    /// trip-weighted, so a pruned site inside a hot loop counts for
    /// every access it elides, and a pruned one-shot init site does not
    /// masquerade as a big win.
    pub fn pruned_fraction(&self) -> f64 {
        if self.dyn_data_ops == 0 {
            return 0.0;
        }
        self.dyn_race_free as f64 / self.dyn_data_ops as f64
    }

    /// Fraction of *static* data sites pruned, in `[0, 1]` (the
    /// site-count ratio; use [`PruneStats::pruned_fraction`] for the
    /// performance-relevant dynamic weighting).
    pub fn static_pruned_fraction(&self) -> f64 {
        if self.data_sites == 0 {
            return 0.0;
        }
        self.race_free as f64 / self.data_sites as f64
    }
}

/// Per-site classification for one program. Indexed by the *original*
/// program's sites; marker sites minted later by the instrumentation pass
/// are out of range and always report potentially-racy.
#[derive(Debug, Clone)]
pub struct SiteClassTable {
    classes: Vec<SiteClass>,
    /// For [`RaceFreeReason::RedundantCheck`] sites: the earlier site
    /// whose check covers this one.
    witnesses: Vec<Option<SiteId>>,
}

impl SiteClassTable {
    /// Runs the flow-insensitive analysis over `p` (the uninstrumented
    /// program). This is the classification behind
    /// [`StaticPruneMode::Full`] and stays byte-identical to the
    /// original single-layer analysis.
    pub fn analyze(p: &Program) -> Self {
        let summary = summarize(p);
        let classes = escape::classify(p, summary.accesses());
        let witnesses = vec![None; classes.len()];
        SiteClassTable { classes, witnesses }
    }

    /// Runs the full flow-sensitive pipeline over `p` (the
    /// classification behind [`StaticPruneMode::FullFlow`]). Every site
    /// race-free under [`SiteClassTable::analyze`] is race-free here
    /// with the same reason; the flow passes only add verdicts.
    pub fn analyze_flow(p: &Program) -> Self {
        FlowAnalysis::run(p).table
    }

    /// The verdict for `site`. Sites outside the analyzed program (e.g.
    /// instrumentation markers) are potentially racy.
    pub fn class(&self, site: SiteId) -> SiteClass {
        self.classes
            .get(site.index())
            .copied()
            .unwrap_or(SiteClass::PotentiallyRacy)
    }

    /// True iff the site's check can be soundly elided.
    pub fn is_race_free(&self, site: SiteId) -> bool {
        matches!(self.class(site), SiteClass::RaceFree(_))
    }

    /// For a [`RaceFreeReason::RedundantCheck`] site, the earlier site
    /// whose surviving check covers it (races it would have detected
    /// are reported under the witness's id instead).
    pub fn witness_of(&self, site: SiteId) -> Option<SiteId> {
        self.witnesses.get(site.index()).copied().flatten()
    }

    /// Aggregate counts over `p`'s data sites (pass the same program the
    /// table was built from).
    pub fn stats(&self, p: &Program) -> PruneStats {
        let counts = dynamic_site_counts(p);
        let mut st = PruneStats::default();
        p.visit_static(&mut |_, site, op| {
            if !op.is_data_access() {
                return;
            }
            // visit_static walks each static site exactly once.
            st.data_sites += 1;
            st.dyn_data_ops += counts[site.index()];
            if let SiteClass::RaceFree(reason) = self.class(site) {
                st.race_free += 1;
                st.dyn_race_free += counts[site.index()];
                match reason {
                    RaceFreeReason::SinglePhase => st.single_phase += 1,
                    RaceFreeReason::ThreadLocal => st.thread_local += 1,
                    RaceFreeReason::ReadOnly => st.read_only += 1,
                    RaceFreeReason::Lockset => st.lockset += 1,
                    RaceFreeReason::Dead => st.dead += 1,
                    RaceFreeReason::MustLocked => st.must_locked += 1,
                    RaceFreeReason::OrderedByPhase => st.ordered_by_phase += 1,
                    RaceFreeReason::RedundantCheck => st.redundant_check += 1,
                    RaceFreeReason::BenignAtomic => st.benign_atomic += 1,
                }
            }
        });
        st
    }
}

/// The complete result of the flow-sensitive pipeline: the per-site
/// classification plus the static may-race candidate pairs (both derived
/// from the same pairwise pass, so they are always consistent).
#[derive(Debug, Clone)]
pub struct FlowAnalysis {
    /// Per-site verdicts (what [`SiteClassTable::analyze_flow`] returns).
    pub table: SiteClassTable,
    /// Cross-thread pairs not proven non-racing.
    pub pairs: MayRacePairs,
}

impl FlowAnalysis {
    /// Runs the pipeline: flow-insensitive base classification, then
    /// must-lockset + MHP pairwise reasoning, then redundant-check
    /// elimination, then benign-atomic footprint pruning.
    pub fn run(p: &Program) -> Self {
        let summary = summarize(p);
        let records = summary.accesses();
        let mut classes = escape::classify(p, records);
        let mut witnesses: Vec<Option<SiteId>> = vec![None; classes.len()];

        // Effective must-locksets: summary locks (sound) plus whatever
        // the dataflow fixpoint recovers (e.g. re-acquiring loops).
        let flow_locks = flow::must_locksets(p);
        let locks_of: Vec<BTreeSet<_>> = records
            .iter()
            .map(|r| {
                let mut s = r.locks.clone();
                if let Some(extra) = flow_locks.get(&r.site) {
                    s.extend(extra.iter().copied());
                }
                s
            })
            .collect();

        let mhp = phase::MhpOracle::build(p);

        // Conflicting pairs: cross-thread, both non-atomic and
        // concurrent, overlapping footprints, at least one write. Each
        // is then resolved by a shared must-lock, resolved by MHP
        // ordering, or *unsafe* (a may-race candidate).
        let mut by_addr: BTreeMap<Addr, Vec<usize>> = BTreeMap::new();
        for (i, r) in records.iter().enumerate() {
            if r.phase != Phase::Concurrent || r.atomic {
                continue;
            }
            for &a in &r.addrs {
                by_addr.entry(a).or_default().push(i);
            }
        }
        let mut conflicting: BTreeMap<(usize, usize), Addr> = BTreeMap::new();
        for (&a, bucket) in &by_addr {
            for (bi, &i) in bucket.iter().enumerate() {
                for &j in &bucket[bi + 1..] {
                    if records[i].thread != records[j].thread
                        && (records[i].writes || records[j].writes)
                    {
                        let key = (i.min(j), i.max(j));
                        conflicting.entry(key).or_insert(a);
                    }
                }
            }
        }
        let mut has_conflict = vec![false; records.len()];
        let mut needed_mhp = vec![false; records.len()];
        let mut has_unsafe = vec![false; records.len()];
        let mut candidates: Vec<(RacePair, Addr)> = Vec::new();
        for (&(i, j), &a) in &conflicting {
            has_conflict[i] = true;
            has_conflict[j] = true;
            if !locks_of[i].is_disjoint(&locks_of[j]) {
                continue; // mutual exclusion orders the pair
            }
            if mhp.ordered(&records[i], &records[j]) {
                needed_mhp[i] = true;
                needed_mhp[j] = true;
                continue;
            }
            has_unsafe[i] = true;
            has_unsafe[j] = true;
            candidates.push((RacePair::new(records[i].site, records[j].site), a));
        }
        let pairs = MayRacePairs::from_witnesses(candidates);

        // Upgrade concurrent non-atomic sites with no unsafe pair. Sites
        // the base layer already proved keep their reasons (they can
        // never carry an unsafe pair: every base proof implies each of
        // their conflicting pairs is lock- or thread- or phase-resolved).
        for (i, r) in records.iter().enumerate() {
            if r.atomic || classes[r.site.index()] != SiteClass::PotentiallyRacy {
                continue;
            }
            if has_unsafe[i] {
                continue;
            }
            let reason = if needed_mhp[i] {
                RaceFreeReason::OrderedByPhase
            } else if has_conflict[i] {
                RaceFreeReason::MustLocked
            } else {
                // No conflicting pair at all: finer than the base
                // layer's per-address view (e.g. a read whose only
                // cross-thread company is other reads, beside a
                // same-thread write).
                RaceFreeReason::ReadOnly
            };
            classes[r.site.index()] = SiteClass::RaceFree(reason);
        }

        // Redundant-check elimination over the survivors.
        let surviving =
            |classes: &[SiteClass], s: SiteId| classes[s.index()] == SiteClass::PotentiallyRacy;
        let redundant = flow::redundant_checks(p, &|s| surviving(&classes, s));
        for &(site, witness) in &redundant {
            classes[site.index()] = SiteClass::RaceFree(RaceFreeReason::RedundantCheck);
            witnesses[site.index()] = Some(witness);
        }

        // Benign atomics: lines still touched by surviving checks.
        // (Redundant sites' addresses equal their witnesses', so the
        // hot-line set is unchanged by the elision above.)
        let hot_lines: BTreeSet<_> = records
            .iter()
            .filter(|r| !r.atomic && surviving(&classes, r.site))
            .flat_map(|r| r.addrs.iter().map(|a| a.line()))
            .collect();
        for r in records.iter().filter(|r| r.atomic) {
            let benign = r.phase != Phase::Concurrent
                || r.addrs.iter().all(|a| !hot_lines.contains(&a.line()));
            if benign && classes[r.site.index()] == SiteClass::PotentiallyRacy {
                classes[r.site.index()] = SiteClass::RaceFree(RaceFreeReason::BenignAtomic);
            }
        }

        FlowAnalysis {
            table: SiteClassTable { classes, witnesses },
            pairs,
        }
    }
}

/// Convenience: true when an op kind is subject to slow-path checking at
/// all (plain reads/writes; atomics are never checked).
pub fn op_is_checkable(op: &Op) -> bool {
    op.is_data_access() && !matches!(op, Op::Rmw(_, _))
}

/// The duty-cycled production mode's watch set: every site that appears
/// in a [`MayRacePairs`] candidate pair and is not already proved
/// race-free by `table`. These are the sites a budgeted monitor keeps
/// "debug registers" on while idle — an access to one is the only event
/// that can re-arm full checking, because only these sites can ever
/// appear in a FastTrack report. Sorted ascending, deduplicated.
pub fn watch_sites(p: &Program, table: &SiteClassTable) -> Vec<SiteId> {
    let pairs = MayRacePairs::analyze(p);
    let mut sites: BTreeSet<SiteId> = BTreeSet::new();
    for pr in pairs.pairs() {
        for s in [pr.a, pr.b] {
            if !table.is_race_free(s) {
                sites.insert(s);
            }
        }
    }
    sites.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::{ProgramBuilder, ThreadId};

    fn class_of(p: &Program, t: &SiteClassTable, label: &str) -> SiteClass {
        t.class(p.site(label).expect("label exists"))
    }

    #[test]
    fn unlocked_shared_write_is_racy() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write_l(x, 1, "w0");
        b.thread(1).write_l(x, 2, "w1");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "w0"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "w1"), SiteClass::PotentiallyRacy);
        // The flow layer finds nothing to add: still racy.
        let t = SiteClassTable::analyze_flow(&p);
        assert_eq!(class_of(&p, &t, "w0"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "w1"), SiteClass::PotentiallyRacy);
    }

    #[test]
    fn common_lock_proves_race_freedom() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        for t in 0..2 {
            b.thread(t)
                .lock(l)
                .write_l(x, 1, &format!("w{t}"))
                .unlock(l);
        }
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "w0"),
            SiteClass::RaceFree(RaceFreeReason::Lockset)
        );
    }

    #[test]
    fn lock_held_in_only_one_thread_gives_no_credit() {
        // Adversarial: a lock protects nothing if the other thread skips it.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).lock(l).write_l(x, 1, "locked").unlock(l);
        b.thread(1).write_l(x, 2, "unlocked");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "locked"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "unlocked"), SiteClass::PotentiallyRacy);
        let t = SiteClassTable::analyze_flow(&p);
        assert_eq!(class_of(&p, &t, "locked"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "unlocked"), SiteClass::PotentiallyRacy);
    }

    #[test]
    fn different_locks_give_no_credit() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        let m = b.lock_id("m");
        b.thread(0).lock(l).write_l(x, 1, "wl").unlock(l);
        b.thread(1).lock(m).write_l(x, 2, "wm").unlock(m);
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "wl"), SiteClass::PotentiallyRacy);
        let t = SiteClassTable::analyze_flow(&p);
        assert_eq!(class_of(&p, &t, "wl"), SiteClass::PotentiallyRacy);
    }

    #[test]
    fn false_sharing_is_race_free_despite_shared_line() {
        // Two threads write distinct words of the same cache line: the
        // HTM aborts on this, but no data race exists and the analysis
        // proves it (the measurable win of Full pruning).
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let y = b.var_sharing_line(x, 8);
        assert_eq!(x.line(), y.line());
        b.thread(0).write_l(x, 1, "wx");
        b.thread(1).write_l(y, 2, "wy");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "wx"),
            SiteClass::RaceFree(RaceFreeReason::ThreadLocal)
        );
        assert_eq!(
            class_of(&p, &t, "wy"),
            SiteClass::RaceFree(RaceFreeReason::ThreadLocal)
        );
    }

    #[test]
    fn read_only_sharing_is_race_free() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).read_l(x, "r0");
        b.thread(1).read_l(x, "r1");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "r0"),
            SiteClass::RaceFree(RaceFreeReason::ReadOnly)
        );
    }

    #[test]
    fn prespawn_write_then_concurrent_reads() {
        // Adversarial ordering: the address is *written*, but only before
        // any other thread exists; the concurrent accesses are all reads.
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        b.thread(0)
            .write_l(x, 7, "init")
            .spawn(ThreadId(1))
            .spawn(ThreadId(2))
            .join(ThreadId(1))
            .join(ThreadId(2));
        b.thread(1).read_l(x, "r1");
        b.thread(2).read_l(x, "r2");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "init"),
            SiteClass::RaceFree(RaceFreeReason::SinglePhase)
        );
        assert_eq!(
            class_of(&p, &t, "r1"),
            SiteClass::RaceFree(RaceFreeReason::ReadOnly)
        );
    }

    #[test]
    fn concurrent_write_poisons_concurrent_readers() {
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        b.thread(0)
            .spawn(ThreadId(1))
            .spawn(ThreadId(2))
            .join(ThreadId(1))
            .join(ThreadId(2));
        b.thread(1).write_l(x, 1, "w");
        b.thread(2).read_l(x, "r");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "w"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "r"), SiteClass::PotentiallyRacy);
    }

    #[test]
    fn rmw_is_never_race_free() {
        // Even a thread-local RMW stays unpruned: its HTM conflict
        // footprint must survive Full-mode re-instrumentation.
        let mut b = ProgramBuilder::new(2);
        let c = b.var("counter");
        b.thread(0).rmw_l(c, 1, "inc0");
        b.thread(1).rmw_l(c, 1, "inc1");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "inc0"), SiteClass::PotentiallyRacy);
        // But the RMWs do not poison plain accesses: detectors never
        // check or record atomics, so a read beside them is still safe.
        let mut b = ProgramBuilder::new(2);
        let c = b.var("counter");
        b.thread(0).rmw(c, 1).read_l(c, "peek0");
        b.thread(1).rmw(c, 1).read_l(c, "peek1");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "peek0"),
            SiteClass::RaceFree(RaceFreeReason::ReadOnly)
        );
    }

    #[test]
    fn overlapping_array_footprints_are_racy_disjoint_are_not() {
        let mut b = ProgramBuilder::new(2);
        let arr = b.array("arr", 16);
        // Thread 0 writes elements 0..4, thread 1 writes elements 4..8:
        // element 4 overlaps.
        b.thread(0).loop_n(5, |tb| {
            tb.write_arr_l(arr, 8, 1, "lo");
        });
        b.thread(1).loop_n(4, |tb| {
            tb.write_arr_l(arr.offset(4 * 8), 8, 2, "hi");
        });
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "lo"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "hi"), SiteClass::PotentiallyRacy);

        // Truly disjoint halves: race-free.
        let mut b = ProgramBuilder::new(2);
        let arr = b.array("arr", 16);
        b.thread(0).loop_n(4, |tb| {
            tb.write_arr_l(arr, 8, 1, "lo");
        });
        b.thread(1).loop_n(4, |tb| {
            tb.write_arr_l(arr.offset(4 * 8), 8, 2, "hi");
        });
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "lo"),
            SiteClass::RaceFree(RaceFreeReason::ThreadLocal)
        );
        assert_eq!(
            class_of(&p, &t, "hi"),
            SiteClass::RaceFree(RaceFreeReason::ThreadLocal)
        );
    }

    #[test]
    fn lock_drifting_loop_disables_lockset_credit() {
        // Adversarial: thread 0's lock depth drifts across iterations, so
        // the summary drops the lock and the classifier must not prune.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).loop_n(3, |tb| {
            tb.lock(l).write_l(x, 1, "drift");
        });
        b.thread(1).lock(l).write_l(x, 2, "clean").unlock(l);
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "drift"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "clean"), SiteClass::PotentiallyRacy);
    }

    #[test]
    fn flow_lockset_fixpoint_recovers_the_drifting_loop() {
        // The same program under the flow-sensitive layer: the fixpoint
        // proves `l` held at the in-loop write, and pairwise lock credit
        // resolves both sites.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).loop_n(3, |tb| {
            tb.lock(l).write_l(x, 1, "drift");
        });
        b.thread(1).lock(l).write_l(x, 2, "clean").unlock(l);
        let p = b.build();
        let t = SiteClassTable::analyze_flow(&p);
        assert_eq!(
            class_of(&p, &t, "drift"),
            SiteClass::RaceFree(RaceFreeReason::MustLocked)
        );
        assert_eq!(
            class_of(&p, &t, "clean"),
            SiteClass::RaceFree(RaceFreeReason::MustLocked)
        );
        assert!(MayRacePairs::analyze(&p).is_empty());
    }

    #[test]
    fn barrier_phases_prove_cross_thread_ordering() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let bar = b.barrier_id("bar");
        b.thread(0).write_l(x, 1, "producer").barrier(bar);
        b.thread(1).barrier(bar).read_l(x, "consumer");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "producer"), SiteClass::PotentiallyRacy);
        let t = SiteClassTable::analyze_flow(&p);
        assert_eq!(
            class_of(&p, &t, "producer"),
            SiteClass::RaceFree(RaceFreeReason::OrderedByPhase)
        );
        assert_eq!(
            class_of(&p, &t, "consumer"),
            SiteClass::RaceFree(RaceFreeReason::OrderedByPhase)
        );
    }

    #[test]
    fn redundant_recheck_is_elided_with_a_witness() {
        // Thread 0 writes then re-reads x in one sync-free span; thread 1
        // races on x. The write survives as the witness; the re-read's
        // check detects nothing the write's would not.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write_l(x, 1, "w").read_l(x, "r");
        b.thread(1).write_l(x, 2, "other");
        let p = b.build();
        let t = SiteClassTable::analyze_flow(&p);
        assert_eq!(class_of(&p, &t, "w"), SiteClass::PotentiallyRacy);
        assert_eq!(
            class_of(&p, &t, "r"),
            SiteClass::RaceFree(RaceFreeReason::RedundantCheck)
        );
        assert_eq!(t.witness_of(p.site("r").unwrap()), p.site("w"));
        assert_eq!(t.witness_of(p.site("w").unwrap()), None);
        // Both endpoints still appear in the candidate set: the pairs
        // are generated before the redundancy pass.
        let mrp = MayRacePairs::analyze(&p);
        assert!(mrp.contains(p.site("r").unwrap(), p.site("other").unwrap()));
        assert!(mrp.contains(p.site("w").unwrap(), p.site("other").unwrap()));
    }

    #[test]
    fn zero_conflict_read_beside_same_thread_write_is_read_only() {
        // r0's only cross-thread company on x is another read: the
        // pairwise view prunes it (ReadOnly) even though the per-address
        // view is poisoned by the same-thread write.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0)
            .write_l(x, 1, "w0")
            .syscall(txrace_sim::SyscallKind::Io);
        b.thread(0).read_l(x, "r0");
        b.thread(1).read_l(x, "r1");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "r0"), SiteClass::PotentiallyRacy);
        let t = SiteClassTable::analyze_flow(&p);
        assert_eq!(
            class_of(&p, &t, "r0"),
            SiteClass::RaceFree(RaceFreeReason::ReadOnly)
        );
        // The write itself still races with nothing (r1 is a read? no —
        // w0 vs r1 IS conflicting and unresolved): it stays racy.
        assert_eq!(class_of(&p, &t, "w0"), SiteClass::PotentiallyRacy);
        assert_eq!(class_of(&p, &t, "r1"), SiteClass::PotentiallyRacy);
    }

    #[test]
    fn cold_line_atomic_is_benign_hot_line_atomic_is_not() {
        // Shared counter on its own line beside an unrelated racy pair:
        // the RMWs lose their HTM footprint under flow mode only.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let c = b.var("counter");
        assert_ne!(x.line(), c.line());
        b.thread(0).rmw_l(c, 1, "inc0").write_l(x, 1, "w0");
        b.thread(1).rmw_l(c, 1, "inc1").write_l(x, 2, "w1");
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(class_of(&p, &t, "inc0"), SiteClass::PotentiallyRacy);
        let t = SiteClassTable::analyze_flow(&p);
        assert_eq!(
            class_of(&p, &t, "inc0"),
            SiteClass::RaceFree(RaceFreeReason::BenignAtomic)
        );
        assert_eq!(
            class_of(&p, &t, "inc1"),
            SiteClass::RaceFree(RaceFreeReason::BenignAtomic)
        );
        assert_eq!(class_of(&p, &t, "w0"), SiteClass::PotentiallyRacy);

        // Same program, but the counter shares the racy pair's line:
        // stripping the RMW would strip a line the surviving checks
        // still need aborts on — it must stay.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let c = b.var_sharing_line(x, 8);
        b.thread(0).rmw_l(c, 1, "inc0").write_l(x, 1, "w0");
        b.thread(1).rmw_l(c, 1, "inc1").write_l(x, 2, "w1");
        let p = b.build();
        let t = SiteClassTable::analyze_flow(&p);
        assert_eq!(class_of(&p, &t, "inc0"), SiteClass::PotentiallyRacy);
    }

    #[test]
    fn flow_layer_only_adds_verdicts() {
        // Every base-layer verdict survives identically under the flow
        // layer on a program exercising all base reasons.
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let l = b.lock_id("l");
        b.thread(0)
            .write(z, 7)
            .spawn(ThreadId(1))
            .spawn(ThreadId(2))
            .join(ThreadId(1))
            .join(ThreadId(2));
        b.thread(1).read(x).lock(l).write(y, 1).unlock(l);
        b.thread(2).read(x).lock(l).write(y, 2).unlock(l);
        b.thread(2).loop_n(0, |tb| {
            tb.write(x, 9);
        });
        let p = b.build();
        let base = SiteClassTable::analyze(&p);
        let flow = SiteClassTable::analyze_flow(&p);
        for s in 0..p.site_count() {
            let site = SiteId(s);
            if let SiteClass::RaceFree(r) = base.class(site) {
                assert_eq!(flow.class(site), SiteClass::RaceFree(r), "site {s}");
            }
        }
    }

    #[test]
    fn dead_code_and_marker_sites() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).loop_n(0, |tb| {
            tb.write_l(x, 1, "dead");
        });
        b.thread(1).write(x, 2);
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        assert_eq!(
            class_of(&p, &t, "dead"),
            SiteClass::RaceFree(RaceFreeReason::Dead)
        );
        // Out-of-range (marker) sites are never pruned.
        assert!(!t.is_race_free(SiteId(p.site_count() + 3)));
    }

    #[test]
    fn stats_count_by_reason() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let l = b.lock_id("l");
        b.thread(0).read_l(x, "rx").lock(l).write(y, 1).unlock(l);
        b.thread(1).read(x).lock(l).write(y, 2).unlock(l);
        let p = b.build();
        let t = SiteClassTable::analyze(&p);
        let st = t.stats(&p);
        assert_eq!(st.data_sites, 4);
        assert_eq!(st.race_free, 4);
        assert_eq!(st.read_only, 2);
        assert_eq!(st.lockset, 2);
        assert!((st.pruned_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pruned_fraction_is_trip_weighted() {
        // One pruned one-shot read, one racy write in a 9-trip loop:
        // half the sites are pruned but only 1 of 10 dynamic accesses.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        b.thread(0).read(y);
        b.thread(0).loop_n(9, |tb| {
            tb.write(x, 1);
        });
        b.thread(1).loop_n(9, |tb| {
            tb.write(x, 2);
        });
        let p = b.build();
        let st = SiteClassTable::analyze(&p).stats(&p);
        assert_eq!(st.data_sites, 3);
        assert_eq!(st.race_free, 1);
        assert_eq!(st.dyn_data_ops, 19);
        assert_eq!(st.dyn_race_free, 1);
        assert!((st.static_pruned_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((st.pruned_fraction() - 1.0 / 19.0).abs() < 1e-12);
    }
}
