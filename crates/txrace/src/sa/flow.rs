//! The dataflow framework: per-thread control-flow graphs over the
//! structured IR, a worklist fixpoint engine, and the two flow-sensitive
//! analyses built on them.
//!
//! * **Must-lockset** ([`must_locksets`]): a forward dataflow through
//!   `Lock`/`Unlock` with *intersection* as the meet, run to fixpoint
//!   over loop back edges. Where the summary pass's single walk must
//!   strip every lock whose depth drifts across a loop body (it only
//!   sees the first iteration's state), the fixpoint computes the locks
//!   held on *every* path — so `loop { lock(l); write(x) }` correctly
//!   proves `l` held at the write.
//! * **Redundant-check elimination** ([`redundant_checks`]): a forward
//!   availability analysis that finds re-checks of an address already
//!   checked earlier in the same synchronization-free, loop-free span.
//!   Eliding the later check loses nothing: with no synchronization
//!   between witness and re-check, no happens-before edge can separate
//!   them, so any race detectable at the re-check is detectable at the
//!   witness (possibly reported with the witness's site id — the
//!   *witness mapping*, exposed via
//!   [`SiteClassTable::witness_of`](super::SiteClassTable::witness_of)).
//!
//! **Termination.** The must-lockset state is a finite map from locks to
//! hold depths. After a node's first visit, its input only ever
//! *decreases* pointwise (the meet takes per-lock minima over more
//! predecessor states), the transfer function is monotone (increment and
//! saturating decrement both preserve `<=`), and depths are bounded
//! below by zero — so every node's state strictly decreases at most a
//! finite number of times and the worklist drains. The availability
//! analysis is a single structural walk (facts never cross a loop edge)
//! and needs no fixpoint at all.

use std::collections::{BTreeMap, BTreeSet};

use txrace_sim::{LockId, Op, Program, SiteId, Stmt, ThreadId};

/// One node of a thread's flow graph: a single static op occurrence.
#[derive(Debug, Clone)]
pub(super) struct FlowNode {
    /// The op's static site.
    pub site: SiteId,
    /// The op itself.
    pub op: Op,
    /// Predecessor node indices (loop back edges included).
    pub preds: Vec<u32>,
    /// True if thread entry reaches this node directly (no op before it
    /// on some path). Needed to seed the dataflow: an entry node whose
    /// only *listed* preds are loop back edges would otherwise wait
    /// forever for a predecessor to be visited first.
    pub entry: bool,
}

/// The control-flow graph of one thread, derived from its structured
/// statement tree: straight-line ops chain, a loop with `trips > 1` adds
/// a back edge from its body's exit to its body's entry, and zero-trip
/// loops contribute no nodes at all (dead code, matching the summary
/// pass). Node order is execution order of the first iteration, so
/// indices form a reverse postorder modulo back edges.
#[derive(Debug)]
pub(super) struct ThreadGraph {
    /// Nodes in first-iteration execution order.
    pub nodes: Vec<FlowNode>,
}

impl ThreadGraph {
    /// Builds the graph for thread `t` of `p`.
    pub fn build(p: &Program, t: ThreadId) -> Self {
        let mut nodes = Vec::new();
        let _ = build_list(p.thread(t), Vec::new(), &mut nodes);
        ThreadGraph { nodes }
    }
}

/// Appends `stmts` to `nodes` with `incoming` as the entry frontier.
/// Returns `(entry_nodes, exit_frontier)`; `entry_nodes` is empty when
/// the statement list creates no nodes (all-dead code).
fn build_list(
    stmts: &[Stmt],
    incoming: Vec<u32>,
    nodes: &mut Vec<FlowNode>,
) -> (Vec<u32>, Vec<u32>) {
    let mut first: Vec<u32> = Vec::new();
    let mut cur = incoming;
    for s in stmts {
        match s {
            Stmt::Op { site, op } => {
                let id = nodes.len() as u32;
                let entry = cur.is_empty();
                nodes.push(FlowNode {
                    site: *site,
                    op: *op,
                    preds: std::mem::replace(&mut cur, vec![id]),
                    entry,
                });
                if first.is_empty() {
                    first.push(id);
                }
            }
            Stmt::Loop { trips: 0, .. } => {}
            Stmt::Loop { trips, body, .. } => {
                let (entry, exit) = build_list(body, cur.clone(), nodes);
                if entry.is_empty() {
                    continue; // body was all-dead: no nodes, state flows through
                }
                if *trips > 1 {
                    // Back edge: each body-exit node feeds the body entry.
                    for &e in &entry {
                        for &x in &exit {
                            nodes[e as usize].preds.push(x);
                        }
                    }
                }
                cur = exit;
                if first.is_empty() {
                    first = entry;
                }
            }
        }
    }
    (first, cur)
}

/// Lock-hold depths: the dataflow value. Absent means depth zero.
type LockDepths = BTreeMap<LockId, u32>;

/// Per-lock minimum of two depth maps (the meet: a lock is must-held
/// only if held on both inputs).
fn meet(a: &LockDepths, b: &LockDepths) -> LockDepths {
    a.iter()
        .filter_map(|(l, &da)| {
            let d = da.min(b.get(l).copied().unwrap_or(0));
            (d > 0).then_some((*l, d))
        })
        .collect()
}

/// Applies one op to the lock state.
fn transfer(op: &Op, state: &mut LockDepths) {
    match op {
        Op::Lock(l) => *state.entry(*l).or_insert(0) += 1,
        Op::Unlock(l) => {
            // Unbalanced unlocks (flagged by the lint) saturate at zero.
            if let Some(d) = state.get_mut(l) {
                *d = d.saturating_sub(1);
                if *d == 0 {
                    state.remove(l);
                }
            }
        }
        // Everything else holds no lock. In particular channel send/recv
        // establishes a happens-before edge but confers no mutual
        // exclusion, so it must NOT enter the must-lockset — two sites
        // "protected" only by talking on the same channel still race.
        _ => {}
    }
}

/// The flow-sensitive must-lockset analysis: for every data-access site
/// of `p`, the set of locks provably held at *every* dynamic occurrence.
/// Sites under zero-trip loops are absent (dead code).
pub(super) fn must_locksets(p: &Program) -> BTreeMap<SiteId, BTreeSet<LockId>> {
    let mut out = BTreeMap::new();
    for t in 0..p.thread_count() {
        let g = ThreadGraph::build(p, ThreadId(t as u32));
        if g.nodes.is_empty() {
            continue;
        }
        let n = g.nodes.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in g.nodes.iter().enumerate() {
            for &pr in &node.preds {
                succs[pr as usize].push(i as u32);
            }
        }
        // ins[i] = lock state on entry to node i; None = not yet visited.
        let mut ins: Vec<Option<LockDepths>> = vec![None; n];
        let mut outs: Vec<Option<LockDepths>> = vec![None; n];
        // Index order is reverse postorder modulo back edges, so one
        // pass reaches near-fixpoint; back edges re-queue what's left.
        let mut work: Vec<u32> = (0..n as u32).collect();
        while let Some(i) = work.pop() {
            let node = &g.nodes[i as usize];
            // Meet over thread entry (nothing held) if it reaches this
            // node, plus every *visited* predecessor; unvisited preds
            // are top (no constraint yet) and re-queue us later.
            let mut acc: Option<LockDepths> = node.entry.then(LockDepths::new);
            for &pr in &node.preds {
                if let Some(o) = &outs[pr as usize] {
                    acc = Some(match acc {
                        None => o.clone(),
                        Some(a) => meet(&a, o),
                    });
                }
            }
            let Some(input) = acc else {
                continue; // nothing reaching it visited yet
            };
            if ins[i as usize].as_ref() == Some(&input) {
                continue; // no change: successors already up to date
            }
            let mut o = input.clone();
            transfer(&node.op, &mut o);
            ins[i as usize] = Some(input);
            let changed = outs[i as usize].as_ref() != Some(&o);
            outs[i as usize] = Some(o);
            if changed {
                work.extend(succs[i as usize].iter().copied());
            }
        }
        for (i, node) in g.nodes.iter().enumerate() {
            if !node.op.is_data_access() {
                continue;
            }
            let held = ins[i]
                .as_ref()
                .map(|m| m.keys().copied().collect())
                .unwrap_or_default();
            out.insert(node.site, held);
        }
    }
    out
}

/// One available-check fact: `witness` already checked this address in
/// the current sync-free, loop-free span; `writes` is the witness's
/// access kind.
struct Fact {
    witness: SiteId,
    writes: bool,
}

/// Finds redundant checks: scalar, non-atomic sites whose address was
/// already checked by a *surviving* site (`checked(site)` true) earlier
/// in the same synchronization-free, loop-free straight-line span, with
/// a strong-enough witness (`witness.writes || !site.writes` — a read
/// can witness a later read, only a write can witness a later write).
///
/// Spans are cut at every sync op and syscall (region boundaries: new
/// happens-before edges can appear there) *and* at loop edges (the
/// loop-cut optimization may split a transaction at a back edge, so a
/// fact is only trusted within one iteration's straight-line body).
/// Returns `(redundant_site, witness_site)` pairs, in program order.
pub(super) fn redundant_checks(
    p: &Program,
    checked: &dyn Fn(SiteId) -> bool,
) -> Vec<(SiteId, SiteId)> {
    let mut out = Vec::new();
    for t in 0..p.thread_count() {
        let mut state: BTreeMap<txrace_sim::Addr, Fact> = BTreeMap::new();
        walk_avail(p.thread(ThreadId(t as u32)), &mut state, checked, &mut out);
    }
    out
}

fn walk_avail(
    stmts: &[Stmt],
    state: &mut BTreeMap<txrace_sim::Addr, Fact>,
    checked: &dyn Fn(SiteId) -> bool,
    out: &mut Vec<(SiteId, SiteId)>,
) {
    for s in stmts {
        match s {
            Stmt::Op { site, op } => match op {
                Op::Read(_) | Op::Write(_, _) => {
                    let a = op.access_addr().expect("scalar access has an address");
                    let w = op.is_write_access();
                    if !checked(*site) {
                        // Already pruned by another reason (or a marker):
                        // neither a redundancy candidate nor a witness.
                        continue;
                    }
                    if let Some(f) = state.get(&a) {
                        if f.writes || !w {
                            // Covered: elide, and keep the original
                            // witness (its coverage subsumes this one's).
                            out.push((*site, f.witness));
                            continue;
                        }
                    }
                    state.insert(
                        a,
                        Fact {
                            witness: *site,
                            writes: w,
                        },
                    );
                }
                // Atomics are never checked and create no happens-before
                // edges in the detectors: facts flow straight through.
                // Array accesses are multi-address and excluded from the
                // pass entirely; Compute is inert.
                Op::Rmw(_, _) | Op::ReadArr { .. } | Op::WriteArr { .. } | Op::Compute(_) => {}
                // Everything else — sync ops (including channel send and
                // receive, which acquire/publish happens-before edges),
                // syscalls, and (in already-instrumented programs)
                // transaction markers — starts a new span.
                _ => state.clear(),
            },
            Stmt::Loop { trips: 0, .. } => {}
            Stmt::Loop { body, .. } => {
                // Facts never cross a loop edge: the loop-cut pass may
                // split transactions at the back edge, so availability
                // holds only within one iteration's straight-line body.
                state.clear();
                let mut inner = BTreeMap::new();
                walk_avail(body, &mut inner, checked, out);
                state.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::ProgramBuilder;

    fn locks_at(p: &Program, label: &str) -> BTreeSet<LockId> {
        must_locksets(p)
            .get(&p.site(label).expect("label exists"))
            .cloned()
            .unwrap_or_default()
    }

    #[test]
    fn graph_back_edges_only_for_multi_trip_loops() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(1, |tb| {
            tb.read(x).write(x, 1);
        });
        b.thread(0).loop_n(3, |tb| {
            tb.read(x).write(x, 2);
        });
        let g = ThreadGraph::build(&b.build(), ThreadId(0));
        assert_eq!(g.nodes.len(), 4);
        // trips=1 loop: pure chain. trips=3 loop: entry node (index 2)
        // has the chain pred and the body-exit back edge.
        assert_eq!(g.nodes[1].preds, vec![0]);
        assert_eq!(g.nodes[2].preds, vec![1, 3]);
        assert_eq!(g.nodes[3].preds, vec![2]);
    }

    #[test]
    fn fixpoint_keeps_lock_through_reacquiring_loop() {
        // The summary pass must strip `l` here (its depth drifts across
        // iterations); the fixpoint proves it held at the write anyway:
        // every path to the write passes the Lock first.
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).loop_n(3, |tb| {
            tb.lock(l).write_l(x, 1, "w");
        });
        let p = b.build();
        assert!(locks_at(&p, "w").contains(&l));
    }

    #[test]
    fn lock_released_mid_loop_gives_no_credit_after_unlock() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).loop_n(3, |tb| {
            tb.lock(l)
                .write_l(x, 1, "inside")
                .unlock(l)
                .write_l(x, 2, "outside");
        });
        let p = b.build();
        assert!(locks_at(&p, "inside").contains(&l));
        assert!(locks_at(&p, "outside").is_empty());
    }

    #[test]
    fn meet_drops_lock_not_held_on_entry_path() {
        // Before the loop the write executes once with no lock: the meet
        // of {entry, back-edge} states must not claim `l`.
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).loop_n(3, |tb| {
            tb.write_l(x, 1, "w").lock(l);
        });
        let p = b.build();
        assert!(locks_at(&p, "w").is_empty());
    }

    #[test]
    fn dead_loops_contribute_no_nodes_or_state() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).lock(l);
        b.thread(0).loop_n(0, |tb| {
            tb.unlock(l).write_l(x, 9, "dead");
        });
        b.thread(0).write_l(x, 1, "after").unlock(l);
        let p = b.build();
        let locks = must_locksets(&p);
        assert!(!locks.contains_key(&p.site("dead").unwrap()));
        // The dead unlock must not leak into the live state.
        assert!(locks_at(&p, "after").contains(&l));
    }

    #[test]
    fn redundancy_within_a_straight_span() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        let y = b.var("y");
        b.thread(0)
            .write_l(x, 1, "wx") // witness
            .read_l(y, "ry") // other address: no interference
            .read_l(x, "rx") // read after write: covered
            .write_l(x, 2, "wx2"); // write after write: covered
        let p = b.build();
        let red = redundant_checks(&p, &|_| true);
        let names: Vec<(&str, &str)> = red
            .iter()
            .map(|&(s, w)| (p.label_of(s).expect("label"), p.label_of(w).expect("label")))
            .collect();
        assert_eq!(names, vec![("rx", "wx"), ("wx2", "wx")]);
    }

    #[test]
    fn read_witness_cannot_cover_a_write() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).read_l(x, "r").write_l(x, 1, "w");
        let p = b.build();
        let red = redundant_checks(&p, &|_| true);
        assert!(red.is_empty(), "a read must not witness a later write");
        // But the write now witnesses later accesses.
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0)
            .read_l(x, "r")
            .write_l(x, 1, "w")
            .read_l(x, "r2");
        let p = b.build();
        let red = redundant_checks(&p, &|_| true);
        assert_eq!(red.len(), 1);
        assert_eq!(p.label_of(red[0].0), Some("r2"));
        assert_eq!(p.label_of(red[0].1), Some("w"));
    }

    #[test]
    fn sync_and_loops_cut_availability_spans() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0)
            .write_l(x, 1, "w")
            .lock(l)
            .read_l(x, "after_sync")
            .unlock(l);
        b.thread(0).loop_n(4, |tb| {
            tb.read_l(x, "in_loop");
        });
        b.thread(0).read_l(x, "after_loop");
        let p = b.build();
        let red = redundant_checks(&p, &|_| true);
        assert!(
            red.is_empty(),
            "facts must not cross sync ops or loop edges: {red:?}"
        );
        // Within one iteration's body, availability works as usual.
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(4, |tb| {
            tb.read_l(x, "first").read_l(x, "second");
        });
        let p = b.build();
        let red = redundant_checks(&p, &|_| true);
        assert_eq!(red.len(), 1);
        assert_eq!(p.label_of(red[0].0), Some("second"));
    }

    #[test]
    fn unchecked_sites_neither_witness_nor_elide() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0)
            .read_l(x, "pruned") // not checked: cannot witness
            .read_l(x, "live") // the real witness
            .read_l(x, "covered");
        let p = b.build();
        let pruned = p.site("pruned").unwrap();
        let red = redundant_checks(&p, &|s| s != pruned);
        assert_eq!(red.len(), 1);
        assert_eq!(p.label_of(red[0].0), Some("covered"));
        assert_eq!(p.label_of(red[0].1), Some("live"));
    }

    #[test]
    fn atomics_flow_through_without_killing_facts() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        let c = b.var("c");
        b.thread(0).read_l(x, "r1").rmw(c, 1).read_l(x, "r2");
        let p = b.build();
        let red = redundant_checks(&p, &|_| true);
        assert_eq!(red.len(), 1, "an RMW creates no HB edge: fact survives");
    }
}
