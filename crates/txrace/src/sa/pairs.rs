//! The static race-pair candidate generator: every cross-thread pair of
//! sites the flow-sensitive analysis could not prove non-racing, as a
//! closed-form *may-race* set.
//!
//! The set is a sound over-approximation of the dynamic truth: any race
//! FastTrack can report on any schedule is between two sites forming a
//! candidate pair (the soundness suite checks exactly this inclusion,
//! and [`MayRacePairs::confirm_by_exploration`] checks it exhaustively
//! over every interleaving of small programs). The reverse is not true —
//! a candidate can be ordered by synchronization the static analyses do
//! not model (condition variables, say) and never manifest.
//!
//! Candidates are generated *before* redundant-check elimination, so a
//! pair whose endpoint's check was elided in favor of an earlier witness
//! still appears under its own site id.

use std::collections::{BTreeMap, BTreeSet};

use txrace_hb::{RacePair, RaceSet, ShadowMode};
use txrace_sim::explore::{explore_until, ExploreLimits};
use txrace_sim::{Addr, Live, Program, SiteId};

use crate::baselines::TsanConsumer;
use crate::cost::CostModel;

/// The statically generated may-race candidate pairs of one program.
#[derive(Debug, Clone, Default)]
pub struct MayRacePairs {
    /// One witness address per pair (the first overlapping footprint
    /// address found).
    by_pair: BTreeMap<RacePair, Addr>,
}

impl MayRacePairs {
    /// Runs the full flow-sensitive pipeline on `p` and returns its
    /// candidate set (equivalent to
    /// [`FlowAnalysis::run`](super::FlowAnalysis::run)`(p).pairs`).
    pub fn analyze(p: &Program) -> Self {
        super::FlowAnalysis::run(p).pairs
    }

    /// Builds the set from `(pair, witness address)` tuples; the first
    /// witness per pair is kept.
    pub(super) fn from_witnesses(iter: impl IntoIterator<Item = (RacePair, Addr)>) -> Self {
        let mut by_pair = BTreeMap::new();
        for (pr, a) in iter {
            by_pair.entry(pr).or_insert(a);
        }
        MayRacePairs { by_pair }
    }

    /// The candidate pairs, ascending.
    pub fn pairs(&self) -> impl Iterator<Item = RacePair> + '_ {
        self.by_pair.keys().copied()
    }

    /// A statically chosen overlapping address for `pair`, if it is a
    /// candidate.
    pub fn witness_addr(&self, pair: RacePair) -> Option<Addr> {
        self.by_pair.get(&pair).copied()
    }

    /// Whether `(x, y)` is a candidate (order-insensitive).
    pub fn contains(&self, x: SiteId, y: SiteId) -> bool {
        self.by_pair.contains_key(&RacePair::new(x, y))
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.by_pair.len()
    }

    /// True when no pair survived the static pruning.
    pub fn is_empty(&self) -> bool {
        self.by_pair.is_empty()
    }

    /// True iff every pair of `races` is a candidate — the soundness
    /// inclusion the generator promises for dynamically observed races.
    pub fn covers(&self, races: &RaceSet) -> bool {
        races.pairs().all(|pr| self.by_pair.contains_key(&pr))
    }

    /// Exhaustively explores `p`'s interleavings with an exact FastTrack
    /// detector, classifying each candidate as dynamically *confirmed*
    /// or never witnessed, and flagging any detected race that escaped
    /// the candidate set (a soundness violation — always empty for
    /// programs within the analyses' model). Exploration stops early
    /// once every candidate is confirmed, or on the first escape.
    ///
    /// `p` must be the same (uninstrumented) program the set was built
    /// from, and small enough to explore — see [`ExploreLimits`].
    pub fn confirm_by_exploration(&self, p: &Program, limits: ExploreLimits) -> Confirmation {
        let threads = p.thread_count();
        let mut confirmed: BTreeSet<RacePair> = BTreeSet::new();
        let mut escaped: BTreeSet<RacePair> = BTreeSet::new();
        let stats = explore_until(
            p,
            || {
                Live::new(TsanConsumer::full(
                    threads,
                    CostModel::default(),
                    1.0,
                    ShadowMode::Exact,
                ))
            },
            |_, rt, _| {
                for pr in rt.consumer().races().pairs() {
                    if self.by_pair.contains_key(&pr) {
                        confirmed.insert(pr);
                    } else {
                        escaped.insert(pr);
                    }
                }
                !escaped.is_empty() || confirmed.len() == self.by_pair.len()
            },
            limits,
        );
        let unwitnessed = self.pairs().filter(|pr| !confirmed.contains(pr)).collect();
        Confirmation {
            confirmed,
            unwitnessed,
            escaped,
            paths: stats.paths,
            complete: stats.complete,
        }
    }
}

/// Outcome of [`MayRacePairs::confirm_by_exploration`].
#[derive(Debug, Clone)]
pub struct Confirmation {
    /// Candidates witnessed as real FastTrack races on some schedule.
    pub confirmed: BTreeSet<RacePair>,
    /// Candidates never witnessed. Either the exploration was cut short
    /// (`complete == false` without an early stop) or the pair is
    /// ordered by synchronization the static analyses do not model.
    pub unwitnessed: BTreeSet<RacePair>,
    /// Dynamic races *not* in the candidate set. Non-empty means the
    /// static generator was unsound for this program.
    pub escaped: BTreeSet<RacePair>,
    /// Interleavings explored.
    pub paths: u64,
    /// Whether the whole schedule space was covered.
    pub complete: bool,
}

impl Confirmation {
    /// True when every candidate was witnessed and nothing escaped.
    pub fn exact(&self) -> bool {
        self.unwitnessed.is_empty() && self.escaped.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::ProgramBuilder;

    fn pair(p: &Program, a: &str, b: &str) -> RacePair {
        RacePair::new(p.site(a).unwrap(), p.site(b).unwrap())
    }

    #[test]
    fn racy_pair_is_generated_and_confirmed() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write_l(x, 1, "w0");
        b.thread(1).write_l(x, 2, "w1");
        let p = b.build();
        let mrp = MayRacePairs::analyze(&p);
        assert_eq!(mrp.len(), 1);
        assert!(mrp.contains(p.site("w0").unwrap(), p.site("w1").unwrap()));
        assert_eq!(mrp.witness_addr(pair(&p, "w0", "w1")), Some(x));
        let c = mrp.confirm_by_exploration(&p, ExploreLimits::default());
        assert!(c.exact(), "{c:?}");
        assert_eq!(c.confirmed.len(), 1);
    }

    #[test]
    fn locked_program_generates_no_pairs() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        for t in 0..2 {
            b.thread(t).lock(l).write(x, t as u64).unlock(l);
        }
        let p = b.build();
        let mrp = MayRacePairs::analyze(&p);
        assert!(mrp.is_empty());
        let c = mrp.confirm_by_exploration(&p, ExploreLimits::default());
        assert!(c.escaped.is_empty());
        // With no candidates, the early-stop condition holds on the very
        // first path: confirmed (0) == candidates (0).
        assert_eq!(c.paths, 1);
    }

    #[test]
    fn signal_wait_ordering_leaves_an_unwitnessed_candidate() {
        // The static analyses do not model signal/wait edges: the pair
        // is generated (may-race) but never manifests — exploration
        // proves it unwitnessed without any escape.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let c = b.cond_id("c");
        b.thread(0).write_l(x, 1, "w0").signal(c);
        b.thread(1).wait(c).write_l(x, 2, "w1");
        let p = b.build();
        let mrp = MayRacePairs::analyze(&p);
        assert_eq!(mrp.len(), 1);
        let conf = mrp.confirm_by_exploration(&p, ExploreLimits::default());
        assert!(conf.complete);
        assert!(conf.escaped.is_empty());
        assert_eq!(conf.unwitnessed.len(), 1);
        assert_eq!(
            conf.unwitnessed.iter().next().copied(),
            Some(pair(&p, "w0", "w1"))
        );
    }

    #[test]
    fn covers_matches_dynamic_race_sets() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write_l(x, 1, "w0");
        b.thread(1).read_l(x, "r1");
        let p = b.build();
        let mrp = MayRacePairs::analyze(&p);
        let mut races = RaceSet::new();
        assert!(mrp.covers(&races), "empty set is trivially covered");
        races.record(txrace_hb::RaceReport {
            addr: x,
            prior: txrace_hb::AccessInfo {
                site: p.site("w0").unwrap(),
                thread: txrace_sim::ThreadId(0),
                kind: txrace_hb::AccessKind::Write,
            },
            current: txrace_hb::AccessInfo {
                site: p.site("r1").unwrap(),
                thread: txrace_sim::ThreadId(1),
                kind: txrace_hb::AccessKind::Read,
            },
        });
        assert!(mrp.covers(&races));
    }
}
