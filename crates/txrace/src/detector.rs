//! The public façade: configure a detection scheme, run a program, get a
//! [`RunOutcome`] with races, transaction statistics, and the cycle
//! breakdown.

use txrace_hb::{RaceSet, ShadowMode};
use txrace_htm::{HtmConfig, HtmStats};
use txrace_sim::{
    EventLog, FairSched, InterruptModel, Live, Machine, Program, RandomSched, RoundRobin,
    RunResult, RunStatus, Scheduler, StepLimit, TraceConsumer,
};

use crate::baselines::TsanConsumer;
use crate::control::{AdaptiveController, Knobs, ProductionMode, Telemetry};
use crate::cost::{CostModel, CycleBreakdown};
use crate::engine::{EngineConfig, EngineStats, TxRaceEngine};
use crate::instrument::{instrument, instrument_pruned, InstrumentConfig, InstrumentedProgram};
use crate::loopcut::{LoopcutMode, LoopcutProfile};
use crate::sa::{SiteClassTable, StaticPruneMode};

/// TxRace-specific options. Runtime tunables (the `K` threshold, the
/// slow-path sampling rate, the loop-cut initial threshold, the prune
/// mode) live in [`RunConfig::knobs`], not here.
#[derive(Debug, Clone)]
pub struct TxRaceOpts {
    /// Loop-cut scheme (`NoOpt` / `Dyn` / `Prof`).
    pub loopcut: LoopcutMode,
    /// Transient-abort retries before the slow path.
    pub max_retries: u32,
    /// Profile for [`LoopcutMode::Prof`]; auto-collected (one Dyn run on a
    /// derived seed) when absent.
    pub profile: Option<LoopcutProfile>,
    /// Track happens-before of sync ops on the fast path (§5). Disable
    /// only for the ablation study — false positives appear.
    pub track_fast_sync: bool,
    /// Extension: conflict-address-directed slow path (requires
    /// [`txrace_htm::HtmConfig::report_conflict_address`]).
    pub conflict_hints: bool,
}

impl Default for TxRaceOpts {
    fn default() -> Self {
        TxRaceOpts {
            loopcut: LoopcutMode::Dyn,
            max_retries: 3,
            profile: None,
            track_fast_sync: true,
            conflict_hints: false,
        }
    }
}

/// Which detector to run.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// Full software happens-before checking (the TSan baseline).
    Tsan,
    /// TSan with per-access sampling at the given rate in `[0, 1]`.
    TsanSampling {
        /// Fraction of dynamic accesses checked.
        rate: f64,
    },
    /// The TxRace two-phase detector.
    TxRace(TxRaceOpts),
    /// TxRace + flow-sensitive static pruning under an adaptive overhead
    /// budget: the deploy-everywhere configuration. Runs with epoch
    /// telemetry and the [`AdaptiveController`] re-tuning the knobs
    /// online; the outcome carries the telemetry stream.
    Production(ProductionMode),
}

impl Scheme {
    /// TxRace with default options (Dyn loop-cut, `K = 5`).
    pub fn txrace() -> Scheme {
        Scheme::TxRace(TxRaceOpts::default())
    }

    /// TxRace with a specific loop-cut mode.
    pub fn txrace_loopcut(mode: LoopcutMode) -> Scheme {
        Scheme::TxRace(TxRaceOpts {
            loopcut: mode,
            ..TxRaceOpts::default()
        })
    }

    /// Production mode with the given overhead budget (e.g. `1.2` allows
    /// 20% extra cycles over the uninstrumented baseline).
    pub fn production(budget: f64) -> Scheme {
        Scheme::Production(ProductionMode { budget })
    }
}

/// Scheduling policy for the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedKind {
    /// Deterministic round-robin (no interrupts ever fire).
    RoundRobin,
    /// Seeded random with burst stickiness in `[0, 1)`.
    Random {
        /// Probability of keeping the running thread each step.
        stickiness: f64,
    },
    /// Fair (parallel-cores) scheduling with a random-jitter fraction in
    /// `[0, 1]` and a fairness slack (bounded random-walk amplitude of
    /// relative thread positions).
    Fair {
        /// Probability of a uniformly random pick.
        jitter: f64,
        /// Fairness slack in steps.
        slack: u64,
    },
}

/// Full configuration of one detection run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Detector selection.
    pub scheme: Scheme,
    /// Seed for scheduling (and sampling, shifted).
    pub seed: u64,
    /// Scheduler policy.
    pub sched: SchedKind,
    /// OS interrupt injection (drives unknown/retry aborts).
    pub interrupts: InterruptModel,
    /// Simulated HTM parameters.
    pub htm: HtmConfig,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Workload-specific TSan shadow-cost multiplier.
    pub shadow_factor: f64,
    /// Slow-path shadow-memory configuration.
    pub shadow: ShadowMode,
    /// Optional interpreter step limit.
    pub step_limit: Option<u64>,
    /// Control-plane knobs: the `K` threshold, sampling rate, loop-cut
    /// initial threshold, and static pruning mode, consumed uniformly by
    /// instrumentation, engine, loop-cut learner, and baselines.
    pub knobs: Knobs,
    /// Emit per-epoch [`Telemetry`] with this nominal epoch length in
    /// executed operations (production runs always emit telemetry,
    /// defaulting to [`AdaptiveController::EPOCH_EVENTS`]).
    pub telemetry_epochs: Option<u64>,
}

impl RunConfig {
    /// A configuration with sensible defaults: fair (parallel-cores)
    /// scheduling with light jitter and no interrupt injection.
    pub fn new(scheme: Scheme, seed: u64) -> Self {
        RunConfig {
            scheme,
            seed,
            sched: SchedKind::Fair {
                jitter: 0.1,
                slack: 0,
            },
            interrupts: InterruptModel::NONE,
            htm: HtmConfig::default(),
            cost: CostModel::default(),
            shadow_factor: 1.0,
            shadow: ShadowMode::Exact,
            step_limit: None,
            knobs: Knobs::default(),
            telemetry_epochs: None,
        }
    }

    /// Sets the interrupt model.
    pub fn with_interrupts(mut self, m: InterruptModel) -> Self {
        self.interrupts = m;
        self
    }

    /// Sets the HTM parameters.
    pub fn with_htm(mut self, htm: HtmConfig) -> Self {
        self.htm = htm;
        self
    }

    /// Sets the workload shadow factor.
    pub fn with_shadow_factor(mut self, f: f64) -> Self {
        self.shadow_factor = f;
        self
    }

    /// Sets the scheduler policy.
    pub fn with_sched(mut self, s: SchedKind) -> Self {
        self.sched = s;
        self
    }

    /// Sets the static race-freedom pruning mode (a knob).
    pub fn with_prune(mut self, p: StaticPruneMode) -> Self {
        self.knobs.prune = p;
        self
    }

    /// Replaces the full control-plane knob set.
    pub fn with_knobs(mut self, knobs: Knobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Requests per-epoch telemetry with the given epoch length.
    pub fn with_telemetry(mut self, epoch_events: u64) -> Self {
        self.telemetry_epochs = Some(epoch_events);
        self
    }
}

/// Everything one detection run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Distinct static races reported.
    pub races: RaceSet,
    /// Cycle breakdown by overhead category.
    pub breakdown: CycleBreakdown,
    /// Uninstrumented baseline cycles of the program.
    pub baseline_cycles: u64,
    /// `breakdown.total() / baseline_cycles`.
    pub overhead: f64,
    /// HTM statistics (TxRace runs only).
    pub htm: Option<HtmStats>,
    /// Engine statistics (TxRace runs only).
    pub engine: Option<EngineStats>,
    /// Software access checks performed.
    pub checks: u64,
    /// Epoch telemetry ([`RunConfig::with_telemetry`] or production
    /// runs; `None` otherwise).
    pub telemetry: Option<Telemetry>,
    /// Final shared-memory state of the run.
    pub memory: txrace_sim::Memory,
    /// Interpreter result.
    pub run: RunResult,
}

impl RunOutcome {
    /// True if the program ran to completion.
    pub fn completed(&self) -> bool {
        self.run.status == RunStatus::Done
    }
}

/// Runs detection schemes over programs.
#[derive(Debug, Clone)]
pub struct Detector {
    cfg: RunConfig,
}

impl Detector {
    /// Creates a detector with the given configuration.
    pub fn new(cfg: RunConfig) -> Self {
        Detector { cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    fn make_sched(&self, seed: u64) -> Box<dyn Scheduler> {
        match self.cfg.sched {
            SchedKind::RoundRobin => Box::new(RoundRobin::new()),
            SchedKind::Random { stickiness } => Box::new(
                RandomSched::new(seed)
                    .with_interrupts(self.cfg.interrupts)
                    .with_stickiness(stickiness),
            ),
            SchedKind::Fair { jitter, slack } => Box::new(
                FairSched::new(seed, jitter)
                    .with_slack(slack)
                    .with_interrupts(self.cfg.interrupts),
            ),
        }
    }

    fn limit(&self) -> StepLimit {
        self.cfg.step_limit.map(StepLimit).unwrap_or_default()
    }

    /// The prune table for `p`, when the prune knob is enabled.
    fn prune_table(&self, p: &Program) -> Option<SiteClassTable> {
        match self.cfg.knobs.prune {
            StaticPruneMode::Off => None,
            StaticPruneMode::ChecksOnly | StaticPruneMode::Full => Some(SiteClassTable::analyze(p)),
            StaticPruneMode::FullFlow => Some(SiteClassTable::analyze_flow(p)),
        }
    }

    /// Runs the configured scheme on `program`. TxRace schemes instrument
    /// internally; to reuse an instrumented program across runs, use
    /// [`Detector::run_instrumented`].
    ///
    /// # Panics
    ///
    /// Panics if the program fails the structural IR lint
    /// ([`txrace_sim::lint()`]): unbalanced locking, joins of never-spawned
    /// threads, or disagreeing barrier arrival counts would make both the
    /// static analyses and the run itself meaningless.
    pub fn run(&self, program: &Program) -> RunOutcome {
        let issues = txrace_sim::lint(program);
        assert!(
            issues.is_empty(),
            "program failed the IR lint:\n{}",
            issues
                .iter()
                .map(|i| format!("  - {i}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        match &self.cfg.scheme {
            Scheme::Tsan | Scheme::TsanSampling { .. } => {
                let table = self.prune_table(program);
                self.run_tsan(program, table)
            }
            Scheme::TxRace(opts) => {
                let table = self.prune_table(program);
                let icfg = InstrumentConfig::from_knobs(&self.cfg.knobs);
                let ip = match self.cfg.knobs.prune {
                    StaticPruneMode::Full | StaticPruneMode::FullFlow => {
                        instrument_pruned(program, &icfg, table.as_ref())
                    }
                    _ => instrument(program, &icfg),
                };
                self.run_txrace(&ip, opts, table)
            }
            Scheme::Production(mode) => self.run_production(program, *mode),
        }
    }

    /// Runs a TxRace scheme on an already instrumented program. With
    /// pruning enabled the class table is derived from the instrumented
    /// program (original sites are preserved by the pass, so the verdicts
    /// match the uninstrumented analysis).
    ///
    /// # Panics
    ///
    /// Panics if the configured scheme is not [`Scheme::TxRace`].
    pub fn run_instrumented(&self, ip: &InstrumentedProgram) -> RunOutcome {
        match &self.cfg.scheme {
            Scheme::TxRace(opts) => {
                let table = self.prune_table(&ip.program);
                self.run_txrace(ip, opts, table)
            }
            other => panic!("run_instrumented requires a TxRace scheme, got {other:?}"),
        }
    }

    /// Collects a loop-cut profile: one Dyn-mode run on `profile_seed`,
    /// exporting the learned thresholds (the paper's offline profiling run
    /// with representative input).
    pub fn profile_loopcut(&self, ip: &InstrumentedProgram, profile_seed: u64) -> LoopcutProfile {
        let opts = match &self.cfg.scheme {
            Scheme::TxRace(o) => o.clone(),
            _ => TxRaceOpts::default(),
        };
        let cfg = EngineConfig {
            htm: self.cfg.htm,
            cost: self.cfg.cost,
            shadow_factor: self.cfg.shadow_factor,
            loopcut: LoopcutMode::Dyn,
            profile: None,
            max_retries: opts.max_retries,
            shadow: self.cfg.shadow,
            track_fast_sync: opts.track_fast_sync,
            conflict_hints: opts.conflict_hints,
            knobs: self.cfg.knobs,
            prune: None,
            epoch_events: None,
            production: None,
            watch: Vec::new(),
        };
        let mut engine = TxRaceEngine::new(ip, cfg);
        let mut machine = Machine::new(&ip.program);
        let mut sched = self.make_sched(profile_seed);
        let _ = machine.run_with_limit(&mut engine, sched.as_mut(), self.limit());
        engine.loopcut_profile()
    }

    fn run_txrace(
        &self,
        ip: &InstrumentedProgram,
        opts: &TxRaceOpts,
        prune: Option<SiteClassTable>,
    ) -> RunOutcome {
        let profile = match (opts.loopcut, &opts.profile) {
            (LoopcutMode::Prof, Some(p)) => Some(p.clone()),
            (LoopcutMode::Prof, None) => {
                // Auto-profile on a derived seed (a "representative input"
                // run in the paper's methodology).
                Some(self.profile_loopcut(ip, self.cfg.seed.wrapping_add(0x9E37_79B9)))
            }
            _ => None,
        };
        let cfg = EngineConfig {
            htm: self.cfg.htm,
            cost: self.cfg.cost,
            shadow_factor: self.cfg.shadow_factor,
            loopcut: opts.loopcut,
            profile,
            max_retries: opts.max_retries,
            shadow: self.cfg.shadow,
            track_fast_sync: opts.track_fast_sync,
            conflict_hints: opts.conflict_hints,
            knobs: self.cfg.knobs,
            prune,
            epoch_events: self.cfg.telemetry_epochs,
            production: None,
            watch: Vec::new(),
        };
        self.finish_engine_run(ip, cfg)
    }

    /// Runs the production scheme: TxRace with flow-sensitive pruning,
    /// the statically derived watch set, epoch telemetry, and the
    /// adaptive controller holding the budget.
    fn run_production(&self, program: &Program, mode: ProductionMode) -> RunOutcome {
        // Production always deploys the strongest static analysis: the
        // flow-sensitive prune table plus the watch set over the
        // surviving may-race candidate sites.
        let table = SiteClassTable::analyze_flow(program);
        let watch = crate::sa::watch_sites(program, &table);
        let knobs = Knobs {
            prune: StaticPruneMode::FullFlow,
            ..self.cfg.knobs
        };
        let icfg = InstrumentConfig::from_knobs(&knobs);
        let ip = instrument_pruned(program, &icfg, Some(&table));
        let cfg = EngineConfig {
            htm: self.cfg.htm,
            cost: self.cfg.cost,
            shadow_factor: self.cfg.shadow_factor,
            loopcut: LoopcutMode::Dyn,
            profile: None,
            max_retries: 3,
            shadow: self.cfg.shadow,
            track_fast_sync: true,
            conflict_hints: false,
            knobs,
            prune: Some(table),
            epoch_events: Some(
                self.cfg
                    .telemetry_epochs
                    .unwrap_or(AdaptiveController::EPOCH_EVENTS),
            ),
            production: Some(mode),
            watch,
        };
        self.finish_engine_run(&ip, cfg)
    }

    /// Drives an engine configuration to completion and assembles the
    /// outcome (shared tail of the TxRace and production schemes).
    fn finish_engine_run(&self, ip: &InstrumentedProgram, cfg: EngineConfig) -> RunOutcome {
        let mut engine = TxRaceEngine::new(ip, cfg);
        let mut machine = Machine::new(&ip.program);
        let mut sched = self.make_sched(self.cfg.seed);
        let run = machine.run_with_limit(&mut engine, sched.as_mut(), self.limit());
        let baseline_cycles = self.cfg.cost.baseline_cycles(&ip.program);
        let breakdown = engine.breakdown();
        let telemetry = engine.take_telemetry();
        RunOutcome {
            races: engine.races().clone(),
            breakdown,
            baseline_cycles,
            overhead: breakdown.overhead_vs(baseline_cycles),
            htm: Some(engine.htm_stats()),
            engine: Some(engine.stats()),
            checks: engine.checks(),
            telemetry,
            memory: machine.memory().clone(),
            run,
        }
    }

    fn run_tsan(&self, program: &Program, prune: Option<SiteClassTable>) -> RunOutcome {
        let mut consumer = self.tsan_consumer_with(program.thread_count(), prune);
        let mut rt = Live::new(consumer);
        let mut machine = Machine::new(program);
        let mut sched = self.make_sched(self.cfg.seed);
        let run = machine.run_with_limit(&mut rt, sched.as_mut(), self.limit());
        consumer = rt.into_inner();
        self.tsan_outcome(
            consumer,
            self.cfg.cost.baseline_cycles(program),
            machine.memory().clone(),
            run,
        )
    }

    fn tsan_consumer_with(&self, threads: usize, prune: Option<SiteClassTable>) -> TsanConsumer {
        let mut c = match &self.cfg.scheme {
            // The plain-TSan baseline honours the sampling knob (default
            // `None`: full checking).
            Scheme::Tsan => TsanConsumer::from_knobs(
                threads,
                self.cfg.cost,
                self.cfg.shadow_factor,
                self.cfg.shadow,
                &self.cfg.knobs,
                self.cfg.seed.wrapping_add(0x517C_C1B7),
            ),
            Scheme::TsanSampling { rate } => TsanConsumer::sampling(
                threads,
                self.cfg.cost,
                self.cfg.shadow_factor,
                self.cfg.shadow,
                *rate,
                self.cfg.seed.wrapping_add(0x517C_C1B7),
            ),
            Scheme::TxRace(_) | Scheme::Production(_) => {
                panic!("engine schemes are not trace consumers; use run()")
            }
        };
        if let Some(table) = prune {
            c = c.with_prune(table);
        }
        c
    }

    fn tsan_outcome(
        &self,
        consumer: TsanConsumer,
        baseline_cycles: u64,
        memory: txrace_sim::Memory,
        run: RunResult,
    ) -> RunOutcome {
        let breakdown = consumer.breakdown();
        RunOutcome {
            races: consumer.races().clone(),
            breakdown,
            baseline_cycles,
            overhead: breakdown.overhead_vs(baseline_cycles),
            htm: None,
            engine: None,
            checks: consumer.checked(),
            telemetry: None,
            memory,
            run,
        }
    }

    /// Records `program` into a replayable [`EventLog`] under the
    /// configured scheduler and seed, with no detector attached.
    ///
    /// The recorded stream is exactly what any *pure observer* (the TSan
    /// baselines, the raw HB detectors) would see live: observers never
    /// redirect execution, so the interleaving is fully determined by
    /// `(program, sched, seed)`. Record once, then fan
    /// [`Detector::replay`] over the log as many times as needed — e.g.
    /// one replay per sampling rate, in parallel.
    ///
    /// # Panics
    ///
    /// Panics if the program fails the structural IR lint, exactly like
    /// [`Detector::run`].
    pub fn record(&self, program: &Program) -> EventLog {
        let issues = txrace_sim::lint(program);
        assert!(
            issues.is_empty(),
            "program failed the IR lint:\n{}",
            issues
                .iter()
                .map(|i| format!("  - {i}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        let mut sched = self.make_sched(self.cfg.seed);
        txrace_sim::record_run(program, sched.as_mut(), self.limit())
    }

    /// Builds the configured scheme's trace consumer for `program` —
    /// sampling seed, shadow factor, and prune table all derived exactly
    /// as [`Detector::run`] would. Feed it to [`Detector::replay`].
    ///
    /// # Panics
    ///
    /// Panics if the configured scheme is [`Scheme::TxRace`] or
    /// [`Scheme::Production`]: the TxRace engine steers execution
    /// (rollbacks, re-execution) and therefore cannot run from a fixed
    /// trace.
    pub fn consumer(&self, program: &Program) -> TsanConsumer {
        self.tsan_consumer_with(program.thread_count(), self.prune_table(program))
    }

    /// Replays a recorded log through `consumer` and assembles the same
    /// [`RunOutcome`] a live [`Detector::run`] would have produced —
    /// bit-identical races, breakdown, check counts, memory, and result —
    /// provided the log was recorded under the same `(program, sched,
    /// seed)` (see [`Detector::record`]).
    pub fn replay(&self, log: &EventLog, mut consumer: TsanConsumer) -> RunOutcome {
        log.replay(&mut consumer);
        self.outcome_of_replayed(consumer, log)
    }

    /// Replays a recorded log through an arbitrary [`TraceConsumer`] and
    /// returns it (a convenience for raw detectors like
    /// [`txrace_hb::FastTrack`] that don't produce a [`RunOutcome`]).
    pub fn replay_into<C: TraceConsumer>(&self, log: &EventLog, mut consumer: C) -> C {
        log.replay(&mut consumer);
        consumer
    }

    /// Assembles the [`RunOutcome`] for a consumer that has *already*
    /// been replayed over `log` — the tail half of [`Detector::replay`],
    /// split out so parallel drivers ([`txrace_sim::fan_out`]) can run
    /// many consumers over one log and assemble outcomes afterwards.
    /// `Detector::replay(log, c)` ≡
    /// `{ log.replay(&mut c); Detector::outcome_of_replayed(c, log) }`.
    pub fn outcome_of_replayed(&self, consumer: TsanConsumer, log: &EventLog) -> RunOutcome {
        self.tsan_outcome(
            consumer,
            self.cfg.cost.baseline_cycles_of_census(&log.census()),
            log.final_memory().clone(),
            log.result().clone(),
        )
    }
}

/// Computes recall: the fraction of `truth`'s races also found in `found`
/// (the paper's effectiveness metric, §8.4, with TSan's reports as the
/// "real data races").
pub fn recall(found: &RaceSet, truth: &RaceSet) -> f64 {
    if truth.distinct_count() == 0 {
        return 1.0;
    }
    let hit = truth.pairs().filter(|p| found.contains(p.a, p.b)).count();
    hit as f64 / truth.distinct_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_hb::{RacePair, RaceSet};
    use txrace_sim::{ProgramBuilder, SiteId};

    #[test]
    fn recall_of_empty_truth_is_one() {
        assert_eq!(recall(&RaceSet::new(), &RaceSet::new()), 1.0);
    }

    #[test]
    fn recall_counts_hits() {
        use txrace_hb::{AccessInfo, AccessKind, RaceReport};
        let mk = |a: u32, b: u32| RaceReport {
            addr: txrace_sim::Addr(0x100),
            prior: AccessInfo {
                site: SiteId(a),
                thread: txrace_sim::ThreadId(0),
                kind: AccessKind::Write,
            },
            current: AccessInfo {
                site: SiteId(b),
                thread: txrace_sim::ThreadId(1),
                kind: AccessKind::Write,
            },
        };
        let truth: RaceSet = [mk(1, 2), mk(3, 4)].into_iter().collect();
        let found: RaceSet = [mk(1, 2)].into_iter().collect();
        assert_eq!(recall(&found, &truth), 0.5);
        let _ = RacePair::new(SiteId(1), SiteId(2));
    }

    #[test]
    fn tsan_and_txrace_complete_on_simple_program() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            b.thread(t).compute(5).write(x, t as u64).compute(5);
        }
        let p = b.build();
        for scheme in [Scheme::Tsan, Scheme::txrace()] {
            let out = Detector::new(RunConfig::new(scheme, 3)).run(&p);
            assert!(out.completed());
            assert!(out.overhead >= 1.0);
        }
    }
}
