//! The loop-cut optimization (paper §4.3).
//!
//! Long loops overflow the HTM write buffer and cause *capacity aborts*
//! every time their region executes; without mitigation every such region
//! pays a full slow-path re-execution. Loop-cut learns, per static loop, a
//! trip-count threshold that fits the hardware, and splits the transaction
//! at the loop probe whenever the running iteration count reaches it.
//!
//! * **Dyn** learns online: the threshold appears (initialized to 2) after
//!   the first capacity abort attributed to the loop, is incremented each
//!   time a cut transaction commits, and decremented on further capacity
//!   aborts — converging to the largest committing trip count. Updates to
//!   a plain counter would not survive the abort, which is why TxRace
//!   adjusts the estimate outside the transaction (commit/abort events).
//! * **Prof** starts from thresholds collected in a profiling run, so even
//!   the *first* capacity abort is avoided; mis-profiling is repaired by
//!   the same online adjustment.
//! * **NoOpt** disables cutting: every capacity abort falls back to the
//!   slow path (the paper's baseline scheme).
//!
//! Loop ids are dense (`LoopId(0..loop_count)`, assigned at program build
//! time), so all per-loop state lives in flat vectors indexed by the raw
//! id — the probe on the transactional fast path does no hashing.

use txrace_sim::{LoopId, ThreadId};

/// Which loop-cut scheme the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopcutMode {
    /// No cutting; capacity aborts always fall back to the slow path.
    NoOpt,
    /// Online threshold learning (`TxRace-DynLoopcut`).
    #[default]
    Dyn,
    /// Profile-seeded thresholds (`TxRace-ProfLoopcut`).
    Prof,
}

/// Thresholds collected by a profiling run, consumed by
/// [`LoopcutMode::Prof`].
#[derive(Debug, Clone, Default)]
pub struct LoopcutProfile {
    /// Largest committing trip count observed per loop, in `LoopId` order.
    pub thresholds: Vec<(LoopId, u32)>,
}

impl LoopcutProfile {
    /// The profiled threshold for `l`, if any.
    pub fn get(&self, l: LoopId) -> Option<u32> {
        self.thresholds
            .iter()
            .find(|&&(pl, _)| pl == l)
            .map(|&(_, t)| t)
    }

    /// Sets the threshold for `l`, replacing any existing entry.
    pub fn set(&mut self, l: LoopId, threshold: u32) {
        match self.thresholds.iter_mut().find(|(pl, _)| *pl == l) {
            Some(entry) => entry.1 = threshold,
            None => self.thresholds.push((l, threshold)),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Learn {
    threshold: u32,
    /// Smallest threshold that is known to overflow; growth stays below it
    /// (hysteresis, so the learner settles instead of oscillating at the
    /// capacity boundary).
    cap: Option<u32>,
}

/// Runtime loop-cut state: per-loop thresholds plus per-thread iteration
/// counters for the current transaction, all indexed by the raw dense
/// `LoopId`.
#[derive(Debug)]
pub struct LoopcutState {
    mode: LoopcutMode,
    /// `thresholds[l]` is `Some` once loop `l` became a cut candidate.
    thresholds: Vec<Option<Learn>>,
    /// `counters[thread][l]`: iterations of loop `l` inside the thread's
    /// current transaction.
    counters: Vec<Vec<u32>>,
    /// Threshold installed when a capacity abort first activates a loop
    /// ([`INITIAL_THRESHOLD`] by default; the adaptive controller raises
    /// it via [`LoopcutState::set_initial_threshold`]).
    initial_threshold: u32,
    cuts: u64,
}

/// Initial threshold after the first capacity abort (paper: "a small
/// initial estimate (two in our experiment)").
pub const INITIAL_THRESHOLD: u32 = 2;

impl LoopcutState {
    /// Creates loop-cut state for `threads` threads. `profile` seeds
    /// thresholds and is only meaningful in [`LoopcutMode::Prof`].
    pub fn new(mode: LoopcutMode, threads: usize, profile: Option<&LoopcutProfile>) -> Self {
        let mut state = LoopcutState {
            mode,
            thresholds: Vec::new(),
            counters: vec![Vec::new(); threads],
            initial_threshold: INITIAL_THRESHOLD,
            cuts: 0,
        };
        if let (LoopcutMode::Prof, Some(p)) = (mode, profile) {
            for &(l, t) in &p.thresholds {
                // A profiled threshold is trusted as the stable value: cap
                // growth right above it so the very first capacity abort
                // is avoided (mis-profiling still self-repairs through the
                // abort path).
                *state.slot(l) = Some(Learn {
                    threshold: t,
                    cap: Some(t + 1),
                });
            }
        }
        state
    }

    /// Pre-sizes the per-loop tables for a program with `loops` loops so
    /// the probe path never grows them.
    pub fn reserve_loops(&mut self, loops: usize) {
        if self.thresholds.len() < loops {
            self.thresholds.resize(loops, None);
        }
        for c in &mut self.counters {
            if c.len() < loops {
                c.resize(loops, 0);
            }
        }
    }

    fn slot(&mut self, l: LoopId) -> &mut Option<Learn> {
        let i = l.index();
        if i >= self.thresholds.len() {
            self.thresholds.resize(i + 1, None);
        }
        &mut self.thresholds[i]
    }

    /// Number of transactions split so far.
    pub fn cuts(&self) -> u64 {
        self.cuts
    }

    /// Sets the threshold installed when a capacity abort first
    /// activates a loop. Already-active loops keep their learned values;
    /// only future activations start from the new estimate.
    pub fn set_initial_threshold(&mut self, t: u32) {
        self.initial_threshold = t.max(1);
    }

    /// Current per-loop thresholds in `LoopId` order (what a profiling
    /// run exports).
    pub fn thresholds(&self) -> Vec<(LoopId, u32)> {
        self.thresholds
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|learn| (LoopId(i as u32), learn.threshold)))
            .collect()
    }

    /// Exports the learned thresholds as a profile.
    pub fn to_profile(&self) -> LoopcutProfile {
        LoopcutProfile {
            thresholds: self.thresholds(),
        }
    }

    /// Resets thread `t`'s iteration counters; call at transaction start
    /// (counters track iterations *within the current transaction*).
    pub fn on_txn_start(&mut self, t: ThreadId) {
        self.counters[t.index()].fill(0);
    }

    /// Records one pass of thread `t` over loop `l`'s probe. Returns true
    /// if the transaction should be cut here (and resets the counters for
    /// the new transaction).
    pub fn probe(&mut self, t: ThreadId, l: LoopId) -> bool {
        if self.mode == LoopcutMode::NoOpt {
            return false;
        }
        let Some(Learn { threshold, .. }) = self.thresholds.get(l.index()).copied().flatten()
        else {
            return false; // not (yet) a loop-cut candidate
        };
        let counters = &mut self.counters[t.index()];
        if counters.len() <= l.index() {
            counters.resize(l.index() + 1, 0);
        }
        counters[l.index()] += 1;
        if counters[l.index()] >= threshold {
            counters.fill(0);
            self.cuts += 1;
            true
        } else {
            false
        }
    }

    /// A capacity abort was attributed to loop `l`: activate it (Dyn) or
    /// shrink its threshold.
    pub fn on_capacity_abort(&mut self, l: Option<LoopId>) {
        if self.mode == LoopcutMode::NoOpt {
            return;
        }
        let Some(l) = l else { return };
        let initial = self.initial_threshold;
        let slot = self.slot(l);
        match slot {
            Some(v) => {
                v.cap = Some(v.cap.map_or(v.threshold, |c| c.min(v.threshold)));
                v.threshold = (v.threshold - 1).max(1);
            }
            None => {
                *slot = Some(Learn {
                    threshold: initial,
                    cap: None,
                });
            }
        }
    }

    /// A transaction cut at loop `l` committed: grow the threshold, but
    /// never to a value known to overflow.
    pub fn on_cut_commit(&mut self, l: LoopId) {
        if let Some(Some(v)) = self.thresholds.get_mut(l.index()) {
            if v.cap.is_none_or(|c| v.threshold + 1 < c) {
                v.threshold += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const L: LoopId = LoopId(3);

    fn threshold_of(s: &LoopcutState, l: LoopId) -> u32 {
        s.to_profile().get(l).expect("loop has a threshold")
    }

    #[test]
    fn noopt_never_cuts() {
        let mut s = LoopcutState::new(LoopcutMode::NoOpt, 1, None);
        s.on_capacity_abort(Some(L));
        for _ in 0..100 {
            assert!(!s.probe(T0, L));
        }
        assert_eq!(s.cuts(), 0);
    }

    #[test]
    fn dyn_activates_after_first_capacity_abort() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        assert!(!s.probe(T0, L), "inactive before any capacity abort");
        s.on_capacity_abort(Some(L));
        assert_eq!(threshold_of(&s, L), INITIAL_THRESHOLD);
        assert!(!s.probe(T0, L)); // 1 < 2
        assert!(s.probe(T0, L)); // 2 >= 2: cut
        assert_eq!(s.cuts(), 1);
    }

    #[test]
    fn commit_grows_and_abort_shrinks_threshold() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        s.on_capacity_abort(Some(L));
        s.on_cut_commit(L);
        s.on_cut_commit(L);
        assert_eq!(threshold_of(&s, L), 4);
        s.on_capacity_abort(Some(L));
        assert_eq!(threshold_of(&s, L), 3);
    }

    #[test]
    fn threshold_floors_at_one() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        s.on_capacity_abort(Some(L));
        for _ in 0..10 {
            s.on_capacity_abort(Some(L));
        }
        assert_eq!(threshold_of(&s, L), 1);
        assert!(s.probe(T0, L), "threshold 1 cuts every iteration");
    }

    #[test]
    fn prof_seeds_thresholds() {
        let mut profile = LoopcutProfile::default();
        profile.set(L, 10);
        let mut s = LoopcutState::new(LoopcutMode::Prof, 1, Some(&profile));
        for _ in 0..9 {
            assert!(!s.probe(T0, L));
        }
        assert!(s.probe(T0, L));
    }

    #[test]
    fn dyn_ignores_profile() {
        let mut profile = LoopcutProfile::default();
        profile.set(L, 10);
        let s = LoopcutState::new(LoopcutMode::Dyn, 1, Some(&profile));
        assert!(s.thresholds().is_empty());
    }

    #[test]
    fn txn_start_resets_counters() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        s.on_capacity_abort(Some(L));
        assert!(!s.probe(T0, L));
        s.on_txn_start(T0);
        assert!(!s.probe(T0, L), "counter was reset");
        assert!(s.probe(T0, L));
    }

    #[test]
    fn counters_are_per_thread() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 2, None);
        s.on_capacity_abort(Some(L));
        assert!(!s.probe(T0, L));
        assert!(!s.probe(ThreadId(1), L), "thread 1 has its own counter");
    }

    #[test]
    fn unknown_loop_attribution_is_ignored() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        s.on_capacity_abort(None);
        assert!(s.thresholds().is_empty());
    }

    #[test]
    fn profile_roundtrip() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        s.on_capacity_abort(Some(L));
        s.on_cut_commit(L);
        let p = s.to_profile();
        assert_eq!(p.get(L), Some(3));
    }

    #[test]
    fn profile_set_replaces_existing_entry() {
        let mut p = LoopcutProfile::default();
        p.set(L, 4);
        p.set(L, 9);
        assert_eq!(p.thresholds.len(), 1);
        assert_eq!(p.get(L), Some(9));
    }

    #[test]
    fn initial_threshold_applies_to_future_activations_only() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        s.on_capacity_abort(Some(L));
        assert_eq!(threshold_of(&s, L), INITIAL_THRESHOLD);
        s.set_initial_threshold(8);
        let l2 = LoopId(5);
        s.on_capacity_abort(Some(l2));
        assert_eq!(threshold_of(&s, l2), 8, "new activation uses the knob");
        assert_eq!(threshold_of(&s, L), INITIAL_THRESHOLD, "learned value kept");
        s.set_initial_threshold(0);
        let l3 = LoopId(7);
        s.on_capacity_abort(Some(l3));
        assert_eq!(threshold_of(&s, l3), 1, "floors at one");
    }

    #[test]
    fn reserve_loops_presizes_without_activating() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        s.reserve_loops(8);
        assert!(s.thresholds().is_empty());
        assert!(!s.probe(T0, L));
    }
}
