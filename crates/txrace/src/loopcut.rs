//! The loop-cut optimization (paper §4.3).
//!
//! Long loops overflow the HTM write buffer and cause *capacity aborts*
//! every time their region executes; without mitigation every such region
//! pays a full slow-path re-execution. Loop-cut learns, per static loop, a
//! trip-count threshold that fits the hardware, and splits the transaction
//! at the loop probe whenever the running iteration count reaches it.
//!
//! * **Dyn** learns online: the threshold appears (initialized to 2) after
//!   the first capacity abort attributed to the loop, is incremented each
//!   time a cut transaction commits, and decremented on further capacity
//!   aborts — converging to the largest committing trip count. Updates to
//!   a plain counter would not survive the abort, which is why TxRace
//!   adjusts the estimate outside the transaction (commit/abort events).
//! * **Prof** starts from thresholds collected in a profiling run, so even
//!   the *first* capacity abort is avoided; mis-profiling is repaired by
//!   the same online adjustment.
//! * **NoOpt** disables cutting: every capacity abort falls back to the
//!   slow path (the paper's baseline scheme).

use std::collections::HashMap;

use txrace_sim::{LoopId, ThreadId};

/// Which loop-cut scheme the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopcutMode {
    /// No cutting; capacity aborts always fall back to the slow path.
    NoOpt,
    /// Online threshold learning (`TxRace-DynLoopcut`).
    #[default]
    Dyn,
    /// Profile-seeded thresholds (`TxRace-ProfLoopcut`).
    Prof,
}

/// Thresholds collected by a profiling run, consumed by
/// [`LoopcutMode::Prof`].
#[derive(Debug, Clone, Default)]
pub struct LoopcutProfile {
    /// Largest committing trip count observed per loop.
    pub thresholds: HashMap<LoopId, u32>,
}

#[derive(Debug, Clone, Copy)]
struct Learn {
    threshold: u32,
    /// Smallest threshold that is known to overflow; growth stays below it
    /// (hysteresis, so the learner settles instead of oscillating at the
    /// capacity boundary).
    cap: Option<u32>,
}

/// Runtime loop-cut state: per-loop thresholds plus per-thread iteration
/// counters for the current transaction.
#[derive(Debug)]
pub struct LoopcutState {
    mode: LoopcutMode,
    thresholds: HashMap<LoopId, Learn>,
    counters: Vec<HashMap<LoopId, u32>>,
    cuts: u64,
}

/// Initial threshold after the first capacity abort (paper: "a small
/// initial estimate (two in our experiment)").
const INITIAL_THRESHOLD: u32 = 2;

impl LoopcutState {
    /// Creates loop-cut state for `threads` threads. `profile` seeds
    /// thresholds and is only meaningful in [`LoopcutMode::Prof`].
    pub fn new(mode: LoopcutMode, threads: usize, profile: Option<&LoopcutProfile>) -> Self {
        let thresholds = match (mode, profile) {
            (LoopcutMode::Prof, Some(p)) => p
                .thresholds
                .iter()
                .map(|(&l, &t)| {
                    // A profiled threshold is trusted as the stable value:
                    // cap growth right above it so the very first capacity
                    // abort is avoided (mis-profiling still self-repairs
                    // through the abort path).
                    (
                        l,
                        Learn {
                            threshold: t,
                            cap: Some(t + 1),
                        },
                    )
                })
                .collect(),
            _ => HashMap::new(),
        };
        LoopcutState {
            mode,
            thresholds,
            counters: vec![HashMap::new(); threads],
            cuts: 0,
        }
    }

    /// Number of transactions split so far.
    pub fn cuts(&self) -> u64 {
        self.cuts
    }

    /// Current per-loop thresholds (what a profiling run exports).
    pub fn thresholds(&self) -> HashMap<LoopId, u32> {
        self.thresholds
            .iter()
            .map(|(&l, &v)| (l, v.threshold))
            .collect()
    }

    /// Exports the learned thresholds as a profile.
    pub fn to_profile(&self) -> LoopcutProfile {
        LoopcutProfile {
            thresholds: self.thresholds(),
        }
    }

    /// Resets thread `t`'s iteration counters; call at transaction start
    /// (counters track iterations *within the current transaction*).
    pub fn on_txn_start(&mut self, t: ThreadId) {
        self.counters[t.index()].clear();
    }

    /// Records one pass of thread `t` over loop `l`'s probe. Returns true
    /// if the transaction should be cut here (and resets the counters for
    /// the new transaction).
    pub fn probe(&mut self, t: ThreadId, l: LoopId) -> bool {
        if self.mode == LoopcutMode::NoOpt {
            return false;
        }
        let Some(&Learn { threshold, .. }) = self.thresholds.get(&l) else {
            return false; // not (yet) a loop-cut candidate
        };
        let c = self.counters[t.index()].entry(l).or_insert(0);
        *c += 1;
        if *c >= threshold {
            self.counters[t.index()].clear();
            self.cuts += 1;
            true
        } else {
            false
        }
    }

    /// A capacity abort was attributed to loop `l`: activate it (Dyn) or
    /// shrink its threshold.
    pub fn on_capacity_abort(&mut self, l: Option<LoopId>) {
        if self.mode == LoopcutMode::NoOpt {
            return;
        }
        let Some(l) = l else { return };
        self.thresholds
            .entry(l)
            .and_modify(|v| {
                v.cap = Some(v.cap.map_or(v.threshold, |c| c.min(v.threshold)));
                v.threshold = (v.threshold - 1).max(1);
            })
            .or_insert(Learn {
                threshold: INITIAL_THRESHOLD,
                cap: None,
            });
    }

    /// A transaction cut at loop `l` committed: grow the threshold, but
    /// never to a value known to overflow.
    pub fn on_cut_commit(&mut self, l: LoopId) {
        if let Some(v) = self.thresholds.get_mut(&l) {
            if v.cap.is_none_or(|c| v.threshold + 1 < c) {
                v.threshold += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const L: LoopId = LoopId(3);

    #[test]
    fn noopt_never_cuts() {
        let mut s = LoopcutState::new(LoopcutMode::NoOpt, 1, None);
        s.on_capacity_abort(Some(L));
        for _ in 0..100 {
            assert!(!s.probe(T0, L));
        }
        assert_eq!(s.cuts(), 0);
    }

    #[test]
    fn dyn_activates_after_first_capacity_abort() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        assert!(!s.probe(T0, L), "inactive before any capacity abort");
        s.on_capacity_abort(Some(L));
        assert_eq!(s.thresholds()[&L], INITIAL_THRESHOLD);
        assert!(!s.probe(T0, L)); // 1 < 2
        assert!(s.probe(T0, L)); // 2 >= 2: cut
        assert_eq!(s.cuts(), 1);
    }

    #[test]
    fn commit_grows_and_abort_shrinks_threshold() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        s.on_capacity_abort(Some(L));
        s.on_cut_commit(L);
        s.on_cut_commit(L);
        assert_eq!(s.thresholds()[&L], 4);
        s.on_capacity_abort(Some(L));
        assert_eq!(s.thresholds()[&L], 3);
    }

    #[test]
    fn threshold_floors_at_one() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        s.on_capacity_abort(Some(L));
        for _ in 0..10 {
            s.on_capacity_abort(Some(L));
        }
        assert_eq!(s.thresholds()[&L], 1);
        assert!(s.probe(T0, L), "threshold 1 cuts every iteration");
    }

    #[test]
    fn prof_seeds_thresholds() {
        let mut profile = LoopcutProfile::default();
        profile.thresholds.insert(L, 10);
        let mut s = LoopcutState::new(LoopcutMode::Prof, 1, Some(&profile));
        for _ in 0..9 {
            assert!(!s.probe(T0, L));
        }
        assert!(s.probe(T0, L));
    }

    #[test]
    fn dyn_ignores_profile() {
        let mut profile = LoopcutProfile::default();
        profile.thresholds.insert(L, 10);
        let s = LoopcutState::new(LoopcutMode::Dyn, 1, Some(&profile));
        assert!(s.thresholds().is_empty());
    }

    #[test]
    fn txn_start_resets_counters() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        s.on_capacity_abort(Some(L));
        assert!(!s.probe(T0, L));
        s.on_txn_start(T0);
        assert!(!s.probe(T0, L), "counter was reset");
        assert!(s.probe(T0, L));
    }

    #[test]
    fn counters_are_per_thread() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 2, None);
        s.on_capacity_abort(Some(L));
        assert!(!s.probe(T0, L));
        assert!(!s.probe(ThreadId(1), L), "thread 1 has its own counter");
    }

    #[test]
    fn unknown_loop_attribution_is_ignored() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        s.on_capacity_abort(None);
        assert!(s.thresholds().is_empty());
    }

    #[test]
    fn profile_roundtrip() {
        let mut s = LoopcutState::new(LoopcutMode::Dyn, 1, None);
        s.on_capacity_abort(Some(L));
        s.on_cut_commit(L);
        let p = s.to_profile();
        assert_eq!(p.thresholds[&L], 3);
    }
}
