//! Baseline detectors the paper compares TxRace against: full
//! ThreadSanitizer-style checking of every access, and the
//! sampling-based variant (Figures 11–13).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txrace_hb::{FastTrack, Lockset, LocksetReport, RaceSet, ShadowMode};
use txrace_sim::{Addr, BarrierId, Directive, Memory, Op, OpEvent, Runtime, SiteId, ThreadId};

use crate::cost::{CostModel, CycleBreakdown};
use crate::sa::SiteClassTable;

/// The always-on software detector: FastTrack checks on every shared
/// access (the paper's "TSan" baseline), optionally sampling accesses at a
/// fixed rate (the paper's "TSan+Sampling" comparison).
#[derive(Debug)]
pub struct TsanRuntime {
    ft: FastTrack,
    cost: CostModel,
    eff_check: u64,
    breakdown: CycleBreakdown,
    sampler: Option<(f64, StdRng)>,
    prune: Option<SiteClassTable>,
    checked: u64,
    skipped: u64,
    elided: u64,
}

impl TsanRuntime {
    /// Full checking: every access pays the shadow-memory check.
    pub fn full(threads: usize, cost: CostModel, shadow_factor: f64, shadow: ShadowMode) -> Self {
        TsanRuntime {
            ft: FastTrack::new(threads, shadow),
            eff_check: cost.effective_tsan_check(shadow_factor),
            cost,
            breakdown: CycleBreakdown::default(),
            sampler: None,
            prune: None,
            checked: 0,
            skipped: 0,
            elided: 0,
        }
    }

    /// Installs a static race-freedom table: accesses at sites the table
    /// proves race-free skip the shadow-memory check entirely (their
    /// would-be cost is recorded in [`CycleBreakdown::elided`]).
    pub fn with_prune(mut self, table: SiteClassTable) -> Self {
        self.prune = Some(table);
        self
    }

    /// Sampled checking: each dynamic access is checked with probability
    /// `rate` (clamped to `[0, 1]`; `1.0` behaves exactly like
    /// [`TsanRuntime::full`]).
    pub fn sampling(
        threads: usize,
        cost: CostModel,
        shadow_factor: f64,
        shadow: ShadowMode,
        rate: f64,
        seed: u64,
    ) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let mut rt = Self::full(threads, cost, shadow_factor, shadow);
        if rate < 1.0 {
            rt.sampler = Some((rate, StdRng::seed_from_u64(seed)));
        }
        rt
    }

    /// Races detected.
    pub fn races(&self) -> &RaceSet {
        self.ft.races()
    }

    /// Cycle breakdown (`baseline` + `checks`).
    pub fn breakdown(&self) -> CycleBreakdown {
        self.breakdown
    }

    /// Accesses actually checked.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Accesses skipped by sampling.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Accesses elided by the static race-freedom analysis.
    pub fn elided(&self) -> u64 {
        self.elided
    }

    /// True when the prune table elides the check at `site`; records the
    /// avoided cost.
    fn prune_elides(&mut self, site: SiteId) -> bool {
        if self.prune.as_ref().is_some_and(|t| t.is_race_free(site)) {
            self.elided += 1;
            self.breakdown.elided += self.eff_check;
            true
        } else {
            false
        }
    }

    /// Decides whether this access is checked; charges accordingly.
    fn sample(&mut self) -> bool {
        let take = match &mut self.sampler {
            None => true,
            Some((rate, rng)) => rng.gen::<f64>() < *rate,
        };
        if take {
            self.checked += 1;
            self.breakdown.checks += self.eff_check;
        } else {
            self.skipped += 1;
        }
        take
    }
}

impl Runtime for TsanRuntime {
    fn before_op(&mut self, _mem: &mut Memory, ev: &OpEvent<'_>) -> Directive {
        self.breakdown.baseline += self.cost.base_op_cost(&ev.op);
        Directive::Continue
    }

    fn read(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr) -> u64 {
        if !self.prune_elides(ev.site) && self.sample() {
            self.ft.read(ev.thread, ev.site, addr);
        }
        mem.load(addr)
    }

    fn write(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, val: u64) {
        if !self.prune_elides(ev.site) && self.sample() {
            self.ft.write(ev.thread, ev.site, addr);
        }
        mem.store(addr, val);
    }

    fn rmw(&mut self, mem: &mut Memory, _ev: &OpEvent<'_>, addr: Addr, delta: u64) -> u64 {
        // Atomics are never data races under the C11 model; TSan does not
        // check them either.
        let old = mem.load(addr);
        mem.store(addr, old.wrapping_add(delta));
        old
    }

    fn after_sync(&mut self, _mem: &mut Memory, ev: &OpEvent<'_>) {
        let t = ev.thread;
        match ev.op {
            Op::Lock(l) => self.ft.lock_acquire(t, l),
            Op::Unlock(l) => self.ft.lock_release(t, l),
            Op::Signal(c) => self.ft.signal(t, c),
            Op::Wait(c) => self.ft.wait(t, c),
            Op::Spawn(u) => self.ft.spawn(t, u),
            Op::Join(u) => self.ft.join(t, u),
            _ => return,
        }
        self.breakdown.checks += self.cost.tsan_sync;
    }

    fn after_barrier(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        let threads: Vec<ThreadId> = arrivals.iter().map(|&(t, _)| t).collect();
        self.ft.barrier(b, &threads);
        self.breakdown.checks += self.cost.tsan_sync * arrivals.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::{Machine, ProgramBuilder, RandomSched, RunStatus};

    #[test]
    fn full_tsan_finds_plain_race() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write_l(x, 1, "w0");
        b.thread(1).write_l(x, 2, "w1");
        let p = b.build();
        let mut rt = TsanRuntime::full(2, CostModel::default(), 1.0, ShadowMode::Exact);
        let mut m = Machine::new(&p);
        let mut s = RandomSched::new(1);
        assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);
        assert_eq!(rt.races().distinct_count(), 1);
        assert_eq!(rt.checked(), 2);
        assert!(rt.breakdown().checks > 0);
    }

    #[test]
    fn zero_rate_sampling_checks_nothing() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write(x, 1);
        b.thread(1).write(x, 2);
        let p = b.build();
        let mut rt = TsanRuntime::sampling(2, CostModel::default(), 1.0, ShadowMode::Exact, 0.0, 7);
        let mut m = Machine::new(&p);
        let mut s = RandomSched::new(1);
        m.run(&mut rt, &mut s);
        assert_eq!(rt.checked(), 0);
        assert_eq!(rt.skipped(), 2);
        assert!(rt.races().is_empty());
    }

    #[test]
    fn sampling_rate_is_roughly_respected() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(10_000, |t| {
            t.read(x);
        });
        let p = b.build();
        let mut rt = TsanRuntime::sampling(1, CostModel::default(), 1.0, ShadowMode::Exact, 0.3, 9);
        let mut m = Machine::new(&p);
        let mut s = RandomSched::new(1);
        m.run(&mut rt, &mut s);
        let rate = rt.checked() as f64 / (rt.checked() + rt.skipped()) as f64;
        assert!((0.25..0.35).contains(&rate), "rate {rate}");
    }

    #[test]
    fn full_rate_sampling_equals_full() {
        let mut rt = TsanRuntime::sampling(2, CostModel::default(), 1.0, ShadowMode::Exact, 1.0, 7);
        assert!(rt.sample());
        assert_eq!(rt.skipped(), 0);
    }

    #[test]
    fn sync_tracking_prevents_false_positives_under_sampling() {
        // Sampling skips access checks but must never skip sync tracking.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let c = b.cond_id("c");
        b.thread(0).write(x, 1).signal(c);
        b.thread(1).wait(c).write(x, 2);
        let p = b.build();
        let mut rt =
            TsanRuntime::sampling(2, CostModel::default(), 1.0, ShadowMode::Exact, 0.99, 3);
        let mut m = Machine::new(&p);
        let mut s = RandomSched::new(1);
        m.run(&mut rt, &mut s);
        assert!(rt.races().is_empty(), "ordered accesses misreported");
    }

    #[test]
    fn prune_table_elides_race_free_checks_only() {
        use crate::sa::SiteClassTable;
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            let mine = b.var(&format!("mine{t}"));
            b.thread(t).write(x, t as u64).read(mine).read(mine);
        }
        let p = b.build();
        let table = SiteClassTable::analyze(&p);
        let mk = |prune: bool| {
            let rt = TsanRuntime::full(2, CostModel::default(), 1.0, ShadowMode::Exact);
            if prune {
                rt.with_prune(table.clone())
            } else {
                rt
            }
        };
        let run = |mut rt: TsanRuntime| {
            let mut m = Machine::new(&p);
            let mut s = RandomSched::new(5);
            assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);
            rt
        };
        let off = run(mk(false));
        let on = run(mk(true));
        // Two racy writes checked, four private reads elided.
        assert_eq!(on.checked(), 2);
        assert_eq!(on.elided(), 4);
        assert_eq!(off.checked(), 6);
        assert_eq!(on.races().distinct_count(), off.races().distinct_count());
        assert_eq!(
            off.breakdown().total(),
            on.breakdown().total() + on.breakdown().elided
        );
    }
}

/// An always-on Eraser-style lockset detector (Savage et al. '97), the
/// classic pre-happens-before baseline the paper's related work contrasts
/// with: cheap bookkeeping, but *incomplete* — it cannot see non-mutex
/// synchronization (signal/wait, barriers, spawn/join), so it reports
/// false positives on correctly ordered code.
#[derive(Debug)]
pub struct LocksetRuntime {
    ls: Lockset,
    cost: CostModel,
    breakdown: CycleBreakdown,
}

impl LocksetRuntime {
    /// Creates a lockset runtime for `threads` threads.
    pub fn new(threads: usize, cost: CostModel) -> Self {
        LocksetRuntime {
            ls: Lockset::new(threads),
            cost,
            breakdown: CycleBreakdown::default(),
        }
    }

    /// Lockset violations reported (candidate set emptied while shared-
    /// modified). Some are true races; some are false positives.
    pub fn reports(&self) -> &[LocksetReport] {
        self.ls.reports()
    }

    /// Cycle breakdown (`baseline` + `checks`).
    pub fn breakdown(&self) -> CycleBreakdown {
        self.breakdown
    }
}

impl Runtime for LocksetRuntime {
    fn before_op(&mut self, _mem: &mut Memory, ev: &OpEvent<'_>) -> Directive {
        self.breakdown.baseline += self.cost.base_op_cost(&ev.op);
        Directive::Continue
    }

    fn read(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr) -> u64 {
        self.ls.read(ev.thread, ev.site, addr);
        // Lockset checks are cheaper than vector-clock checks: a set
        // intersection against the held set, modeled at half a TSan check.
        self.breakdown.checks += self.cost.tsan_check / 2;
        mem.load(addr)
    }

    fn write(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, val: u64) {
        self.ls.write(ev.thread, ev.site, addr);
        self.breakdown.checks += self.cost.tsan_check / 2;
        mem.store(addr, val);
    }

    fn after_sync(&mut self, _mem: &mut Memory, ev: &OpEvent<'_>) {
        match ev.op {
            Op::Lock(l) => self.ls.lock_acquire(ev.thread, l),
            Op::Unlock(l) => self.ls.lock_release(ev.thread, l),
            // Eraser is blind to every other synchronization primitive —
            // that blindness is its incompleteness.
            _ => {}
        }
    }
}

#[cfg(test)]
mod lockset_tests {
    use super::*;
    use txrace_sim::{Machine, ProgramBuilder, RoundRobin, RunStatus};

    #[test]
    fn lockset_runtime_flags_unlocked_sharing() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write(x, 1);
        b.thread(1).write(x, 2);
        let p = b.build();
        let mut rt = LocksetRuntime::new(2, CostModel::default());
        let mut m = Machine::new(&p);
        let mut s = RoundRobin::new();
        assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);
        assert_eq!(rt.reports().len(), 1);
    }

    #[test]
    fn lockset_runtime_false_positive_on_signal_wait() {
        // Ordered by signal/wait: a HB detector stays silent, Eraser does
        // not — the incompleteness the paper's related work describes.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let c = b.cond_id("c");
        b.thread(0).write(x, 1).signal(c);
        b.thread(1).wait(c).write(x, 2);
        let p = b.build();
        let mut rt = LocksetRuntime::new(2, CostModel::default());
        let mut m = Machine::new(&p);
        let mut s = RoundRobin::new();
        assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);
        assert_eq!(rt.reports().len(), 1, "expected the classic false positive");
    }
}
