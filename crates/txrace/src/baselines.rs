//! Baseline detectors the paper compares TxRace against: full
//! ThreadSanitizer-style checking of every access, and the
//! sampling-based variant (Figures 11–13).
//!
//! Both are *pure trace consumers* ([`TraceConsumer`]): they observe the
//! event stream, never redirect execution, and charge their own cycle
//! accounting per event. Run them live by wrapping in
//! [`txrace_sim::Live`], or replay them from a recorded
//! [`txrace_sim::EventLog`] — the two paths produce bit-identical race
//! sets, breakdowns, and sampling decisions (the sampling RNG draws once
//! per non-pruned access, in event order, on either path).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txrace_hb::{FastTrack, Lockset, LocksetReport, RaceSet, ShadowMode};
use txrace_sim::{Addr, BarrierId, CondId, LockId, SiteId, SyscallKind, ThreadId, TraceConsumer};

use crate::control::Knobs;
use crate::cost::{CostModel, CycleBreakdown};
use crate::sa::SiteClassTable;

/// Event tallies a consumer accumulates on the hot path; the cycle
/// breakdown is derived from them on demand (`count * unit_cost` is the
/// same u64 as adding `unit_cost` per event, without the per-event
/// arithmetic).
#[derive(Debug, Default, Clone, Copy)]
struct EventTally {
    /// Memory-access events (read + write + rmw).
    mem: u64,
    /// Sync ops whose happens-before tracking is charged.
    sync: u64,
    /// Barrier arrivals (architectural cost only).
    barrier_arrive: u64,
    /// Total threads released across all barrier releases.
    barrier_released: u64,
    /// Total `Compute` units.
    compute_units: u64,
    /// Syscall events.
    syscalls: u64,
}

/// The always-on software detector: FastTrack checks on every shared
/// access (the paper's "TSan" baseline), optionally sampling accesses at a
/// fixed rate (the paper's "TSan+Sampling" comparison).
#[derive(Debug)]
pub struct TsanConsumer {
    ft: FastTrack,
    cost: CostModel,
    eff_check: u64,
    tally: EventTally,
    sampler: Option<(f64, StdRng)>,
    prune: Option<SiteClassTable>,
    checked: u64,
    skipped: u64,
    elided: u64,
}

impl TsanConsumer {
    /// Full checking: every access pays the shadow-memory check.
    pub fn full(threads: usize, cost: CostModel, shadow_factor: f64, shadow: ShadowMode) -> Self {
        TsanConsumer {
            ft: FastTrack::new(threads, shadow),
            eff_check: cost.effective_tsan_check(shadow_factor),
            cost,
            tally: EventTally::default(),
            sampler: None,
            prune: None,
            checked: 0,
            skipped: 0,
            elided: 0,
        }
    }

    /// Builds a consumer from the control-plane [`Knobs`]: the sampling
    /// knob selects between full and sampled checking (`None` means
    /// check everything). The prune table, when the prune knob asks for
    /// one, is installed separately via [`TsanConsumer::with_prune`].
    pub fn from_knobs(
        threads: usize,
        cost: CostModel,
        shadow_factor: f64,
        shadow: ShadowMode,
        knobs: &Knobs,
        seed: u64,
    ) -> Self {
        match knobs.sampling {
            Some(rate) => Self::sampling(threads, cost, shadow_factor, shadow, rate, seed),
            None => Self::full(threads, cost, shadow_factor, shadow),
        }
    }

    /// Installs a static race-freedom table: accesses at sites the table
    /// proves race-free skip the shadow-memory check entirely (their
    /// would-be cost is recorded in [`CycleBreakdown::elided`]).
    pub fn with_prune(mut self, table: SiteClassTable) -> Self {
        self.prune = Some(table);
        self
    }

    /// Sampled checking: each dynamic access is checked with probability
    /// `rate` (clamped to `[0, 1]`; `1.0` behaves exactly like
    /// [`TsanConsumer::full`]).
    pub fn sampling(
        threads: usize,
        cost: CostModel,
        shadow_factor: f64,
        shadow: ShadowMode,
        rate: f64,
        seed: u64,
    ) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let mut rt = Self::full(threads, cost, shadow_factor, shadow);
        if rate < 1.0 {
            rt.sampler = Some((rate, StdRng::seed_from_u64(seed)));
        }
        rt
    }

    /// Races detected.
    pub fn races(&self) -> &RaceSet {
        self.ft.races()
    }

    /// Cycle breakdown (`baseline` + `checks`), derived from the event
    /// tallies. Equal, term for term, to what per-event accumulation
    /// would have produced.
    pub fn breakdown(&self) -> CycleBreakdown {
        let t = &self.tally;
        CycleBreakdown {
            baseline: t.mem * self.cost.mem_access
                + (t.sync + t.barrier_arrive) * self.cost.sync_op
                + t.compute_units * self.cost.compute_unit
                + t.syscalls * self.cost.syscall,
            checks: self.checked * self.eff_check
                + (t.sync + t.barrier_released) * self.cost.tsan_sync,
            elided: self.elided * self.eff_check,
            ..CycleBreakdown::default()
        }
    }

    /// Accesses actually checked.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Accesses skipped by sampling.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Accesses elided by the static race-freedom analysis.
    pub fn elided(&self) -> u64 {
        self.elided
    }

    /// True when the prune table elides the check at `site`.
    fn prune_elides(&mut self, site: SiteId) -> bool {
        if self.prune.as_ref().is_some_and(|t| t.is_race_free(site)) {
            self.elided += 1;
            true
        } else {
            false
        }
    }

    /// Decides whether this access is checked.
    fn sample(&mut self) -> bool {
        let take = match &mut self.sampler {
            None => true,
            Some((rate, rng)) => rng.gen::<f64>() < *rate,
        };
        if take {
            self.checked += 1;
        } else {
            self.skipped += 1;
        }
        take
    }

    #[cfg(test)]
    fn sample_for_test(&mut self) -> bool {
        self.sample()
    }
}

impl TraceConsumer for TsanConsumer {
    fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.tally.mem += 1;
        if !self.prune_elides(site) && self.sample() {
            self.ft.read(t, site, addr);
        }
    }

    fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.tally.mem += 1;
        if !self.prune_elides(site) && self.sample() {
            self.ft.write(t, site, addr);
        }
    }

    fn rmw(&mut self, _t: ThreadId, _site: SiteId, _addr: Addr) {
        // Atomics are never data races under the C11 model; TSan does not
        // check them either.
        self.tally.mem += 1;
    }

    fn acquire(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.ft.lock_acquire(t, l);
        self.tally.sync += 1;
    }

    fn release(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.ft.lock_release(t, l);
        self.tally.sync += 1;
    }

    fn signal(&mut self, t: ThreadId, _site: SiteId, c: CondId) {
        self.ft.signal(t, c);
        self.tally.sync += 1;
    }

    fn wait(&mut self, t: ThreadId, _site: SiteId, c: CondId) {
        self.ft.wait(t, c);
        self.tally.sync += 1;
    }

    fn spawn(&mut self, t: ThreadId, _site: SiteId, child: ThreadId) {
        self.ft.spawn(t, child);
        self.tally.sync += 1;
    }

    fn join(&mut self, t: ThreadId, _site: SiteId, child: ThreadId) {
        self.ft.join(t, child);
        self.tally.sync += 1;
    }

    fn barrier_arrive(&mut self, _t: ThreadId, _site: SiteId, _b: BarrierId) {
        self.tally.barrier_arrive += 1;
    }

    fn barrier_release(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        self.ft.barrier_arrivals(b, arrivals);
        self.tally.barrier_released += arrivals.len() as u64;
    }

    fn chan_send(&mut self, t: ThreadId, _site: SiteId, ch: txrace_sim::ChanId) {
        self.ft.chan_send(t, ch);
        self.tally.sync += 1;
    }

    fn chan_recv(&mut self, t: ThreadId, _site: SiteId, ch: txrace_sim::ChanId) {
        self.ft.chan_recv(t, ch);
        self.tally.sync += 1;
    }

    fn compute(&mut self, _t: ThreadId, _site: SiteId, units: u32) {
        self.tally.compute_units += u64::from(units);
    }

    fn syscall(&mut self, _t: ThreadId, _site: SiteId, _kind: SyscallKind) {
        self.tally.syscalls += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::{Live, Machine, ProgramBuilder, RandomSched, RunStatus};

    #[test]
    fn full_tsan_finds_plain_race() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write_l(x, 1, "w0");
        b.thread(1).write_l(x, 2, "w1");
        let p = b.build();
        let mut rt = Live::new(TsanConsumer::full(
            2,
            CostModel::default(),
            1.0,
            ShadowMode::Exact,
        ));
        let mut m = Machine::new(&p);
        let mut s = RandomSched::new(1);
        assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);
        let rt = rt.into_inner();
        assert_eq!(rt.races().distinct_count(), 1);
        assert_eq!(rt.checked(), 2);
        assert!(rt.breakdown().checks > 0);
    }

    #[test]
    fn zero_rate_sampling_checks_nothing() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write(x, 1);
        b.thread(1).write(x, 2);
        let p = b.build();
        let mut rt = Live::new(TsanConsumer::sampling(
            2,
            CostModel::default(),
            1.0,
            ShadowMode::Exact,
            0.0,
            7,
        ));
        let mut m = Machine::new(&p);
        let mut s = RandomSched::new(1);
        m.run(&mut rt, &mut s);
        let rt = rt.into_inner();
        assert_eq!(rt.checked(), 0);
        assert_eq!(rt.skipped(), 2);
        assert!(rt.races().is_empty());
    }

    #[test]
    fn sampling_rate_is_roughly_respected() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(10_000, |t| {
            t.read(x);
        });
        let p = b.build();
        let mut rt = Live::new(TsanConsumer::sampling(
            1,
            CostModel::default(),
            1.0,
            ShadowMode::Exact,
            0.3,
            9,
        ));
        let mut m = Machine::new(&p);
        let mut s = RandomSched::new(1);
        m.run(&mut rt, &mut s);
        let rt = rt.into_inner();
        let rate = rt.checked() as f64 / (rt.checked() + rt.skipped()) as f64;
        assert!((0.25..0.35).contains(&rate), "rate {rate}");
    }

    #[test]
    fn full_rate_sampling_equals_full() {
        let mut rt =
            TsanConsumer::sampling(2, CostModel::default(), 1.0, ShadowMode::Exact, 1.0, 7);
        assert!(rt.sample_for_test());
        assert_eq!(rt.skipped(), 0);
    }

    #[test]
    fn sync_tracking_prevents_false_positives_under_sampling() {
        // Sampling skips access checks but must never skip sync tracking.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let c = b.cond_id("c");
        b.thread(0).write(x, 1).signal(c);
        b.thread(1).wait(c).write(x, 2);
        let p = b.build();
        let mut rt = Live::new(TsanConsumer::sampling(
            2,
            CostModel::default(),
            1.0,
            ShadowMode::Exact,
            0.99,
            3,
        ));
        let mut m = Machine::new(&p);
        let mut s = RandomSched::new(1);
        m.run(&mut rt, &mut s);
        assert!(
            rt.consumer().races().is_empty(),
            "ordered accesses misreported"
        );
    }

    #[test]
    fn prune_table_elides_race_free_checks_only() {
        use crate::sa::SiteClassTable;
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            let mine = b.var(&format!("mine{t}"));
            b.thread(t).write(x, t as u64).read(mine).read(mine);
        }
        let p = b.build();
        let table = SiteClassTable::analyze(&p);
        let mk = |prune: bool| {
            let rt = TsanConsumer::full(2, CostModel::default(), 1.0, ShadowMode::Exact);
            if prune {
                rt.with_prune(table.clone())
            } else {
                rt
            }
        };
        let run = |c: TsanConsumer| {
            let mut rt = Live::new(c);
            let mut m = Machine::new(&p);
            let mut s = RandomSched::new(5);
            assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);
            rt.into_inner()
        };
        let off = run(mk(false));
        let on = run(mk(true));
        // Two racy writes checked, four private reads elided.
        assert_eq!(on.checked(), 2);
        assert_eq!(on.elided(), 4);
        assert_eq!(off.checked(), 6);
        assert_eq!(on.races().distinct_count(), off.races().distinct_count());
        assert_eq!(
            off.breakdown().total(),
            on.breakdown().total() + on.breakdown().elided
        );
    }
}

/// An always-on Eraser-style lockset detector (Savage et al. '97), the
/// classic pre-happens-before baseline the paper's related work contrasts
/// with: cheap bookkeeping, but *incomplete* — it cannot see non-mutex
/// synchronization (signal/wait, barriers, spawn/join, channel
/// send/recv), so it reports false positives on correctly ordered code.
#[derive(Debug)]
pub struct LocksetConsumer {
    ls: Lockset,
    cost: CostModel,
    tally: EventTally,
    /// Accesses that paid the lockset check (reads + writes).
    checked: u64,
}

impl LocksetConsumer {
    /// Creates a lockset consumer for `threads` threads.
    pub fn new(threads: usize, cost: CostModel) -> Self {
        LocksetConsumer {
            ls: Lockset::new(threads),
            cost,
            tally: EventTally::default(),
            checked: 0,
        }
    }

    /// Lockset violations reported (candidate set emptied while shared-
    /// modified). Some are true races; some are false positives.
    pub fn reports(&self) -> &[LocksetReport] {
        self.ls.reports()
    }

    /// Cycle breakdown (`baseline` + `checks`), derived from the event
    /// tallies exactly as per-event accumulation would have produced.
    ///
    /// Lockset checks are cheaper than vector-clock checks: a set
    /// intersection against the held set, modeled at half a TSan check.
    pub fn breakdown(&self) -> CycleBreakdown {
        let t = &self.tally;
        CycleBreakdown {
            baseline: t.mem * self.cost.mem_access
                + t.sync * self.cost.sync_op
                + t.compute_units * self.cost.compute_unit
                + t.syscalls * self.cost.syscall,
            checks: self.checked * (self.cost.tsan_check / 2),
            ..CycleBreakdown::default()
        }
    }
}

impl TraceConsumer for LocksetConsumer {
    fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.ls.read(t, site, addr);
        self.tally.mem += 1;
        self.checked += 1;
    }

    fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.ls.write(t, site, addr);
        self.tally.mem += 1;
        self.checked += 1;
    }

    fn rmw(&mut self, _t: ThreadId, _site: SiteId, _addr: Addr) {
        self.tally.mem += 1;
    }

    fn acquire(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.ls.lock_acquire(t, l);
        self.tally.sync += 1;
    }

    fn release(&mut self, t: ThreadId, _site: SiteId, l: LockId) {
        self.ls.lock_release(t, l);
        self.tally.sync += 1;
    }

    // Eraser is blind to every other synchronization primitive — that
    // blindness is its incompleteness — but their architectural cost is
    // still paid.
    fn signal(&mut self, _t: ThreadId, _site: SiteId, _c: CondId) {
        self.tally.sync += 1;
    }

    fn wait(&mut self, _t: ThreadId, _site: SiteId, _c: CondId) {
        self.tally.sync += 1;
    }

    fn spawn(&mut self, _t: ThreadId, _site: SiteId, _child: ThreadId) {
        self.tally.sync += 1;
    }

    fn join(&mut self, _t: ThreadId, _site: SiteId, _child: ThreadId) {
        self.tally.sync += 1;
    }

    fn barrier_arrive(&mut self, _t: ThreadId, _site: SiteId, _b: BarrierId) {
        self.tally.sync += 1;
    }

    fn chan_send(&mut self, _t: ThreadId, _site: SiteId, _ch: txrace_sim::ChanId) {
        self.tally.sync += 1;
    }

    fn chan_recv(&mut self, _t: ThreadId, _site: SiteId, _ch: txrace_sim::ChanId) {
        self.tally.sync += 1;
    }

    fn compute(&mut self, _t: ThreadId, _site: SiteId, units: u32) {
        self.tally.compute_units += u64::from(units);
    }

    fn syscall(&mut self, _t: ThreadId, _site: SiteId, _kind: SyscallKind) {
        self.tally.syscalls += 1;
    }
}

#[cfg(test)]
mod lockset_tests {
    use super::*;
    use txrace_sim::{Live, Machine, ProgramBuilder, RoundRobin, RunStatus};

    #[test]
    fn lockset_consumer_flags_unlocked_sharing() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write(x, 1);
        b.thread(1).write(x, 2);
        let p = b.build();
        let mut rt = Live::new(LocksetConsumer::new(2, CostModel::default()));
        let mut m = Machine::new(&p);
        let mut s = RoundRobin::new();
        assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);
        assert_eq!(rt.consumer().reports().len(), 1);
    }

    #[test]
    fn lockset_consumer_false_positive_on_signal_wait() {
        // Ordered by signal/wait: a HB detector stays silent, Eraser does
        // not — the incompleteness the paper's related work describes.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let c = b.cond_id("c");
        b.thread(0).write(x, 1).signal(c);
        b.thread(1).wait(c).write(x, 2);
        let p = b.build();
        let mut rt = Live::new(LocksetConsumer::new(2, CostModel::default()));
        let mut m = Machine::new(&p);
        let mut s = RoundRobin::new();
        assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);
        assert_eq!(
            rt.consumer().reports().len(),
            1,
            "expected the classic false positive"
        );
    }
}
