//! Heterogeneous detector panels for parallel replay: one enum wrapping
//! every pure-observer detector in the workspace, so a mixed set
//! (FastTrack + vcref + lockset + the TSan/lockset baselines) can ride a
//! single [`txrace_sim::fan_out`] pass over one [`txrace_sim::EventLog`]
//! and still be recovered as concrete detectors afterwards.
//!
//! `Vec<Box<dyn TraceConsumer + Send>>` also works with `fan_out`, but
//! type erasure loses the results; [`PanelConsumer`] keeps them.
//!
//! [`ShardedPanel`] is the address-sharded counterpart: the detectors
//! that shard by address (FastTrack and lockset) run over **one shared
//! [`ShardPlan`]** — the log is decoded and partitioned once, and every
//! panel member consumes the same per-shard access slices and sync
//! stream. The stream-order detectors (TSan with cycle accounting,
//! vcref) stay on the fan-out path: they are not address-decomposable,
//! so a reduced per-shard stream would change what they measure.

use txrace_hb::{
    FastTrack, ShardPlan, ShardedFastTrack, ShardedFtOutcome, ShardedLockset, ShardedLsOutcome,
    VectorClockDetector,
};
use txrace_sim::{
    Addr, BarrierId, ChanId, CondId, EventLog, LockId, SiteId, SyscallKind, ThreadId,
    TraceConsumer,
};

use crate::baselines::{LocksetConsumer, TsanConsumer};

/// One member of a heterogeneous detector panel.
///
/// Every variant is a pure observer, so replaying a panel over a log
/// produces exactly what each detector would have produced serially.
///
/// Variant sizes differ (the cost-accounting baselines carry more state
/// than raw FastTrack), but a panel holds a handful of members while
/// every event dispatches through the enum — boxing the large variants
/// would trade a few hundred stack bytes for a pointer chase on the
/// per-event hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum PanelConsumer {
    /// The TSan baseline (full or sampling), with cycle accounting.
    Tsan(TsanConsumer),
    /// The Eraser lockset baseline, with cycle accounting.
    Lockset(LocksetConsumer),
    /// Raw FastTrack (no cost model).
    FastTrack(FastTrack),
    /// The vector-clock reference detector.
    VcRef(VectorClockDetector),
}

impl PanelConsumer {
    /// A TSan panel member configured from the unified knob surface:
    /// `knobs.sampling` selects between the full and sampling baselines
    /// exactly as it does for [`crate::Detector`] runs, so a panel
    /// sweep and a detector sweep driven by the same [`crate::Knobs`] measure
    /// the same configuration.
    pub fn tsan_from_knobs(
        threads: usize,
        cost: crate::cost::CostModel,
        shadow_factor: f64,
        shadow: txrace_hb::ShadowMode,
        knobs: &crate::control::Knobs,
        seed: u64,
    ) -> Self {
        PanelConsumer::Tsan(TsanConsumer::from_knobs(
            threads,
            cost,
            shadow_factor,
            shadow,
            knobs,
            seed,
        ))
    }

    /// Short stable name for JSON/report rows.
    pub fn kind_name(&self) -> &'static str {
        match self {
            PanelConsumer::Tsan(_) => "tsan",
            PanelConsumer::Lockset(_) => "lockset",
            PanelConsumer::FastTrack(_) => "fasttrack",
            PanelConsumer::VcRef(_) => "vcref",
        }
    }

    /// Number of distinct findings (static race pairs, or lockset
    /// violations for the lockset variants).
    pub fn finding_count(&self) -> usize {
        match self {
            PanelConsumer::Tsan(c) => c.races().distinct_count(),
            PanelConsumer::Lockset(c) => c.reports().len(),
            PanelConsumer::FastTrack(c) => c.races().distinct_count(),
            PanelConsumer::VcRef(c) => c.races().distinct_count(),
        }
    }

    /// FNV-1a fingerprint of the full ordered report list — byte-level
    /// identity check between serial and parallel passes (two report
    /// lists fingerprint equal iff their debug serializations match,
    /// order included).
    pub fn fingerprint(&self) -> u64 {
        let dump = match self {
            PanelConsumer::Tsan(c) => format!("{:?}", c.races().reports()),
            PanelConsumer::Lockset(c) => format!("{:?}", c.reports()),
            PanelConsumer::FastTrack(c) => format!("{:?}", c.races().reports()),
            PanelConsumer::VcRef(c) => format!("{:?}", c.races().reports()),
        };
        fnv1a(dump.as_bytes())
    }

    /// The inner [`TsanConsumer`], if this is the TSan variant.
    pub fn into_tsan(self) -> Option<TsanConsumer> {
        match self {
            PanelConsumer::Tsan(c) => Some(c),
            _ => None,
        }
    }

    /// The inner [`LocksetConsumer`], if this is the lockset variant.
    pub fn into_lockset(self) -> Option<LocksetConsumer> {
        match self {
            PanelConsumer::Lockset(c) => Some(c),
            _ => None,
        }
    }

    /// The inner [`FastTrack`], if this is the raw FastTrack variant.
    pub fn into_fasttrack(self) -> Option<FastTrack> {
        match self {
            PanelConsumer::FastTrack(c) => Some(c),
            _ => None,
        }
    }

    /// The inner [`VectorClockDetector`], if this is the vcref variant.
    pub fn into_vcref(self) -> Option<VectorClockDetector> {
        match self {
            PanelConsumer::VcRef(c) => Some(c),
            _ => None,
        }
    }
}

/// The address-sharded detector panel: FastTrack and lockset over one
/// shared [`ShardPlan`].
///
/// This is the panel counterpart of the one-decode contract in
/// `txrace_hb::sharded` — a heterogeneous sweep pays for trace decode
/// and access partitioning **once**, then every sharded detector reuses
/// the same per-shard slices and broadcast sync stream.
#[derive(Debug, Clone, Copy)]
pub struct ShardedPanel {
    threads: usize,
    workers: usize,
}

/// What a [`ShardedPanel`] run produces: both sharded outcomes, plus
/// the shard count they shared.
#[derive(Debug)]
pub struct ShardedPanelOutcome {
    /// Sharded FastTrack verdict (byte-identical to serial Exact mode).
    pub fasttrack: ShardedFtOutcome,
    /// Sharded lockset verdict (byte-identical to the serial baseline).
    pub lockset: ShardedLsOutcome,
    /// Shard count of the plan both detectors consumed.
    pub workers: usize,
}

impl ShardedPanelOutcome {
    /// FNV-1a fingerprint of the FastTrack report list (comparable to
    /// [`PanelConsumer::fingerprint`] of a serial FastTrack member).
    pub fn fasttrack_fingerprint(&self) -> u64 {
        fnv1a(format!("{:?}", self.fasttrack.races.reports()).as_bytes())
    }

    /// FNV-1a fingerprint of the lockset report list.
    pub fn lockset_fingerprint(&self) -> u64 {
        fnv1a(format!("{:?}", self.lockset.reports).as_bytes())
    }
}

impl ShardedPanel {
    /// A panel for `threads`-thread logs, sharded `workers` ways.
    pub fn new(threads: usize, workers: usize) -> Self {
        ShardedPanel { threads, workers }
    }

    /// Indexes `log` once and runs both sharded detectors over the
    /// resulting plan.
    pub fn run(&self, log: &EventLog) -> ShardedPanelOutcome {
        let plan = ShardPlan::build(log, self.workers);
        self.run_with_plan(&plan)
    }

    /// Runs both sharded detectors over a caller-built plan (which may
    /// itself share a [`txrace_sim::SyncIndex`] across shard counts).
    ///
    /// # Panics
    ///
    /// If `plan` was built for a different shard count.
    pub fn run_with_plan(&self, plan: &ShardPlan) -> ShardedPanelOutcome {
        let fasttrack = ShardedFastTrack::new(self.threads, self.workers).run_with_plan(plan);
        let lockset = ShardedLockset::new(self.threads, self.workers).run_with_plan(plan);
        ShardedPanelOutcome {
            fasttrack,
            lockset,
            workers: self.workers,
        }
    }
}

/// FNV-1a over `bytes` (matches the trace-cache key hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Explicit trait-path delegation: `FastTrack` has inherent methods
/// whose names shadow the trait's but take different arguments
/// (`signal(t, c)` vs `signal(t, site, c)`), so `c.method(...)` would
/// not resolve; `TraceConsumer::method(c, ...)` always does.
macro_rules! delegate_consumer {
    ($($method:ident ( $($arg:ident : $ty:ty),* )),* $(,)?) => {
        $(
            fn $method(&mut self, $($arg: $ty),*) {
                match self {
                    PanelConsumer::Tsan(c) => TraceConsumer::$method(c, $($arg),*),
                    PanelConsumer::Lockset(c) => TraceConsumer::$method(c, $($arg),*),
                    PanelConsumer::FastTrack(c) => TraceConsumer::$method(c, $($arg),*),
                    PanelConsumer::VcRef(c) => TraceConsumer::$method(c, $($arg),*),
                }
            }
        )*
    };
}

impl TraceConsumer for PanelConsumer {
    delegate_consumer! {
        read(t: ThreadId, site: SiteId, addr: Addr),
        write(t: ThreadId, site: SiteId, addr: Addr),
        rmw(t: ThreadId, site: SiteId, addr: Addr),
        acquire(t: ThreadId, site: SiteId, l: LockId),
        release(t: ThreadId, site: SiteId, l: LockId),
        signal(t: ThreadId, site: SiteId, c: CondId),
        wait(t: ThreadId, site: SiteId, c: CondId),
        spawn(t: ThreadId, site: SiteId, child: ThreadId),
        join(t: ThreadId, site: SiteId, child: ThreadId),
        barrier_arrive(t: ThreadId, site: SiteId, b: BarrierId),
        barrier_release(b: BarrierId, arrivals: &[(ThreadId, SiteId)]),
        compute(t: ThreadId, site: SiteId, units: u32),
        syscall(t: ThreadId, site: SiteId, kind: SyscallKind),
        chan_send(t: ThreadId, site: SiteId, ch: ChanId),
        chan_recv(t: ThreadId, site: SiteId, ch: ChanId),
        thread_done(t: ThreadId),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_hb::{Lockset, ShadowMode};
    use txrace_sim::{fan_out, record_run, FairSched, ProgramBuilder, StepLimit};

    fn racy_log() -> (txrace_sim::EventLog, usize) {
        let n = 3;
        let mut b = ProgramBuilder::new(n);
        let x = b.var("x");
        let y = b.var("y");
        let l = b.lock_id("l");
        for t in 0..n {
            b.thread(t)
                .write(x, t as u64 + 1)
                .lock(l)
                .rmw(y, 1)
                .unlock(l)
                .read(x);
        }
        let p = b.build();
        let mut sched = FairSched::new(3, 0.1);
        (record_run(&p, &mut sched, StepLimit::default()), n)
    }

    #[test]
    fn panel_fan_out_matches_serial_per_detector() {
        let (log, n) = racy_log();

        let mut serial_ft = FastTrack::new(n, ShadowMode::Exact);
        log.replay(&mut serial_ft);
        let mut serial_vc = VectorClockDetector::new(n);
        log.replay(&mut serial_vc);
        let mut serial_ls = Lockset::new(n);
        log.replay(&mut serial_ls);

        let panel = vec![
            PanelConsumer::FastTrack(FastTrack::new(n, ShadowMode::Exact)),
            PanelConsumer::VcRef(VectorClockDetector::new(n)),
            PanelConsumer::Lockset(LocksetConsumer::new(n, crate::cost::CostModel::default())),
        ];
        let reports = fan_out(&log, panel, 3);
        let ft = match &reports[0].consumer {
            PanelConsumer::FastTrack(c) => c,
            other => panic!("order must be preserved, got {}", other.kind_name()),
        };
        assert_eq!(ft.races().reports(), serial_ft.races().reports());
        let vc = match &reports[1].consumer {
            PanelConsumer::VcRef(c) => c,
            other => panic!("order must be preserved, got {}", other.kind_name()),
        };
        assert_eq!(vc.races().reports(), serial_vc.races().reports());
        let ls = match &reports[2].consumer {
            PanelConsumer::Lockset(c) => c.reports(),
            other => panic!("order must be preserved, got {}", other.kind_name()),
        };
        assert_eq!(ls, serial_ls.reports());
    }

    #[test]
    fn sharded_panel_shares_one_plan_and_matches_serial() {
        let (log, n) = racy_log();

        let mut serial_ft = FastTrack::new(n, ShadowMode::Exact);
        log.replay(&mut serial_ft);
        let mut serial_ls = Lockset::new(n);
        log.replay(&mut serial_ls);
        let mut serial_panel = PanelConsumer::FastTrack(FastTrack::new(n, ShadowMode::Exact));
        log.replay(&mut serial_panel);

        for workers in [1, 2, 4, 8] {
            let plan = ShardPlan::build(&log, workers);
            let out = ShardedPanel::new(n, workers).run_with_plan(&plan);
            // Both detectors consumed the same partition and reproduce
            // their serial verdicts byte for byte.
            assert_eq!(out.fasttrack.races.reports(), serial_ft.races().reports());
            assert_eq!(out.lockset.reports, serial_ls.reports());
            assert_eq!(out.fasttrack.shards.len(), workers);
            assert_eq!(out.lockset.shards.len(), workers);
            // Shared-plan invariant: both detectors report identical
            // per-shard dispatched-event counts (slice + sync stream).
            for (f, l) in out.fasttrack.shards.iter().zip(&out.lockset.shards) {
                assert_eq!(f.events, l.events);
            }
            // Sharded fingerprints line up with the serial panel member.
            assert_eq!(out.fasttrack_fingerprint(), serial_panel.fingerprint());
            assert_eq!(out.workers, workers);
            // And the plan-less entry point agrees.
            let direct = ShardedPanel::new(n, workers).run(&log);
            assert_eq!(direct.fasttrack_fingerprint(), out.fasttrack_fingerprint());
            assert_eq!(direct.lockset_fingerprint(), out.lockset_fingerprint());
        }
    }

    #[test]
    fn tsan_from_knobs_matches_direct_construction() {
        use crate::control::Knobs;
        use crate::cost::CostModel;

        let (log, n) = racy_log();
        // Full (sampling: None) and sampling (Some(rate)) knob configs
        // must reproduce the directly-constructed baselines replay for
        // replay.
        for knobs in [Knobs::default(), Knobs::default().with_sampling(0.5)] {
            let mut via_knobs = PanelConsumer::tsan_from_knobs(
                n,
                CostModel::default(),
                1.0,
                ShadowMode::Exact,
                &knobs,
                7,
            );
            let mut direct = PanelConsumer::Tsan(TsanConsumer::from_knobs(
                n,
                CostModel::default(),
                1.0,
                ShadowMode::Exact,
                &knobs,
                7,
            ));
            log.replay(&mut via_knobs);
            log.replay(&mut direct);
            assert_eq!(via_knobs.fingerprint(), direct.fingerprint());
        }
    }

    #[test]
    fn fingerprints_detect_report_differences() {
        let (log, n) = racy_log();
        let mut a = PanelConsumer::FastTrack(FastTrack::new(n, ShadowMode::Exact));
        log.replay(&mut a);
        let mut b = PanelConsumer::FastTrack(FastTrack::new(n, ShadowMode::Exact));
        log.replay(&mut b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.finding_count() > 0);
        let empty = PanelConsumer::FastTrack(FastTrack::new(n, ShadowMode::Exact));
        assert_ne!(a.fingerprint(), empty.fingerprint());
        assert!(a.into_fasttrack().is_some());
    }
}
