//! # txrace
//!
//! A reproduction of **TxRace: Efficient Data Race Detection Using
//! Commodity Hardware Transactional Memory** (Tong Zhang, Dongyoon Lee,
//! Changhee Jung — ASPLOS 2016), built on a simulated best-effort HTM
//! ([`txrace_htm`]) and a FastTrack happens-before detector
//! ([`txrace_hb`]) over the [`txrace_sim`] program substrate.
//!
//! ## How TxRace works
//!
//! 1. **Transactionalization** ([`mod@instrument`]): a compile-time pass turns
//!    every synchronization-free region (including critical sections) into
//!    a hardware transaction, cutting at system calls, and makes every
//!    transaction begin by reading a shared `TxFail` flag.
//! 2. **Fast path** ([`engine`]): the HTM's cache-line conflict detection
//!    flags *potential* races as conflict aborts at near-zero cost.
//! 3. **Slow path**: on a conflict abort, the aborted thread writes
//!    `TxFail`; strong isolation + requester-wins then abort every
//!    in-flight transaction. All involved threads roll back to their
//!    region starts and re-execute under sound & complete FastTrack
//!    checking, which pinpoints the racy instruction pair and filters
//!    false sharing. Capacity/unknown aborts send only the aborted thread
//!    to the slow path.
//! 4. **Optimizations**: single-threaded-mode elision, slow-path-only tiny
//!    regions (`K < 5` memory ops), and the loop-cut transformation
//!    ([`loopcut`]) that learns how many loop iterations fit in the HTM
//!    write buffer.
//!
//! ## Quickstart
//!
//! ```
//! use txrace::{Detector, RunConfig, Scheme};
//! use txrace_sim::ProgramBuilder;
//!
//! // Two threads write the same variable with no synchronization.
//! let mut b = ProgramBuilder::new(2);
//! let x = b.var("x");
//! for t in 0..2 {
//!     b.thread(t).compute(10).write_l(x, t as u64, &format!("w{t}")).compute(10);
//! }
//! let program = b.build();
//!
//! let outcome = Detector::new(RunConfig::new(Scheme::txrace(), 42)).run(&program);
//! assert_eq!(outcome.races.distinct_count(), 1);
//! assert!(outcome.overhead >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
pub mod control;
pub mod cost;
pub mod detector;
pub mod engine;
pub mod instrument;
pub mod loopcut;
pub mod parallel;
pub mod sa;

pub use baselines::{LocksetConsumer, TsanConsumer};
pub use control::{
    AdaptiveController, ControlDecision, EpochRecord, Knobs, ProductionMode, Telemetry,
};
pub use cost::{CostModel, CycleBreakdown};
pub use detector::{recall, Detector, RunConfig, RunOutcome, SchedKind, Scheme, TxRaceOpts};
pub use engine::EngineConfig;
pub use engine::{EngineStats, SlowTrigger, TxRaceEngine, TXFAIL_ADDR};
pub use instrument::instrument;
pub use instrument::{
    instrument_pruned, InstrumentConfig, InstrumentedProgram, RegionInfo, RegionKind,
};
pub use loopcut::{LoopcutMode, LoopcutProfile, LoopcutState};
pub use parallel::{PanelConsumer, ShardedPanel, ShardedPanelOutcome};
pub use sa::{
    watch_sites, Confirmation, FlowAnalysis, MayRacePairs, PruneStats, RaceFreeReason, SiteClass,
    SiteClassTable, StaticPruneMode,
};
