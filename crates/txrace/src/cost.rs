//! The deterministic cycle-accounting cost model.
//!
//! The paper reports wall-clock overheads on a Haswell testbed; this
//! reproduction replaces time with transparent cycle accounting so results
//! are exactly reproducible. Every IR operation has a base cost; detection
//! machinery (TSan checks, transaction begin/end, rollbacks, sync
//! tracking) adds documented extra costs attributed to the overhead
//! buckets of the paper's Figure 7.

use txrace_sim::{Op, OpCensus, Program};

/// Per-operation cycle costs.
///
/// `tsan_check` is the cost of one FastTrack shadow-memory check; the
/// per-workload `shadow_factor` in [`crate::RunConfig`] scales it to model
/// shadow-memory cache behaviour (the paper's vips suffers ~1200x TSan
/// overhead where blackscholes sees 1.85x — a property of the workload's
/// memory access pattern, not of the algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// One shared-memory access.
    pub mem_access: u64,
    /// One cycle of `Compute` (multiplier).
    pub compute_unit: u64,
    /// Architectural cost of a synchronization op.
    pub sync_op: u64,
    /// Architectural cost of a system call.
    pub syscall: u64,
    /// `xbegin` plus the instrumented TxFail read.
    pub xbegin: u64,
    /// `xend` (commit).
    pub xend: u64,
    /// One software happens-before access check (TSan hook).
    pub tsan_check: u64,
    /// Happens-before tracking of one sync op (done on every path, §5).
    pub tsan_sync: u64,
    /// Fixed cost of one transactional rollback (register restore, cache
    /// refill, fallback-path dispatch).
    pub rollback_penalty: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mem_access: 1,
            compute_unit: 1,
            sync_op: 12,
            syscall: 20,
            xbegin: 45,
            xend: 25,
            tsan_check: 38,
            tsan_sync: 35,
            rollback_penalty: 150,
        }
    }
}

impl CostModel {
    /// The architectural (uninstrumented) cost of one op. Instrumentation
    /// markers are free here; their cost is charged by the engine as
    /// overhead.
    pub fn base_op_cost(&self, op: &Op) -> u64 {
        match op {
            Op::Read(_)
            | Op::Write(_, _)
            | Op::Rmw(_, _)
            | Op::ReadArr { .. }
            | Op::WriteArr { .. } => self.mem_access,
            Op::Compute(n) => u64::from(*n) * self.compute_unit,
            Op::Syscall(_) => self.syscall,
            Op::Lock(_)
            | Op::Unlock(_)
            | Op::Signal(_)
            | Op::Wait(_)
            | Op::Barrier(_)
            | Op::ChanSend(_)
            | Op::ChanRecv(_)
            | Op::Spawn(_)
            | Op::Join(_) => self.sync_op,
            Op::TxBegin(_) | Op::TxEnd(_) | Op::LoopCutProbe(_) => 0,
        }
    }

    /// Total uninstrumented cycles of `p` (loop-weighted static sum).
    /// This is the "original execution time" denominator for overheads.
    pub fn baseline_cycles(&self, p: &Program) -> u64 {
        p.fold_dynamic(|op| self.base_op_cost(op))
    }

    /// Total uninstrumented cycles from a recorded log's [`OpCensus`].
    /// Base costs are uniform within each census class, so this equals
    /// [`CostModel::baseline_cycles`] of the recorded program exactly —
    /// which is what lets a replayed analysis price a run without ever
    /// seeing the [`Program`].
    pub fn baseline_cycles_of_census(&self, c: &OpCensus) -> u64 {
        c.mem_accesses * self.mem_access
            + c.compute_units * self.compute_unit
            + c.sync_ops * self.sync_op
            + c.syscalls * self.syscall
    }

    /// The effective TSan check cost under a workload shadow factor.
    pub fn effective_tsan_check(&self, shadow_factor: f64) -> u64 {
        ((self.tsan_check as f64) * shadow_factor).round().max(1.0) as u64
    }
}

/// Cycle totals attributed to the categories of the paper's Figure 7.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Work the uninstrumented program would also do (done-once op costs).
    pub baseline: u64,
    /// Pure fast-path overhead: xbegin/xend, TxFail reads, fast-path sync
    /// tracking, and slow-only tiny-region checks.
    pub txn_mgmt: u64,
    /// Handling conflict aborts: wasted transactional work, rollbacks, and
    /// slow-path re-execution checks triggered by conflicts.
    pub conflict: u64,
    /// Handling capacity aborts (incl. hardware slot exhaustion).
    pub capacity: u64,
    /// Handling unknown/retry aborts.
    pub unknown: u64,
    /// Software check cost for always-on detectors (TSan baselines).
    pub checks: u64,
    /// Check cost *avoided* by the static race-freedom pruning analysis:
    /// every elided check records here what it would have cost. Not part
    /// of [`CycleBreakdown::total`] — the run never paid these cycles —
    /// so `total_unpruned == total_pruned + elided` for a
    /// schedule-identical pair of runs.
    pub elided: u64,
}

impl CycleBreakdown {
    /// Total instrumented cycles.
    pub fn total(&self) -> u64 {
        self.baseline + self.txn_mgmt + self.conflict + self.capacity + self.unknown + self.checks
    }

    /// Overhead factor relative to `baseline_cycles` (>= 1.0 when the
    /// instrumented run did at least the original work).
    pub fn overhead_vs(&self, baseline_cycles: u64) -> f64 {
        if baseline_cycles == 0 {
            return 1.0;
        }
        self.total() as f64 / baseline_cycles as f64
    }

    /// Extra (non-baseline) paid cycles: everything detection added on
    /// top of the work the uninstrumented program would also have done.
    /// This is what the adaptive controller's allowance is spent on.
    pub fn extra(&self) -> u64 {
        self.total() - self.baseline
    }

    /// Field-wise difference `self - prev`, for per-epoch telemetry
    /// deltas. `prev` must be an earlier snapshot of the same
    /// accumulator (every field monotonically non-decreasing).
    pub fn delta(&self, prev: &CycleBreakdown) -> CycleBreakdown {
        CycleBreakdown {
            baseline: self.baseline - prev.baseline,
            txn_mgmt: self.txn_mgmt - prev.txn_mgmt,
            conflict: self.conflict - prev.conflict,
            capacity: self.capacity - prev.capacity,
            unknown: self.unknown - prev.unknown,
            checks: self.checks - prev.checks,
            elided: self.elided - prev.elided,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::{ProgramBuilder, SyscallKind};

    #[test]
    fn base_costs_follow_op_kind() {
        let c = CostModel::default();
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).read(x).compute(100).syscall(SyscallKind::Io);
        let p = b.build();
        assert_eq!(
            c.baseline_cycles(&p),
            c.mem_access + 100 * c.compute_unit + c.syscall
        );
    }

    #[test]
    fn markers_are_free_in_baseline() {
        let c = CostModel::default();
        assert_eq!(c.base_op_cost(&Op::TxBegin(txrace_sim::RegionId(0))), 0);
        assert_eq!(c.base_op_cost(&Op::LoopCutProbe(txrace_sim::LoopId(0))), 0);
    }

    #[test]
    fn census_pricing_equals_program_pricing() {
        let c = CostModel::default();
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).loop_n(9, |t| {
            t.lock(l).rmw(x, 1).unlock(l).compute(4);
        });
        b.thread(1).read(x).syscall(SyscallKind::Io).write(x, 1);
        let p = b.build();
        assert_eq!(
            c.baseline_cycles_of_census(&OpCensus::of(&p)),
            c.baseline_cycles(&p)
        );
    }

    #[test]
    fn loops_multiply_baseline() {
        let c = CostModel::default();
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(10, |t| {
            t.read(x);
        });
        let p = b.build();
        assert_eq!(c.baseline_cycles(&p), 10 * c.mem_access);
    }

    #[test]
    fn breakdown_totals_and_overhead() {
        let bd = CycleBreakdown {
            baseline: 100,
            txn_mgmt: 20,
            conflict: 30,
            capacity: 0,
            unknown: 0,
            checks: 0,
            elided: 40,
        };
        // Elided cycles were never paid: they do not count toward total.
        assert_eq!(bd.total(), 150);
        assert!((bd.overhead_vs(100) - 1.5).abs() < 1e-9);
        assert_eq!(bd.overhead_vs(0), 1.0);
        assert_eq!(bd.extra(), 50);
    }

    #[test]
    fn delta_is_fieldwise_difference() {
        let prev = CycleBreakdown {
            baseline: 10,
            txn_mgmt: 5,
            conflict: 2,
            capacity: 1,
            unknown: 0,
            checks: 4,
            elided: 3,
        };
        let now = CycleBreakdown {
            baseline: 25,
            txn_mgmt: 9,
            conflict: 2,
            capacity: 6,
            unknown: 1,
            checks: 4,
            elided: 8,
        };
        let d = now.delta(&prev);
        assert_eq!(d.baseline, 15);
        assert_eq!(d.txn_mgmt, 4);
        assert_eq!(d.conflict, 0);
        assert_eq!(d.capacity, 5);
        assert_eq!(d.unknown, 1);
        assert_eq!(d.checks, 0);
        assert_eq!(d.elided, 5);
        assert_eq!(d.total() + prev.total(), now.total());
    }

    #[test]
    fn shadow_factor_scales_checks() {
        let c = CostModel::default();
        assert_eq!(c.effective_tsan_check(1.0), c.tsan_check);
        assert_eq!(c.effective_tsan_check(2.0), 2 * c.tsan_check);
        assert_eq!(c.effective_tsan_check(0.0), 1, "floor at one cycle");
    }
}
