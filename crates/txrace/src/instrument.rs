//! The transactionalization pass (paper §4.1, Figure 1).
//!
//! Walks the program IR exactly like the paper's LLVM pass walks LLVM IR:
//!
//! * inserts `TxBegin` at thread entry points and after synchronization
//!   operations; `TxEnd` at thread exits and before synchronization
//!   operations — so every synchronization-free region (including each
//!   critical section) becomes one transaction;
//! * cuts transactions around system calls (a privilege-level change
//!   always aborts an RTM transaction);
//! * marks regions with fewer than `K` memory operations as
//!   [`RegionKind::SlowOnly`] — for tiny regions the HTM management cost
//!   exceeds the software check cost (§4.3, `K = 5`);
//! * elides instrumentation entirely for the single-threaded prologue and
//!   epilogue of the main thread (§4.3): no concurrency, no races;
//! * appends a [`Op::LoopCutProbe`] to every loop that stays inside a
//!   region, the hook for the loop-cut optimization (§4.3).
//!
//! Original site identities are preserved; marker instructions mint new
//! sites above the original range.

use txrace_sim::{LoopId, Op, Program, RegionId, SiteId, Stmt, ThreadId};

use crate::sa::SiteClassTable;

/// Pass configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrumentConfig {
    /// Regions with fewer dynamic memory ops than this go slow-path-only
    /// (the paper uses 5).
    pub k_min_ops: u64,
    /// Insert loop-cut probes (disable to model a probe-free build).
    pub loopcut_probes: bool,
    /// Elide instrumentation for single-threaded main-thread segments.
    pub single_thread_elision: bool,
}

impl Default for InstrumentConfig {
    fn default() -> Self {
        InstrumentConfig {
            k_min_ops: 5,
            loopcut_probes: true,
            single_thread_elision: true,
        }
    }
}

impl InstrumentConfig {
    /// Derives the pass configuration from the unified control-plane
    /// knobs: the `K` small-region threshold is the only knob the pass
    /// consumes (sampling, loop-cut threshold, and pruning act at
    /// runtime). With default knobs this equals
    /// [`InstrumentConfig::default`].
    pub fn from_knobs(knobs: &crate::control::Knobs) -> Self {
        InstrumentConfig {
            k_min_ops: knobs.k_min_ops,
            ..InstrumentConfig::default()
        }
    }
}

/// How the runtime should treat a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Run as a hardware transaction (the fast path).
    Fast,
    /// Too small to be worth a transaction: always software-checked.
    SlowOnly,
}

/// Static description of one transactional region.
#[derive(Debug, Clone)]
pub struct RegionInfo {
    /// Region identity (index into the region table).
    pub id: RegionId,
    /// Owning thread.
    pub thread: ThreadId,
    /// Fast or slow-only.
    pub kind: RegionKind,
    /// Dynamic shared-memory accesses in one execution of the region.
    pub mem_ops: u64,
    /// Dynamic accesses the slow path would actually check: `mem_ops`
    /// minus accesses at sites the static race-freedom analysis pruned.
    /// Equal to `mem_ops` when instrumenting without a prune table.
    pub checked_ops: u64,
    /// Loops contained in the region (loop-cut candidates), innermost
    /// loops included.
    pub loops: Vec<LoopId>,
}

/// The output of the pass: the instrumented program plus its region table.
#[derive(Debug, Clone)]
pub struct InstrumentedProgram {
    /// The program with `TxBegin`/`TxEnd`/`LoopCutProbe` markers inserted.
    pub program: Program,
    /// Region table indexed by [`RegionId`].
    pub regions: Vec<RegionInfo>,
}

impl InstrumentedProgram {
    /// Looks up a region.
    pub fn region(&self, r: RegionId) -> &RegionInfo {
        &self.regions[r.index()]
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

/// Runs the transactionalization pass over `p`.
pub fn instrument(p: &Program, cfg: &InstrumentConfig) -> InstrumentedProgram {
    instrument_pruned(p, cfg, None)
}

/// Runs the transactionalization pass with an optional static prune
/// table ([`crate::StaticPruneMode::Full`]). Accesses at race-free sites
/// still execute, but no longer count toward region sizing: a region
/// whose checkable ops all prune away keeps no `TxBegin`/`TxEnd` markers
/// at all (the HTM never sees it), and the `K` small-region threshold is
/// applied to the *pruned* op count. With `prune = None` the output is
/// byte-identical to [`instrument`].
pub fn instrument_pruned(
    p: &Program,
    cfg: &InstrumentConfig,
    prune: Option<&SiteClassTable>,
) -> InstrumentedProgram {
    let mut pass = Pass {
        cfg,
        prune,
        next_site: p.site_count(),
        regions: Vec::new(),
    };
    let mut new_threads = Vec::with_capacity(p.thread_count());
    for t in 0..p.thread_count() {
        let tid = ThreadId(t as u32);
        let stmts = p.thread(tid);
        if t == 0 && cfg.single_thread_elision {
            new_threads.push(pass.xform_main(p, stmts));
        } else {
            new_threads.push(pass.xform_instrumented(tid, stmts));
        }
    }
    let program = p.with_transformed_threads(new_threads, pass.next_site);
    InstrumentedProgram {
        program,
        regions: pass.regions,
    }
}

/// A region boundary: transactions end before and begin after these.
/// Channel send/recv is `is_sync()`, so message-passing ops cut
/// transactions exactly like syscalls do — a blocking channel op inside
/// a hardware transaction would either deadlock (the wakeup write is
/// isolated) or abort on the partner's conflicting queue access, so the
/// region is split instead and the op runs untracked like other sync.
fn is_boundary(op: &Op) -> bool {
    op.is_sync() || matches!(op, Op::Syscall(_))
}

fn stmt_contains(stmts: &[Stmt], pred: &impl Fn(&Op) -> bool) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Op { op, .. } => pred(op),
        Stmt::Loop { body, .. } => stmt_contains(body, pred),
    })
}

/// Removes `LoopCutProbe` markers from a statement tree (used when a
/// buffered region turns out to be unmonitored).
fn strip_probes(s: Stmt) -> Option<Stmt> {
    match s {
        Stmt::Op {
            op: Op::LoopCutProbe(_),
            ..
        } => None,
        Stmt::Op { .. } => Some(s),
        Stmt::Loop { id, trips, body } => Some(Stmt::Loop {
            id,
            trips,
            body: body.into_iter().filter_map(strip_probes).collect(),
        }),
    }
}

#[derive(Default)]
struct RegionBuf {
    stmts: Vec<Stmt>,
    mem_ops: u64,
    checked_ops: u64,
    loops: Vec<LoopId>,
}

struct Pass<'c> {
    cfg: &'c InstrumentConfig,
    prune: Option<&'c SiteClassTable>,
    next_site: u32,
    regions: Vec<RegionInfo>,
}

impl Pass<'_> {
    fn fresh_site(&mut self) -> SiteId {
        let s = SiteId(self.next_site);
        self.next_site += 1;
        s
    }

    /// Whether the slow path would check an access at `site` (1) or the
    /// prune table proves it race-free (0).
    fn checked(&self, site: SiteId) -> u64 {
        match self.prune {
            Some(t) if t.is_race_free(site) => 0,
            _ => 1,
        }
    }

    /// Main thread: uninstrumented single-threaded prologue/epilogue
    /// around the instrumented concurrent middle.
    fn xform_main(&mut self, p: &Program, stmts: &[Stmt]) -> Vec<Stmt> {
        let others_parked = (1..p.thread_count()).all(|t| p.starts_parked(ThreadId(t as u32)));
        if !others_parked {
            // Concurrency from the start: no single-threaded mode.
            return self.xform_instrumented(ThreadId(0), stmts);
        }
        let has_spawn = |s: &Stmt| match s {
            Stmt::Op { op, .. } => matches!(op, Op::Spawn(_)),
            Stmt::Loop { body, .. } => stmt_contains(body, &|op| matches!(op, Op::Spawn(_))),
        };
        let has_join = |s: &Stmt| match s {
            Stmt::Op { op, .. } => matches!(op, Op::Join(_)),
            Stmt::Loop { body, .. } => stmt_contains(body, &|op| matches!(op, Op::Join(_))),
        };
        let first_spawn = stmts.iter().position(has_spawn);
        let Some(first_spawn) = first_spawn else {
            // Main never spawns anyone: the whole program is single-threaded.
            return stmts.to_vec();
        };
        // The epilogue is single-threaded only if main (transitively) joins
        // every spawned thread; conservatively require one top-level join
        // per non-main thread.
        let join_count: usize = stmts.iter().filter(|s| has_join(s)).count();
        let spawned: usize = (1..p.thread_count())
            .filter(|&t| p.starts_parked(ThreadId(t as u32)))
            .count();
        let last_join = if join_count >= spawned {
            stmts.iter().rposition(has_join)
        } else {
            None
        };

        let mut out: Vec<Stmt> = stmts[..first_spawn].to_vec();
        // The epilogue split only applies when the last join comes after
        // the first spawn; a join *before* the first spawn (a program that
        // will deadlock at runtime) must not produce a decreasing range.
        let (middle, suffix) = match last_join {
            Some(lj) if lj >= first_spawn => (&stmts[first_spawn..=lj], &stmts[lj + 1..]),
            _ => (&stmts[first_spawn..], &stmts[..0]),
        };
        out.extend(self.xform_instrumented(ThreadId(0), middle));
        out.extend(suffix.to_vec());
        out
    }

    fn xform_instrumented(&mut self, t: ThreadId, stmts: &[Stmt]) -> Vec<Stmt> {
        let mut out = Vec::new();
        let mut buf: Option<RegionBuf> = None;
        self.seq(t, stmts, &mut out, &mut buf);
        self.close(t, &mut out, &mut buf);
        out
    }

    fn seq(
        &mut self,
        t: ThreadId,
        stmts: &[Stmt],
        out: &mut Vec<Stmt>,
        buf: &mut Option<RegionBuf>,
    ) {
        for s in stmts {
            match s {
                Stmt::Op { op, .. } if is_boundary(op) => {
                    self.close(t, out, buf);
                    out.push(s.clone());
                }
                Stmt::Op { site, op } => {
                    let checked = self.checked(*site);
                    let b = buf.get_or_insert_with(RegionBuf::default);
                    if op.is_data_access() {
                        b.mem_ops += 1;
                        b.checked_ops += checked;
                    }
                    b.stmts.push(s.clone());
                }
                Stmt::Loop { id, trips, body } => {
                    if stmt_contains(body, &is_boundary) {
                        // The loop body has its own region structure, one
                        // set of transactions per iteration.
                        self.close(t, out, buf);
                        let mut inner_out = Vec::new();
                        let mut inner_buf = None;
                        self.seq(t, body, &mut inner_out, &mut inner_buf);
                        self.close(t, &mut inner_out, &mut inner_buf);
                        out.push(Stmt::Loop {
                            id: *id,
                            trips: *trips,
                            body: inner_out,
                        });
                    } else {
                        let (new_loop, ops, checked, mut loops) = self.pure_loop(*id, *trips, body);
                        let b = buf.get_or_insert_with(RegionBuf::default);
                        b.mem_ops += ops;
                        b.checked_ops += checked;
                        b.loops.append(&mut loops);
                        b.stmts.push(new_loop);
                    }
                }
            }
        }
    }

    /// Instruments a boundary-free loop: adds probes (recursively) and
    /// returns `(loop, dynamic_mem_ops, dynamic_checked_ops,
    /// contained_loop_ids)`.
    fn pure_loop(
        &mut self,
        id: LoopId,
        trips: u32,
        body: &[Stmt],
    ) -> (Stmt, u64, u64, Vec<LoopId>) {
        let mut new_body = Vec::with_capacity(body.len() + 1);
        let mut ops_per_iter = 0u64;
        let mut checked_per_iter = 0u64;
        let mut loops = vec![id];
        for s in body {
            match s {
                Stmt::Op { site, op } => {
                    debug_assert!(!is_boundary(op), "pure loop contains a boundary");
                    if op.is_data_access() {
                        ops_per_iter += 1;
                        checked_per_iter += self.checked(*site);
                    }
                    new_body.push(s.clone());
                }
                Stmt::Loop {
                    id: nid,
                    trips: ntrips,
                    body: nbody,
                } => {
                    let (nl, nops, nchecked, mut nloops) = self.pure_loop(*nid, *ntrips, nbody);
                    ops_per_iter += nops;
                    checked_per_iter += nchecked;
                    loops.append(&mut nloops);
                    new_body.push(nl);
                }
            }
        }
        if self.cfg.loopcut_probes {
            new_body.push(Stmt::Op {
                site: self.fresh_site(),
                op: Op::LoopCutProbe(id),
            });
        }
        (
            Stmt::Loop {
                id,
                trips,
                body: new_body,
            },
            u64::from(trips) * ops_per_iter,
            u64::from(trips) * checked_per_iter,
            loops,
        )
    }

    fn close(&mut self, t: ThreadId, out: &mut Vec<Stmt>, buf: &mut Option<RegionBuf>) {
        let Some(b) = buf.take() else {
            return;
        };
        if b.stmts.is_empty() {
            return;
        }
        if b.checked_ops == 0 {
            // Nothing a race detector cares about (no accesses at all, or
            // every access proved race-free by the prune table): leave
            // unmonitored — after stripping any loop-cut probes, which are
            // meaningless (and would be orphaned) outside a region.
            out.extend(b.stmts.into_iter().filter_map(strip_probes));
            return;
        }
        // The K threshold compares against the ops the slow path would
        // actually check: a region of 20 accesses of which 18 prune away
        // is a tiny region, not a transaction candidate.
        let kind = if b.checked_ops < self.cfg.k_min_ops {
            RegionKind::SlowOnly
        } else {
            RegionKind::Fast
        };
        let rid = RegionId(self.regions.len() as u32);
        self.regions.push(RegionInfo {
            id: rid,
            thread: t,
            kind,
            mem_ops: b.mem_ops,
            checked_ops: b.checked_ops,
            loops: b.loops,
        });
        out.push(Stmt::Op {
            site: self.fresh_site(),
            op: Op::TxBegin(rid),
        });
        out.extend(b.stmts);
        out.push(Stmt::Op {
            site: self.fresh_site(),
            op: Op::TxEnd(rid),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_sim::{DirectRuntime, Machine, ProgramBuilder, RoundRobin, RunStatus, SyscallKind};

    fn ops_of(stmts: &[Stmt]) -> Vec<Op> {
        let mut v = Vec::new();
        fn walk(stmts: &[Stmt], v: &mut Vec<Op>) {
            for s in stmts {
                match s {
                    Stmt::Op { op, .. } => v.push(*op),
                    Stmt::Loop { body, .. } => walk(body, v),
                }
            }
        }
        walk(stmts, &mut v);
        v
    }

    /// Checks marker balance: within each thread, TxBegin/TxEnd alternate
    /// properly and never nest, including across loop iterations.
    fn assert_balanced(ip: &InstrumentedProgram) {
        for t in 0..ip.program.thread_count() {
            let mut open: Option<RegionId> = None;
            fn walk(stmts: &[Stmt], open: &mut Option<RegionId>) {
                for s in stmts {
                    match s {
                        Stmt::Op {
                            op: Op::TxBegin(r), ..
                        } => {
                            assert!(open.is_none(), "nested TxBegin");
                            *open = Some(*r);
                        }
                        Stmt::Op {
                            op: Op::TxEnd(r), ..
                        } => {
                            assert_eq!(*open, Some(*r), "mismatched TxEnd");
                            *open = None;
                        }
                        Stmt::Op { op, .. } if super::is_boundary(op) => {
                            assert!(open.is_none(), "boundary inside a region");
                        }
                        Stmt::Loop { body, .. } => {
                            let outer = *open;
                            walk(body, open);
                            assert_eq!(
                                *open, outer,
                                "region opened in a loop body must close in it"
                            );
                        }
                        _ => {}
                    }
                }
            }
            walk(ip.program.thread(ThreadId(t as u32)), &mut open);
            assert!(open.is_none(), "unclosed region at thread exit");
        }
    }

    fn cfg_plain() -> InstrumentConfig {
        InstrumentConfig {
            k_min_ops: 5,
            loopcut_probes: true,
            single_thread_elision: true,
        }
    }

    #[test]
    fn sync_free_thread_becomes_one_region() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            b.thread(t).read(x).write(x, 1).read(x).write(x, 2).read(x);
        }
        let ip = instrument(&b.build(), &cfg_plain());
        assert_balanced(&ip);
        assert_eq!(ip.region_count(), 2);
        assert_eq!(ip.regions[0].kind, RegionKind::Fast);
        assert_eq!(ip.regions[0].mem_ops, 5);
        let ops = ops_of(ip.program.thread(ThreadId(0)));
        assert!(matches!(ops.first(), Some(Op::TxBegin(_))));
        assert!(matches!(ops.last(), Some(Op::TxEnd(_))));
    }

    #[test]
    fn sync_ops_cut_regions() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        for t in 0..2 {
            b.thread(t)
                .read(x)
                .read(x)
                .read(x)
                .read(x)
                .read(x)
                .lock(l)
                .write(x, 1)
                .write(x, 2)
                .write(x, 3)
                .write(x, 4)
                .write(x, 5)
                .unlock(l)
                .read(x)
                .read(x)
                .read(x)
                .read(x)
                .read(x);
        }
        let ip = instrument(&b.build(), &cfg_plain());
        assert_balanced(&ip);
        // Three regions per thread: before, critical section, after.
        assert_eq!(ip.region_count(), 6);
        assert!(ip.regions.iter().all(|r| r.kind == RegionKind::Fast));
    }

    #[test]
    fn syscalls_cut_regions() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            b.thread(t)
                .read(x)
                .read(x)
                .read(x)
                .read(x)
                .read(x)
                .syscall(SyscallKind::Io)
                .read(x)
                .read(x)
                .read(x)
                .read(x)
                .read(x);
        }
        let ip = instrument(&b.build(), &cfg_plain());
        assert_balanced(&ip);
        assert_eq!(ip.region_count(), 4);
    }

    #[test]
    fn small_regions_are_slow_only() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        for t in 0..2 {
            b.thread(t).lock(l).write(x, 1).read(x).unlock(l); // 2 ops < 5
        }
        let ip = instrument(&b.build(), &cfg_plain());
        assert_eq!(ip.region_count(), 2);
        assert!(ip.regions.iter().all(|r| r.kind == RegionKind::SlowOnly));
    }

    #[test]
    fn access_free_segments_are_unmonitored() {
        let mut b = ProgramBuilder::new(2);
        let l = b.lock_id("l");
        for t in 0..2 {
            b.thread(t).compute(100).lock(l).compute(5).unlock(l);
        }
        let ip = instrument(&b.build(), &cfg_plain());
        assert_eq!(ip.region_count(), 0, "no accesses, no regions");
        let ops = ops_of(ip.program.thread(ThreadId(0)));
        assert!(ops
            .iter()
            .all(|o| !matches!(o, Op::TxBegin(_) | Op::TxEnd(_))));
    }

    #[test]
    fn pure_loops_stay_in_region_with_probe() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            b.thread(t).loop_n(100, |tb| {
                tb.read(x).write(x, 1);
            });
        }
        let ip = instrument(&b.build(), &cfg_plain());
        assert_balanced(&ip);
        assert_eq!(ip.region_count(), 2);
        assert_eq!(ip.regions[0].mem_ops, 200);
        assert_eq!(ip.regions[0].loops.len(), 1);
        let ops = ops_of(ip.program.thread(ThreadId(0)));
        assert!(ops.iter().any(|o| matches!(o, Op::LoopCutProbe(_))));
    }

    #[test]
    fn boundary_loops_get_per_iteration_regions() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            b.thread(t).loop_n(10, |tb| {
                tb.read(x)
                    .read(x)
                    .read(x)
                    .read(x)
                    .read(x)
                    .syscall(SyscallKind::Io)
                    .write(x, 1)
                    .write(x, 2)
                    .write(x, 3)
                    .write(x, 4)
                    .write(x, 5);
            });
        }
        let ip = instrument(&b.build(), &cfg_plain());
        assert_balanced(&ip);
        // Two regions per thread *statically*; each runs once per iteration.
        assert_eq!(ip.region_count(), 4);
        // Per-iteration sizing, not multiplied by trips.
        assert!(ip.regions.iter().all(|r| r.mem_ops == 5));
    }

    #[test]
    fn nested_pure_loops_all_get_probes() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            b.thread(t).loop_n(4, |tb| {
                tb.loop_n(5, |tb| {
                    tb.read(x);
                });
            });
        }
        let ip = instrument(&b.build(), &cfg_plain());
        assert_balanced(&ip);
        assert_eq!(ip.regions[0].mem_ops, 20);
        assert_eq!(ip.regions[0].loops.len(), 2);
        let probes = ops_of(ip.program.thread(ThreadId(0)))
            .iter()
            .filter(|o| matches!(o, Op::LoopCutProbe(_)))
            .count();
        assert_eq!(probes, 2);
    }

    #[test]
    fn single_threaded_prologue_and_epilogue_elided() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0)
            .write(x, 1)
            .write(x, 2)
            .write(x, 3)
            .write(x, 4)
            .write(x, 5) // prologue
            .spawn(ThreadId(1))
            .read(x)
            .read(x)
            .read(x)
            .read(x)
            .read(x) // concurrent
            .join(ThreadId(1))
            .write(x, 9)
            .write(x, 9)
            .write(x, 9)
            .write(x, 9)
            .write(x, 9); // epilogue
        b.thread(1)
            .write(x, 7)
            .write(x, 7)
            .write(x, 7)
            .write(x, 7)
            .write(x, 7);
        let ip = instrument(&b.build(), &cfg_plain());
        assert_balanced(&ip);
        // Regions: main concurrent middle (1) + thread 1 (1).
        assert_eq!(ip.region_count(), 2);
        let main_ops = ops_of(ip.program.thread(ThreadId(0)));
        // The first five writes must not be preceded by a TxBegin.
        let first_marker = main_ops
            .iter()
            .position(|o| matches!(o, Op::TxBegin(_)))
            .expect("middle is instrumented");
        assert!(first_marker > 4, "prologue was instrumented");
    }

    #[test]
    fn no_elision_when_threads_start_concurrent() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0)
            .write(x, 1)
            .write(x, 2)
            .write(x, 3)
            .write(x, 4)
            .write(x, 5);
        b.thread(1).read(x).read(x).read(x).read(x).read(x);
        let ip = instrument(&b.build(), &cfg_plain());
        assert_eq!(ip.region_count(), 2, "both threads instrumented");
    }

    #[test]
    fn original_sites_preserved_markers_minted_above() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write_l(x, 1, "the_write");
        b.thread(1).read(x).read(x).read(x).read(x).read(x);
        let p = b.build();
        let orig_sites = p.site_count();
        let ip = instrument(&p, &cfg_plain());
        assert_eq!(ip.program.site("the_write"), p.site("the_write"));
        assert!(ip.program.site_count() >= orig_sites);
        // All marker sites are >= orig_sites.
        fn walk(stmts: &[Stmt], orig: u32) {
            for s in stmts {
                match s {
                    Stmt::Op { site, op } => match op {
                        Op::TxBegin(_) | Op::TxEnd(_) | Op::LoopCutProbe(_) => {
                            assert!(site.0 >= orig, "marker reused an original site");
                        }
                        _ => assert!(site.0 < orig, "original op site was renumbered"),
                    },
                    Stmt::Loop { body, .. } => walk(body, orig),
                }
            }
        }
        for t in 0..2 {
            walk(ip.program.thread(ThreadId(t)), orig_sites);
        }
    }

    #[test]
    fn instrumented_program_runs_identically_under_direct_runtime() {
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0)
            .spawn(ThreadId(1))
            .spawn(ThreadId(2))
            .join(ThreadId(1))
            .join(ThreadId(2))
            .read(x);
        for t in 1..3 {
            b.thread(t).loop_n(20, |tb| {
                tb.lock(l).rmw(x, 1).unlock(l);
            });
        }
        let p = b.build();
        let ip = instrument(&p, &cfg_plain());
        let run = |prog: &Program| {
            let mut m = Machine::new(prog);
            let mut rt = DirectRuntime::default();
            let mut s = RoundRobin::new();
            let r = m.run(&mut rt, &mut s);
            assert_eq!(r.status, RunStatus::Done);
            m.memory().clone()
        };
        assert_eq!(run(&p).load(x), 40);
        assert_eq!(run(&ip.program).load(x), 40, "markers must be neutral");
    }

    #[test]
    fn k_zero_makes_everything_fast() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            b.thread(t).read(x);
        }
        let cfg = InstrumentConfig {
            k_min_ops: 0,
            ..cfg_plain()
        };
        let ip = instrument(&b.build(), &cfg);
        assert!(ip.regions.iter().all(|r| r.kind == RegionKind::Fast));
    }

    #[test]
    fn full_prune_strips_markers_for_race_free_regions() {
        use crate::sa::SiteClassTable;
        // Each thread only touches its own variable: the whole program is
        // race-free, so Full pruning leaves nothing instrumented.
        let mut b = ProgramBuilder::new(2);
        for t in 0..2 {
            let v = b.var(&format!("v{t}"));
            b.thread(t).loop_n(10, |tb| {
                tb.read(v).write(v, 1);
            });
        }
        let p = b.build();
        let table = SiteClassTable::analyze(&p);
        let plain = instrument(&p, &cfg_plain());
        assert_eq!(plain.region_count(), 2, "unpruned: everything wrapped");
        let pruned = instrument_pruned(&p, &cfg_plain(), Some(&table));
        assert_eq!(pruned.region_count(), 0, "pruned: no regions survive");
        for t in 0..2 {
            let ops = ops_of(pruned.program.thread(ThreadId(t)));
            assert!(
                ops.iter()
                    .all(|o| !matches!(o, Op::TxBegin(_) | Op::TxEnd(_) | Op::LoopCutProbe(_))),
                "markers must be stripped"
            );
        }
    }

    #[test]
    fn k_threshold_reapplies_to_pruned_counts() {
        use crate::sa::SiteClassTable;
        // Six accesses per region, but only the three on the shared
        // variable survive pruning: below K = 5, so the region demotes
        // from Fast to SlowOnly.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            let mine = b.var(&format!("mine{t}"));
            b.thread(t)
                .write(x, 1)
                .write(x, 2)
                .write(x, 3)
                .write(mine, 1)
                .write(mine, 2)
                .write(mine, 3);
        }
        let p = b.build();
        let table = SiteClassTable::analyze(&p);
        let plain = instrument(&p, &cfg_plain());
        assert!(plain.regions.iter().all(|r| r.kind == RegionKind::Fast));
        let pruned = instrument_pruned(&p, &cfg_plain(), Some(&table));
        assert_eq!(pruned.region_count(), 2);
        for r in &pruned.regions {
            assert_eq!(r.mem_ops, 6);
            assert_eq!(r.checked_ops, 3);
            assert_eq!(r.kind, RegionKind::SlowOnly, "K applies to pruned count");
        }
    }

    #[test]
    fn no_prune_table_is_identity() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        for t in 0..2 {
            b.thread(t).loop_n(8, |tb| {
                tb.read(x).write(x, 1);
            });
        }
        let p = b.build();
        let a = instrument(&p, &cfg_plain());
        let c = instrument_pruned(&p, &cfg_plain(), None);
        assert_eq!(a.region_count(), c.region_count());
        for (ra, rc) in a.regions.iter().zip(&c.regions) {
            assert_eq!(ra.mem_ops, rc.mem_ops);
            assert_eq!(ra.checked_ops, rc.checked_ops);
            assert_eq!(ra.mem_ops, ra.checked_ops);
            assert_eq!(ra.kind, rc.kind);
        }
    }
}
