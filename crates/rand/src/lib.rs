//! Vendored stand-in for the slice of the `rand` 0.8 API this workspace
//! uses, so the workspace builds with no registry access.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. **The exact
//! bit stream is load-bearing**: workload race expectations, scheduler
//! behaviour, and property-test corpora throughout the repo are
//! calibrated against this stream, so none of the arithmetic here may
//! change. `gen_range` deliberately uses simple modulo reduction — the
//! slight bias is irrelevant for simulation purposes and keeps the
//! mapping from raw output to sample trivially stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concrete generator types.
pub mod rngs {
    /// The workspace's deterministic generator: xoshiro256++ with 256
    /// bits of state. Deliberately *not* cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `state` by
    /// running SplitMix64 four times.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        let mut s = [0u64; 4];
        for slot in &mut s {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        rngs::StdRng { s }
    }
}

/// The user-facing sampling interface.
pub trait Rng {
    /// Advances the generator and returns the next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from the "standard" distribution:
    /// uniform in `[0, 1)` for `f64`, a fair coin for `bool`.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// Panics on an empty range, like the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Sample: Sized {
    /// Draws one value from the generator.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 high bits scaled into [0, 1): every representable result is
        // an exact multiple of 2^-53.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! uint_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every raw output is a valid sample.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
uint_range_impls!(u8, u16, u32, u64, usize);

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i64 - lo as i64) as u64).wrapping_add(1);
                (lo as i64).wrapping_add((rng.next_u64() % span.max(1)) as i64) as $t
            }
        }
    )*};
}
int_range_impls!(i8, i16, i32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..13);
            assert!(x < 13);
            let y: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
            let z: u64 = rng.gen_range(1..=6);
            assert!((1..=6).contains(&z));
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u32 = rng.gen_range(5..5);
    }
}
