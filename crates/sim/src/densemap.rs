//! A paged first-touch map from raw addresses to dense `u32` ids.
//!
//! Programs lay their variables out over a raw address space whose *span*
//! (one past the highest address) can be hundreds of times larger than the
//! set of addresses actually touched — arrays reserve their full footprint
//! but a run may only graze them. A flat `Vec` indexed by `Addr.0` would
//! pay O(span) allocation and zeroing per run, which dominates short
//! workloads. [`AddrMap`] instead keeps a two-level page table: the top
//! level costs 8 bytes per [`PAGE_SIZE`] addresses of span, and 16 KiB id
//! pages are allocated only where addresses are actually resolved.
//! Resolution is two array indexes — no hashing — and ids come out dense
//! and in first-touch order, so payload tables keyed by them stay
//! O(touched).

use crate::addr::Addr;

/// log2 of the page size.
const PAGE_BITS: usize = 12;
/// Addresses covered by one id page.
pub const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Maps raw addresses to dense ids (`0..len`) assigned in first-touch
/// order. Ids are stable once assigned and never reused.
#[derive(Debug, Clone, Default)]
pub struct AddrMap {
    /// `pages[a >> PAGE_BITS][a & (PAGE_SIZE-1)]` holds `id + 1`
    /// (0 marks "never resolved").
    pages: Vec<Option<Box<[u32; PAGE_SIZE]>>>,
    len: u32,
}

impl AddrMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id of `a`, or `None` if it was never resolved.
    #[inline]
    pub fn get(&self, a: Addr) -> Option<u32> {
        let i = a.0 as usize;
        match self.pages.get(i >> PAGE_BITS) {
            Some(Some(page)) => {
                let v = page[i & (PAGE_SIZE - 1)];
                (v != 0).then(|| v - 1)
            }
            _ => None,
        }
    }

    /// The id of `a`, assigning the next dense id on first touch.
    #[inline]
    pub fn resolve(&mut self, a: Addr) -> u32 {
        let i = a.0 as usize;
        let p = i >> PAGE_BITS;
        if p >= self.pages.len() {
            self.pages.resize(p + 1, None);
        }
        let page = self.pages[p].get_or_insert_with(|| Box::new([0; PAGE_SIZE]));
        let slot = &mut page[i & (PAGE_SIZE - 1)];
        if *slot == 0 {
            self.len += 1;
            *slot = self.len;
        }
        *slot - 1
    }

    /// Number of distinct addresses resolved so far.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if nothing was resolved yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pre-sizes the top-level page table for addresses below `span`.
    /// Costs 8 bytes per [`PAGE_SIZE`] addresses; no id pages are
    /// allocated until their addresses are touched.
    pub fn reserve_span(&mut self, span: usize) {
        let pages = span.div_ceil(PAGE_SIZE);
        if self.pages.len() < pages {
            self.pages.resize(pages, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_first_touch_ordered() {
        let mut m = AddrMap::new();
        assert_eq!(m.resolve(Addr(0x9000)), 0);
        assert_eq!(m.resolve(Addr(8)), 1);
        assert_eq!(m.resolve(Addr(0x9000)), 0, "stable on re-resolve");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(Addr(8)), Some(1));
        assert_eq!(m.get(Addr(16)), None);
    }

    #[test]
    fn get_never_allocates_pages() {
        let m = AddrMap::new();
        assert_eq!(m.get(Addr(1 << 30)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn reserve_span_only_sizes_the_top_level() {
        let mut m = AddrMap::new();
        m.reserve_span(500_000);
        assert!(m.is_empty());
        assert_eq!(m.get(Addr(499_999)), None);
        assert_eq!(m.resolve(Addr(499_999)), 0);
    }

    #[test]
    fn spans_multiple_pages() {
        let mut m = AddrMap::new();
        let a = Addr((PAGE_SIZE - 1) as u64);
        let b = Addr(PAGE_SIZE as u64);
        assert_eq!(m.resolve(a), 0);
        assert_eq!(m.resolve(b), 1);
        assert_eq!(m.get(a), Some(0));
        assert_eq!(m.get(b), Some(1));
    }
}
