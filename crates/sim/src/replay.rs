//! The record/replay boundary: pure-observer detectors consume a stream
//! of schedule-visible events instead of holding [`Runtime`] hooks.
//!
//! A [`TraceConsumer`] sees exactly the events a pure observer would see
//! live — resolved access addresses, architecturally completed sync
//! operations, barrier releases with their arrival lists, and thread
//! terminations — but is decoupled from execution: the same consumer can
//! be driven by the [`Live`] adapter during an interpreter run *or* by
//! [`EventLog::replay`](crate::trace::EventLog::replay) over a recorded
//! log, and observes the identical call sequence either way. That is the
//! correctness contract of the pipeline: because a pure observer never
//! redirects control or alters memory, recording is invisible, and a log
//! recorded once can stand in for any number of re-executions.
//!
//! The TxRace engine itself is *not* a pure observer (it rolls threads
//! back), so it stays a [`Runtime`] and is excluded from this boundary.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::addr::Addr;
use crate::exec::{Directive, OpEvent, Runtime};
use crate::ids::{BarrierId, ChanId, CondId, LockId, SiteId, ThreadId};
use crate::ir::{Op, SyscallKind};
use crate::mem::Memory;
use crate::trace::{AccessPartition, EventLog, IndexedAccess, SyncIndex, TraceEventKind};

/// A pure observer of one execution's schedule-visible event stream.
///
/// Every method defaults to a no-op so consumers implement only what
/// they track. Methods are invoked in execution order; for one completed
/// operation exactly one method fires, plus
/// [`barrier_release`](TraceConsumer::barrier_release) once per barrier
/// release, after the arrivals that triggered it.
pub trait TraceConsumer {
    /// A shared read at `addr` (resolved effective address).
    fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        let _ = (t, site, addr);
    }

    /// A shared write at `addr`.
    fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        let _ = (t, site, addr);
    }

    /// An atomic read-modify-write at `addr`. Atomics are never data
    /// races under the C11 model; most detectors ignore these.
    fn rmw(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        let _ = (t, site, addr);
    }

    /// Mutex `l` acquired.
    fn acquire(&mut self, t: ThreadId, site: SiteId, l: LockId) {
        let _ = (t, site, l);
    }

    /// Mutex `l` released.
    fn release(&mut self, t: ThreadId, site: SiteId, l: LockId) {
        let _ = (t, site, l);
    }

    /// Semaphore `c` posted.
    fn signal(&mut self, t: ThreadId, site: SiteId, c: CondId) {
        let _ = (t, site, c);
    }

    /// A wait on `c` satisfied.
    fn wait(&mut self, t: ThreadId, site: SiteId, c: CondId) {
        let _ = (t, site, c);
    }

    /// Thread `child` spawned by `t`.
    fn spawn(&mut self, t: ThreadId, site: SiteId, child: ThreadId) {
        let _ = (t, site, child);
    }

    /// A join on `child` satisfied.
    fn join(&mut self, t: ThreadId, site: SiteId, child: ThreadId) {
        let _ = (t, site, child);
    }

    /// Thread `t` arrived at barrier `b` (it may block here; the release
    /// is reported separately).
    fn barrier_arrive(&mut self, t: ThreadId, site: SiteId, b: BarrierId) {
        let _ = (t, site, b);
    }

    /// Barrier `b` released all `arrivals` (thread and arrival site, in
    /// arrival order).
    fn barrier_release(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        let _ = (b, arrivals);
    }

    /// `units` cycles of thread-local computation.
    fn compute(&mut self, t: ThreadId, site: SiteId, units: u32) {
        let _ = (t, site, units);
    }

    /// A system call.
    fn syscall(&mut self, t: ThreadId, site: SiteId, kind: SyscallKind) {
        let _ = (t, site, kind);
    }

    /// A send into channel `ch` completed (a happens-before release
    /// toward the receive that takes the message).
    fn chan_send(&mut self, t: ThreadId, site: SiteId, ch: ChanId) {
        let _ = (t, site, ch);
    }

    /// A receive from channel `ch` completed (a happens-before acquire
    /// from the sends that fed the channel).
    fn chan_recv(&mut self, t: ThreadId, site: SiteId, ch: ChanId) {
        let _ = (t, site, ch);
    }

    /// Thread `t` finished its program.
    fn thread_done(&mut self, t: ThreadId) {
        let _ = t;
    }
}

/// Boxed consumers forward every event, so heterogeneous detector sets
/// (`Vec<Box<dyn TraceConsumer + Send>>`) can ride one [`fan_out`] pass.
impl<C: TraceConsumer + ?Sized> TraceConsumer for Box<C> {
    fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        (**self).read(t, site, addr);
    }
    fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        (**self).write(t, site, addr);
    }
    fn rmw(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        (**self).rmw(t, site, addr);
    }
    fn acquire(&mut self, t: ThreadId, site: SiteId, l: LockId) {
        (**self).acquire(t, site, l);
    }
    fn release(&mut self, t: ThreadId, site: SiteId, l: LockId) {
        (**self).release(t, site, l);
    }
    fn signal(&mut self, t: ThreadId, site: SiteId, c: CondId) {
        (**self).signal(t, site, c);
    }
    fn wait(&mut self, t: ThreadId, site: SiteId, c: CondId) {
        (**self).wait(t, site, c);
    }
    fn spawn(&mut self, t: ThreadId, site: SiteId, child: ThreadId) {
        (**self).spawn(t, site, child);
    }
    fn join(&mut self, t: ThreadId, site: SiteId, child: ThreadId) {
        (**self).join(t, site, child);
    }
    fn barrier_arrive(&mut self, t: ThreadId, site: SiteId, b: BarrierId) {
        (**self).barrier_arrive(t, site, b);
    }
    fn barrier_release(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        (**self).barrier_release(b, arrivals);
    }
    fn compute(&mut self, t: ThreadId, site: SiteId, units: u32) {
        (**self).compute(t, site, units);
    }
    fn syscall(&mut self, t: ThreadId, site: SiteId, kind: SyscallKind) {
        (**self).syscall(t, site, kind);
    }
    fn chan_send(&mut self, t: ThreadId, site: SiteId, ch: ChanId) {
        (**self).chan_send(t, site, ch);
    }
    fn chan_recv(&mut self, t: ThreadId, site: SiteId, ch: ChanId) {
        (**self).chan_recv(t, site, ch);
    }
    fn thread_done(&mut self, t: ThreadId) {
        (**self).thread_done(t);
    }
}

/// A consumer of the *indexed* replay path: one shard's view of a log,
/// assembled from its [`AccessPartition`] slice plus the shared
/// [`SyncIndex`] stream by [`replay_indexed`].
///
/// Unlike [`TraceConsumer`], every method carries the event's global log
/// position (`idx`) explicitly — shards no longer count events
/// themselves, so a shard that sees only 1/S of the accesses still tags
/// its reports with absolute positions, and the cross-shard merge by
/// `idx` reproduces serial discovery order. Only the methods a sharded
/// detector can act on exist: accesses (pre-decoded, one method) and the
/// sync kinds. Atomics, barrier arrivals, compute, syscalls, and
/// thread-done never reach an indexed consumer — they are no-ops for
/// every per-variable detector, and skipping their dispatch entirely is
/// where the indexed path's work reduction comes from.
pub trait IndexedConsumer {
    /// A routed data access (read or write), pre-decoded.
    fn access(&mut self, a: &IndexedAccess) {
        let _ = a;
    }

    /// Mutex `l` acquired.
    fn acquire(&mut self, idx: u64, t: ThreadId, site: SiteId, l: LockId) {
        let _ = (idx, t, site, l);
    }

    /// Mutex `l` released.
    fn release(&mut self, idx: u64, t: ThreadId, site: SiteId, l: LockId) {
        let _ = (idx, t, site, l);
    }

    /// Semaphore `c` posted.
    fn signal(&mut self, idx: u64, t: ThreadId, site: SiteId, c: CondId) {
        let _ = (idx, t, site, c);
    }

    /// A wait on `c` satisfied.
    fn wait(&mut self, idx: u64, t: ThreadId, site: SiteId, c: CondId) {
        let _ = (idx, t, site, c);
    }

    /// Thread `child` spawned by `t`.
    fn spawn(&mut self, idx: u64, t: ThreadId, site: SiteId, child: ThreadId) {
        let _ = (idx, t, site, child);
    }

    /// A join on `child` satisfied.
    fn join(&mut self, idx: u64, t: ThreadId, site: SiteId, child: ThreadId) {
        let _ = (idx, t, site, child);
    }

    /// Barrier `b` released all `arrivals`.
    fn barrier_release(&mut self, idx: u64, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        let _ = (idx, b, arrivals);
    }

    /// A send into channel `ch` completed.
    fn chan_send(&mut self, idx: u64, t: ThreadId, site: SiteId, ch: ChanId) {
        let _ = (idx, t, site, ch);
    }

    /// A receive from channel `ch` completed.
    fn chan_recv(&mut self, idx: u64, t: ThreadId, site: SiteId, ch: ChanId) {
        let _ = (idx, t, site, ch);
    }
}

/// Dispatches one sync-stream entry to `c`.
fn dispatch_sync<C: IndexedConsumer>(sync: &SyncIndex, idx: u64, e: &crate::trace::TraceEvent, c: &mut C) {
    let (t, site) = (e.thread, e.site);
    match e.kind {
        TraceEventKind::Acquire => c.acquire(idx, t, site, LockId(e.arg as u32)),
        TraceEventKind::Release => c.release(idx, t, site, LockId(e.arg as u32)),
        TraceEventKind::Signal => c.signal(idx, t, site, CondId(e.arg as u32)),
        TraceEventKind::Wait => c.wait(idx, t, site, CondId(e.arg as u32)),
        TraceEventKind::Spawn => c.spawn(idx, t, site, ThreadId(e.arg as u32)),
        TraceEventKind::Join => c.join(idx, t, site, ThreadId(e.arg as u32)),
        TraceEventKind::BarrierRelease => {
            let (b, arrivals) = sync.release_arrivals(e.arg);
            c.barrier_release(idx, b, arrivals);
        }
        TraceEventKind::ChanSend => c.chan_send(idx, t, site, ChanId(e.arg as u32)),
        TraceEventKind::ChanRecv => c.chan_recv(idx, t, site, ChanId(e.arg as u32)),
        other => unreachable!("non-sync kind {other:?} in a SyncIndex"),
    }
}

/// Drives `consumer` through one shard's merged view of a log: its
/// access slice interleaved with the shared sync stream, in global
/// event-index order — the two-cursor merge of the indexed sharding
/// path.
///
/// Both inputs are index-sorted by construction and an event is either
/// an access or a sync event (indices are disjoint), so a strict `<`
/// comparison fully determines the merge. The dispatched sequence is
/// exactly the subsequence of the source log this consumer would have
/// acted on under a full [`EventLog::replay`] walk, in the same order —
/// which is why detectors built on this path produce byte-identical
/// results while touching O(slice + sync) events instead of O(log).
pub fn replay_indexed<C: IndexedConsumer>(
    sync: &SyncIndex,
    accesses: &[IndexedAccess],
    consumer: &mut C,
) {
    let syncs = sync.events();
    let (mut ai, mut si) = (0, 0);
    while ai < accesses.len() && si < syncs.len() {
        if accesses[ai].idx < syncs[si].0 {
            consumer.access(&accesses[ai]);
            ai += 1;
        } else {
            let (idx, e) = &syncs[si];
            dispatch_sync(sync, *idx, e, consumer);
            si += 1;
        }
    }
    for a in &accesses[ai..] {
        consumer.access(a);
    }
    for (idx, e) in &syncs[si..] {
        dispatch_sync(sync, *idx, e, consumer);
    }
}

/// One shard's result from a [`fan_out_indexed`] pass.
#[derive(Debug)]
pub struct IndexedShardReport<C> {
    /// The consumer, after consuming its merged view.
    pub consumer: C,
    /// The shard this consumer served.
    pub shard: usize,
    /// Wall-clock nanoseconds of this shard's merge pass.
    pub wall_ns: u64,
    /// Events this shard dispatched: its access slice plus the shared
    /// sync stream (*not* the full log length — the asymmetry is the
    /// point of the indexed path).
    pub events: u64,
}

/// Runs one [`IndexedConsumer`] per shard over (its slice of
/// `partition` + the shared `sync` stream), the sharded counterpart of
/// [`fan_out`].
///
/// `consumers[i]` serves shard `i`; the vector length must equal
/// `partition.shards()`. With `parallel`, shards run on scoped threads
/// (they share only the read-only index); otherwise they run
/// sequentially on the calling thread, which is the right mode on
/// single-core hosts and for clean per-shard wall times. Results are in
/// shard order either way, and the per-shard event sequences — hence
/// detector outcomes — are identical in both modes.
pub fn fan_out_indexed<C: IndexedConsumer + Send>(
    sync: &SyncIndex,
    partition: &AccessPartition,
    consumers: Vec<C>,
    parallel: bool,
) -> Vec<IndexedShardReport<C>> {
    assert_eq!(
        consumers.len(),
        partition.shards(),
        "one consumer per shard"
    );
    let run_one = |shard: usize, mut consumer: C| -> IndexedShardReport<C> {
        let slice = partition.slice(shard);
        let t0 = Instant::now();
        replay_indexed(sync, slice, &mut consumer);
        IndexedShardReport {
            consumer,
            shard,
            wall_ns: t0.elapsed().as_nanos() as u64,
            events: slice.len() as u64 + sync.len() as u64,
        }
    };
    if !parallel || consumers.len() == 1 {
        return consumers
            .into_iter()
            .enumerate()
            .map(|(s, c)| run_one(s, c))
            .collect();
    }
    let mut slots: Vec<Option<IndexedShardReport<C>>> =
        consumers.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        for (shard, (slot, consumer)) in slots.iter_mut().zip(consumers).enumerate() {
            let run_one = &run_one;
            scope.spawn(move || {
                *slot = Some(run_one(shard, consumer));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every shard thread fills its slot"))
        .collect()
}

/// One consumer's slice of a [`fan_out`] pass: the consumer itself plus
/// the observability the parallel harnesses report (which broadcast
/// group carried it, how long that group's pass took, and how many
/// events it was driven through).
#[derive(Debug)]
pub struct FanOutReport<C> {
    /// The consumer, after consuming the whole log.
    pub consumer: C,
    /// The broadcast group (worker thread) that carried this consumer.
    pub group: usize,
    /// Wall-clock nanoseconds of the broadcast pass that carried this
    /// consumer. Consumers in one group share a single pass over the
    /// log, so they report the same wall time.
    pub wall_ns: u64,
    /// Events the consumer was driven through (the log length).
    pub events: u64,
}

/// One fan-out group's consumers, tagged with their input indices so
/// results scatter back to input order afterwards.
type Bucket<C> = Vec<(usize, C)>;

/// One fan-out group's finished reports, tagged like [`Bucket`].
type GroupResult<C> = Vec<(usize, FanOutReport<C>)>;

/// Replays one shared [`EventLog`] into every consumer — the
/// multi-consumer fan-out of the parallel replay engine.
///
/// Consumers are split round-robin into at most `width` groups; each
/// group rides **one** broadcast pass over the log
/// ([`EventLog::replay_many`]: every event decoded once, dispatched to
/// the whole group), and groups run concurrently on scoped threads. The
/// group count is additionally capped at the machine's available
/// parallelism — an extra group means an extra walk of the log, which
/// costs memory bandwidth without buying any concurrency once every
/// core already has a walk.
///
/// Each consumer observes the *identical* call sequence
/// [`EventLog::replay`] produces, so results are byte-identical to a
/// serial loop over the consumers regardless of `width`, the group
/// assignment, or the core count; the log is read-only and shared, so
/// nothing is re-read or re-decoded per consumer within a group.
/// Results come back in input order regardless of completion order.
///
/// ```
/// use txrace_sim::replay::{fan_out, TraceConsumer};
/// use txrace_sim::{record_run, ProgramBuilder, RoundRobin, StepLimit, ThreadId};
///
/// #[derive(Default)]
/// struct CountWrites(u64);
/// impl TraceConsumer for CountWrites {
///     fn write(&mut self, _: ThreadId, _: txrace_sim::SiteId, _: txrace_sim::Addr) {
///         self.0 += 1;
///     }
/// }
///
/// let mut b = ProgramBuilder::new(1);
/// let x = b.var("x");
/// b.thread(0).write(x, 1).write(x, 2);
/// let p = b.build();
/// let log = record_run(&p, &mut RoundRobin::new(), StepLimit::default());
/// let counters = vec![CountWrites::default(), CountWrites::default()];
/// for r in fan_out(&log, counters, 2) {
///     assert_eq!(r.consumer.0, 2);
/// }
/// ```
pub fn fan_out<C: TraceConsumer + Send>(
    log: &EventLog,
    consumers: Vec<C>,
    width: usize,
) -> Vec<FanOutReport<C>> {
    let n = consumers.len();
    if n == 0 {
        return Vec::new();
    }
    let events = log.len() as u64;
    let hw = std::thread::available_parallelism().map_or(1, |v| v.get());
    let groups = width.clamp(1, hw).min(n);

    // Round-robin assignment; each bucket keeps its consumers' input
    // indices so results scatter back to input order afterwards.
    let mut buckets: Vec<Bucket<C>> = (0..groups).map(|_| Vec::new()).collect();
    for (i, c) in consumers.into_iter().enumerate() {
        buckets[i % groups].push((i, c));
    }
    let run_group = |group: usize, bucket: Bucket<C>| -> GroupResult<C> {
        let (idxs, mut cs): (Vec<usize>, Vec<C>) = bucket.into_iter().unzip();
        let t0 = Instant::now();
        log.replay_many(&mut cs);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        idxs.into_iter()
            .zip(cs)
            .map(|(i, consumer)| {
                (
                    i,
                    FanOutReport {
                        consumer,
                        group,
                        wall_ns,
                        events,
                    },
                )
            })
            .collect()
    };

    let finished: Vec<GroupResult<C>> = if groups == 1 {
        vec![run_group(0, buckets.pop().expect("one bucket"))]
    } else {
        let jobs: Vec<Mutex<Option<Bucket<C>>>> =
            buckets.into_iter().map(|b| Mutex::new(Some(b))).collect();
        let slots: Vec<Mutex<Option<GroupResult<C>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..groups {
                scope.spawn(|| loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    if g >= jobs.len() {
                        break;
                    }
                    let bucket = jobs[g]
                        .lock()
                        .expect("fan-out job poisoned")
                        .take()
                        .expect("each group is claimed once");
                    *slots[g].lock().expect("fan-out slot poisoned") = Some(run_group(g, bucket));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("fan-out slot poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    };

    let mut out: Vec<Option<FanOutReport<C>>> = (0..n).map(|_| None).collect();
    for (i, r) in finished.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every input index is carried by exactly one group"))
        .collect()
}

/// Adapts a [`TraceConsumer`] to the live [`Runtime`] interface: memory
/// effects are applied directly (like [`crate::DirectRuntime`]) and every
/// schedule-visible event is forwarded to the consumer as it happens.
///
/// `Live<C>` never rolls back and never alters state beyond the direct
/// memory effects the program itself demands, so wrapping a consumer in
/// it is schedule-invisible: the interpreter takes the same interleaving
/// it would with any other pure observer. This is what makes a log
/// recorded by `Live<EventLogBuilder>` byte-equivalent to what a live
/// `Live<SomeDetector>` run observes under the same seed.
///
/// ```
/// use txrace_sim::replay::{Live, TraceConsumer};
/// use txrace_sim::{Machine, ProgramBuilder, RoundRobin, ThreadId};
///
/// #[derive(Default)]
/// struct CountWrites(u64);
/// impl TraceConsumer for CountWrites {
///     fn write(&mut self, _: ThreadId, _: txrace_sim::SiteId, _: txrace_sim::Addr) {
///         self.0 += 1;
///     }
/// }
///
/// let mut b = ProgramBuilder::new(1);
/// let x = b.var("x");
/// b.thread(0).write(x, 1).read(x).write(x, 2);
/// let p = b.build();
/// let mut rt = Live::new(CountWrites::default());
/// Machine::new(&p).run(&mut rt, &mut RoundRobin::new());
/// assert_eq!(rt.consumer().0, 2);
/// ```
#[derive(Debug)]
pub struct Live<C> {
    consumer: C,
}

impl<C: TraceConsumer> Live<C> {
    /// Wraps `consumer` for a live run.
    pub fn new(consumer: C) -> Self {
        Live { consumer }
    }

    /// The wrapped consumer.
    pub fn consumer(&self) -> &C {
        &self.consumer
    }

    /// Mutable access to the wrapped consumer.
    pub fn consumer_mut(&mut self) -> &mut C {
        &mut self.consumer
    }

    /// Unwraps the consumer after the run.
    pub fn into_inner(self) -> C {
        self.consumer
    }
}

impl<C: TraceConsumer> Runtime for Live<C> {
    fn before_op(&mut self, _mem: &mut Memory, ev: &OpEvent<'_>) -> Directive {
        // Accesses and sync ops are reported from their own hooks (where
        // the resolved address / completion is known); barrier arrivals
        // are reported here because the release hook fires only once for
        // the whole group. Instrumentation markers are not events.
        match ev.op {
            Op::Compute(n) => self.consumer.compute(ev.thread, ev.site, n),
            Op::Syscall(k) => self.consumer.syscall(ev.thread, ev.site, k),
            Op::Barrier(b) => self.consumer.barrier_arrive(ev.thread, ev.site, b),
            _ => {}
        }
        Directive::Continue
    }

    fn read(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr) -> u64 {
        self.consumer.read(ev.thread, ev.site, addr);
        mem.load(addr)
    }

    fn write(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, val: u64) {
        self.consumer.write(ev.thread, ev.site, addr);
        mem.store(addr, val);
    }

    fn rmw(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, delta: u64) -> u64 {
        self.consumer.rmw(ev.thread, ev.site, addr);
        let old = mem.load(addr);
        mem.store(addr, old.wrapping_add(delta));
        old
    }

    fn after_sync(&mut self, _mem: &mut Memory, ev: &OpEvent<'_>) {
        let (t, site) = (ev.thread, ev.site);
        match ev.op {
            Op::Lock(l) => self.consumer.acquire(t, site, l),
            Op::Unlock(l) => self.consumer.release(t, site, l),
            Op::Signal(c) => self.consumer.signal(t, site, c),
            Op::Wait(c) => self.consumer.wait(t, site, c),
            Op::Spawn(u) => self.consumer.spawn(t, site, u),
            Op::Join(u) => self.consumer.join(t, site, u),
            Op::ChanSend(ch) => self.consumer.chan_send(t, site, ch),
            Op::ChanRecv(ch) => self.consumer.chan_recv(t, site, ch),
            _ => {}
        }
    }

    fn after_barrier(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        self.consumer.barrier_release(b, arrivals);
    }

    fn on_thread_done(&mut self, t: ThreadId) {
        self.consumer.thread_done(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;
    use crate::sched::RoundRobin;
    use crate::{Machine, RunStatus};

    /// Records the method-call sequence as strings, for order assertions.
    #[derive(Default)]
    struct Script(Vec<String>);

    impl TraceConsumer for Script {
        fn read(&mut self, t: ThreadId, _s: SiteId, a: Addr) {
            self.0.push(format!("r {t} {a}"));
        }
        fn write(&mut self, t: ThreadId, _s: SiteId, a: Addr) {
            self.0.push(format!("w {t} {a}"));
        }
        fn rmw(&mut self, t: ThreadId, _s: SiteId, a: Addr) {
            self.0.push(format!("rmw {t} {a}"));
        }
        fn acquire(&mut self, t: ThreadId, _s: SiteId, l: LockId) {
            self.0.push(format!("acq {t} {l}"));
        }
        fn release(&mut self, t: ThreadId, _s: SiteId, l: LockId) {
            self.0.push(format!("rel {t} {l}"));
        }
        fn barrier_arrive(&mut self, t: ThreadId, _s: SiteId, b: BarrierId) {
            self.0.push(format!("arr {t} {b}"));
        }
        fn barrier_release(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
            self.0.push(format!("relbar {b} x{}", arrivals.len()));
        }
        fn thread_done(&mut self, t: ThreadId) {
            self.0.push(format!("done {t}"));
        }
    }

    #[test]
    fn live_adapter_reports_events_in_execution_order() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        let bar = b.barrier_id("bar");
        for t in 0..2 {
            b.thread(t).lock(l).rmw(x, 1).unlock(l).barrier(bar);
        }
        let p = b.build();
        let mut rt = Live::new(Script::default());
        let mut m = Machine::new(&p);
        let r = m.run(&mut rt, &mut RoundRobin::new());
        assert_eq!(r.status, RunStatus::Done);
        let script = rt.into_inner().0;
        // t0 runs its whole critical section while t1 blocks on the lock
        // (blocked attempts produce no events), then both arrive at the
        // barrier and one release fires.
        let arr: Vec<_> = script.iter().filter(|s| s.starts_with("arr")).collect();
        assert_eq!(arr.len(), 2);
        assert_eq!(script.iter().filter(|s| s.starts_with("relbar")).count(), 1);
        assert_eq!(script.iter().filter(|s| s.starts_with("acq")).count(), 2);
        assert_eq!(script.iter().filter(|s| s.starts_with("done")).count(), 2);
        // The release event follows both arrivals.
        let rel_pos = script.iter().position(|s| s.starts_with("relbar")).unwrap();
        let last_arr = script.iter().rposition(|s| s.starts_with("arr")).unwrap();
        assert!(rel_pos > last_arr);
    }

    #[test]
    fn fan_out_matches_serial_replay_for_every_width() {
        use crate::exec::StepLimit;
        use crate::trace::record_run;

        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        let l = b.lock_id("l");
        let bar = b.barrier_id("bar");
        for t in 0..3 {
            b.thread(t).lock(l).rmw(x, 1).unlock(l).barrier(bar).read(x);
        }
        let p = b.build();
        let mut sched = crate::sched::RandomSched::new(11);
        let log = record_run(&p, &mut sched, StepLimit::default());

        let serial: Vec<Vec<String>> = (0..4)
            .map(|_| {
                let mut c = Script::default();
                log.replay(&mut c);
                c.0
            })
            .collect();
        for width in [1, 2, 4, 8] {
            let consumers: Vec<Script> = (0..4).map(|_| Script::default()).collect();
            let reports = fan_out(&log, consumers, width);
            assert_eq!(reports.len(), 4);
            for (r, want) in reports.iter().zip(&serial) {
                assert_eq!(&r.consumer.0, want, "width={width}");
                assert_eq!(r.events, log.len() as u64);
            }
        }
    }

    #[test]
    fn fan_out_accepts_boxed_heterogeneous_consumers() {
        use crate::exec::StepLimit;
        use crate::trace::record_run;

        #[derive(Default)]
        struct CountReads(u64);
        impl TraceConsumer for CountReads {
            fn read(&mut self, _: ThreadId, _: SiteId, _: Addr) {
                self.0 += 1;
            }
        }

        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).read(x).read(x).write(x, 1);
        let p = b.build();
        let log = record_run(&p, &mut RoundRobin::new(), StepLimit::default());

        let consumers: Vec<Box<dyn TraceConsumer + Send>> =
            vec![Box::new(CountReads::default()), Box::new(Script::default())];
        let out = fan_out(&log, consumers, 2);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn replay_many_matches_replay_per_consumer() {
        use crate::exec::StepLimit;
        use crate::trace::record_run;

        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        let l = b.lock_id("l");
        let bar = b.barrier_id("bar");
        for t in 0..3 {
            b.thread(t)
                .write(x, t as u64)
                .lock(l)
                .rmw(x, 1)
                .unlock(l)
                .barrier(bar)
                .read(x);
        }
        let p = b.build();
        let mut sched = crate::sched::RandomSched::new(5);
        let log = record_run(&p, &mut sched, StepLimit::default());

        let mut want = Script::default();
        log.replay(&mut want);
        let mut many: Vec<Script> = (0..3).map(|_| Script::default()).collect();
        log.replay_many(&mut many);
        for m in &many {
            assert_eq!(m.0, want.0, "broadcast must equal per-consumer replay");
        }
    }

    #[test]
    fn fan_out_of_nothing_is_empty() {
        use crate::exec::StepLimit;
        use crate::trace::record_run;

        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).write(x, 1);
        let p = b.build();
        let log = record_run(&p, &mut RoundRobin::new(), StepLimit::default());
        let none: Vec<Script> = vec![];
        assert!(fan_out(&log, none, 4).is_empty());
    }

    /// Records the indexed call sequence as strings, for merge-order
    /// assertions against the raw log.
    #[derive(Default, Debug, PartialEq)]
    struct IndexedScript(Vec<String>);

    impl IndexedConsumer for IndexedScript {
        fn access(&mut self, a: &IndexedAccess) {
            let k = if a.is_write { "w" } else { "r" };
            self.0.push(format!("{} {k} {} {}", a.idx, a.thread, a.addr));
        }
        fn acquire(&mut self, idx: u64, t: ThreadId, _s: SiteId, l: LockId) {
            self.0.push(format!("{idx} acq {t} {l}"));
        }
        fn release(&mut self, idx: u64, t: ThreadId, _s: SiteId, l: LockId) {
            self.0.push(format!("{idx} rel {t} {l}"));
        }
        fn signal(&mut self, idx: u64, t: ThreadId, _s: SiteId, c: CondId) {
            self.0.push(format!("{idx} sig {t} {c}"));
        }
        fn wait(&mut self, idx: u64, t: ThreadId, _s: SiteId, c: CondId) {
            self.0.push(format!("{idx} wait {t} {c}"));
        }
        fn spawn(&mut self, idx: u64, t: ThreadId, _s: SiteId, u: ThreadId) {
            self.0.push(format!("{idx} spawn {t} {u}"));
        }
        fn join(&mut self, idx: u64, t: ThreadId, _s: SiteId, u: ThreadId) {
            self.0.push(format!("{idx} join {t} {u}"));
        }
        fn barrier_release(&mut self, idx: u64, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
            self.0.push(format!("{idx} relbar {b} x{}", arrivals.len()));
        }
        fn chan_send(&mut self, idx: u64, t: ThreadId, _s: SiteId, ch: ChanId) {
            self.0.push(format!("{idx} send {t} {ch}"));
        }
        fn chan_recv(&mut self, idx: u64, t: ThreadId, _s: SiteId, ch: ChanId) {
            self.0.push(format!("{idx} recv {t} {ch}"));
        }
    }

    /// A 3-thread log with locks, a barrier, channels, and enough
    /// distinct addresses that a partition spreads across shards.
    fn indexed_fixture() -> EventLog {
        use crate::exec::StepLimit;
        use crate::trace::record_run;

        let mut b = ProgramBuilder::new(3);
        let vars: Vec<_> = (0..6).map(|i| b.var(&format!("v{i}"))).collect();
        let l = b.lock_id("l");
        let bar = b.barrier_id("bar");
        let ch = b.chan_id("ch", 3);
        for t in 0..3 {
            let mut tb = b.thread(t);
            for &v in &vars {
                tb.write(v, t as u64 + 1);
            }
            tb.send(ch).lock(l).rmw(vars[0], 1).unlock(l).barrier(bar).recv(ch);
            for &v in &vars {
                tb.read(v);
            }
        }
        let p = b.build();
        let mut sched = crate::sched::RandomSched::new(23);
        record_run(&p, &mut sched, StepLimit::default())
    }

    #[test]
    fn replay_indexed_merges_slice_and_sync_in_global_order() {
        let log = indexed_fixture();
        let sync = SyncIndex::of(&log);
        let route = |a: Addr, n: usize| (a.0 as usize / 8) % n;
        for shards in [1usize, 2, 4] {
            let part = AccessPartition::of(&log, shards, route);
            for shard in 0..shards {
                let mut got = IndexedScript::default();
                replay_indexed(&sync, part.slice(shard), &mut got);
                // Expected: the log's own order, restricted to this
                // shard's accesses plus all sync events.
                let mut want = IndexedScript::default();
                for (i, e) in log.events().iter().enumerate() {
                    let idx = i as u64;
                    match e.kind {
                        TraceEventKind::Read | TraceEventKind::Write
                            if route(Addr(e.arg), shards) == shard =>
                        {
                            want.access(&IndexedAccess {
                                idx,
                                thread: e.thread,
                                site: e.site,
                                addr: Addr(e.arg),
                                is_write: e.kind == TraceEventKind::Write,
                            });
                        }
                        TraceEventKind::Acquire => {
                            want.acquire(idx, e.thread, e.site, LockId(e.arg as u32))
                        }
                        TraceEventKind::Release => {
                            want.release(idx, e.thread, e.site, LockId(e.arg as u32))
                        }
                        TraceEventKind::BarrierRelease => {
                            let (bar, arr) = log.release_arrivals(e.arg);
                            want.barrier_release(idx, bar, arr);
                        }
                        TraceEventKind::ChanSend => {
                            want.chan_send(idx, e.thread, e.site, ChanId(e.arg as u32))
                        }
                        TraceEventKind::ChanRecv => {
                            want.chan_recv(idx, e.thread, e.site, ChanId(e.arg as u32))
                        }
                        _ => {}
                    }
                }
                assert_eq!(got, want, "shards={shards} shard={shard}");
            }
        }
    }

    #[test]
    fn fan_out_indexed_parallel_matches_sequential() {
        let log = indexed_fixture();
        let sync = SyncIndex::of(&log);
        let route = |a: Addr, n: usize| (a.0 as usize / 8) % n;
        for shards in [1usize, 2, 4, 8] {
            let part = AccessPartition::of(&log, shards, route);
            let mk = || (0..shards).map(|_| IndexedScript::default()).collect::<Vec<_>>();
            let seq = fan_out_indexed(&sync, &part, mk(), false);
            let par = fan_out_indexed(&sync, &part, mk(), true);
            assert_eq!(seq.len(), shards);
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.shard, p.shard);
                assert_eq!(s.consumer, p.consumer, "shards={shards}");
                assert_eq!(s.events, part.slice(s.shard).len() as u64 + sync.len() as u64);
                assert_eq!(s.events, p.events);
            }
        }
    }

    #[test]
    fn live_adapter_applies_direct_memory_effects() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).write(x, 7).rmw(x, 3);
        let p = b.build();
        let mut rt = Live::new(Script::default());
        let mut m = Machine::new(&p);
        m.run(&mut rt, &mut RoundRobin::new());
        assert_eq!(m.memory().load(x), 10);
    }
}
