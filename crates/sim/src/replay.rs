//! The record/replay boundary: pure-observer detectors consume a stream
//! of schedule-visible events instead of holding [`Runtime`] hooks.
//!
//! A [`TraceConsumer`] sees exactly the events a pure observer would see
//! live — resolved access addresses, architecturally completed sync
//! operations, barrier releases with their arrival lists, and thread
//! terminations — but is decoupled from execution: the same consumer can
//! be driven by the [`Live`] adapter during an interpreter run *or* by
//! [`EventLog::replay`](crate::trace::EventLog::replay) over a recorded
//! log, and observes the identical call sequence either way. That is the
//! correctness contract of the pipeline: because a pure observer never
//! redirects control or alters memory, recording is invisible, and a log
//! recorded once can stand in for any number of re-executions.
//!
//! The TxRace engine itself is *not* a pure observer (it rolls threads
//! back), so it stays a [`Runtime`] and is excluded from this boundary.

use crate::addr::Addr;
use crate::exec::{Directive, OpEvent, Runtime};
use crate::ids::{BarrierId, CondId, LockId, SiteId, ThreadId};
use crate::ir::{Op, SyscallKind};
use crate::mem::Memory;

/// A pure observer of one execution's schedule-visible event stream.
///
/// Every method defaults to a no-op so consumers implement only what
/// they track. Methods are invoked in execution order; for one completed
/// operation exactly one method fires, plus
/// [`barrier_release`](TraceConsumer::barrier_release) once per barrier
/// release, after the arrivals that triggered it.
pub trait TraceConsumer {
    /// A shared read at `addr` (resolved effective address).
    fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        let _ = (t, site, addr);
    }

    /// A shared write at `addr`.
    fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        let _ = (t, site, addr);
    }

    /// An atomic read-modify-write at `addr`. Atomics are never data
    /// races under the C11 model; most detectors ignore these.
    fn rmw(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        let _ = (t, site, addr);
    }

    /// Mutex `l` acquired.
    fn acquire(&mut self, t: ThreadId, site: SiteId, l: LockId) {
        let _ = (t, site, l);
    }

    /// Mutex `l` released.
    fn release(&mut self, t: ThreadId, site: SiteId, l: LockId) {
        let _ = (t, site, l);
    }

    /// Semaphore `c` posted.
    fn signal(&mut self, t: ThreadId, site: SiteId, c: CondId) {
        let _ = (t, site, c);
    }

    /// A wait on `c` satisfied.
    fn wait(&mut self, t: ThreadId, site: SiteId, c: CondId) {
        let _ = (t, site, c);
    }

    /// Thread `child` spawned by `t`.
    fn spawn(&mut self, t: ThreadId, site: SiteId, child: ThreadId) {
        let _ = (t, site, child);
    }

    /// A join on `child` satisfied.
    fn join(&mut self, t: ThreadId, site: SiteId, child: ThreadId) {
        let _ = (t, site, child);
    }

    /// Thread `t` arrived at barrier `b` (it may block here; the release
    /// is reported separately).
    fn barrier_arrive(&mut self, t: ThreadId, site: SiteId, b: BarrierId) {
        let _ = (t, site, b);
    }

    /// Barrier `b` released all `arrivals` (thread and arrival site, in
    /// arrival order).
    fn barrier_release(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        let _ = (b, arrivals);
    }

    /// `units` cycles of thread-local computation.
    fn compute(&mut self, t: ThreadId, site: SiteId, units: u32) {
        let _ = (t, site, units);
    }

    /// A system call.
    fn syscall(&mut self, t: ThreadId, site: SiteId, kind: SyscallKind) {
        let _ = (t, site, kind);
    }

    /// Thread `t` finished its program.
    fn thread_done(&mut self, t: ThreadId) {
        let _ = t;
    }
}

/// Adapts a [`TraceConsumer`] to the live [`Runtime`] interface: memory
/// effects are applied directly (like [`crate::DirectRuntime`]) and every
/// schedule-visible event is forwarded to the consumer as it happens.
///
/// `Live<C>` never rolls back and never alters state beyond the direct
/// memory effects the program itself demands, so wrapping a consumer in
/// it is schedule-invisible: the interpreter takes the same interleaving
/// it would with any other pure observer. This is what makes a log
/// recorded by `Live<EventLogBuilder>` byte-equivalent to what a live
/// `Live<SomeDetector>` run observes under the same seed.
///
/// ```
/// use txrace_sim::replay::{Live, TraceConsumer};
/// use txrace_sim::{Machine, ProgramBuilder, RoundRobin, ThreadId};
///
/// #[derive(Default)]
/// struct CountWrites(u64);
/// impl TraceConsumer for CountWrites {
///     fn write(&mut self, _: ThreadId, _: txrace_sim::SiteId, _: txrace_sim::Addr) {
///         self.0 += 1;
///     }
/// }
///
/// let mut b = ProgramBuilder::new(1);
/// let x = b.var("x");
/// b.thread(0).write(x, 1).read(x).write(x, 2);
/// let p = b.build();
/// let mut rt = Live::new(CountWrites::default());
/// Machine::new(&p).run(&mut rt, &mut RoundRobin::new());
/// assert_eq!(rt.consumer().0, 2);
/// ```
#[derive(Debug)]
pub struct Live<C> {
    consumer: C,
}

impl<C: TraceConsumer> Live<C> {
    /// Wraps `consumer` for a live run.
    pub fn new(consumer: C) -> Self {
        Live { consumer }
    }

    /// The wrapped consumer.
    pub fn consumer(&self) -> &C {
        &self.consumer
    }

    /// Mutable access to the wrapped consumer.
    pub fn consumer_mut(&mut self) -> &mut C {
        &mut self.consumer
    }

    /// Unwraps the consumer after the run.
    pub fn into_inner(self) -> C {
        self.consumer
    }
}

impl<C: TraceConsumer> Runtime for Live<C> {
    fn before_op(&mut self, _mem: &mut Memory, ev: &OpEvent<'_>) -> Directive {
        // Accesses and sync ops are reported from their own hooks (where
        // the resolved address / completion is known); barrier arrivals
        // are reported here because the release hook fires only once for
        // the whole group. Instrumentation markers are not events.
        match ev.op {
            Op::Compute(n) => self.consumer.compute(ev.thread, ev.site, n),
            Op::Syscall(k) => self.consumer.syscall(ev.thread, ev.site, k),
            Op::Barrier(b) => self.consumer.barrier_arrive(ev.thread, ev.site, b),
            _ => {}
        }
        Directive::Continue
    }

    fn read(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr) -> u64 {
        self.consumer.read(ev.thread, ev.site, addr);
        mem.load(addr)
    }

    fn write(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, val: u64) {
        self.consumer.write(ev.thread, ev.site, addr);
        mem.store(addr, val);
    }

    fn rmw(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, delta: u64) -> u64 {
        self.consumer.rmw(ev.thread, ev.site, addr);
        let old = mem.load(addr);
        mem.store(addr, old.wrapping_add(delta));
        old
    }

    fn after_sync(&mut self, _mem: &mut Memory, ev: &OpEvent<'_>) {
        let (t, site) = (ev.thread, ev.site);
        match ev.op {
            Op::Lock(l) => self.consumer.acquire(t, site, l),
            Op::Unlock(l) => self.consumer.release(t, site, l),
            Op::Signal(c) => self.consumer.signal(t, site, c),
            Op::Wait(c) => self.consumer.wait(t, site, c),
            Op::Spawn(u) => self.consumer.spawn(t, site, u),
            Op::Join(u) => self.consumer.join(t, site, u),
            _ => {}
        }
    }

    fn after_barrier(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        self.consumer.barrier_release(b, arrivals);
    }

    fn on_thread_done(&mut self, t: ThreadId) {
        self.consumer.thread_done(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;
    use crate::sched::RoundRobin;
    use crate::{Machine, RunStatus};

    /// Records the method-call sequence as strings, for order assertions.
    #[derive(Default)]
    struct Script(Vec<String>);

    impl TraceConsumer for Script {
        fn read(&mut self, t: ThreadId, _s: SiteId, a: Addr) {
            self.0.push(format!("r {t} {a}"));
        }
        fn write(&mut self, t: ThreadId, _s: SiteId, a: Addr) {
            self.0.push(format!("w {t} {a}"));
        }
        fn rmw(&mut self, t: ThreadId, _s: SiteId, a: Addr) {
            self.0.push(format!("rmw {t} {a}"));
        }
        fn acquire(&mut self, t: ThreadId, _s: SiteId, l: LockId) {
            self.0.push(format!("acq {t} {l}"));
        }
        fn release(&mut self, t: ThreadId, _s: SiteId, l: LockId) {
            self.0.push(format!("rel {t} {l}"));
        }
        fn barrier_arrive(&mut self, t: ThreadId, _s: SiteId, b: BarrierId) {
            self.0.push(format!("arr {t} {b}"));
        }
        fn barrier_release(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
            self.0.push(format!("relbar {b} x{}", arrivals.len()));
        }
        fn thread_done(&mut self, t: ThreadId) {
            self.0.push(format!("done {t}"));
        }
    }

    #[test]
    fn live_adapter_reports_events_in_execution_order() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        let bar = b.barrier_id("bar");
        for t in 0..2 {
            b.thread(t).lock(l).rmw(x, 1).unlock(l).barrier(bar);
        }
        let p = b.build();
        let mut rt = Live::new(Script::default());
        let mut m = Machine::new(&p);
        let r = m.run(&mut rt, &mut RoundRobin::new());
        assert_eq!(r.status, RunStatus::Done);
        let script = rt.into_inner().0;
        // t0 runs its whole critical section while t1 blocks on the lock
        // (blocked attempts produce no events), then both arrive at the
        // barrier and one release fires.
        let arr: Vec<_> = script.iter().filter(|s| s.starts_with("arr")).collect();
        assert_eq!(arr.len(), 2);
        assert_eq!(script.iter().filter(|s| s.starts_with("relbar")).count(), 1);
        assert_eq!(script.iter().filter(|s| s.starts_with("acq")).count(), 2);
        assert_eq!(script.iter().filter(|s| s.starts_with("done")).count(), 2);
        // The release event follows both arrivals.
        let rel_pos = script.iter().position(|s| s.starts_with("relbar")).unwrap();
        let last_arr = script.iter().rposition(|s| s.starts_with("arr")).unwrap();
        assert!(rel_pos > last_arr);
    }

    #[test]
    fn live_adapter_applies_direct_memory_effects() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).write(x, 7).rmw(x, 3);
        let p = b.build();
        let mut rt = Live::new(Script::default());
        let mut m = Machine::new(&p);
        m.run(&mut rt, &mut RoundRobin::new());
        assert_eq!(m.memory().load(x), 10);
    }
}
