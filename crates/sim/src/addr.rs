//! Byte addresses and the cache-line model.
//!
//! Intel RTM detects conflicts at cache-line granularity (64 bytes on
//! Haswell). The HTM simulation therefore maps every address to a
//! [`CacheLine`]; software happens-before detection works on exact
//! addresses, which is how the slow path filters false sharing.

use std::fmt;

/// Cache line size in bytes, matching the Intel Haswell L1D line size the
/// paper relies on.
pub const LINE_BYTES: u64 = 64;

/// A byte address in the simulated shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> CacheLine {
        CacheLine(self.0 / LINE_BYTES)
    }

    /// Returns the address offset by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A 64-byte cache line index (address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CacheLine(pub u64);

impl CacheLine {
    /// First byte address of this line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }
}

impl fmt::Display for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An allocator for laying out named variables in the simulated address
/// space with control over cache-line placement.
///
/// Workloads use this to plant *false sharing*: distinct variables placed
/// in one cache line trigger HTM conflicts without being true races, which
/// the slow path must filter out.
///
/// ```
/// use txrace_sim::VarLayout;
/// let mut layout = VarLayout::new();
/// let a = layout.fresh_line();
/// let b = layout.same_line(a, 8);
/// let c = layout.fresh_line();
/// assert_eq!(a.line(), b.line());
/// assert_ne!(a.line(), c.line());
/// ```
#[derive(Debug, Clone)]
pub struct VarLayout {
    next_line: u64,
}

impl Default for VarLayout {
    fn default() -> Self {
        Self::new()
    }
}

impl VarLayout {
    /// Creates a layout starting above the reserved low address range
    /// (low lines are reserved for runtime-internal variables such as the
    /// `TxFail` flag).
    pub fn new() -> Self {
        VarLayout { next_line: 16 }
    }

    /// Allocates an 8-byte variable at the start of a previously unused
    /// cache line.
    pub fn fresh_line(&mut self) -> Addr {
        let a = CacheLine(self.next_line).base();
        self.next_line += 1;
        a
    }

    /// Allocates a variable in the same cache line as `base`, at the given
    /// byte offset within the line.
    ///
    /// # Panics
    ///
    /// Panics if `offset_in_line` does not stay within one line (must be
    /// `< 64`) or is not 8-byte aligned.
    pub fn same_line(&mut self, base: Addr, offset_in_line: u64) -> Addr {
        assert!(
            offset_in_line < LINE_BYTES,
            "offset {offset_in_line} escapes the cache line"
        );
        assert_eq!(offset_in_line % 8, 0, "variables are 8-byte aligned");
        base.line().base().offset(offset_in_line)
    }

    /// Allocates an array of `len` 8-byte elements spanning consecutive
    /// lines, returning the base address. Element `i` is at `base + 8*i`.
    pub fn array(&mut self, len: usize) -> Addr {
        let lines = (len as u64 * 8).div_ceil(LINE_BYTES).max(1);
        let a = CacheLine(self.next_line).base();
        self.next_line += lines;
        a
    }
}

/// Returns the address of element `i` of an 8-byte-element array at `base`.
#[inline]
pub fn elem(base: Addr, i: usize) -> Addr {
    base.offset(8 * i as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping() {
        assert_eq!(Addr(0).line(), CacheLine(0));
        assert_eq!(Addr(63).line(), CacheLine(0));
        assert_eq!(Addr(64).line(), CacheLine(1));
        assert_eq!(CacheLine(2).base(), Addr(128));
    }

    #[test]
    fn layout_fresh_lines_do_not_collide() {
        let mut l = VarLayout::new();
        let a = l.fresh_line();
        let b = l.fresh_line();
        assert_ne!(a.line(), b.line());
    }

    #[test]
    fn layout_same_line_shares_line() {
        let mut l = VarLayout::new();
        let a = l.fresh_line();
        let b = l.same_line(a, 16);
        assert_eq!(a.line(), b.line());
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "escapes the cache line")]
    fn layout_same_line_rejects_overflow() {
        let mut l = VarLayout::new();
        let a = l.fresh_line();
        let _ = l.same_line(a, 64);
    }

    #[test]
    fn array_spans_enough_lines() {
        let mut l = VarLayout::new();
        let a = l.array(16); // 128 bytes -> 2 lines
        let b = l.fresh_line();
        assert_eq!(elem(a, 15).line().0, a.line().0 + 1);
        assert!(b.line().0 >= a.line().0 + 2);
    }

    #[test]
    fn elem_addresses_are_8_byte_strided() {
        let base = Addr(1024);
        assert_eq!(elem(base, 0), Addr(1024));
        assert_eq!(elem(base, 3), Addr(1048));
    }
}
