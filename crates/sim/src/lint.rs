//! Structural validation of IR programs.
//!
//! [`lint`] checks properties that [`crate::ir::ProgramBuilder`] cannot
//! enforce syntactically but that well-formed workloads should satisfy:
//! balanced lock/unlock pairing, joins only of threads that can actually
//! be spawned, agreeing barrier arrival counts, and no dead (zero-trip)
//! loops. Violations are warnings, not hard errors, at this layer — the
//! interpreter tolerates all of them — but the static race-freedom
//! analysis assumes lock discipline, so the detector façade refuses
//! programs that fail the lint.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::{BarrierId, ChanId, LockId, LoopId, ThreadId};
use crate::ir::{Op, Program, Stmt};

/// One structural problem found in a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintIssue {
    /// An `Unlock` executes while the lock's hold depth is zero.
    UnlockWithoutLock {
        /// The thread containing the unlock.
        thread: ThreadId,
        /// The lock being released.
        lock: LockId,
    },
    /// A thread's body ends with a lock still held.
    LockHeldAtExit {
        /// The exiting thread.
        thread: ThreadId,
        /// The lock left held.
        lock: LockId,
    },
    /// A loop body has a nonzero net lock-depth change, so the lock state
    /// differs between iterations.
    LoopChangesLockDepth {
        /// The thread containing the loop.
        thread: ThreadId,
        /// The offending loop.
        id: LoopId,
        /// The lock whose depth drifts.
        lock: LockId,
    },
    /// A `Join` targets a thread that does not start parked, so no
    /// `Spawn` can ever have started it.
    JoinOfNeverSpawned {
        /// The joining thread.
        thread: ThreadId,
        /// The join target.
        target: ThreadId,
    },
    /// Threads arriving at a barrier disagree on how many times they
    /// arrive, guaranteeing a stall once the counts diverge.
    BarrierArrivalMismatch {
        /// The barrier in question.
        barrier: BarrierId,
        /// Per-thread dynamic arrival counts (participants only).
        arrivals: Vec<(ThreadId, u64)>,
    },
    /// A channel's total dynamic send count differs from its total
    /// dynamic receive count: either a receiver starves (deadlock) or
    /// messages are left queued at exit (and senders stall once the
    /// surplus exceeds the capacity).
    ChanTrafficImbalance {
        /// The channel in question.
        chan: ChanId,
        /// Total dynamic sends across all threads (loop-weighted).
        sends: u64,
        /// Total dynamic receives across all threads (loop-weighted).
        recvs: u64,
    },
    /// A loop with zero trips: its body is dead code.
    ZeroTripLoop {
        /// The thread containing the loop.
        thread: ThreadId,
        /// The dead loop.
        id: LoopId,
    },
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintIssue::UnlockWithoutLock { thread, lock } => {
                write!(f, "{thread}: unlock of {lock} while not held")
            }
            LintIssue::LockHeldAtExit { thread, lock } => {
                write!(f, "{thread}: exits with {lock} still held")
            }
            LintIssue::LoopChangesLockDepth { thread, id, lock } => {
                write!(f, "{thread}: loop {id} changes net hold depth of {lock}")
            }
            LintIssue::JoinOfNeverSpawned { thread, target } => {
                write!(f, "{thread}: joins {target}, which is never spawned")
            }
            LintIssue::BarrierArrivalMismatch { barrier, arrivals } => {
                write!(f, "barrier {barrier}: arrival counts disagree (")?;
                for (i, (t, n)) in arrivals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}: {n}")?;
                }
                write!(f, ")")
            }
            LintIssue::ChanTrafficImbalance { chan, sends, recvs } => {
                write!(
                    f,
                    "channel {chan}: {sends} sends vs {recvs} receives (traffic imbalance)"
                )
            }
            LintIssue::ZeroTripLoop { thread, id } => {
                write!(f, "{thread}: loop {id} has zero trips (dead body)")
            }
        }
    }
}

/// Checks `p` for structural problems. Returns all issues found, in a
/// deterministic order (by thread, then program order; barrier issues
/// last).
pub fn lint(p: &Program) -> Vec<LintIssue> {
    let mut acc = Acc::default();
    for t in 0..p.thread_count() {
        let tid = ThreadId(t as u32);
        let mut held: BTreeMap<LockId, u64> = BTreeMap::new();
        walk(p, tid, p.thread(tid), 1, &mut held, &mut acc);
        for (&lock, &depth) in &held {
            if depth > 0 {
                acc.issues
                    .push(LintIssue::LockHeldAtExit { thread: tid, lock });
            }
        }
    }
    let Acc {
        arrivals,
        traffic,
        mut issues,
    } = acc;
    for (barrier, counts) in arrivals {
        let mut it = counts.values();
        let first = it.next().copied().unwrap_or(0);
        if it.any(|&n| n != first) {
            issues.push(LintIssue::BarrierArrivalMismatch {
                barrier,
                arrivals: counts.into_iter().collect(),
            });
        }
    }
    for (chan, (sends, recvs)) in traffic {
        if sends != recvs {
            issues.push(LintIssue::ChanTrafficImbalance { chan, sends, recvs });
        }
    }
    issues
}

/// Program-wide accumulators shared by every per-thread walk.
#[derive(Default)]
struct Acc {
    /// arrivals[barrier] -> thread -> dynamic count
    arrivals: BTreeMap<BarrierId, BTreeMap<ThreadId, u64>>,
    /// traffic[chan] = (total dynamic sends, total dynamic recvs)
    traffic: BTreeMap<ChanId, (u64, u64)>,
    issues: Vec<LintIssue>,
}

fn walk(
    p: &Program,
    tid: ThreadId,
    stmts: &[Stmt],
    multiplier: u64,
    held: &mut BTreeMap<LockId, u64>,
    acc: &mut Acc,
) {
    for s in stmts {
        match s {
            Stmt::Op { op, .. } => match op {
                Op::Lock(l) => {
                    *held.entry(*l).or_insert(0) += 1;
                }
                Op::Unlock(l) => {
                    let d = held.entry(*l).or_insert(0);
                    if *d == 0 {
                        acc.issues.push(LintIssue::UnlockWithoutLock {
                            thread: tid,
                            lock: *l,
                        });
                    } else {
                        *d -= 1;
                    }
                }
                Op::Join(target) if !p.starts_parked(*target) => {
                    acc.issues.push(LintIssue::JoinOfNeverSpawned {
                        thread: tid,
                        target: *target,
                    });
                }
                Op::Barrier(b) => {
                    *acc.arrivals.entry(*b).or_default().entry(tid).or_insert(0) += multiplier;
                }
                Op::ChanSend(ch) => {
                    acc.traffic.entry(*ch).or_insert((0, 0)).0 += multiplier;
                }
                Op::ChanRecv(ch) => {
                    acc.traffic.entry(*ch).or_insert((0, 0)).1 += multiplier;
                }
                _ => {}
            },
            Stmt::Loop { id, trips, body } => {
                if *trips == 0 {
                    acc.issues.push(LintIssue::ZeroTripLoop {
                        thread: tid,
                        id: *id,
                    });
                    continue;
                }
                let before = held.clone();
                walk(p, tid, body, multiplier * u64::from(*trips), held, acc);
                for lock in before.keys().chain(held.keys()) {
                    let a = before.get(lock).copied().unwrap_or(0);
                    let b = held.get(lock).copied().unwrap_or(0);
                    if a != b {
                        acc.issues.push(LintIssue::LoopChangesLockDepth {
                            thread: tid,
                            id: *id,
                            lock: *lock,
                        });
                    }
                }
                // Deduplicate: the drift was reported once; reset so the
                // same loop's drift is not re-reported by an enclosing
                // loop, and so exit-held checks reflect the first
                // iteration only.
                let drifted: Vec<LockId> = before
                    .keys()
                    .chain(held.keys())
                    .copied()
                    .filter(|l| {
                        before.get(l).copied().unwrap_or(0) != held.get(l).copied().unwrap_or(0)
                    })
                    .collect();
                for l in drifted {
                    held.remove(&l);
                    if let Some(&d) = before.get(&l) {
                        if d > 0 {
                            held.insert(l, d);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;

    #[test]
    fn clean_program_has_no_issues() {
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        let l = b.lock_id("l");
        let bar = b.barrier_id("bar");
        b.thread(0)
            .spawn(ThreadId(1))
            .spawn(ThreadId(2))
            .join(ThreadId(1))
            .join(ThreadId(2));
        for t in 1..3 {
            b.thread(t).loop_n(4, |tb| {
                tb.lock(l).write(x, 1).unlock(l).barrier(bar);
            });
        }
        assert!(lint(&b.build()).is_empty());
    }

    #[test]
    fn flags_unlock_without_lock_and_held_at_exit() {
        let mut b = ProgramBuilder::new(2);
        let l = b.lock_id("l");
        let m = b.lock_id("m");
        b.thread(0)
            .unlock(l)
            .lock(m)
            .spawn(ThreadId(1))
            .join(ThreadId(1));
        b.thread(1).compute(1);
        let issues = lint(&b.build());
        assert!(issues.contains(&LintIssue::UnlockWithoutLock {
            thread: ThreadId(0),
            lock: l,
        }));
        assert!(issues.contains(&LintIssue::LockHeldAtExit {
            thread: ThreadId(0),
            lock: m,
        }));
    }

    #[test]
    fn flags_loop_with_net_lock_change_once() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).loop_n(2, |tb| {
            tb.loop_n(3, |tb| {
                tb.lock(l).write(x, 1);
            });
        });
        b.thread(0).spawn(ThreadId(1)).join(ThreadId(1));
        b.thread(1).compute(1);
        let issues = lint(&b.build());
        let drift: Vec<_> = issues
            .iter()
            .filter(|i| matches!(i, LintIssue::LoopChangesLockDepth { .. }))
            .collect();
        assert_eq!(
            drift.len(),
            1,
            "inner loop reported exactly once: {issues:?}"
        );
        // The drifting lock is not reported as held at exit: only its
        // guaranteed (pre-loop) depth survives the loop.
        assert!(!issues
            .iter()
            .any(|i| matches!(i, LintIssue::LockHeldAtExit { .. })));
    }

    #[test]
    fn flags_join_of_never_spawned() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write(x, 1).join(ThreadId(1));
        b.thread(1).read(x);
        // Thread 1 does not start parked (it was never spawnable).
        let issues = lint(&b.build());
        assert!(issues.contains(&LintIssue::JoinOfNeverSpawned {
            thread: ThreadId(0),
            target: ThreadId(1),
        }));
    }

    #[test]
    fn flags_barrier_arrival_mismatch_with_loop_multiplicity() {
        let mut b = ProgramBuilder::new(3);
        let bar = b.barrier_id("bar");
        b.thread(0).spawn(ThreadId(1)).spawn(ThreadId(2));
        b.thread(1).loop_n(4, |tb| {
            tb.barrier(bar);
        });
        b.thread(2).loop_n(3, |tb| {
            tb.barrier(bar);
        });
        b.thread(0).join(ThreadId(1)).join(ThreadId(2));
        let issues = lint(&b.build());
        assert!(issues.iter().any(|i| matches!(
            i,
            LintIssue::BarrierArrivalMismatch { barrier, arrivals }
                if *barrier == bar && arrivals.len() == 2
        )));
    }

    #[test]
    fn flags_channel_traffic_imbalance_with_loop_multiplicity() {
        let mut b = ProgramBuilder::new(2);
        let ch = b.chan_id("ch", 8);
        b.thread(0).spawn(ThreadId(1)).loop_n(4, |tb| {
            tb.send(ch);
        });
        b.thread(1).loop_n(3, |tb| {
            tb.recv(ch);
        });
        b.thread(0).join(ThreadId(1));
        let issues = lint(&b.build());
        assert!(issues.contains(&LintIssue::ChanTrafficImbalance {
            chan: ch,
            sends: 4,
            recvs: 3,
        }));
    }

    #[test]
    fn balanced_channel_traffic_is_clean() {
        let mut b = ProgramBuilder::new(2);
        let ch = b.chan_id("ch", 2);
        b.thread(0).spawn(ThreadId(1)).loop_n(5, |tb| {
            tb.send(ch);
        });
        b.thread(1).loop_n(5, |tb| {
            tb.recv(ch);
        });
        b.thread(0).join(ThreadId(1));
        assert!(lint(&b.build()).is_empty());
    }

    #[test]
    fn flags_zero_trip_loop() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).loop_n(0, |tb| {
            tb.write(x, 1);
        });
        b.thread(0).spawn(ThreadId(1)).join(ThreadId(1));
        b.thread(1).read(x);
        let issues = lint(&b.build());
        assert!(issues
            .iter()
            .any(|i| matches!(i, LintIssue::ZeroTripLoop { .. })));
    }
}
