//! The simulated shared memory.

use std::collections::BTreeMap;

use crate::addr::Addr;

/// A sparse, word-granular shared memory. Unwritten addresses read as 0.
///
/// A `BTreeMap` keeps iteration deterministic so final-state comparisons
/// between runs are reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    cells: BTreeMap<Addr, u64>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads the 8-byte word at `a` (0 if never written).
    #[inline]
    pub fn load(&self, a: Addr) -> u64 {
        self.cells.get(&a).copied().unwrap_or(0)
    }

    /// Stores `v` into the 8-byte word at `a`.
    #[inline]
    pub fn store(&mut self, a: Addr, v: u64) {
        self.cells.insert(a, v);
    }

    /// Iterates over every written cell in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.cells.iter().map(|(a, v)| (*a, *v))
    }

    /// Number of distinct written cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cell was ever written.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.load(Addr(0x40)), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn store_then_load() {
        let mut m = Memory::new();
        m.store(Addr(8), 7);
        m.store(Addr(8), 9);
        assert_eq!(m.load(Addr(8)), 9);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_address_ordered() {
        let mut m = Memory::new();
        m.store(Addr(128), 1);
        m.store(Addr(0), 2);
        m.store(Addr(64), 3);
        let order: Vec<u64> = m.iter().map(|(a, _)| a.0).collect();
        assert_eq!(order, vec![0, 64, 128]);
    }
}
