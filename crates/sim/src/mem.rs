//! The simulated shared memory.

use std::fmt;

use crate::addr::Addr;

/// log2 of the words per page.
const PAGE_BITS: usize = 12;
/// Words covered by one page.
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// One 4096-word page: values plus a written bitset (distinguishing
/// "never written" from "written 0").
#[derive(Clone)]
struct Page {
    vals: [u64; PAGE_SIZE],
    written: [u64; PAGE_SIZE / 64],
}

impl Page {
    fn zeroed() -> Box<Self> {
        Box::new(Page {
            vals: [0; PAGE_SIZE],
            written: [0; PAGE_SIZE / 64],
        })
    }

    #[inline]
    fn is_written(&self, off: usize) -> bool {
        self.written[off / 64] & (1 << (off % 64)) != 0
    }
}

/// A word-granular shared memory, paged so its footprint is proportional
/// to the addresses actually touched rather than to the program's address
/// span (arrays reserve footprints far larger than what short runs
/// touch). Unwritten addresses read as 0.
///
/// A load is two array indexes — no hashing, no tree walk — and a store
/// to an untouched region allocates one 33 KiB page. Equality and
/// iteration consider only cells that were actually written, so two
/// memories with different page layouts but the same written cells
/// compare equal (as with the earlier map representations).
#[derive(Clone, Default)]
pub struct Memory {
    /// `pages[a >> PAGE_BITS]`, allocated on first store into the page.
    pages: Vec<Option<Box<Page>>>,
    /// Number of distinct written cells.
    count: usize,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads the 8-byte word at `a` (0 if never written).
    #[inline]
    pub fn load(&self, a: Addr) -> u64 {
        let i = a.0 as usize;
        match self.pages.get(i >> PAGE_BITS) {
            Some(Some(page)) => page.vals[i & (PAGE_SIZE - 1)],
            _ => 0,
        }
    }

    /// Stores `v` into the 8-byte word at `a`.
    #[inline]
    pub fn store(&mut self, a: Addr, v: u64) {
        let i = a.0 as usize;
        let p = i >> PAGE_BITS;
        if p >= self.pages.len() {
            self.pages.resize(p + 1, None);
        }
        let page = self.pages[p].get_or_insert_with(Page::zeroed);
        let off = i & (PAGE_SIZE - 1);
        page.vals[off] = v;
        if !page.is_written(off) {
            page.written[off / 64] |= 1 << (off % 64);
            self.count += 1;
        }
    }

    /// Iterates over every written cell in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(p, page)| page.as_deref().map(|page| (p, page)))
            .flat_map(|(p, page)| {
                (0..PAGE_SIZE)
                    .filter(move |&off| page.is_written(off))
                    .map(move |off| (Addr(((p << PAGE_BITS) | off) as u64), page.vals[off]))
            })
    }

    /// Number of distinct written cells.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no cell was ever written.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Stores `v` at `a` while appending the cell's previous state to
    /// `journal`, so the store can later be undone by
    /// [`WriteJournal::rollback_to`]. This is the write primitive of the
    /// eager (undo-log) transactional versioning: the store lands in
    /// memory immediately and rollback costs O(stores journaled), never
    /// O(heap).
    #[inline]
    pub fn store_logged(&mut self, a: Addr, v: u64, journal: &mut WriteJournal) {
        let i = a.0 as usize;
        let (prev, was_written) = match self.pages.get(i >> PAGE_BITS) {
            Some(Some(page)) => {
                let off = i & (PAGE_SIZE - 1);
                (page.vals[off], page.is_written(off))
            }
            _ => (0, false),
        };
        journal.entries.push(JournalEntry {
            addr: a,
            prev,
            was_written,
        });
        self.store(a, v);
    }

    /// Reverts the cell at `a` to a journaled previous state. A cell that
    /// was never written before the journaled store returns to pristine:
    /// value zeroed, written bit cleared, count decremented — required
    /// because [`Memory::load`], equality, and iteration must all agree
    /// with a memory that never saw the store.
    fn unstore(&mut self, a: Addr, prev: u64, was_written: bool) {
        if was_written {
            self.store(a, prev);
            return;
        }
        let i = a.0 as usize;
        let Some(Some(page)) = self.pages.get_mut(i >> PAGE_BITS) else {
            return; // the journaled store itself must have allocated it
        };
        let off = i & (PAGE_SIZE - 1);
        if page.is_written(off) {
            page.vals[off] = 0;
            page.written[off / 64] &= !(1 << (off % 64));
            self.count -= 1;
        }
    }
}

/// A position in a [`WriteJournal`], obtained from [`WriteJournal::mark`]
/// in O(1). Rolling back or committing to a mark discards everything
/// journaled after it.
/// The default mark is the start of an (empty) journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct JournalMark(usize);

#[derive(Debug, Clone, Copy)]
struct JournalEntry {
    addr: Addr,
    prev: u64,
    was_written: bool,
}

/// A write-ahead undo log over [`Memory`]: every
/// [`Memory::store_logged`] appends the overwritten cell's previous
/// state, so a region of stores can be undone in O(stores) — the
/// snapshot that replaces O(heap) memory clones on the transactional
/// fast path.
///
/// The watermark API is nestable: take a [`mark`](WriteJournal::mark)
/// before a speculative region, then either
/// [`commit_to`](WriteJournal::commit_to) it (O(1), keep the stores) or
/// [`rollback_to`](WriteJournal::rollback_to) it (restore in reverse
/// order, so overlapping stores of the same address unwind correctly).
#[derive(Debug, Clone, Default)]
pub struct WriteJournal {
    entries: Vec<JournalEntry>,
}

impl WriteJournal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current watermark (O(1)).
    #[inline]
    pub fn mark(&self) -> JournalMark {
        JournalMark(self.entries.len())
    }

    /// Entries journaled since `m`.
    pub fn len_since(&self, m: JournalMark) -> usize {
        self.entries.len() - m.0
    }

    /// True when nothing is journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keeps every store journaled up to `m` as permanent: the entries
    /// after `m` are dropped in O(1) (truncate), the stores stay in
    /// memory.
    pub fn commit_to(&mut self, m: JournalMark) {
        debug_assert!(m.0 <= self.entries.len(), "mark from a later epoch");
        self.entries.truncate(m.0);
    }

    /// Undoes every store journaled after `m`, newest first, restoring
    /// `mem` to its exact state at [`mark`](WriteJournal::mark) time —
    /// including written-bit and cell-count bookkeeping for cells the
    /// region touched first. O(stores since `m`).
    pub fn rollback_to(&mut self, mem: &mut Memory, m: JournalMark) {
        debug_assert!(m.0 <= self.entries.len(), "mark from a later epoch");
        while self.entries.len() > m.0 {
            let e = self.entries.pop().expect("len checked");
            mem.unstore(e.addr, e.prev, e.was_written);
        }
    }

    /// Drops all entries, keeping capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl PartialEq for Memory {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count && self.iter().eq(other.iter())
    }
}

impl Eq for Memory {}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.load(Addr(0x40)), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn store_then_load() {
        let mut m = Memory::new();
        m.store(Addr(8), 7);
        m.store(Addr(8), 9);
        assert_eq!(m.load(Addr(8)), 9);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_address_ordered() {
        let mut m = Memory::new();
        m.store(Addr(128), 1);
        m.store(Addr(0), 2);
        m.store(Addr(64), 3);
        let order: Vec<u64> = m.iter().map(|(a, _)| a.0).collect();
        assert_eq!(order, vec![0, 64, 128]);
    }

    #[test]
    fn iteration_crosses_pages_in_order() {
        let mut m = Memory::new();
        let hi = Addr((3 * PAGE_SIZE + 5) as u64);
        m.store(hi, 9);
        m.store(Addr(16), 1);
        let order: Vec<u64> = m.iter().map(|(a, _)| a.0).collect();
        assert_eq!(order, vec![16, hi.0]);
        assert_eq!(m.load(hi), 9);
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.store(Addr(0x400), 1); // forces a large table
        a.store(Addr(8), 5);
        b.store(Addr(8), 5);
        assert_ne!(a, b);
        b.store(Addr(0x400), 1);
        assert_eq!(a, b);
        // A written zero is distinct from an unwritten cell.
        a.store(Addr(16), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_prints_written_cells() {
        let mut m = Memory::new();
        m.store(Addr(8), 5);
        assert_eq!(format!("{m:?}"), "{Addr(8): 5}");
    }

    #[test]
    fn journal_rollback_restores_exact_state() {
        let mut m = Memory::new();
        let mut j = WriteJournal::new();
        m.store(Addr(8), 1);
        let before = m.clone();
        let mark = j.mark();
        m.store_logged(Addr(8), 2, &mut j); // overwrite
        m.store_logged(Addr(64), 3, &mut j); // fresh cell
        m.store_logged(Addr(8), 4, &mut j); // overwrite again
        assert_eq!(m.load(Addr(8)), 4);
        assert_eq!(m.len(), 2);
        j.rollback_to(&mut m, mark);
        assert_eq!(m, before, "rollback must be exact, incl. count/bits");
        assert_eq!(m.load(Addr(64)), 0);
        assert_eq!(m.len(), 1);
        assert!(j.is_empty());
    }

    #[test]
    fn journal_rollback_unwrites_fresh_zero_stores() {
        let mut m = Memory::new();
        let mut j = WriteJournal::new();
        let mark = j.mark();
        m.store_logged(Addr(16), 0, &mut j); // a written zero is a state change
        assert_eq!(m.len(), 1);
        j.rollback_to(&mut m, mark);
        assert!(m.is_empty(), "written-zero must become unwritten again");
        assert_eq!(m, Memory::new());
    }

    #[test]
    fn journal_commit_is_truncate_only() {
        let mut m = Memory::new();
        let mut j = WriteJournal::new();
        let outer = j.mark();
        m.store_logged(Addr(8), 1, &mut j);
        let inner = j.mark();
        assert_eq!(j.len_since(outer), 1);
        m.store_logged(Addr(8), 2, &mut j);
        j.commit_to(inner); // keep the inner store
        assert_eq!(m.load(Addr(8)), 2);
        j.rollback_to(&mut m, outer); // outer region still undoable
        assert_eq!(m.load(Addr(8)), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn journal_nested_marks_unwind_in_order() {
        let mut m = Memory::new();
        let mut j = WriteJournal::new();
        m.store(Addr(0), 7);
        let a = j.mark();
        m.store_logged(Addr(0), 8, &mut j);
        let b = j.mark();
        m.store_logged(Addr(0), 9, &mut j);
        j.rollback_to(&mut m, b);
        assert_eq!(m.load(Addr(0)), 8);
        j.rollback_to(&mut m, a);
        assert_eq!(m.load(Addr(0)), 7);
    }
}
