//! The simulated shared memory.

use std::fmt;

use crate::addr::Addr;

/// log2 of the words per page.
const PAGE_BITS: usize = 12;
/// Words covered by one page.
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// One 4096-word page: values plus a written bitset (distinguishing
/// "never written" from "written 0").
#[derive(Clone)]
struct Page {
    vals: [u64; PAGE_SIZE],
    written: [u64; PAGE_SIZE / 64],
}

impl Page {
    fn zeroed() -> Box<Self> {
        Box::new(Page {
            vals: [0; PAGE_SIZE],
            written: [0; PAGE_SIZE / 64],
        })
    }

    #[inline]
    fn is_written(&self, off: usize) -> bool {
        self.written[off / 64] & (1 << (off % 64)) != 0
    }
}

/// A word-granular shared memory, paged so its footprint is proportional
/// to the addresses actually touched rather than to the program's address
/// span (arrays reserve footprints far larger than what short runs
/// touch). Unwritten addresses read as 0.
///
/// A load is two array indexes — no hashing, no tree walk — and a store
/// to an untouched region allocates one 33 KiB page. Equality and
/// iteration consider only cells that were actually written, so two
/// memories with different page layouts but the same written cells
/// compare equal (as with the earlier map representations).
#[derive(Clone, Default)]
pub struct Memory {
    /// `pages[a >> PAGE_BITS]`, allocated on first store into the page.
    pages: Vec<Option<Box<Page>>>,
    /// Number of distinct written cells.
    count: usize,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads the 8-byte word at `a` (0 if never written).
    #[inline]
    pub fn load(&self, a: Addr) -> u64 {
        let i = a.0 as usize;
        match self.pages.get(i >> PAGE_BITS) {
            Some(Some(page)) => page.vals[i & (PAGE_SIZE - 1)],
            _ => 0,
        }
    }

    /// Stores `v` into the 8-byte word at `a`.
    #[inline]
    pub fn store(&mut self, a: Addr, v: u64) {
        let i = a.0 as usize;
        let p = i >> PAGE_BITS;
        if p >= self.pages.len() {
            self.pages.resize(p + 1, None);
        }
        let page = self.pages[p].get_or_insert_with(Page::zeroed);
        let off = i & (PAGE_SIZE - 1);
        page.vals[off] = v;
        if !page.is_written(off) {
            page.written[off / 64] |= 1 << (off % 64);
            self.count += 1;
        }
    }

    /// Iterates over every written cell in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(p, page)| page.as_deref().map(|page| (p, page)))
            .flat_map(|(p, page)| {
                (0..PAGE_SIZE)
                    .filter(move |&off| page.is_written(off))
                    .map(move |off| (Addr(((p << PAGE_BITS) | off) as u64), page.vals[off]))
            })
    }

    /// Number of distinct written cells.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no cell was ever written.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl PartialEq for Memory {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count && self.iter().eq(other.iter())
    }
}

impl Eq for Memory {}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.load(Addr(0x40)), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn store_then_load() {
        let mut m = Memory::new();
        m.store(Addr(8), 7);
        m.store(Addr(8), 9);
        assert_eq!(m.load(Addr(8)), 9);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_address_ordered() {
        let mut m = Memory::new();
        m.store(Addr(128), 1);
        m.store(Addr(0), 2);
        m.store(Addr(64), 3);
        let order: Vec<u64> = m.iter().map(|(a, _)| a.0).collect();
        assert_eq!(order, vec![0, 64, 128]);
    }

    #[test]
    fn iteration_crosses_pages_in_order() {
        let mut m = Memory::new();
        let hi = Addr((3 * PAGE_SIZE + 5) as u64);
        m.store(hi, 9);
        m.store(Addr(16), 1);
        let order: Vec<u64> = m.iter().map(|(a, _)| a.0).collect();
        assert_eq!(order, vec![16, hi.0]);
        assert_eq!(m.load(hi), 9);
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.store(Addr(0x400), 1); // forces a large table
        a.store(Addr(8), 5);
        b.store(Addr(8), 5);
        assert_ne!(a, b);
        b.store(Addr(0x400), 1);
        assert_eq!(a, b);
        // A written zero is distinct from an unwritten cell.
        a.store(Addr(16), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_prints_written_cells() {
        let mut m = Memory::new();
        m.store(Addr(8), 5);
        assert_eq!(format!("{m:?}"), "{Addr(8): 5}");
    }
}
