//! Dense interning of a program's identifier spaces, computed once at
//! program-load time (alongside flattening) so the per-access hot paths
//! downstream can use flat array indexing instead of hashing.
//!
//! A program's addresses come from [`crate::addr::VarLayout`], which
//! allocates compactly from line 16 upward (lines 0–15 are reserved for
//! runtime internals such as the `TxFail` flag at `Addr(0)`). The
//! address and cache-line spaces are therefore *already* nearly dense;
//! this pass makes that an explicit contract: it enumerates every
//! address a program can touch (including array footprints), assigns
//! contiguous `u32` ids in address order, and exposes the capacity
//! bounds that detector shadow tables, HTM line bitsets, and the
//! simulated memory use to pre-size their flat tables.
//!
//! Sites, loops, locks, conditions, barriers, and threads are assigned
//! dense ids by [`crate::ir::ProgramBuilder`] at construction time; the
//! interner re-exports their counts so every index space needed by a
//! detector is available from one place.

use crate::addr::{Addr, CacheLine};
use crate::densemap::AddrMap;
use crate::ir::{Op, Program, Stmt};

/// Number of low cache lines reserved for runtime-internal variables
/// (the `TxFail` flag lives in line 0); always interned.
pub const RESERVED_LINES: u64 = 16;

/// Dense id spaces for one program. Build with [`Interner::of_program`].
#[derive(Debug, Clone)]
pub struct Interner {
    /// Interned addresses in ascending order (`dense id -> Addr`).
    addrs: Vec<Addr>,
    /// Interned cache lines in ascending order (`dense id -> CacheLine`).
    lines: Vec<CacheLine>,
    /// Paged map `Addr -> dense id` (O(touched) space, not O(span)).
    addr_map: AddrMap,
    /// One past the highest interned raw address.
    addr_span: usize,
    /// Direct map `CacheLine.0 -> dense id + 1`.
    line_map: Vec<u32>,
    threads: u32,
    sites: u32,
    loops: u32,
    locks: u32,
    conds: u32,
    barriers: u32,
}

impl Interner {
    /// Enumerates every address `p` can access — static operands plus
    /// each array op's footprint over its innermost loop's iterations —
    /// and builds the dense id spaces.
    pub fn of_program(p: &Program) -> Self {
        let mut touched: Vec<Addr> = Vec::new();
        // Reserved runtime lines are part of every program's space: the
        // engine reads and writes the TxFail flag through the same HTM
        // paths as program data.
        for l in 0..RESERVED_LINES {
            touched.push(CacheLine(l).base());
        }
        for t in 0..p.thread_count() {
            collect(p.thread(crate::ids::ThreadId(t as u32)), 0, &mut touched);
        }
        touched.sort_unstable();
        touched.dedup();

        let addr_span = touched.last().map_or(0, |a| a.0 as usize + 1);
        let mut addr_map = AddrMap::new();
        // Resolving in ascending address order assigns dense ids in
        // address order, matching `addrs`.
        for a in &touched {
            addr_map.resolve(*a);
        }

        let mut lines: Vec<CacheLine> = touched.iter().map(|a| a.line()).collect();
        lines.dedup();
        let line_cap = lines.last().map_or(0, |l| l.0 as usize + 1);
        let mut line_map = vec![0u32; line_cap];
        for (i, l) in lines.iter().enumerate() {
            line_map[l.0 as usize] = i as u32 + 1;
        }

        Interner {
            addrs: touched,
            lines,
            addr_map,
            addr_span,
            line_map,
            threads: p.thread_count() as u32,
            sites: p.site_count(),
            loops: p.loop_count(),
            locks: p.lock_count(),
            conds: p.cond_count(),
            barriers: p.barrier_count(),
        }
    }

    /// Number of distinct interned addresses.
    pub fn addr_count(&self) -> usize {
        self.addrs.len()
    }

    /// Number of distinct interned cache lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// One past the highest interned raw address: the span a structure
    /// covering the raw address space must handle.
    pub fn addr_capacity(&self) -> usize {
        self.addr_span
    }

    /// One past the highest interned raw line index: the size a bitset
    /// or table indexed directly by `CacheLine.0` needs.
    pub fn line_capacity(&self) -> usize {
        self.line_map.len()
    }

    /// The dense id of `a`, or `None` if the program never accesses it.
    #[inline]
    pub fn addr_id(&self, a: Addr) -> Option<u32> {
        self.addr_map.get(a)
    }

    /// The dense id of `l`, or `None` if no interned address maps to it.
    #[inline]
    pub fn line_id(&self, l: CacheLine) -> Option<u32> {
        match self.line_map.get(l.0 as usize) {
            Some(&v) if v != 0 => Some(v - 1),
            _ => None,
        }
    }

    /// The address with dense id `id` (ids are assigned in address order).
    pub fn addr(&self, id: u32) -> Addr {
        self.addrs[id as usize]
    }

    /// The cache line with dense id `id`.
    pub fn line(&self, id: u32) -> CacheLine {
        self.lines[id as usize]
    }

    /// Thread count (dense: `ThreadId(0..threads)`).
    pub fn thread_count(&self) -> u32 {
        self.threads
    }

    /// Site count (dense: `SiteId(0..sites)`).
    pub fn site_count(&self) -> u32 {
        self.sites
    }

    /// Loop count (dense: `LoopId(0..loops)`).
    pub fn loop_count(&self) -> u32 {
        self.loops
    }

    /// Lock count (dense: `LockId(0..locks)`).
    pub fn lock_count(&self) -> u32 {
        self.locks
    }

    /// Condition count (dense: `CondId(0..conds)`).
    pub fn cond_count(&self) -> u32 {
        self.conds
    }

    /// Barrier count (dense: `BarrierId(0..barriers)`).
    pub fn barrier_count(&self) -> u32 {
        self.barriers
    }
}

/// Walks a statement list, recording every address each op can touch.
/// `innermost_trips` is the trip count of the nearest enclosing loop
/// (0 when outside any loop), which bounds the iteration index that
/// array ops add to their base address.
fn collect(stmts: &[Stmt], innermost_trips: u32, out: &mut Vec<Addr>) {
    for s in stmts {
        match s {
            Stmt::Op { op, .. } => match *op {
                Op::Read(a) | Op::Write(a, _) | Op::Rmw(a, _) => out.push(a),
                Op::ReadArr { base, stride } | Op::WriteArr { base, stride, .. } => {
                    // The executed index is `trips - remaining`, i.e.
                    // 0..trips inside a loop and exactly 0 outside.
                    for i in 0..innermost_trips.max(1) {
                        out.push(base.offset(stride * u64::from(i)));
                    }
                }
                _ => {}
            },
            Stmt::Loop { trips, body, .. } => collect(body, *trips, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;

    #[test]
    fn interns_reserved_lines_and_static_operands() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        b.thread(0).write(x, 1).read(y);
        b.thread(1).read(x);
        let it = Interner::of_program(&b.build());
        assert_eq!(it.line_id(Addr(0).line()), Some(0), "TxFail line");
        let xid = it.addr_id(x).expect("x interned");
        let yid = it.addr_id(y).expect("y interned");
        assert!(xid < yid, "ids follow address order");
        assert_eq!(it.addr(xid), x);
        assert_eq!(it.addr_count(), RESERVED_LINES as usize + 2);
        assert!(it.addr_id(Addr(0xdead_0000)).is_none());
        assert_eq!(it.thread_count(), 2);
    }

    #[test]
    fn array_footprint_covers_innermost_loop() {
        let mut b = ProgramBuilder::new(2);
        let arr = b.array("a", 16);
        b.thread(0).loop_n(16, |tb| {
            tb.read_arr(arr, 8);
        });
        b.thread(1).read(crate::addr::elem(arr, 0));
        let it = Interner::of_program(&b.build());
        for i in 0..16 {
            assert!(
                it.addr_id(crate::addr::elem(arr, i)).is_some(),
                "element {i} interned"
            );
        }
        assert!(it.addr_id(crate::addr::elem(arr, 16)).is_none());
        // 16 elements * 8 bytes span exactly 2 lines.
        assert_eq!(it.line_count(), RESERVED_LINES as usize + 2);
    }

    #[test]
    fn capacities_cover_every_interned_id() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write(x, 1);
        b.thread(1).read(x);
        let it = Interner::of_program(&b.build());
        assert_eq!(it.addr_capacity(), x.0 as usize + 1);
        assert_eq!(it.line_capacity(), x.line().0 as usize + 1);
        assert!(it.line_id(x.line()).is_some());
        assert_eq!(it.line(it.line_id(x.line()).unwrap()), x.line());
    }
}
