//! Schedulers: who runs next, and when "the OS" interrupts a thread.
//!
//! Interrupt injection models the architectural events (context switches,
//! interrupts, exceptions) that abort best-effort RTM transactions with an
//! *unknown* status, and the rarer transient events whose abort status sets
//! only the RETRY bit. The paper observed unknown aborts growing sharply at
//! 8 threads (hyperthreading); workloads model that by raising the
//! context-switch probability with thread count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ids::ThreadId;

/// Why the simulated OS interrupted a thread mid-transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptKind {
    /// Context switch / interrupt / exception: aborts a transaction with no
    /// status bit set ("unknown" abort).
    ContextSwitch,
    /// A transient microarchitectural event: aborts with only the RETRY
    /// bit, meaning the transaction may succeed if retried.
    Transient,
}

/// Per-step interrupt probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterruptModel {
    /// Probability that a step is hit by a context switch.
    pub context_switch_p: f64,
    /// Probability that a step is hit by a transient event.
    pub transient_p: f64,
}

impl InterruptModel {
    /// No interrupts at all (an idealized machine).
    pub const NONE: InterruptModel = InterruptModel {
        context_switch_p: 0.0,
        transient_p: 0.0,
    };
}

impl Default for InterruptModel {
    fn default() -> Self {
        Self::NONE
    }
}

/// Chooses the next thread to run and injects interrupts.
///
/// Implementations must be deterministic given their construction
/// parameters: the whole reproduction depends on seedable interleavings.
pub trait Scheduler {
    /// Picks one of the currently runnable threads. `runnable` is never
    /// empty and is sorted by thread id.
    fn next(&mut self, runnable: &[ThreadId]) -> ThreadId;

    /// Returns an interrupt hitting thread `t` at this step, if any.
    fn interrupt(&mut self, t: ThreadId) -> Option<InterruptKind> {
        let _ = t;
        None
    }
}

/// Deterministic round-robin over runnable threads. No interrupts.
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    counter: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn next(&mut self, runnable: &[ThreadId]) -> ThreadId {
        let t = runnable[self.counter % runnable.len()];
        self.counter += 1;
        t
    }
}

/// Uniform-random scheduling from a seed, with optional interrupt
/// injection and optional *burst* mode.
///
/// Burst mode runs the chosen thread for a geometric number of consecutive
/// steps, which makes interleavings coarser: concurrent regions overlap in
/// longer stretches, the way real timeslices behave. Workloads use it to
/// control how often racy regions actually overlap (the knob behind the
/// paper's Figure 10 across-run variance).
#[derive(Debug, Clone)]
pub struct RandomSched {
    rng: StdRng,
    interrupts: InterruptModel,
    /// Probability of *keeping* the current thread each step (0 = uniform).
    stickiness: f64,
    current: Option<ThreadId>,
}

impl RandomSched {
    /// Creates a uniform random scheduler with no interrupts.
    pub fn new(seed: u64) -> Self {
        RandomSched {
            rng: StdRng::seed_from_u64(seed),
            interrupts: InterruptModel::NONE,
            stickiness: 0.0,
            current: None,
        }
    }

    /// Sets the interrupt model.
    pub fn with_interrupts(mut self, m: InterruptModel) -> Self {
        self.interrupts = m;
        self
    }

    /// Sets burst stickiness in `[0, 1)`: the probability of continuing to
    /// run the same thread on the next step.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn with_stickiness(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "stickiness must be in [0, 1)");
        self.stickiness = p;
        self
    }
}

impl Scheduler for RandomSched {
    fn next(&mut self, runnable: &[ThreadId]) -> ThreadId {
        if let Some(cur) = self.current {
            if runnable.contains(&cur) && self.stickiness > 0.0 {
                // Consume randomness deterministically regardless of outcome.
                let stay: f64 = self.rng.gen();
                if stay < self.stickiness {
                    return cur;
                }
            }
        }
        let t = runnable[self.rng.gen_range(0..runnable.len())];
        self.current = Some(t);
        t
    }

    fn interrupt(&mut self, _t: ThreadId) -> Option<InterruptKind> {
        if self.interrupts.context_switch_p > 0.0 {
            let x: f64 = self.rng.gen();
            if x < self.interrupts.context_switch_p {
                return Some(InterruptKind::ContextSwitch);
            }
        }
        if self.interrupts.transient_p > 0.0 {
            let x: f64 = self.rng.gen();
            if x < self.interrupts.transient_p {
                return Some(InterruptKind::Transient);
            }
        }
        None
    }
}

/// A fair scheduler modelling truly parallel cores: every runnable thread
/// advances at (almost) the same rate, with a tunable fraction of
/// uniformly random picks.
///
/// On a real multicore, all threads execute simultaneously, so two
/// threads' positions in their instruction streams stay closely aligned —
/// unlike a uniformly random interleaving, whose relative drift grows
/// like √steps and makes temporally-adjacent code stop overlapping. Use
/// `jitter` near 0 for tight alignment (hot races overlap reliably) and
/// near 1 for schedule-sensitive behaviour.
#[derive(Debug, Clone)]
pub struct FairSched {
    rng: StdRng,
    jitter: f64,
    slack: u64,
    burst_budget: u64,
    counts: Vec<u64>,
    current: Option<ThreadId>,
    picks: u64,
    window: u64,
    interrupts: InterruptModel,
}

impl FairSched {
    /// Creates a fair scheduler; `jitter` in `[0, 1]` is the probability
    /// of a uniformly random pick instead of the fairness pick.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is not in `[0, 1]`.
    pub fn new(seed: u64, jitter: f64) -> Self {
        assert!((0.0..=1.0).contains(&jitter), "jitter must be in [0, 1]");
        FairSched {
            rng: StdRng::seed_from_u64(seed),
            jitter,
            slack: 0,
            burst_budget: 0,
            counts: Vec::new(),
            current: None,
            picks: 0,
            window: 2000,
            interrupts: InterruptModel::NONE,
        }
    }

    /// Sets the fairness window: counts are forgotten every `window`
    /// picks, so fairness is enforced *locally* without forcing threads to
    /// repay old imbalances (which would un-align threads that a barrier
    /// just re-aligned). `0` disables forgetting.
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window;
        self
    }

    /// Sets the fairness slack: the scheduler keeps running one thread in
    /// a burst until it gets `slack` steps ahead of the least-run thread,
    /// then switches to the least-run one. Relative thread positions
    /// oscillate with amplitude ~`slack` and a pseudo-random phase — fast,
    /// bounded decorrelation, like OS timeslices on loaded cores. `0` is
    /// strict per-step fairness.
    pub fn with_slack(mut self, slack: u64) -> Self {
        self.slack = slack;
        self
    }

    /// Sets the interrupt model.
    pub fn with_interrupts(mut self, m: InterruptModel) -> Self {
        self.interrupts = m;
        self
    }

    fn count_mut(&mut self, t: ThreadId) -> &mut u64 {
        if self.counts.len() <= t.index() {
            self.counts.resize(t.index() + 1, 0);
        }
        &mut self.counts[t.index()]
    }
}

impl Scheduler for FairSched {
    fn next(&mut self, runnable: &[ThreadId]) -> ThreadId {
        self.picks += 1;
        if self.window > 0 && self.picks.is_multiple_of(self.window) {
            self.counts.iter_mut().for_each(|c| *c = 0);
        }
        let pick = if self.jitter > 0.0 && self.rng.gen::<f64>() < self.jitter {
            runnable[self.rng.gen_range(0..runnable.len())]
        } else {
            let count_of = |counts: &[u64], t: ThreadId| {
                if counts.len() <= t.index() {
                    0
                } else {
                    counts[t.index()]
                }
            };
            // One pass computes both the minimum and the tie count; this
            // runs on every pick, so it must not allocate or rescan.
            let mut min = u64::MAX;
            let mut ties = 0usize;
            for &t in runnable {
                let c = count_of(&self.counts, t);
                if c < min {
                    min = c;
                    ties = 1;
                } else if c == min {
                    ties += 1;
                }
            }
            // Burst mode: stay on the current thread until it is `slack`
            // ahead of the least-run thread; then (and with slack 0) run
            // the least-run thread, ties broken randomly.
            let stay = self.current.filter(|&c| {
                self.slack > 0
                    && runnable.contains(&c)
                    && count_of(&self.counts, c) <= min + self.burst_budget
            });
            match stay {
                Some(c) => c,
                None => {
                    // Each burst gets a fresh random length in [1, slack],
                    // so relative thread positions oscillate with random
                    // amplitude and phase (bounded by `slack`).
                    if self.slack > 0 {
                        self.burst_budget = self.rng.gen_range(1..=self.slack);
                    }
                    // Tie-break uniformly without materializing the tie
                    // list: draw an index, then find it.
                    let k = self.rng.gen_range(0..ties);
                    runnable
                        .iter()
                        .copied()
                        .filter(|&t| count_of(&self.counts, t) == min)
                        .nth(k)
                        .expect("k < tie count")
                }
            }
        };
        *self.count_mut(pick) += 1;
        self.current = Some(pick);
        pick
    }

    fn interrupt(&mut self, _t: ThreadId) -> Option<InterruptKind> {
        if self.interrupts.context_switch_p > 0.0 {
            let x: f64 = self.rng.gen();
            if x < self.interrupts.context_switch_p {
                return Some(InterruptKind::ContextSwitch);
            }
        }
        if self.interrupts.transient_p > 0.0 {
            let x: f64 = self.rng.gen();
            if x < self.interrupts.transient_p {
                return Some(InterruptKind::Transient);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tids(v: &[u32]) -> Vec<ThreadId> {
        v.iter().map(|&i| ThreadId(i)).collect()
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobin::new();
        let r = tids(&[0, 1, 2]);
        let picks: Vec<u32> = (0..6).map(|_| s.next(&r).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_sched_is_deterministic_per_seed() {
        let r = tids(&[0, 1, 2, 3]);
        let mut a = RandomSched::new(7);
        let mut b = RandomSched::new(7);
        for _ in 0..100 {
            assert_eq!(a.next(&r), b.next(&r));
        }
    }

    #[test]
    fn random_sched_differs_across_seeds() {
        let r = tids(&[0, 1, 2, 3]);
        let mut a = RandomSched::new(1);
        let mut b = RandomSched::new(2);
        let pa: Vec<u32> = (0..50).map(|_| a.next(&r).0).collect();
        let pb: Vec<u32> = (0..50).map(|_| b.next(&r).0).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn interrupts_fire_at_configured_rate() {
        let mut s = RandomSched::new(3).with_interrupts(InterruptModel {
            context_switch_p: 0.5,
            transient_p: 0.0,
        });
        let n = (0..10_000)
            .filter(|_| s.interrupt(ThreadId(0)) == Some(InterruptKind::ContextSwitch))
            .count();
        assert!((4_000..6_000).contains(&n), "rate off: {n}");
    }

    #[test]
    fn no_interrupts_by_default() {
        let mut s = RandomSched::new(3);
        assert!((0..1000).all(|_| s.interrupt(ThreadId(0)).is_none()));
    }

    #[test]
    fn stickiness_keeps_thread_mostly() {
        let r = tids(&[0, 1]);
        let mut s = RandomSched::new(11).with_stickiness(0.95);
        let mut prev = s.next(&r);
        let mut switches = 0;
        for _ in 0..1000 {
            let cur = s.next(&r);
            if cur != prev {
                switches += 1;
            }
            prev = cur;
        }
        // ~2.5% of steps should switch (5% leave-rate, half return to the
        // same thread); without stickiness it would be ~50%.
        assert!(switches < 100, "too many switches: {switches}");
    }

    #[test]
    #[should_panic(expected = "stickiness")]
    fn stickiness_validated() {
        let _ = RandomSched::new(0).with_stickiness(1.0);
    }

    #[test]
    fn fair_sched_keeps_threads_aligned() {
        let r = tids(&[0, 1, 2, 3]);
        let mut s = FairSched::new(5, 0.1);
        let mut counts = [0u64; 4];
        for _ in 0..4000 {
            counts[s.next(&r).0 as usize] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(max - min < 40, "drift too large: {counts:?}");
    }

    #[test]
    fn fair_sched_with_full_jitter_is_uniform_random() {
        let r = tids(&[0, 1]);
        let mut s = FairSched::new(5, 1.0);
        let picks: Vec<u32> = (0..100).map(|_| s.next(&r).0).collect();
        assert!(picks.contains(&0) && picks.contains(&1));
    }

    #[test]
    fn fair_sched_is_deterministic() {
        let r = tids(&[0, 1, 2]);
        let mut a = FairSched::new(9, 0.3);
        let mut b = FairSched::new(9, 0.3);
        for _ in 0..200 {
            assert_eq!(a.next(&r), b.next(&r));
        }
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn fair_sched_validates_jitter() {
        let _ = FairSched::new(0, 1.5);
    }
}
