//! The interpreter: executes a [`Program`] under a [`Scheduler`], driving a
//! pluggable [`Runtime`] that observes every operation and owns all shared
//! memory accesses.
//!
//! The runtime hook design mirrors how TxRace interposes on a real program:
//!
//! * [`Runtime::before_op`] fires before each operation and may *roll the
//!   thread back* to an earlier [`Snapshot`] — that is a transactional
//!   abort: the program counter and loop state rewind, and whatever the
//!   runtime buffered is discarded by the runtime itself.
//! * [`Runtime::read`]/[`write`](Runtime::write)/[`rmw`](Runtime::rmw)
//!   delegate the architectural memory effect to the runtime, which can
//!   buffer it (transactional fast path), check it (software slow path), or
//!   apply it directly.
//! * [`Runtime::after_sync`] fires once a synchronization operation has
//!   architecturally completed (the lock is held, the wait is satisfied),
//!   which is where happens-before clocks are updated.
//!
//! Blocking is handled by the interpreter: a thread that cannot acquire a
//! lock (or whose `Wait`/`Join`/`Barrier` is not satisfied) blocks *without*
//! any runtime hook firing, and re-attempts when woken.

use crate::addr::Addr;
use crate::flat::{FlatProgram, InstrKind};
use crate::ids::{BarrierId, ChanId, CondId, LockId, LoopId, SiteId, ThreadId};
use crate::ir::{Op, Program};
use crate::mem::Memory;
use crate::sched::{InterruptKind, Scheduler};

/// One entry of a thread's loop stack: which loop, and how many iterations
/// remain (including the current one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopFrame {
    /// The loop.
    pub id: LoopId,
    /// Total trip count of this loop instance.
    pub trips: u32,
    /// Iterations left, counting the one in progress.
    pub remaining: u32,
}

/// The row-major flat iteration index of the current loop nest: with
/// frames outermost-first, `idx = ((i0 * n1) + i1) * n2 + i2 ...` where
/// `i_k` is the zero-based iteration of frame `k`.
pub fn flat_iteration_index(stack: &[LoopFrame]) -> u64 {
    let mut idx = 0u64;
    for f in stack {
        let iter = u64::from(f.trips - f.remaining);
        idx = idx * u64::from(f.trips) + iter;
    }
    idx
}

/// The zero-based iteration index of the *innermost* enclosing loop (0
/// outside any loop). Indexed accesses ([`Op::ReadArr`]) use this, so a
/// buffer walk re-walks the same addresses on every execution of its loop
/// — re-wrapping a walk in an outer loop never escapes the array.
pub fn innermost_iteration_index(stack: &[LoopFrame]) -> u64 {
    stack.last().map_or(0, |f| u64::from(f.trips - f.remaining))
}

/// A restorable point in one thread's control flow: program counter plus
/// loop stack. This is what a transactional abort rolls back to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Program counter (index into the thread's flattened code).
    pub pc: usize,
    /// Loop stack at that point.
    pub loop_stack: Vec<LoopFrame>,
}

/// Everything a [`Runtime`] learns about the operation about to execute.
#[derive(Debug)]
pub struct OpEvent<'a> {
    /// Executing thread.
    pub thread: ThreadId,
    /// Static site of the operation.
    pub site: SiteId,
    /// The operation.
    pub op: Op,
    /// Program counter of the operation.
    pub pc: usize,
    /// Current loop stack (innermost last).
    pub loop_stack: &'a [LoopFrame],
    /// Interrupt hitting this step, if any.
    pub interrupted: Option<InterruptKind>,
    /// Global step counter.
    pub step: u64,
}

impl OpEvent<'_> {
    /// Captures a [`Snapshot`] of the state *before* this operation; rolling
    /// back to it re-executes this operation.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            pc: self.pc,
            loop_stack: self.loop_stack.to_vec(),
        }
    }

    /// Identity of the innermost enclosing loop, if any.
    pub fn innermost_loop(&self) -> Option<LoopId> {
        self.loop_stack.last().map(|f| f.id)
    }
}

/// What the runtime wants done with the pending operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// Execute the operation normally.
    Continue,
    /// Do not execute it; rewind the thread to `0`'s state (a transactional
    /// abort). The runtime is responsible for discarding any buffered
    /// memory effects itself.
    Rollback(Snapshot),
}

/// Observes and mediates a program execution. See the module docs for the
/// hook protocol.
///
/// The memory-access hooks default to direct, unchecked access, so simple
/// runtimes only override what they need.
pub trait Runtime {
    /// Fired before every operation; may redirect control.
    fn before_op(&mut self, mem: &mut Memory, ev: &OpEvent<'_>) -> Directive;

    /// Performs a shared read, returning the value observed.
    fn read(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr) -> u64 {
        let _ = ev;
        mem.load(addr)
    }

    /// Performs a shared write.
    fn write(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, val: u64) {
        let _ = ev;
        mem.store(addr, val);
    }

    /// Performs an atomic fetch-add, returning the previous value.
    fn rmw(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, delta: u64) -> u64 {
        let _ = ev;
        let old = mem.load(addr);
        mem.store(addr, old.wrapping_add(delta));
        old
    }

    /// Fired after a synchronization operation architecturally completes
    /// (`Lock` acquired, `Unlock`/`Signal` done, `Wait` satisfied,
    /// `ChanSend`/`ChanRecv` performed, `Spawn` done, `Join` satisfied).
    /// Not fired for barriers — see [`Runtime::after_barrier`].
    fn after_sync(&mut self, mem: &mut Memory, ev: &OpEvent<'_>) {
        let _ = (mem, ev);
    }

    /// Fired once when a barrier releases, with every participant and the
    /// site of its arrival, in arrival order.
    fn after_barrier(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        let _ = (b, arrivals);
    }

    /// Fired when a thread finishes its program.
    fn on_thread_done(&mut self, t: ThreadId) {
        let _ = t;
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Every thread ran to completion.
    Done,
    /// No thread is runnable but not all are done.
    Deadlock,
    /// The step limit was exhausted.
    StepLimit,
    /// The program performed an illegal operation (e.g., unlocking a mutex
    /// it does not hold).
    Fault(String),
}

/// Result of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Why the run stopped.
    pub status: RunStatus,
    /// Total interpreter steps taken.
    pub steps: u64,
}

/// A bound on interpreter steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepLimit(pub u64);

impl Default for StepLimit {
    fn default() -> Self {
        StepLimit(u64::MAX)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Parked,
    Runnable,
    BlockedLock(LockId),
    BlockedWait(CondId),
    BlockedChanSend(ChanId),
    BlockedChanRecv(ChanId),
    BlockedBarrier(BarrierId),
    BlockedJoin(ThreadId),
    Done,
}

#[derive(Debug, Default, Clone)]
struct BarrierState {
    arrived: Vec<(ThreadId, SiteId)>,
}

/// The interpreter for one execution of a [`Program`].
///
/// A machine is single-shot: construct, [`run`](Machine::run), then inspect
/// [`memory`](Machine::memory). Running again after completion is a no-op.
#[derive(Debug)]
pub struct Machine {
    flat: FlatProgram,
    pcs: Vec<usize>,
    loop_stacks: Vec<Vec<LoopFrame>>,
    /// `loop_free[t]`: thread `t`'s flat code contains no loops, so its
    /// loop stack is empty forever and the per-step detach/restore of
    /// `loop_stacks[t]` can be skipped.
    loop_free: Vec<bool>,
    states: Vec<TState>,
    memory: Memory,
    locks: Vec<Option<ThreadId>>,
    sems: Vec<u64>,
    /// Messages currently queued in each channel.
    chans: Vec<u64>,
    chan_caps: Vec<u64>,
    barriers: Vec<BarrierState>,
    barrier_widths: Vec<u32>,
    steps: u64,
    /// Set whenever any thread's [`TState`] changes, so the run loop
    /// rebuilds its cached runnable list only then (most steps leave every
    /// thread's state untouched).
    states_dirty: bool,
}

impl Machine {
    /// Builds a machine for one execution of `p`.
    pub fn new(p: &Program) -> Self {
        let flat = FlatProgram::from_program(p);
        let n = p.thread_count();
        let states = (0..n)
            .map(|t| {
                if p.starts_parked(ThreadId(t as u32)) {
                    TState::Parked
                } else {
                    TState::Runnable
                }
            })
            .collect();
        let loop_free = flat
            .threads
            .iter()
            .map(|th| !th.code.iter().any(|i| i.kind() == InstrKind::LoopEnter))
            .collect();
        Machine {
            flat,
            pcs: vec![0; n],
            loop_stacks: vec![Vec::new(); n],
            loop_free,
            states,
            memory: Memory::new(),
            locks: vec![None; p.lock_count() as usize],
            sems: vec![0; p.cond_count() as usize],
            chans: vec![0; p.chan_count() as usize],
            chan_caps: (0..p.chan_count())
                .map(|c| p.chan_capacity(ChanId(c)))
                .collect(),
            barriers: vec![BarrierState::default(); p.barrier_count() as usize],
            barrier_widths: (0..p.barrier_count())
                .map(|b| p.barrier_width(BarrierId(b)))
                .collect(),
            steps: 0,
            states_dirty: true,
        }
    }

    /// The shared memory (final state after a run).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Runs to completion with no step limit.
    pub fn run<R: Runtime>(&mut self, rt: &mut R, sched: &mut dyn Scheduler) -> RunResult {
        self.run_with_limit(rt, sched, StepLimit::default())
    }

    /// Runs until completion, deadlock, fault, or the step limit.
    pub fn run_with_limit<R: Runtime>(
        &mut self,
        rt: &mut R,
        sched: &mut dyn Scheduler,
        limit: StepLimit,
    ) -> RunResult {
        // Threads with empty programs finish immediately.
        for t in 0..self.pcs.len() {
            self.maybe_finish(ThreadId(t as u32), rt);
        }
        let mut runnable: Vec<ThreadId> = Vec::with_capacity(self.pcs.len());
        let mut all_done = true;
        self.states_dirty = true;
        loop {
            if self.states_dirty {
                self.states_dirty = false;
                runnable.clear();
                all_done = true;
                for (i, s) in self.states.iter().enumerate() {
                    match s {
                        TState::Runnable => {
                            all_done = false;
                            runnable.push(ThreadId(i as u32));
                        }
                        TState::Done => {}
                        // A parked thread whose spawn never executed is a
                        // thread that was never created — it does not block
                        // completion (joining it, however, still deadlocks).
                        TState::Parked => {}
                        _ => all_done = false,
                    }
                }
            }
            if runnable.is_empty() {
                let status = if all_done {
                    RunStatus::Done
                } else {
                    RunStatus::Deadlock
                };
                return RunResult {
                    status,
                    steps: self.steps,
                };
            }
            if self.steps >= limit.0 {
                return RunResult {
                    status: RunStatus::StepLimit,
                    steps: self.steps,
                };
            }
            let t = sched.next(&runnable);
            debug_assert!(runnable.contains(&t), "scheduler picked unrunnable thread");
            self.steps += 1;
            if let Err(msg) = self.step_thread(t, rt, sched) {
                return RunResult {
                    status: RunStatus::Fault(msg),
                    steps: self.steps,
                };
            }
        }
    }

    fn step_thread<R: Runtime>(
        &mut self,
        t: ThreadId,
        rt: &mut R,
        sched: &mut dyn Scheduler,
    ) -> Result<(), String> {
        let ti = t.index();
        let pc = self.pcs[ti];
        let instr = self.flat.threads[ti].code[pc];
        // Hot path first: everything but the two loop-control kinds is an
        // operation, decoded from the packed form only once we know we
        // will execute it.
        match instr.kind() {
            InstrKind::LoopEnter => {
                let trips = instr.trips();
                if trips == 0 {
                    self.pcs[ti] = instr.end() + 1;
                } else {
                    self.loop_stacks[ti].push(LoopFrame {
                        id: instr.loop_id(),
                        trips,
                        remaining: trips,
                    });
                    self.pcs[ti] = pc + 1;
                }
                self.maybe_finish(t, rt);
                Ok(())
            }
            InstrKind::LoopBack => {
                let frame = self.loop_stacks[ti]
                    .last_mut()
                    .expect("LoopBack with empty loop stack");
                frame.remaining -= 1;
                if frame.remaining > 0 {
                    self.pcs[ti] = instr.start();
                } else {
                    self.loop_stacks[ti].pop();
                    self.pcs[ti] = pc + 1;
                }
                self.maybe_finish(t, rt);
                Ok(())
            }
            _ => {
                let op = self.flat.threads[ti].decode_op(&instr);
                self.step_op(t, pc, instr.site(), op, rt, sched)
            }
        }
    }

    fn step_op<R: Runtime>(
        &mut self,
        t: ThreadId,
        pc: usize,
        site: SiteId,
        op: Op,
        rt: &mut R,
        sched: &mut dyn Scheduler,
    ) -> Result<(), String> {
        let ti = t.index();
        // Blocking check happens before any hook fires.
        match op {
            Op::Lock(l) if self.locks[l.index()].is_some() => {
                self.states[ti] = TState::BlockedLock(l);
                self.states_dirty = true;
                return Ok(());
            }
            Op::Wait(c) if self.sems[c.index()] == 0 => {
                self.states[ti] = TState::BlockedWait(c);
                self.states_dirty = true;
                return Ok(());
            }
            Op::ChanSend(ch) if self.chans[ch.index()] >= self.chan_caps[ch.index()] => {
                self.states[ti] = TState::BlockedChanSend(ch);
                self.states_dirty = true;
                return Ok(());
            }
            Op::ChanRecv(ch) if self.chans[ch.index()] == 0 => {
                self.states[ti] = TState::BlockedChanRecv(ch);
                self.states_dirty = true;
                return Ok(());
            }
            Op::Join(u) if self.states[u.index()] != TState::Done => {
                self.states[ti] = TState::BlockedJoin(u);
                self.states_dirty = true;
                return Ok(());
            }
            _ => {}
        }

        let interrupted = sched.interrupt(t);
        // Detach the loop stack so the event can borrow it while hooks
        // receive `&mut Memory`. A loop-free thread's stack is empty
        // forever, so an empty stand-in (no allocation) saves the
        // detach/restore pair on its every step.
        let loop_free = self.loop_free[ti];
        let stack = if loop_free {
            debug_assert!(self.loop_stacks[ti].is_empty());
            Vec::new()
        } else {
            std::mem::take(&mut self.loop_stacks[ti])
        };
        // Indexed accesses resolve their effective address from the loop
        // nest *before* the event is built.
        let arr_addr = match op {
            Op::ReadArr { base, stride } | Op::WriteArr { base, stride, .. } => {
                Some(base.offset(stride * innermost_iteration_index(&stack)))
            }
            _ => None,
        };
        let ev = OpEvent {
            thread: t,
            site,
            op,
            pc,
            loop_stack: &stack,
            interrupted,
            step: self.steps,
        };

        match rt.before_op(&mut self.memory, &ev) {
            Directive::Rollback(snap) => {
                self.pcs[ti] = snap.pc;
                self.loop_stacks[ti] = snap.loop_stack;
                return Ok(());
            }
            Directive::Continue => {}
        }

        let mut advance = true;
        let mut fault: Option<String> = None;
        let mut wake_lock: Option<LockId> = None;
        let mut wake_cond: Option<CondId> = None;
        let mut wake_chan: Option<TState> = None;
        let mut spawned: Option<ThreadId> = None;
        let mut barrier_release: Option<BarrierId> = None;

        match op {
            Op::Read(a) => {
                let _ = rt.read(&mut self.memory, &ev, a);
            }
            Op::Write(a, v) => rt.write(&mut self.memory, &ev, a, v),
            Op::Rmw(a, d) => {
                let _ = rt.rmw(&mut self.memory, &ev, a, d);
            }
            Op::ReadArr { .. } => {
                let a = arr_addr.expect("resolved above");
                let _ = rt.read(&mut self.memory, &ev, a);
            }
            Op::WriteArr { val, .. } => {
                let a = arr_addr.expect("resolved above");
                rt.write(&mut self.memory, &ev, a, val);
            }
            Op::Lock(l) => {
                self.locks[l.index()] = Some(t);
                rt.after_sync(&mut self.memory, &ev);
            }
            Op::Unlock(l) => {
                if self.locks[l.index()] != Some(t) {
                    fault = Some(format!("{t} unlocked {l} it does not hold"));
                } else {
                    self.locks[l.index()] = None;
                    wake_lock = Some(l);
                    rt.after_sync(&mut self.memory, &ev);
                }
            }
            Op::Signal(c) => {
                self.sems[c.index()] += 1;
                wake_cond = Some(c);
                rt.after_sync(&mut self.memory, &ev);
            }
            Op::Wait(c) => {
                debug_assert!(self.sems[c.index()] > 0);
                self.sems[c.index()] -= 1;
                rt.after_sync(&mut self.memory, &ev);
            }
            Op::ChanSend(ch) => {
                debug_assert!(self.chans[ch.index()] < self.chan_caps[ch.index()]);
                self.chans[ch.index()] += 1;
                wake_chan = Some(TState::BlockedChanRecv(ch));
                rt.after_sync(&mut self.memory, &ev);
            }
            Op::ChanRecv(ch) => {
                debug_assert!(self.chans[ch.index()] > 0);
                self.chans[ch.index()] -= 1;
                wake_chan = Some(TState::BlockedChanSend(ch));
                rt.after_sync(&mut self.memory, &ev);
            }
            Op::Spawn(u) => {
                if self.states[u.index()] != TState::Parked {
                    fault = Some(format!("{t} spawned non-parked thread {u}"));
                } else {
                    spawned = Some(u);
                    rt.after_sync(&mut self.memory, &ev);
                }
            }
            Op::Join(_) => {
                rt.after_sync(&mut self.memory, &ev);
            }
            Op::Barrier(b) => {
                self.barriers[b.index()].arrived.push((t, site));
                if self.barriers[b.index()].arrived.len() as u32 == self.barrier_widths[b.index()] {
                    barrier_release = Some(b);
                } else {
                    advance = false; // stays at the barrier op, blocked below
                }
            }
            Op::Syscall(_) | Op::Compute(_) => {}
            Op::TxBegin(_) | Op::TxEnd(_) | Op::LoopCutProbe(_) => {}
        }
        if !loop_free {
            self.loop_stacks[ti] = stack;
        }

        if let Some(msg) = fault {
            return Err(msg);
        }
        if let Some(u) = spawned {
            self.states[u.index()] = TState::Runnable;
            self.states_dirty = true;
            self.maybe_finish(u, rt); // spawned thread may have an empty program
        }
        if let Some(l) = wake_lock {
            for s in self.states.iter_mut() {
                if *s == TState::BlockedLock(l) {
                    *s = TState::Runnable;
                    self.states_dirty = true;
                }
            }
        }
        if let Some(c) = wake_cond {
            for s in self.states.iter_mut() {
                if *s == TState::BlockedWait(c) {
                    *s = TState::Runnable;
                    self.states_dirty = true;
                }
            }
        }
        if let Some(blocked) = wake_chan {
            for s in self.states.iter_mut() {
                if *s == blocked {
                    *s = TState::Runnable;
                    self.states_dirty = true;
                }
            }
        }

        if let Some(b) = barrier_release {
            let arrivals = std::mem::take(&mut self.barriers[b.index()].arrived);
            rt.after_barrier(b, &arrivals);
            for &(u, _) in &arrivals {
                if u != t {
                    debug_assert_eq!(self.states[u.index()], TState::BlockedBarrier(b));
                    self.states[u.index()] = TState::Runnable;
                    self.states_dirty = true;
                    self.pcs[u.index()] += 1;
                    self.maybe_finish(u, rt);
                }
            }
            // `t` (the last arriver) advances normally below.
        } else if !advance {
            if let Op::Barrier(b) = op {
                self.states[ti] = TState::BlockedBarrier(b);
                self.states_dirty = true;
            }
            return Ok(());
        }

        self.pcs[ti] = pc + 1;
        self.maybe_finish(t, rt);
        Ok(())
    }

    fn maybe_finish<R: Runtime>(&mut self, t: ThreadId, rt: &mut R) {
        let ti = t.index();
        if self.states[ti] != TState::Done
            && self.states[ti] != TState::Parked
            && self.pcs[ti] >= self.flat.threads[ti].code.len()
        {
            self.states[ti] = TState::Done;
            self.states_dirty = true;
            for s in self.states.iter_mut() {
                if *s == TState::BlockedJoin(t) {
                    *s = TState::Runnable;
                }
            }
            rt.on_thread_done(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ProgramBuilder, SyscallKind};
    use crate::sched::{RandomSched, RoundRobin};
    use crate::DirectRuntime;

    fn run_direct(p: &Program) -> (RunResult, Memory) {
        let mut m = Machine::new(p);
        let mut rt = DirectRuntime::default();
        let mut s = RoundRobin::new();
        let r = m.run(&mut rt, &mut s);
        let mem = m.memory().clone();
        (r, mem)
    }

    #[test]
    fn straight_line_program_completes() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).write(x, 5).read(x).compute(10);
        let p = b.build();
        let (r, mem) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Done);
        assert_eq!(mem.load(x), 5);
    }

    #[test]
    fn loops_iterate_their_trip_count() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(10, |t| {
            t.rmw(x, 1);
        });
        let p = b.build();
        let (r, mem) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Done);
        assert_eq!(mem.load(x), 10);
    }

    #[test]
    fn zero_trip_loops_are_skipped() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0)
            .loop_n(0, |t| {
                t.write(x, 99);
            })
            .write(x, 1);
        let p = b.build();
        let (r, mem) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Done);
        assert_eq!(mem.load(x), 1);
    }

    #[test]
    fn nested_loops_multiply() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(3, |t| {
            t.loop_n(4, |t| {
                t.rmw(x, 1);
            });
        });
        let p = b.build();
        let (_, mem) = run_direct(&p);
        assert_eq!(mem.load(x), 12);
    }

    #[test]
    fn locks_provide_mutual_exclusion_of_rmw() {
        // With round-robin and locks, both increments land.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        for t in 0..2 {
            b.thread(t).loop_n(50, |tb| {
                tb.lock(l).rmw(x, 1).unlock(l);
            });
        }
        let p = b.build();
        let (r, mem) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Done);
        assert_eq!(mem.load(x), 100);
    }

    #[test]
    fn unlock_of_unheld_lock_faults() {
        let mut b = ProgramBuilder::new(1);
        let l = b.lock_id("l");
        b.thread(0).unlock(l);
        let p = b.build();
        let (r, _) = run_direct(&p);
        assert!(matches!(r.status, RunStatus::Fault(_)));
    }

    #[test]
    fn wait_blocks_until_signal() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let c = b.cond_id("c");
        b.thread(0).write(x, 1).signal(c);
        b.thread(1).wait(c).read(x);
        let p = b.build();
        let (r, _) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Done);
    }

    #[test]
    fn recv_blocks_until_send() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let ch = b.chan_id("ch", 4);
        b.thread(0).write(x, 1).send(ch);
        b.thread(1).recv(ch).read(x);
        let p = b.build();
        let (r, mem) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Done);
        assert_eq!(mem.load(x), 1);
    }

    #[test]
    fn send_blocks_at_capacity() {
        // Capacity-1 channel: the producer cannot run ahead of the consumer,
        // so under round-robin the two strictly alternate and every update
        // lands.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let ch = b.chan_id("ch", 1);
        b.thread(0).loop_n(10, |t| {
            t.rmw(x, 1).send(ch);
        });
        b.thread(1).loop_n(10, |t| {
            t.recv(ch).rmw(x, 1);
        });
        let p = b.build();
        let (r, mem) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Done);
        assert_eq!(mem.load(x), 20);
    }

    #[test]
    fn recv_without_send_deadlocks() {
        let mut b = ProgramBuilder::new(1);
        let ch = b.chan_id("ch", 2);
        b.thread(0).recv(ch);
        let p = b.build();
        let (r, _) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Deadlock);
    }

    #[test]
    fn send_beyond_capacity_without_recv_deadlocks() {
        let mut b = ProgramBuilder::new(1);
        let ch = b.chan_id("ch", 2);
        b.thread(0).send(ch).send(ch).send(ch);
        let p = b.build();
        let (r, _) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Deadlock);
    }

    #[test]
    fn wait_without_signal_deadlocks() {
        let mut b = ProgramBuilder::new(1);
        let c = b.cond_id("c");
        b.thread(0).wait(c);
        let p = b.build();
        let (r, _) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Deadlock);
    }

    #[test]
    fn lock_cycle_deadlocks() {
        let mut b = ProgramBuilder::new(2);
        let l1 = b.lock_id("a");
        let l2 = b.lock_id("b");
        // Classic AB/BA deadlock with round-robin scheduling.
        b.thread(0).lock(l1).compute(1).lock(l2);
        b.thread(1).lock(l2).compute(1).lock(l1);
        let p = b.build();
        let (r, _) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Deadlock);
    }

    #[test]
    fn spawn_and_join() {
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        b.thread(0)
            .spawn(ThreadId(1))
            .spawn(ThreadId(2))
            .join(ThreadId(1))
            .join(ThreadId(2))
            .read(x);
        b.thread(1).rmw(x, 1);
        b.thread(2).rmw(x, 1);
        let p = b.build();
        let (r, mem) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Done);
        assert_eq!(mem.load(x), 2);
    }

    #[test]
    fn join_of_never_spawned_parked_thread_deadlocks() {
        // Thread 1 is spawned only after the join, which can never happen.
        let mut b = ProgramBuilder::new(2);
        b.thread(0).join(ThreadId(1)).spawn(ThreadId(1));
        b.thread(1).compute(1);
        let p = b.build();
        let (r, _) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Deadlock);
    }

    #[test]
    fn barrier_releases_all_participants() {
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        let bar = b.barrier_id("bar");
        for t in 0..3 {
            b.thread(t).rmw(x, 1).barrier(bar).read(x);
        }
        let p = b.build();
        let (r, mem) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Done);
        assert_eq!(mem.load(x), 3);
    }

    #[test]
    fn barrier_in_loop_reuses() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let bar = b.barrier_id("bar");
        for t in 0..2 {
            b.thread(t).loop_n(5, |tb| {
                tb.rmw(x, 1).barrier(bar);
            });
        }
        let p = b.build();
        let (r, mem) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Done);
        assert_eq!(mem.load(x), 10);
    }

    #[test]
    fn step_limit_stops_run() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(1000, |t| {
            t.read(x);
        });
        let p = b.build();
        let mut m = Machine::new(&p);
        let mut rt = DirectRuntime::default();
        let mut s = RoundRobin::new();
        let r = m.run_with_limit(&mut rt, &mut s, StepLimit(10));
        assert_eq!(r.status, RunStatus::StepLimit);
        assert_eq!(r.steps, 10);
    }

    #[test]
    fn random_schedule_same_seed_same_final_memory() {
        let mut b = ProgramBuilder::new(4);
        let arr = b.array("a", 32);
        for t in 0..4u64 {
            b.thread(t as usize).loop_n(20, |tb| {
                tb.rmw(crate::addr::elem(arr, (t % 4) as usize), t + 1);
            });
        }
        let p = b.build();
        let run = |seed| {
            let mut m = Machine::new(&p);
            let mut rt = DirectRuntime::default();
            let mut s = RandomSched::new(seed);
            let r = m.run(&mut rt, &mut s);
            assert_eq!(r.status, RunStatus::Done);
            (m.memory().clone(), r.steps)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn syscalls_and_markers_are_noops_for_direct_runtime() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0)
            .syscall(SyscallKind::Io)
            .write(x, 2)
            .syscall(SyscallKind::Alloc);
        let p = b.build();
        let (r, mem) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Done);
        assert_eq!(mem.load(x), 2);
    }

    /// A runtime that rolls a thread back once, exercising the abort path.
    struct RollOnce {
        done: bool,
        saved: Option<Snapshot>,
        rolled_at_step: u64,
    }

    impl Runtime for RollOnce {
        fn before_op(&mut self, _mem: &mut Memory, ev: &OpEvent<'_>) -> Directive {
            if self.saved.is_none() {
                self.saved = Some(ev.snapshot());
            } else if !self.done && ev.step > 3 {
                self.done = true;
                self.rolled_at_step = ev.step;
                return Directive::Rollback(self.saved.clone().expect("saved above"));
            }
            Directive::Continue
        }
    }

    #[test]
    fn rollback_reexecutes_from_snapshot() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).rmw(x, 1).rmw(x, 1).rmw(x, 1).rmw(x, 1);
        let p = b.build();
        let mut m = Machine::new(&p);
        let mut rt = RollOnce {
            done: false,
            saved: None,
            rolled_at_step: 0,
        };
        let mut s = RoundRobin::new();
        let r = m.run(&mut rt, &mut s);
        assert_eq!(r.status, RunStatus::Done);
        assert!(rt.done);
        // Rolled back to the beginning once: some increments re-applied
        // (DirectRuntime-style effects are not undone — the runtime under
        // test does not buffer), so the count exceeds 4.
        assert!(m.memory().load(x) > 4, "got {}", m.memory().load(x));
    }

    #[test]
    fn rollback_restores_loop_stack() {
        // Roll back from inside a loop to before the loop; the loop must
        // restart from scratch.
        struct RollFromLoop {
            rolled: bool,
            start: Option<Snapshot>,
        }
        impl Runtime for RollFromLoop {
            fn before_op(&mut self, _mem: &mut Memory, ev: &OpEvent<'_>) -> Directive {
                if self.start.is_none() {
                    self.start = Some(ev.snapshot());
                }
                if !self.rolled && !ev.loop_stack.is_empty() && ev.step > 6 {
                    self.rolled = true;
                    return Directive::Rollback(self.start.clone().expect("set above"));
                }
                Directive::Continue
            }
        }
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).write(x, 0).loop_n(5, |t| {
            t.rmw(x, 1);
        });
        let p = b.build();
        let mut m = Machine::new(&p);
        let mut rt = RollFromLoop {
            rolled: false,
            start: None,
        };
        let mut s = RoundRobin::new();
        let r = m.run(&mut rt, &mut s);
        assert_eq!(r.status, RunStatus::Done);
        assert!(rt.rolled);
        // After rollback the initial write(x, 0) re-executes, then the loop
        // runs its full 5 iterations.
        assert_eq!(m.memory().load(x), 5);
    }

    #[test]
    fn indexed_accesses_use_innermost_loop_index() {
        let mut b = ProgramBuilder::new(1);
        let arr = b.array("arr", 16);
        b.thread(0).loop_n(4, |t| {
            t.loop_n(3, |t| {
                t.write_arr(arr, 8, 7);
            });
        });
        let p = b.build();
        let (r, mem) = run_direct(&p);
        assert_eq!(r.status, RunStatus::Done);
        // The inner loop walks elements 0..3; the outer loop re-walks the
        // same elements (no escape past the inner trip count).
        for i in 0..3 {
            assert_eq!(mem.load(arr.offset(8 * i)), 7, "element {i}");
        }
        assert_eq!(mem.load(arr.offset(8 * 3)), 0);
    }

    #[test]
    fn indexed_access_outside_loop_uses_index_zero() {
        let mut b = ProgramBuilder::new(1);
        let arr = b.array("arr", 4);
        b.thread(0).write_arr(arr, 8, 9);
        let p = b.build();
        let (_, mem) = run_direct(&p);
        assert_eq!(mem.load(arr), 9);
    }

    #[test]
    fn flat_index_is_row_major() {
        let f = |trips: u32, remaining: u32, id: u32| LoopFrame {
            id: LoopId(id),
            trips,
            remaining,
        };
        assert_eq!(flat_iteration_index(&[]), 0);
        assert_eq!(flat_iteration_index(&[f(10, 10, 0)]), 0); // first iter
        assert_eq!(flat_iteration_index(&[f(10, 1, 0)]), 9); // last iter
                                                             // outer iter 2 of 4, inner iter 1 of 3 -> 2*3 + 1 = 7
        assert_eq!(flat_iteration_index(&[f(4, 2, 0), f(3, 2, 1)]), 7);
        // innermost index ignores outer frames
        assert_eq!(innermost_iteration_index(&[]), 0);
        assert_eq!(innermost_iteration_index(&[f(4, 2, 0), f(3, 2, 1)]), 1);
    }

    #[test]
    fn machine_is_single_shot() {
        let mut b = ProgramBuilder::new(1);
        b.thread(0).compute(1);
        let p = b.build();
        let mut m = Machine::new(&p);
        let mut rt = DirectRuntime::default();
        let mut s = RoundRobin::new();
        assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);
        let again = m.run(&mut rt, &mut s);
        assert_eq!(again.status, RunStatus::Done);
        assert_eq!(again.steps, 1); // no further work
    }
}
