//! Flattening of the structured IR into linear per-thread instruction
//! streams with explicit loop control, so thread state is a plain program
//! counter plus a loop stack — cheap to snapshot and restore, which is
//! exactly what transactional rollback needs.
//!
//! Instructions are packed to 16 bytes ([`Instr`]): a one-byte
//! [`InstrKind`] tag, the site (or loop) id, and two 32-bit operand
//! slots. Wide operands (addresses, immediate values, array strides)
//! live in a per-thread `u64` operand pool ([`FlatThread::pool`])
//! addressed by the `a` slot; jump targets are 32-bit. The packed form
//! fits four instructions per 64-byte cache line where the old
//! enum-of-[`Op`] layout fit one and a half — the interpreter decodes
//! the [`Op`] back out per step ([`FlatThread::decode_op`]), which
//! reconstructs values bit-identically, so RNG draws and detection
//! outputs are unchanged.

use crate::addr::Addr;
use crate::ids::{BarrierId, ChanId, CondId, LockId, LoopId, RegionId, SiteId, ThreadId};
use crate::ir::{Op, Program, Stmt, SyscallKind};

/// Discriminates [`Instr`], ordered hot-first: the data accesses and
/// compute ops that dominate every workload's dynamic stream take the
/// low discriminants, loop control (hot in loopy threads) comes next,
/// and the rare instrumentation markers sit at the end — the ordering a
/// computed-goto dispatcher would want.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum InstrKind {
    /// [`Op::Read`]; pool\[a\] = address.
    Read,
    /// [`Op::Write`]; pool\[a\] = address, pool\[a+1\] = value.
    Write,
    /// [`Op::ReadArr`]; pool\[a\] = base, pool\[a+1\] = stride.
    ReadArr,
    /// [`Op::WriteArr`]; pool\[a..a+3\] = base, stride, value.
    WriteArr,
    /// [`Op::Rmw`]; pool\[a\] = address, pool\[a+1\] = delta.
    Rmw,
    /// [`Op::Compute`]; `a` = units.
    Compute,
    /// Loop latch: `a` = body start; the id rides the site slot.
    LoopBack,
    /// Loop header: `a` = trips, `b` = index of the matching
    /// [`InstrKind::LoopBack`]; the id rides the site slot.
    LoopEnter,
    /// [`Op::Lock`]; `a` = lock id.
    Lock,
    /// [`Op::Unlock`]; `a` = lock id.
    Unlock,
    /// [`Op::Barrier`]; `a` = barrier id.
    Barrier,
    /// [`Op::ChanSend`]; `a` = channel id.
    ChanSend,
    /// [`Op::ChanRecv`]; `a` = channel id.
    ChanRecv,
    /// [`Op::Signal`]; `a` = condition id.
    Signal,
    /// [`Op::Wait`]; `a` = condition id.
    Wait,
    /// [`Op::Spawn`]; `a` = child thread id.
    Spawn,
    /// [`Op::Join`]; `a` = child thread id.
    Join,
    /// [`Op::Syscall`]; `a` = syscall code.
    Syscall,
    /// [`Op::TxBegin`]; `a` = region id.
    TxBegin,
    /// [`Op::TxEnd`]; `a` = region id.
    TxEnd,
    /// [`Op::LoopCutProbe`]; `a` = loop id.
    LoopCutProbe,
}

/// One flattened instruction, packed to 16 bytes (pinned by a size
/// test): kind tag, site-or-loop id, and two operand slots interpreted
/// per [`InstrKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    kind: InstrKind,
    /// Site id; loop id for [`InstrKind::LoopEnter`]/
    /// [`InstrKind::LoopBack`] (loop control has no site).
    sx: u32,
    a: u32,
    b: u32,
}

impl Instr {
    /// The instruction's kind tag.
    #[inline]
    pub fn kind(&self) -> InstrKind {
        self.kind
    }

    /// Static site of an operation instruction.
    #[inline]
    pub fn site(&self) -> SiteId {
        SiteId(self.sx)
    }

    /// Loop identity of a loop-control instruction.
    #[inline]
    pub fn loop_id(&self) -> LoopId {
        LoopId(self.sx)
    }

    /// Trip count of a [`InstrKind::LoopEnter`].
    #[inline]
    pub fn trips(&self) -> u32 {
        self.a
    }

    /// Index of the matching [`InstrKind::LoopBack`], for a
    /// [`InstrKind::LoopEnter`].
    #[inline]
    pub fn end(&self) -> usize {
        self.b as usize
    }

    /// Index of the first body instruction, for a
    /// [`InstrKind::LoopBack`].
    #[inline]
    pub fn start(&self) -> usize {
        self.a as usize
    }
}

const SYSCALL_CODES: [SyscallKind; 4] = [
    SyscallKind::Io,
    SyscallKind::Alloc,
    SyscallKind::Free,
    SyscallKind::Other,
];

fn syscall_code(k: SyscallKind) -> u32 {
    SYSCALL_CODES
        .iter()
        .position(|&s| s == k)
        .expect("every SyscallKind has a code") as u32
}

/// The flattened code of one thread.
#[derive(Debug, Clone)]
pub struct FlatThread {
    /// Instruction stream.
    pub code: Vec<Instr>,
    /// Wide-operand pool: addresses, immediates, and strides referenced
    /// by the instructions' `a` slots.
    pub pool: Vec<u64>,
}

impl FlatThread {
    /// Reconstructs the structured [`Op`] an operation instruction
    /// encodes. The decoded value is bit-identical to the op the
    /// flattener consumed, so everything downstream of the interpreter
    /// (detectors, cost model, RNG-draw sequence) is invariant under
    /// the packed layout.
    ///
    /// # Panics
    ///
    /// On loop-control instructions, which encode no [`Op`].
    #[inline]
    pub fn decode_op(&self, i: &Instr) -> Op {
        let p = &self.pool;
        let ai = i.a as usize;
        match i.kind {
            InstrKind::Read => Op::Read(Addr(p[ai])),
            InstrKind::Write => Op::Write(Addr(p[ai]), p[ai + 1]),
            InstrKind::ReadArr => Op::ReadArr {
                base: Addr(p[ai]),
                stride: p[ai + 1],
            },
            InstrKind::WriteArr => Op::WriteArr {
                base: Addr(p[ai]),
                stride: p[ai + 1],
                val: p[ai + 2],
            },
            InstrKind::Rmw => Op::Rmw(Addr(p[ai]), p[ai + 1]),
            InstrKind::Compute => Op::Compute(i.a),
            InstrKind::Lock => Op::Lock(LockId(i.a)),
            InstrKind::Unlock => Op::Unlock(LockId(i.a)),
            InstrKind::Barrier => Op::Barrier(BarrierId(i.a)),
            InstrKind::ChanSend => Op::ChanSend(ChanId(i.a)),
            InstrKind::ChanRecv => Op::ChanRecv(ChanId(i.a)),
            InstrKind::Signal => Op::Signal(CondId(i.a)),
            InstrKind::Wait => Op::Wait(CondId(i.a)),
            InstrKind::Spawn => Op::Spawn(ThreadId(i.a)),
            InstrKind::Join => Op::Join(ThreadId(i.a)),
            InstrKind::Syscall => Op::Syscall(SYSCALL_CODES[i.a as usize]),
            InstrKind::TxBegin => Op::TxBegin(RegionId(i.a)),
            InstrKind::TxEnd => Op::TxEnd(RegionId(i.a)),
            InstrKind::LoopCutProbe => Op::LoopCutProbe(LoopId(i.a)),
            InstrKind::LoopEnter | InstrKind::LoopBack => {
                unreachable!("loop control encodes no Op")
            }
        }
    }

    /// Encodes `op` at `site`, spilling wide operands into the pool.
    fn push_op(&mut self, site: SiteId, op: Op) {
        let (kind, a, b) = match op {
            Op::Read(addr) => (InstrKind::Read, self.spill(&[addr.0]), 0),
            Op::Write(addr, val) => (InstrKind::Write, self.spill(&[addr.0, val]), 0),
            Op::ReadArr { base, stride } => (InstrKind::ReadArr, self.spill(&[base.0, stride]), 0),
            Op::WriteArr { base, stride, val } => {
                (InstrKind::WriteArr, self.spill(&[base.0, stride, val]), 0)
            }
            Op::Rmw(addr, delta) => (InstrKind::Rmw, self.spill(&[addr.0, delta]), 0),
            Op::Compute(units) => (InstrKind::Compute, units, 0),
            Op::Lock(l) => (InstrKind::Lock, l.0, 0),
            Op::Unlock(l) => (InstrKind::Unlock, l.0, 0),
            Op::Barrier(bar) => (InstrKind::Barrier, bar.0, 0),
            Op::ChanSend(ch) => (InstrKind::ChanSend, ch.0, 0),
            Op::ChanRecv(ch) => (InstrKind::ChanRecv, ch.0, 0),
            Op::Signal(c) => (InstrKind::Signal, c.0, 0),
            Op::Wait(c) => (InstrKind::Wait, c.0, 0),
            Op::Spawn(u) => (InstrKind::Spawn, u.0, 0),
            Op::Join(u) => (InstrKind::Join, u.0, 0),
            Op::Syscall(k) => (InstrKind::Syscall, syscall_code(k), 0),
            Op::TxBegin(r) => (InstrKind::TxBegin, r.0, 0),
            Op::TxEnd(r) => (InstrKind::TxEnd, r.0, 0),
            Op::LoopCutProbe(id) => (InstrKind::LoopCutProbe, id.0, 0),
        };
        self.code.push(Instr {
            kind,
            sx: site.0,
            a,
            b,
        });
    }

    fn spill(&mut self, words: &[u64]) -> u32 {
        let at = u32::try_from(self.pool.len()).expect("operand pool fits u32 indices");
        self.pool.extend_from_slice(words);
        at
    }
}

/// A fully flattened program, ready for interpretation.
#[derive(Debug, Clone)]
pub struct FlatProgram {
    /// Per-thread instruction streams.
    pub threads: Vec<FlatThread>,
}

impl FlatProgram {
    /// Flattens every thread of `p`.
    pub fn from_program(p: &Program) -> Self {
        let threads = (0..p.thread_count())
            .map(|t| flatten(p.thread(ThreadId(t as u32))))
            .collect();
        FlatProgram { threads }
    }
}

fn flatten(stmts: &[Stmt]) -> FlatThread {
    let mut th = FlatThread {
        code: Vec::new(),
        pool: Vec::new(),
    };
    emit(stmts, &mut th);
    th
}

fn emit(stmts: &[Stmt], th: &mut FlatThread) {
    for s in stmts {
        match s {
            Stmt::Op { site, op } => th.push_op(*site, *op),
            Stmt::Loop { id, trips, body } => {
                let header = th.code.len();
                // Placeholder target; patched once the body length is known.
                th.code.push(Instr {
                    kind: InstrKind::LoopEnter,
                    sx: id.0,
                    a: *trips,
                    b: u32::MAX,
                });
                emit(body, th);
                let back = u32::try_from(th.code.len()).expect("flat code fits u32 targets");
                th.code.push(Instr {
                    kind: InstrKind::LoopBack,
                    sx: id.0,
                    a: header as u32 + 1,
                    b: 0,
                });
                th.code[header].b = back;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;

    /// The whole point of the packed layout: four instructions per
    /// 64-byte cache line. A growth past 16 bytes is a hot-path
    /// regression, not a refactor detail.
    #[test]
    fn instr_is_packed_to_16_bytes() {
        assert_eq!(std::mem::size_of::<Instr>(), 16);
        assert_eq!(std::mem::size_of::<InstrKind>(), 1);
    }

    #[test]
    fn flattening_patches_loop_targets() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).read(x).loop_n(3, |t| {
            t.write(x, 1).write(x, 2);
        });
        let p = b.build();
        let f = FlatProgram::from_program(&p);
        let code = &f.threads[0].code;
        // read, LoopEnter, write, write, LoopBack
        assert_eq!(code.len(), 5);
        assert_eq!(code[1].kind(), InstrKind::LoopEnter);
        assert_eq!(code[1].end(), 4);
        assert_eq!(code[1].trips(), 3);
        assert_eq!(code[4].kind(), InstrKind::LoopBack);
        assert_eq!(code[4].start(), 2);
        assert_eq!(code[1].loop_id(), code[4].loop_id());
    }

    #[test]
    fn nested_loops_flatten() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(2, |t| {
            t.loop_n(2, |t| {
                t.read(x);
            });
        });
        let p = b.build();
        let f = FlatProgram::from_program(&p);
        // LoopEnter, LoopEnter, read, LoopBack, LoopBack
        assert_eq!(f.threads[0].code.len(), 5);
    }

    #[test]
    fn decode_round_trips_every_op_kind() {
        use crate::ir::SyscallKind;

        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let arr = b.array("arr", 8);
        let l = b.lock_id("l");
        let c = b.cond_id("c");
        let bar = b.barrier_id("bar");
        let ch = b.chan_id("ch", 2);
        b.thread(0)
            .spawn(ThreadId(1))
            .write(x, 77)
            .read(x)
            .rmw(x, 3)
            .read_arr(arr, 8)
            .write_arr(arr, 8, 5)
            .lock(l)
            .unlock(l)
            .signal(c)
            .send(ch)
            .barrier(bar)
            .compute(9)
            .syscall(SyscallKind::Free)
            .join(ThreadId(1));
        b.thread(1).wait(c).recv(ch).barrier(bar);
        let p = b.build();
        let f = FlatProgram::from_program(&p);

        // Every emitted instruction decodes back to the exact Op the
        // structured IR holds, in order.
        for (flat_t, t) in f.threads.iter().zip(0..) {
            let want: Vec<(SiteId, Op)> = p
                .thread(ThreadId(t))
                .iter()
                .filter_map(|s| match s {
                    Stmt::Op { site, op } => Some((*site, *op)),
                    _ => None,
                })
                .collect();
            let got: Vec<(SiteId, Op)> = flat_t
                .code
                .iter()
                .filter(|i| {
                    !matches!(i.kind(), InstrKind::LoopEnter | InstrKind::LoopBack)
                })
                .map(|i| (i.site(), flat_t.decode_op(i)))
                .collect();
            assert_eq!(got, want, "thread {t}");
        }
    }
}
