//! Flattening of the structured IR into linear per-thread instruction
//! streams with explicit loop control, so thread state is a plain program
//! counter plus a loop stack — cheap to snapshot and restore, which is
//! exactly what transactional rollback needs.

use crate::ids::{LoopId, SiteId, ThreadId};
use crate::ir::{Op, Program, Stmt};

/// One flattened instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// An IR operation.
    Op {
        /// Static site of the op.
        site: SiteId,
        /// The operation.
        op: Op,
    },
    /// Loop header: pushes a loop frame (or skips the loop if `trips == 0`).
    LoopEnter {
        /// Loop identity.
        id: LoopId,
        /// Trip count.
        trips: u32,
        /// Index of the matching [`Instr::LoopBack`].
        end: usize,
    },
    /// Loop latch: decrements the trip counter and jumps back while
    /// iterations remain.
    LoopBack {
        /// Loop identity.
        id: LoopId,
        /// Index of the first body instruction (header + 1).
        start: usize,
    },
}

/// The flattened code of one thread.
#[derive(Debug, Clone)]
pub struct FlatThread {
    /// Instruction stream.
    pub code: Vec<Instr>,
}

/// A fully flattened program, ready for interpretation.
#[derive(Debug, Clone)]
pub struct FlatProgram {
    /// Per-thread instruction streams.
    pub threads: Vec<FlatThread>,
}

impl FlatProgram {
    /// Flattens every thread of `p`.
    pub fn from_program(p: &Program) -> Self {
        let threads = (0..p.thread_count())
            .map(|t| FlatThread {
                code: flatten(p.thread(ThreadId(t as u32))),
            })
            .collect();
        FlatProgram { threads }
    }
}

fn flatten(stmts: &[Stmt]) -> Vec<Instr> {
    let mut code = Vec::new();
    emit(stmts, &mut code);
    code
}

fn emit(stmts: &[Stmt], code: &mut Vec<Instr>) {
    for s in stmts {
        match s {
            Stmt::Op { site, op } => code.push(Instr::Op {
                site: *site,
                op: *op,
            }),
            Stmt::Loop { id, trips, body } => {
                let header = code.len();
                // Placeholder; patched once the body length is known.
                code.push(Instr::LoopEnter {
                    id: *id,
                    trips: *trips,
                    end: usize::MAX,
                });
                emit(body, code);
                let back = code.len();
                code.push(Instr::LoopBack {
                    id: *id,
                    start: header + 1,
                });
                code[header] = Instr::LoopEnter {
                    id: *id,
                    trips: *trips,
                    end: back,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;

    #[test]
    fn flattening_patches_loop_targets() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).read(x).loop_n(3, |t| {
            t.write(x, 1).write(x, 2);
        });
        let p = b.build();
        let f = FlatProgram::from_program(&p);
        let code = &f.threads[0].code;
        // read, LoopEnter, write, write, LoopBack
        assert_eq!(code.len(), 5);
        match code[1] {
            Instr::LoopEnter { end, trips, .. } => {
                assert_eq!(end, 4);
                assert_eq!(trips, 3);
            }
            other => panic!("expected LoopEnter, got {other:?}"),
        }
        match code[4] {
            Instr::LoopBack { start, .. } => assert_eq!(start, 2),
            other => panic!("expected LoopBack, got {other:?}"),
        }
    }

    #[test]
    fn nested_loops_flatten() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(2, |t| {
            t.loop_n(2, |t| {
                t.read(x);
            });
        });
        let p = b.build();
        let f = FlatProgram::from_program(&p);
        // LoopEnter, LoopEnter, read, LoopBack, LoopBack
        assert_eq!(f.threads[0].code.len(), 5);
    }
}
