//! # txrace-sim
//!
//! Execution substrate for the TxRace reproduction: a small structured
//! concurrent-program IR, a byte-addressed shared memory with a cache-line
//! model, a deterministic (seedable) scheduler, and an interpreter that
//! drives pluggable detector runtimes.
//!
//! The original TxRace system instruments LLVM IR compiled from C/C++ and
//! runs it on real OS threads. This crate plays both roles in simulation:
//! the IR stands in for LLVM IR (the `txrace` crate's instrumentation pass
//! walks it exactly like the paper's compile-time pass walks LLVM IR), and
//! the interpreter + scheduler stand in for the OS threads (with seedable
//! interleavings, so races manifest — or not — reproducibly).
//!
//! ## Quick tour
//!
//! ```
//! use txrace_sim::{ProgramBuilder, Machine, DirectRuntime, RandomSched, RunStatus};
//!
//! # fn main() {
//! let mut b = ProgramBuilder::new(2);
//! let x = b.var("x");
//! let l = b.lock_id("l");
//! for t in 0..2 {
//!     b.thread(t).lock(l).write(x, t as u64 + 1).unlock(l);
//! }
//! let program = b.build();
//!
//! let mut machine = Machine::new(&program);
//! let mut runtime = DirectRuntime::default();
//! let mut sched = RandomSched::new(42);
//! let result = machine.run(&mut runtime, &mut sched);
//! assert_eq!(result.status, RunStatus::Done);
//! assert!(machine.memory().load(x) == 1 || machine.memory().load(x) == 2);
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod densemap;
pub mod exec;
pub mod explore;
pub mod flat;
pub mod ids;
pub mod intern;
pub mod ir;
pub mod lint;
pub mod mem;
pub mod replay;
pub mod sched;
pub mod summary;
pub mod trace;

pub use addr::{elem, Addr, CacheLine, VarLayout, LINE_BYTES};
pub use densemap::AddrMap;
pub use exec::{
    flat_iteration_index, innermost_iteration_index, Directive, LoopFrame, Machine, OpEvent,
    RunResult, RunStatus, Runtime, Snapshot, StepLimit,
};
pub use flat::{FlatProgram, FlatThread, Instr, InstrKind};
pub use ids::{BarrierId, ChanId, CondId, LockId, LoopId, RegionId, SiteId, ThreadId};
pub use intern::{Interner, RESERVED_LINES};
pub use ir::{Op, Program, ProgramBuilder, Stmt, SyscallKind, ThreadBuilder};
pub use lint::{lint, LintIssue};
pub use mem::{JournalMark, Memory, WriteJournal};
pub use replay::{
    fan_out, fan_out_indexed, replay_indexed, FanOutReport, IndexedConsumer, IndexedShardReport,
    Live, TraceConsumer,
};
pub use sched::{FairSched, InterruptKind, InterruptModel, RandomSched, RoundRobin, Scheduler};
pub use summary::{dynamic_site_counts, summarize, ChanSiteUse, Phase, ProgramSummary, SiteAccess};
pub use trace::{
    record_run, AccessPartition, EventLog, EventLogBuilder, IndexedAccess, OpCensus, SyncIndex,
    TraceEvent, TraceEventKind, LOG_VERSION,
};

/// A runtime that executes memory operations directly against memory with
/// no detection or transactional machinery. Used to establish uninstrumented
/// baselines and as the simplest [`Runtime`] implementation.
#[derive(Debug, Default, Clone)]
pub struct DirectRuntime {
    /// Number of operations executed.
    pub ops: u64,
}

impl Runtime for DirectRuntime {
    fn before_op(&mut self, _mem: &mut Memory, _ev: &OpEvent<'_>) -> Directive {
        self.ops += 1;
        Directive::Continue
    }

    fn read(&mut self, mem: &mut Memory, _ev: &OpEvent<'_>, addr: Addr) -> u64 {
        mem.load(addr)
    }

    fn write(&mut self, mem: &mut Memory, _ev: &OpEvent<'_>, addr: Addr, val: u64) {
        mem.store(addr, val);
    }

    fn rmw(&mut self, mem: &mut Memory, _ev: &OpEvent<'_>, addr: Addr, delta: u64) -> u64 {
        let old = mem.load(addr);
        mem.store(addr, old.wrapping_add(delta));
        old
    }
}
