//! The concurrent-program intermediate representation.
//!
//! A [`Program`] is a fixed set of threads, each a tree of [`Stmt`]s:
//! straight-line [`Op`]s and statically-bounded loops. The IR stands in
//! for the LLVM IR the original TxRace instruments — the
//! transactionalization pass in the `txrace` crate walks this tree and
//! inserts [`Op::TxBegin`]/[`Op::TxEnd`] markers exactly where the paper's
//! compile-time pass inserts `xbegin`/`xend`.
//!
//! Every op carries a [`SiteId`]: the static identity of that instruction.
//! Dynamic race reports are pairs of sites, matching the paper's static
//! counting of "racy instruction pairs".

use std::collections::HashMap;

use crate::addr::{Addr, VarLayout};
use crate::ids::{BarrierId, ChanId, CondId, LockId, LoopId, RegionId, SiteId, ThreadId};

/// Flavor of a system call. The simulator gives syscalls no semantics
/// beyond their cost and the fact that transactions must be cut around
/// them (a privilege-level change always aborts an RTM transaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallKind {
    /// Standard I/O (`read`/`write` in the paper's library-boundary cut).
    Io,
    /// Dynamic memory management (`malloc`).
    Alloc,
    /// Dynamic memory management (`free`).
    Free,
    /// Any other system call.
    Other,
}

/// One dynamic operation.
///
/// `TxBegin`, `TxEnd`, and `LoopCutProbe` are *instrumentation markers*:
/// the plain interpreter treats them as no-ops; detector runtimes (the
/// TxRace engine) interpret them as transaction boundaries and loop-cut
/// probe points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Load from shared memory.
    Read(Addr),
    /// Store a constant to shared memory.
    Write(Addr, u64),
    /// Atomic fetch-add (models `lock xadd` style accesses).
    Rmw(Addr, u64),
    /// Indexed load: the effective address is
    /// `base + stride * i`, where `i` is the zero-based iteration index of
    /// the *innermost* enclosing loop (0 outside loops). This is how a
    /// loop walks a buffer (one static site, many addresses); re-entering
    /// the loop re-walks the same addresses.
    ReadArr {
        /// Array base address.
        base: Addr,
        /// Byte stride per flat iteration.
        stride: u64,
    },
    /// Indexed store (see [`Op::ReadArr`] for addressing).
    WriteArr {
        /// Array base address.
        base: Addr,
        /// Byte stride per flat iteration.
        stride: u64,
        /// Value stored.
        val: u64,
    },
    /// Acquire a mutex (blocking).
    Lock(LockId),
    /// Release a mutex.
    Unlock(LockId),
    /// Semaphore post; establishes a happens-before edge to a `Wait`.
    Signal(CondId),
    /// Semaphore wait (blocking until a `Signal`).
    Wait(CondId),
    /// Barrier arrival (blocking until all participants arrive).
    Barrier(BarrierId),
    /// Send one message into a bounded channel (blocking while the
    /// channel is at capacity). Establishes a happens-before edge to the
    /// `ChanRecv` that takes the message.
    ChanSend(ChanId),
    /// Receive one message from a bounded channel (blocking while the
    /// channel is empty).
    ChanRecv(ChanId),
    /// Start a parked thread; establishes a happens-before edge.
    Spawn(ThreadId),
    /// Wait for a thread to finish; establishes a happens-before edge.
    Join(ThreadId),
    /// A system call: transactions must be cut around it.
    Syscall(SyscallKind),
    /// Thread-local computation costing the given number of cycles.
    Compute(u32),
    /// Instrumentation marker: transactional region begins.
    TxBegin(RegionId),
    /// Instrumentation marker: transactional region ends.
    TxEnd(RegionId),
    /// Instrumentation marker: loop-cut probe at the end of a loop body.
    LoopCutProbe(LoopId),
}

impl Op {
    /// True for shared-memory data accesses (the ops a race detector
    /// instruments).
    pub fn is_data_access(&self) -> bool {
        matches!(
            self,
            Op::Read(_)
                | Op::Write(_, _)
                | Op::Rmw(_, _)
                | Op::ReadArr { .. }
                | Op::WriteArr { .. }
        )
    }

    /// True for synchronization operations (region boundaries in the
    /// transactionalization pass, happens-before sources/sinks in the
    /// detector).
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Op::Lock(_)
                | Op::Unlock(_)
                | Op::Signal(_)
                | Op::Wait(_)
                | Op::Barrier(_)
                | Op::ChanSend(_)
                | Op::ChanRecv(_)
                | Op::Spawn(_)
                | Op::Join(_)
        )
    }

    /// True if this op may block the executing thread.
    pub fn may_block(&self) -> bool {
        matches!(
            self,
            Op::Lock(_)
                | Op::Wait(_)
                | Op::Barrier(_)
                | Op::ChanSend(_)
                | Op::ChanRecv(_)
                | Op::Join(_)
        )
    }

    /// The statically-known address touched by a data access, if any.
    /// Indexed accesses ([`Op::ReadArr`]/[`Op::WriteArr`]) return `None`
    /// because their address depends on the loop iteration.
    pub fn access_addr(&self) -> Option<Addr> {
        match self {
            Op::Read(a) | Op::Write(a, _) | Op::Rmw(a, _) => Some(*a),
            _ => None,
        }
    }

    /// True if this data access writes.
    pub fn is_write_access(&self) -> bool {
        matches!(self, Op::Write(_, _) | Op::Rmw(_, _) | Op::WriteArr { .. })
    }
}

/// A statement: a single op or a statically-bounded loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// One operation at a static site.
    Op {
        /// Static identity of this instruction.
        site: SiteId,
        /// The operation.
        op: Op,
    },
    /// A counted loop. `trips` is the static trip count.
    Loop {
        /// Static identity of this loop (loop-cut bookkeeping key).
        id: LoopId,
        /// Number of iterations.
        trips: u32,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// A complete multithreaded program.
///
/// Construct with [`ProgramBuilder`]. Threads that are the target of a
/// [`Op::Spawn`] start parked; all others start runnable.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) threads: Vec<Vec<Stmt>>,
    pub(crate) n_sites: u32,
    pub(crate) n_loops: u32,
    pub(crate) n_locks: u32,
    pub(crate) n_conds: u32,
    pub(crate) n_barriers: u32,
    pub(crate) chan_caps: Vec<u64>,
    pub(crate) parked: Vec<bool>,
    pub(crate) barrier_widths: Vec<u32>,
    pub(crate) labels: HashMap<String, SiteId>,
    pub(crate) site_labels: Vec<Option<String>>,
}

impl Program {
    /// Number of threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The statement tree of one thread.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn thread(&self, t: ThreadId) -> &[Stmt] {
        &self.threads[t.index()]
    }

    /// Number of distinct static sites.
    pub fn site_count(&self) -> u32 {
        self.n_sites
    }

    /// Number of distinct loops.
    pub fn loop_count(&self) -> u32 {
        self.n_loops
    }

    /// Number of mutexes referenced.
    pub fn lock_count(&self) -> u32 {
        self.n_locks
    }

    /// Number of condition semaphores referenced.
    pub fn cond_count(&self) -> u32 {
        self.n_conds
    }

    /// Number of barriers referenced.
    pub fn barrier_count(&self) -> u32 {
        self.n_barriers
    }

    /// Number of bounded channels referenced.
    pub fn chan_count(&self) -> u32 {
        self.chan_caps.len() as u32
    }

    /// Capacity (message slots) of channel `ch`.
    pub fn chan_capacity(&self, ch: ChanId) -> u64 {
        self.chan_caps[ch.index()]
    }

    /// Whether thread `t` starts parked (it is the target of a `Spawn`).
    pub fn starts_parked(&self, t: ThreadId) -> bool {
        self.parked[t.index()]
    }

    /// Number of threads participating in barrier `b`.
    pub fn barrier_width(&self, b: BarrierId) -> u32 {
        self.barrier_widths[b.index()]
    }

    /// Looks up the site labeled `name` by the builder.
    pub fn site(&self, name: &str) -> Option<SiteId> {
        self.labels.get(name).copied()
    }

    /// The label attached to `site`, if any.
    pub fn label_of(&self, site: SiteId) -> Option<&str> {
        self.site_labels
            .get(site.index())
            .and_then(|o| o.as_deref())
    }

    /// Visits every static op once (loop bodies visited once, not per
    /// trip), in program order per thread.
    pub fn visit_static(&self, f: &mut impl FnMut(ThreadId, SiteId, &Op)) {
        fn walk(t: ThreadId, stmts: &[Stmt], f: &mut impl FnMut(ThreadId, SiteId, &Op)) {
            for s in stmts {
                match s {
                    Stmt::Op { site, op } => f(t, *site, op),
                    Stmt::Loop { body, .. } => walk(t, body, f),
                }
            }
        }
        for (i, stmts) in self.threads.iter().enumerate() {
            walk(ThreadId(i as u32), stmts, f);
        }
    }

    /// Folds over every *dynamic* op: loop bodies are weighted by their
    /// trip counts (nested loops multiply). Used to compute uninstrumented
    /// baseline cycle counts without executing.
    pub fn fold_dynamic<F: FnMut(&Op) -> u64>(&self, mut f: F) -> u64 {
        fn walk<F: FnMut(&Op) -> u64>(stmts: &[Stmt], mult: u64, f: &mut F) -> u64 {
            let mut sum = 0u64;
            for s in stmts {
                match s {
                    Stmt::Op { op, .. } => sum += mult.saturating_mul(f(op)),
                    Stmt::Loop { trips, body, .. } => {
                        sum += walk(body, mult.saturating_mul(*trips as u64), f);
                    }
                }
            }
            sum
        }
        self.threads.iter().map(|t| walk(t, 1, &mut f)).sum()
    }

    /// Total dynamic count of shared-memory data accesses.
    pub fn dynamic_access_count(&self) -> u64 {
        self.fold_dynamic(|op| u64::from(op.is_data_access()))
    }

    /// Rebuilds this program with transformed thread bodies — the hook an
    /// instrumentation pass uses. All metadata (labels, sync-object
    /// counts, loop count) carries over; `n_sites` must cover any new
    /// sites the transformation minted (marker instructions).
    ///
    /// # Panics
    ///
    /// Panics if the thread count changes, if `n_sites` shrinks, or if the
    /// transformed bodies violate the same spawn/join invariants
    /// [`ProgramBuilder::build`] enforces.
    pub fn with_transformed_threads(&self, threads: Vec<Vec<Stmt>>, n_sites: u32) -> Program {
        assert_eq!(
            threads.len(),
            self.threads.len(),
            "transformation must preserve the thread count"
        );
        assert!(n_sites >= self.n_sites, "site count cannot shrink");
        let (parked, barrier_widths) =
            analyze_threads(&threads, self.n_barriers, self.chan_count());
        Program {
            threads,
            n_sites,
            n_loops: self.n_loops,
            n_locks: self.n_locks,
            n_conds: self.n_conds,
            n_barriers: self.n_barriers,
            chan_caps: self.chan_caps.clone(),
            parked,
            barrier_widths,
            labels: self.labels.clone(),
            site_labels: self.site_labels.clone(),
        }
    }
}

/// Validates spawn/join/barrier/channel structure and derives parked
/// flags and barrier widths. Shared by [`ProgramBuilder::build`] and
/// [`Program::with_transformed_threads`].
fn analyze_threads(threads: &[Vec<Stmt>], n_barriers: u32, n_chans: u32) -> (Vec<bool>, Vec<u32>) {
    let n = threads.len();
    let mut parked = vec![false; n];
    let mut members: Vec<std::collections::BTreeSet<u32>> =
        vec![Default::default(); n_barriers as usize];

    fn walk(
        t: usize,
        stmts: &[Stmt],
        n: usize,
        n_chans: u32,
        parked: &mut [bool],
        members: &mut [std::collections::BTreeSet<u32>],
    ) {
        for s in stmts {
            match s {
                Stmt::Op { op, .. } => match op {
                    Op::Spawn(u) => {
                        assert!(u.index() < n, "spawn of nonexistent thread {u}");
                        assert_ne!(u.index(), t, "thread {t} spawns itself");
                        assert_ne!(u.index(), 0, "the main thread cannot be spawned");
                        assert!(!parked[u.index()], "thread {u} spawned twice");
                        parked[u.index()] = true;
                    }
                    Op::Join(u) => {
                        assert!(u.index() < n, "join of nonexistent thread {u}");
                        assert_ne!(u.index(), t, "thread {t} joins itself");
                    }
                    Op::Barrier(b) => {
                        members[b.index()].insert(t as u32);
                    }
                    Op::ChanSend(ch) | Op::ChanRecv(ch) => {
                        assert!(ch.0 < n_chans, "use of undeclared channel {ch}");
                    }
                    _ => {}
                },
                Stmt::Loop { body, .. } => walk(t, body, n, n_chans, parked, members),
            }
        }
    }
    for (t, stmts) in threads.iter().enumerate() {
        walk(t, stmts, n, n_chans, &mut parked, &mut members);
    }
    let widths = members.iter().map(|m| m.len() as u32).collect();
    (parked, widths)
}

/// Incrementally builds a [`Program`].
///
/// The builder owns the variable layout (see [`VarLayout`]) and assigns
/// static sites, so workloads can label interesting accesses and later
/// resolve them for ground-truth race manifests.
#[derive(Debug)]
pub struct ProgramBuilder {
    threads: Vec<Vec<Stmt>>,
    next_site: u32,
    next_loop: u32,
    next_lock: u32,
    next_cond: u32,
    next_barrier: u32,
    layout: VarLayout,
    labels: HashMap<String, SiteId>,
    site_labels: Vec<Option<String>>,
    lock_names: HashMap<String, LockId>,
    cond_names: HashMap<String, CondId>,
    barrier_names: HashMap<String, BarrierId>,
    chan_names: HashMap<String, ChanId>,
    chan_caps: Vec<u64>,
}

impl ProgramBuilder {
    /// Creates a builder for a program with `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a program needs at least one thread");
        ProgramBuilder {
            threads: vec![Vec::new(); threads],
            next_site: 0,
            next_loop: 0,
            next_lock: 0,
            next_cond: 0,
            next_barrier: 0,
            layout: VarLayout::new(),
            labels: HashMap::new(),
            site_labels: Vec::new(),
            lock_names: HashMap::new(),
            cond_names: HashMap::new(),
            barrier_names: HashMap::new(),
            chan_names: HashMap::new(),
            chan_caps: Vec::new(),
        }
    }

    /// Allocates a fresh 8-byte variable on its own cache line.
    /// The `name` is only for readability; names need not be unique.
    pub fn var(&mut self, name: &str) -> Addr {
        let _ = name;
        self.layout.fresh_line()
    }

    /// Allocates a variable sharing the cache line of `base` at the given
    /// offset — the false-sharing primitive.
    pub fn var_sharing_line(&mut self, base: Addr, offset_in_line: u64) -> Addr {
        self.layout.same_line(base, offset_in_line)
    }

    /// Allocates an array of `len` 8-byte elements.
    pub fn array(&mut self, name: &str, len: usize) -> Addr {
        let _ = name;
        self.layout.array(len)
    }

    /// Returns the mutex with the given name, allocating it on first use.
    pub fn lock_id(&mut self, name: &str) -> LockId {
        if let Some(&l) = self.lock_names.get(name) {
            return l;
        }
        let l = LockId(self.next_lock);
        self.next_lock += 1;
        self.lock_names.insert(name.to_owned(), l);
        l
    }

    /// Returns the condition semaphore with the given name, allocating it
    /// on first use.
    pub fn cond_id(&mut self, name: &str) -> CondId {
        if let Some(&c) = self.cond_names.get(name) {
            return c;
        }
        let c = CondId(self.next_cond);
        self.next_cond += 1;
        self.cond_names.insert(name.to_owned(), c);
        c
    }

    /// Returns the barrier with the given name, allocating it on first use.
    pub fn barrier_id(&mut self, name: &str) -> BarrierId {
        if let Some(&b) = self.barrier_names.get(name) {
            return b;
        }
        let b = BarrierId(self.next_barrier);
        self.next_barrier += 1;
        self.barrier_names.insert(name.to_owned(), b);
        b
    }

    /// Returns the bounded channel with the given name, allocating it
    /// with `cap` message slots on first use.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`, or if the channel was already declared with
    /// a different capacity.
    pub fn chan_id(&mut self, name: &str, cap: u64) -> ChanId {
        assert!(cap >= 1, "channel {name:?} needs at least one slot");
        if let Some(&ch) = self.chan_names.get(name) {
            assert_eq!(
                self.chan_caps[ch.index()],
                cap,
                "channel {name:?} redeclared with a different capacity"
            );
            return ch;
        }
        let ch = ChanId(self.chan_caps.len() as u32);
        self.chan_caps.push(cap);
        self.chan_names.insert(name.to_owned(), ch);
        ch
    }

    /// Opens a [`ThreadBuilder`] appending to thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn thread(&mut self, t: usize) -> ThreadBuilder<'_> {
        assert!(t < self.threads.len(), "thread {t} out of range");
        ThreadBuilder {
            pb: self,
            t,
            frames: Vec::new(),
        }
    }

    fn fresh_site(&mut self, label: Option<&str>) -> SiteId {
        let s = SiteId(self.next_site);
        self.next_site += 1;
        self.site_labels.push(label.map(str::to_owned));
        if let Some(l) = label {
            let prev = self.labels.insert(l.to_owned(), s);
            assert!(prev.is_none(), "duplicate site label {l:?}");
        }
        s
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics on malformed programs: a `Spawn` targeting the main thread or
    /// a nonexistent thread, a thread spawned more than once, or a
    /// `Join`/`Spawn` self-target.
    pub fn build(self) -> Program {
        let n_chans = self.chan_caps.len() as u32;
        let (parked, barrier_widths) = analyze_threads(&self.threads, self.next_barrier, n_chans);
        Program {
            threads: self.threads,
            n_sites: self.next_site,
            n_loops: self.next_loop,
            n_locks: self.next_lock,
            n_conds: self.next_cond,
            n_barriers: self.next_barrier,
            chan_caps: self.chan_caps,
            parked,
            barrier_widths,
            labels: self.labels,
            site_labels: self.site_labels,
        }
    }
}

/// Appends statements to one thread of a [`ProgramBuilder`].
///
/// All methods return `&mut Self` for chaining. Use [`ThreadBuilder::loop_n`]
/// for counted loops.
#[derive(Debug)]
pub struct ThreadBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    t: usize,
    /// Open loop-body frames; empty means appending at top level.
    frames: Vec<Vec<Stmt>>,
}

impl ThreadBuilder<'_> {
    fn push(&mut self, stmt: Stmt) {
        match self.frames.last_mut() {
            Some(f) => f.push(stmt),
            None => self.pb.threads[self.t].push(stmt),
        }
    }

    fn push_op(&mut self, op: Op, label: Option<&str>) -> &mut Self {
        let site = self.pb.fresh_site(label);
        self.push(Stmt::Op { site, op });
        self
    }

    /// Appends a shared read.
    pub fn read(&mut self, a: Addr) -> &mut Self {
        self.push_op(Op::Read(a), None)
    }

    /// Appends a labeled shared read; the label can later be resolved with
    /// [`Program::site`].
    pub fn read_l(&mut self, a: Addr, label: &str) -> &mut Self {
        self.push_op(Op::Read(a), Some(label))
    }

    /// Appends a shared write of a constant.
    pub fn write(&mut self, a: Addr, v: u64) -> &mut Self {
        self.push_op(Op::Write(a, v), None)
    }

    /// Appends a labeled shared write.
    pub fn write_l(&mut self, a: Addr, v: u64, label: &str) -> &mut Self {
        self.push_op(Op::Write(a, v), Some(label))
    }

    /// Appends an atomic fetch-add.
    pub fn rmw(&mut self, a: Addr, delta: u64) -> &mut Self {
        self.push_op(Op::Rmw(a, delta), None)
    }

    /// Appends a labeled atomic fetch-add.
    pub fn rmw_l(&mut self, a: Addr, delta: u64, label: &str) -> &mut Self {
        self.push_op(Op::Rmw(a, delta), Some(label))
    }

    /// Appends an indexed load walking an array with the enclosing loops
    /// (address = `base + stride * flat_iteration`).
    pub fn read_arr(&mut self, base: Addr, stride: u64) -> &mut Self {
        self.push_op(Op::ReadArr { base, stride }, None)
    }

    /// Appends a labeled indexed load.
    pub fn read_arr_l(&mut self, base: Addr, stride: u64, label: &str) -> &mut Self {
        self.push_op(Op::ReadArr { base, stride }, Some(label))
    }

    /// Appends an indexed store walking an array with the enclosing loops.
    pub fn write_arr(&mut self, base: Addr, stride: u64, val: u64) -> &mut Self {
        self.push_op(Op::WriteArr { base, stride, val }, None)
    }

    /// Appends a labeled indexed store.
    pub fn write_arr_l(&mut self, base: Addr, stride: u64, val: u64, label: &str) -> &mut Self {
        self.push_op(Op::WriteArr { base, stride, val }, Some(label))
    }

    /// Appends a mutex acquire.
    pub fn lock(&mut self, l: LockId) -> &mut Self {
        self.push_op(Op::Lock(l), None)
    }

    /// Appends a mutex release.
    pub fn unlock(&mut self, l: LockId) -> &mut Self {
        self.push_op(Op::Unlock(l), None)
    }

    /// Appends a semaphore post.
    pub fn signal(&mut self, c: CondId) -> &mut Self {
        self.push_op(Op::Signal(c), None)
    }

    /// Appends a semaphore wait.
    pub fn wait(&mut self, c: CondId) -> &mut Self {
        self.push_op(Op::Wait(c), None)
    }

    /// Appends a barrier arrival.
    pub fn barrier(&mut self, b: BarrierId) -> &mut Self {
        self.push_op(Op::Barrier(b), None)
    }

    /// Appends a bounded-channel send.
    pub fn send(&mut self, ch: ChanId) -> &mut Self {
        self.push_op(Op::ChanSend(ch), None)
    }

    /// Appends a labeled bounded-channel send.
    pub fn send_l(&mut self, ch: ChanId, label: &str) -> &mut Self {
        self.push_op(Op::ChanSend(ch), Some(label))
    }

    /// Appends a bounded-channel receive.
    pub fn recv(&mut self, ch: ChanId) -> &mut Self {
        self.push_op(Op::ChanRecv(ch), None)
    }

    /// Appends a labeled bounded-channel receive.
    pub fn recv_l(&mut self, ch: ChanId, label: &str) -> &mut Self {
        self.push_op(Op::ChanRecv(ch), Some(label))
    }

    /// Appends a thread spawn.
    pub fn spawn(&mut self, t: ThreadId) -> &mut Self {
        self.push_op(Op::Spawn(t), None)
    }

    /// Appends a thread join.
    pub fn join(&mut self, t: ThreadId) -> &mut Self {
        self.push_op(Op::Join(t), None)
    }

    /// Appends a system call.
    pub fn syscall(&mut self, kind: SyscallKind) -> &mut Self {
        self.push_op(Op::Syscall(kind), None)
    }

    /// Appends `cycles` of thread-local computation.
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        self.push_op(Op::Compute(cycles), None)
    }

    /// Appends a counted loop; `body` populates the loop body through the
    /// same builder.
    ///
    /// ```
    /// # use txrace_sim::ProgramBuilder;
    /// let mut b = ProgramBuilder::new(1);
    /// let x = b.var("x");
    /// b.thread(0).loop_n(10, |t| {
    ///     t.read(x).compute(5);
    /// });
    /// let p = b.build();
    /// assert_eq!(p.dynamic_access_count(), 10);
    /// ```
    pub fn loop_n(&mut self, trips: u32, body: impl FnOnce(&mut Self)) -> &mut Self {
        let id = LoopId(self.pb.next_loop);
        self.pb.next_loop += 1;
        self.frames.push(Vec::new());
        body(self);
        let body_stmts = self.frames.pop().expect("frame pushed above");
        self.push(Stmt::Loop {
            id,
            trips,
            body: body_stmts,
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_sites() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).read(x).write(x, 1);
        b.thread(1).read_l(x, "r1");
        let p = b.build();
        assert_eq!(p.site_count(), 3);
        assert_eq!(p.site("r1"), Some(SiteId(2)));
        assert_eq!(p.label_of(SiteId(2)), Some("r1"));
        assert_eq!(p.label_of(SiteId(0)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate site label")]
    fn duplicate_labels_rejected() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).read_l(x, "a").read_l(x, "a");
    }

    #[test]
    fn fold_dynamic_multiplies_loops() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(4, |t| {
            t.write(x, 1);
            t.loop_n(3, |t| {
                t.read(x);
            });
        });
        let p = b.build();
        assert_eq!(p.dynamic_access_count(), 4 + 4 * 3);
    }

    #[test]
    fn spawned_threads_start_parked() {
        let mut b = ProgramBuilder::new(3);
        b.thread(0).spawn(ThreadId(1)).join(ThreadId(1));
        let p = b.build();
        assert!(p.starts_parked(ThreadId(1)));
        assert!(!p.starts_parked(ThreadId(2)));
        assert!(!p.starts_parked(ThreadId(0)));
    }

    #[test]
    #[should_panic(expected = "spawned twice")]
    fn double_spawn_rejected() {
        let mut b = ProgramBuilder::new(2);
        b.thread(0).spawn(ThreadId(1)).spawn(ThreadId(1));
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "cannot be spawned")]
    fn spawn_main_rejected() {
        let mut b = ProgramBuilder::new(2);
        b.thread(1).spawn(ThreadId(0));
        let _ = b.build();
    }

    #[test]
    fn barrier_width_counts_participants() {
        let mut b = ProgramBuilder::new(3);
        let bar = b.barrier_id("bar");
        b.thread(0).barrier(bar);
        b.thread(1).barrier(bar);
        let p = b.build();
        assert_eq!(p.barrier_width(bar), 2);
    }

    #[test]
    fn named_sync_objects_are_interned() {
        let mut b = ProgramBuilder::new(1);
        let l1 = b.lock_id("l");
        let l2 = b.lock_id("l");
        let l3 = b.lock_id("other");
        assert_eq!(l1, l2);
        assert_ne!(l1, l3);
        assert_eq!(b.build().lock_count(), 2);
    }

    #[test]
    fn visit_static_sees_each_loop_body_once() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(100, |t| {
            t.read(x);
        });
        let p = b.build();
        let mut n = 0;
        p.visit_static(&mut |_, _, _| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn op_classification() {
        let a = Addr(64);
        assert!(Op::Read(a).is_data_access());
        assert!(!Op::Read(a).is_write_access());
        assert!(Op::Rmw(a, 1).is_write_access());
        assert!(Op::Lock(LockId(0)).is_sync());
        assert!(Op::Lock(LockId(0)).may_block());
        assert!(!Op::Unlock(LockId(0)).may_block());
        assert!(Op::Join(ThreadId(1)).may_block());
        assert_eq!(Op::Write(a, 3).access_addr(), Some(a));
        assert_eq!(Op::Compute(5).access_addr(), None);
        assert!(!Op::Syscall(SyscallKind::Io).is_sync());
        assert!(Op::ChanSend(ChanId(0)).is_sync());
        assert!(Op::ChanRecv(ChanId(0)).is_sync());
        assert!(Op::ChanSend(ChanId(0)).may_block());
        assert!(Op::ChanRecv(ChanId(0)).may_block());
        assert!(!Op::ChanSend(ChanId(0)).is_data_access());
    }

    #[test]
    fn named_channels_are_interned_with_capacity() {
        let mut b = ProgramBuilder::new(2);
        let c1 = b.chan_id("work", 4);
        let c2 = b.chan_id("work", 4);
        let c3 = b.chan_id("done", 1);
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
        b.thread(0).send(c1);
        b.thread(1).recv(c1);
        let p = b.build();
        assert_eq!(p.chan_count(), 2);
        assert_eq!(p.chan_capacity(c1), 4);
        assert_eq!(p.chan_capacity(c3), 1);
    }

    #[test]
    #[should_panic(expected = "different capacity")]
    fn channel_capacity_mismatch_rejected() {
        let mut b = ProgramBuilder::new(1);
        b.chan_id("work", 4);
        b.chan_id("work", 8);
    }

    #[test]
    #[should_panic(expected = "undeclared channel")]
    fn undeclared_channel_rejected() {
        let mut b = ProgramBuilder::new(2);
        b.thread(0).send(ChanId(3));
        let _ = b.build();
    }
}
