//! Exhaustive schedule exploration (CHESS-style stateless model checking):
//! enumerate *every* thread interleaving of a small program, running a
//! fresh [`Runtime`](crate::exec::Runtime) down each path. Where the
//! seedable schedulers sample
//! behaviours, the explorer proves properties over the complete schedule
//! space — the strongest evidence the engine's invariants (completeness,
//! forward progress, final-state correctness) hold.
//!
//! The number of interleavings grows combinatorially; keep explored
//! programs tiny (a few ops per thread) and use
//! [`ExploreLimits::max_paths`] as a safety net.
//!
//! ```
//! use txrace_sim::{explore::{explore, ExploreLimits}, DirectRuntime, ProgramBuilder, RunStatus};
//!
//! let mut b = ProgramBuilder::new(2);
//! let x = b.var("x");
//! b.thread(0).write(x, 1);
//! b.thread(1).write(x, 2);
//! let p = b.build();
//!
//! let mut finals = std::collections::BTreeSet::new();
//! let stats = explore(
//!     &p,
//!     DirectRuntime::default,
//!     |machine, _rt, result| {
//!         assert_eq!(result.status, RunStatus::Done);
//!         finals.insert(machine.memory().load(x));
//!     },
//!     ExploreLimits::default(),
//! );
//! assert_eq!(stats.paths, 2); // write orders: 1-then-2, 2-then-1
//! assert_eq!(finals.len(), 2);
//! ```

use crate::exec::{Machine, RunResult, RunStatus, StepLimit};
use crate::ids::ThreadId;
use crate::ir::Program;
use crate::sched::Scheduler;

/// Bounds on the exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Stop after this many complete paths (0 = unlimited).
    pub max_paths: u64,
    /// Per-path interpreter step bound.
    pub max_steps: u64,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_paths: 100_000,
            max_steps: 100_000,
        }
    }
}

/// Summary of an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Complete paths visited.
    pub paths: u64,
    /// Whether the whole schedule space was covered (false if a limit
    /// stopped the search early).
    pub complete: bool,
}

/// A scheduler that replays a forced prefix of choices and records the
/// branching structure beyond it (always taking the first option).
#[derive(Debug)]
struct DfsSched {
    /// Choice index taken at each decision point of this path.
    choices: Vec<usize>,
    /// Number of options available at each decision point.
    arity: Vec<usize>,
    /// Next decision index.
    cursor: usize,
}

impl Scheduler for DfsSched {
    fn next(&mut self, runnable: &[ThreadId]) -> ThreadId {
        let i = self.cursor;
        self.cursor += 1;
        if i >= self.choices.len() {
            self.choices.push(0);
            self.arity.push(runnable.len());
            runnable[0]
        } else {
            // Replaying: the runnable set is deterministic given the
            // prefix, so the recorded arity must match.
            debug_assert_eq!(self.arity[i], runnable.len(), "non-deterministic replay");
            runnable[self.choices[i].min(runnable.len() - 1)]
        }
    }
}

/// Explores every interleaving of `program`, constructing a fresh runtime
/// with `make_rt` for each path and passing the finished machine, runtime,
/// and result to `visit`. Returns exploration statistics.
///
/// Runtimes must be *deterministic* (no internal RNG seeded differently
/// per run) for replay to be sound; every runtime in this workspace
/// qualifies.
///
/// # Panics
///
/// Panics if a path faults or exceeds `limits.max_steps` — exploration is
/// meant for programs where every schedule terminates cleanly; a deadlock
/// is reported to `visit` via [`RunStatus::Deadlock`], not panicked.
pub fn explore<R, F, V>(
    program: &Program,
    make_rt: F,
    mut visit: V,
    limits: ExploreLimits,
) -> ExploreStats
where
    R: crate::exec::Runtime,
    F: FnMut() -> R,
    V: FnMut(&Machine, &R, &RunResult),
{
    explore_until(
        program,
        make_rt,
        |m, rt, r| {
            visit(m, rt, r);
            false
        },
        limits,
    )
}

/// [`explore`] with early exit: the visitor returns `true` to stop the
/// search after the current path (reported as `complete: false` unless it
/// happened to be the last path anyway). This is the driver for targeted
/// searches — e.g. confirming a static race-pair candidate set, where
/// exploration can stop as soon as every candidate has been witnessed.
pub fn explore_until<R, F, V>(
    program: &Program,
    mut make_rt: F,
    mut visit: V,
    limits: ExploreLimits,
) -> ExploreStats
where
    R: crate::exec::Runtime,
    F: FnMut() -> R,
    V: FnMut(&Machine, &R, &RunResult) -> bool,
{
    let mut sched = DfsSched {
        choices: Vec::new(),
        arity: Vec::new(),
        cursor: 0,
    };
    let mut paths = 0u64;
    loop {
        sched.cursor = 0;
        let keep = sched.choices.len().min(sched.cursor); // 0: full replay+extend
        let _ = keep;
        let mut machine = Machine::new(program);
        let mut rt = make_rt();
        let result = machine.run_with_limit(&mut rt, &mut sched, StepLimit(limits.max_steps));
        assert!(
            result.status != RunStatus::StepLimit,
            "path exceeded the step limit; raise ExploreLimits::max_steps"
        );
        if let RunStatus::Fault(msg) = &result.status {
            panic!("explored path faulted: {msg}");
        }
        let stop = visit(&machine, &rt, &result);
        paths += 1;
        if stop || (limits.max_paths > 0 && paths >= limits.max_paths) {
            // A stop on what would have been the final path is still an
            // incomplete claim — we did not verify there was nothing left.
            return ExploreStats {
                paths,
                complete: false,
            };
        }
        // Backtrack: drop decision points with no remaining alternatives,
        // then advance the deepest one that still has options.
        // (Decision points beyond `cursor` were never reached this path.)
        sched.choices.truncate(sched.cursor);
        sched.arity.truncate(sched.cursor);
        loop {
            match sched.choices.last().copied() {
                None => {
                    return ExploreStats {
                        paths,
                        complete: true,
                    }
                }
                Some(c) => {
                    let a = *sched.arity.last().expect("parallel stacks");
                    if c + 1 < a {
                        *sched.choices.last_mut().expect("nonempty") = c + 1;
                        break;
                    }
                    sched.choices.pop();
                    sched.arity.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;
    use crate::DirectRuntime;

    #[test]
    fn two_single_op_threads_have_two_orders() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write(x, 1);
        b.thread(1).write(x, 2);
        let p = b.build();
        let mut finals = Vec::new();
        let stats = explore(
            &p,
            DirectRuntime::default,
            |m, _, r| {
                assert_eq!(r.status, RunStatus::Done);
                finals.push(m.memory().load(x));
            },
            ExploreLimits::default(),
        );
        assert!(stats.complete);
        assert_eq!(stats.paths, 2);
        finals.sort_unstable();
        assert_eq!(finals, vec![1, 2]);
    }

    #[test]
    fn interleaving_count_matches_binomial() {
        // 2 threads x 2 ops: C(4, 2) = 6 interleavings.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        b.thread(0).write(x, 1).write(x, 2);
        b.thread(1).write(y, 1).write(y, 2);
        let p = b.build();
        let stats = explore(
            &p,
            DirectRuntime::default,
            |_, _, _| {},
            ExploreLimits::default(),
        );
        assert!(stats.complete);
        assert_eq!(stats.paths, 6);
    }

    #[test]
    fn locked_increments_are_correct_on_every_path() {
        let mut b = ProgramBuilder::new(2);
        let c = b.var("c");
        let l = b.lock_id("l");
        for t in 0..2 {
            b.thread(t).lock(l).rmw(c, 1).unlock(l);
        }
        let p = b.build();
        let stats = explore(
            &p,
            DirectRuntime::default,
            |m, _, r| {
                assert_eq!(r.status, RunStatus::Done);
                assert_eq!(m.memory().load(c), 2);
            },
            ExploreLimits::default(),
        );
        assert!(stats.complete);
        assert!(stats.paths >= 2);
    }

    #[test]
    fn deadlocks_are_reported_not_panicked() {
        let mut b = ProgramBuilder::new(2);
        let l1 = b.lock_id("a");
        let l2 = b.lock_id("b");
        b.thread(0).lock(l1).lock(l2).unlock(l2).unlock(l1);
        b.thread(1).lock(l2).lock(l1).unlock(l1).unlock(l2);
        let p = b.build();
        let mut deadlocks = 0;
        let mut dones = 0;
        let stats = explore(
            &p,
            DirectRuntime::default,
            |_, _, r| match r.status {
                RunStatus::Deadlock => deadlocks += 1,
                RunStatus::Done => dones += 1,
                _ => panic!("unexpected {r:?}"),
            },
            ExploreLimits::default(),
        );
        assert!(stats.complete);
        assert!(deadlocks > 0, "AB/BA deadlock must be reachable");
        assert!(dones > 0, "non-deadlocking orders exist too");
    }

    #[test]
    fn explore_until_stops_on_visitor_signal() {
        // Same 6-interleaving program as above; stop after the third path.
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        b.thread(0).write(x, 1).write(x, 2);
        b.thread(1).write(y, 1).write(y, 2);
        let p = b.build();
        let mut seen = 0u64;
        let stats = explore_until(
            &p,
            DirectRuntime::default,
            |_, _, _| {
                seen += 1;
                seen == 3
            },
            ExploreLimits::default(),
        );
        assert!(!stats.complete);
        assert_eq!(stats.paths, 3);
        assert_eq!(seen, 3);
    }

    #[test]
    fn max_paths_limit_stops_early() {
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        for t in 0..3 {
            b.thread(t).write(x, t as u64).write(x, 9);
        }
        let p = b.build();
        let stats = explore(
            &p,
            DirectRuntime::default,
            |_, _, _| {},
            ExploreLimits {
                max_paths: 10,
                max_steps: 1000,
            },
        );
        assert!(!stats.complete);
        assert_eq!(stats.paths, 10);
    }
}
