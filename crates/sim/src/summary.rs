//! Static per-site access summaries over the IR.
//!
//! [`summarize`] walks a [`Program`]'s statement trees once (no
//! execution) and produces one [`SiteAccess`] record per data-access site:
//! which thread issues it, whether it writes, the set of addresses it can
//! touch (its *footprint*), the locks provably held around every dynamic
//! occurrence, and the single-threaded-ness of its program phase.
//!
//! This is the IR-visitor half of the static race-freedom analysis; the
//! classification rules that consume these records live in the `txrace`
//! crate (`txrace::sa`). Everything here is deliberately *conservative*:
//! when a property cannot be established from the statement tree alone
//! (for example, a loop body with a net lock-depth change), the summary
//! under-approximates — it claims fewer locks held and a wider footprint
//! never a narrower one — so downstream pruning stays sound.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::addr::Addr;
use crate::ids::{ChanId, LockId, SiteId, ThreadId};
use crate::ir::{Op, Program, Stmt};

/// Where an access sits relative to the main thread's spawn/join
/// structure. Accesses in a single-threaded phase are globally
/// happens-before-ordered with respect to every other access in the
/// program (via the spawn and join edges), so they can never race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// On the main thread, before the first `Spawn`, while every other
    /// thread is still parked (also: anywhere in a program that never
    /// spawns and whose other threads never run).
    PreSpawn,
    /// Potentially concurrent with another thread.
    Concurrent,
    /// On the main thread, after every spawned thread has provably been
    /// joined.
    PostJoin,
}

/// The static summary of one data-access site.
#[derive(Debug, Clone)]
pub struct SiteAccess {
    /// The site this record describes.
    pub site: SiteId,
    /// The thread whose body contains the site.
    pub thread: ThreadId,
    /// True for `Write`, `WriteArr`, and `Rmw`.
    pub writes: bool,
    /// True for `Rmw` (an atomic access; never checked by the detectors).
    pub atomic: bool,
    /// Every address a dynamic occurrence of this site can touch. Scalar
    /// accesses have a one-element footprint; indexed accesses cover
    /// `base + stride * i` for each iteration `i` of the innermost
    /// enclosing loop (mirroring the interpreter's addressing).
    pub addrs: Vec<Addr>,
    /// Locks held at *every* dynamic occurrence of this site.
    pub locks: BTreeSet<LockId>,
    /// Single-threaded-phase classification.
    pub phase: Phase,
}

/// The static summary of one channel-operation site (a `ChanSend` or
/// `ChanRecv`). These feed the static analysis: a receive is a sync
/// boundary (it can acquire happens-before edges from other threads), so
/// flow-sensitive span reasoning must not carry availability facts across
/// one.
#[derive(Debug, Clone)]
pub struct ChanSiteUse {
    /// The site this record describes.
    pub site: SiteId,
    /// The thread whose body contains the site.
    pub thread: ThreadId,
    /// The channel the site operates on.
    pub chan: ChanId,
    /// True for `ChanSend`, false for `ChanRecv`.
    pub is_send: bool,
    /// Loop-weighted dynamic execution count of this site in one run.
    pub dynamic_count: u64,
}

/// All access records of a program, in walk order.
#[derive(Debug, Clone)]
pub struct ProgramSummary {
    accesses: Vec<SiteAccess>,
    chan_sites: Vec<ChanSiteUse>,
}

impl ProgramSummary {
    /// The records, one per data-access site that can execute. Sites
    /// inside zero-trip loops have no record (they are dead code).
    pub fn accesses(&self) -> &[SiteAccess] {
        &self.accesses
    }

    /// One record per channel-operation site that can execute, in walk
    /// order (sites under zero-trip loops are dead code and have none).
    pub fn channel_sites(&self) -> &[ChanSiteUse] {
        &self.chan_sites
    }
}

/// Trip-weighted dynamic access counts per static site: `counts[s]` is
/// the number of times site `s`'s op executes in one run (loop trips
/// multiply; zero-trip loops contribute nothing). Only data-access sites
/// get non-zero counts — sync ops, computes, and syscalls stay zero —
/// so the vector sums to [`Program::dynamic_access_count`].
///
/// This is the weighting the prune-statistics report uses: a fraction of
/// *sites* pruned overstates pruning on loop-heavy programs where the
/// surviving sites are exactly the hot ones.
pub fn dynamic_site_counts(p: &Program) -> Vec<u64> {
    fn walk(stmts: &[Stmt], mult: u64, counts: &mut [u64]) {
        for s in stmts {
            match s {
                Stmt::Op { site, op } if op.is_data_access() => {
                    counts[site.index()] += mult;
                }
                Stmt::Op { .. } => {}
                Stmt::Loop { trips, body, .. } => {
                    walk(body, mult * u64::from(*trips), counts);
                }
            }
        }
    }
    let mut counts = vec![0u64; p.site_count() as usize];
    for t in 0..p.thread_count() {
        walk(p.thread(ThreadId(t as u32)), 1, &mut counts);
    }
    counts
}

/// Builds the access summary of `p`.
pub fn summarize(p: &Program) -> ProgramSummary {
    let mut w = Walker {
        out: Vec::new(),
        chan_sites: Vec::new(),
        held: BTreeMap::new(),
    };
    for t in 0..p.thread_count() {
        let tid = ThreadId(t as u32);
        w.held.clear();
        let stmts = p.thread(tid);
        if t == 0 {
            if let Some((pre_end, post_start)) = main_phase_split(p, stmts) {
                w.walk(tid, &stmts[..pre_end], None, 1, Phase::PreSpawn);
                let mid_end = post_start.min(stmts.len());
                w.walk(tid, &stmts[pre_end..mid_end], None, 1, Phase::Concurrent);
                w.walk(tid, &stmts[mid_end..], None, 1, Phase::PostJoin);
                continue;
            }
        }
        w.walk(tid, stmts, None, 1, Phase::Concurrent);
    }
    ProgramSummary {
        accesses: w.out,
        chan_sites: w.chan_sites,
    }
}

/// If every non-main thread starts parked, splits the main thread's
/// top-level statements into `[..pre_end]` (single-threaded prologue),
/// `[pre_end..post_start]` (concurrent middle), and `[post_start..]`
/// (single-threaded epilogue). Returns `None` when other threads run from
/// the start (no single-threaded phase exists).
///
/// The epilogue begins only after the main thread has joined *every*
/// thread it could have spawned — a per-thread joined-set check, stricter
/// than the instrumentation pass's join-count heuristic, because here a
/// wrong answer would unsoundly prune checks rather than merely instrument
/// a dead region.
fn main_phase_split(p: &Program, stmts: &[Stmt]) -> Option<(usize, usize)> {
    let spawned: BTreeSet<u32> = (1..p.thread_count() as u32)
        .filter(|&t| p.starts_parked(ThreadId(t)))
        .collect();
    if spawned.len() != p.thread_count() - 1 {
        return None;
    }
    let has_spawn = |s: &Stmt| contains_op(s, &|op| matches!(op, Op::Spawn(_)));
    let Some(pre_end) = stmts.iter().position(has_spawn) else {
        // Main never spawns anyone and nobody else can run: the whole
        // program is single-threaded.
        return Some((stmts.len(), stmts.len()));
    };
    let mut joined: BTreeSet<u32> = BTreeSet::new();
    let mut post_start = stmts.len();
    for (i, s) in stmts.iter().enumerate() {
        collect_executed_joins(s, &mut joined);
        if i >= pre_end && joined.is_superset(&spawned) {
            // Everything *after* this statement is single-threaded.
            post_start = i + 1;
            break;
        }
    }
    Some((pre_end, post_start))
}

fn contains_op(s: &Stmt, pred: &impl Fn(&Op) -> bool) -> bool {
    match s {
        Stmt::Op { op, .. } => pred(op),
        Stmt::Loop { body, .. } => body.iter().any(|s| contains_op(s, pred)),
    }
}

/// Collects `Join` targets that are guaranteed to execute (subtrees under
/// zero-trip loops never run and must not count).
fn collect_executed_joins(s: &Stmt, joined: &mut BTreeSet<u32>) {
    match s {
        Stmt::Op {
            op: Op::Join(u), ..
        } => {
            joined.insert(u.0);
        }
        Stmt::Op { .. } => {}
        Stmt::Loop { trips, body, .. } if *trips > 0 => {
            for s in body {
                collect_executed_joins(s, joined);
            }
        }
        Stmt::Loop { .. } => {}
    }
}

struct Walker {
    out: Vec<SiteAccess>,
    chan_sites: Vec<ChanSiteUse>,
    /// Current lock-hold depth (a multiset; re-entrant depth tracked).
    held: BTreeMap<LockId, u32>,
}

impl Walker {
    fn walk(
        &mut self,
        t: ThreadId,
        stmts: &[Stmt],
        innermost_trips: Option<u32>,
        mult: u64,
        phase: Phase,
    ) {
        for s in stmts {
            match s {
                Stmt::Op { site, op } => self.op(t, *site, op, innermost_trips, mult, phase),
                Stmt::Loop { trips, body, .. } => {
                    if *trips == 0 {
                        // Dead code: nothing inside ever executes, so it
                        // contributes no records (and no footprint for
                        // other sites to conflict with).
                        continue;
                    }
                    let before = self.held.clone();
                    let start = self.out.len();
                    self.walk(t, body, Some(*trips), mult * u64::from(*trips), phase);
                    // A body with a net lock-depth change makes the lock
                    // state iteration-dependent; the single walk above saw
                    // only the first iteration's state. Be conservative:
                    // strip every drifting lock both from the records made
                    // inside the loop and from the state carried past it
                    // (claiming a lock is NOT held is always sound).
                    let drifting: Vec<LockId> = before
                        .keys()
                        .chain(self.held.keys())
                        .copied()
                        .filter(|l| {
                            before.get(l).copied().unwrap_or(0)
                                != self.held.get(l).copied().unwrap_or(0)
                        })
                        .collect();
                    for l in &drifting {
                        for r in &mut self.out[start..] {
                            r.locks.remove(l);
                        }
                        self.held.remove(l);
                    }
                }
            }
        }
    }

    fn op(
        &mut self,
        t: ThreadId,
        site: SiteId,
        op: &Op,
        innermost_trips: Option<u32>,
        mult: u64,
        phase: Phase,
    ) {
        match op {
            Op::ChanSend(ch) | Op::ChanRecv(ch) => {
                self.chan_sites.push(ChanSiteUse {
                    site,
                    thread: t,
                    chan: *ch,
                    is_send: matches!(op, Op::ChanSend(_)),
                    dynamic_count: mult,
                });
            }
            Op::Lock(l) => {
                *self.held.entry(*l).or_insert(0) += 1;
            }
            Op::Unlock(l) => {
                // Unbalanced unlocks (flagged by the lint) saturate at
                // zero rather than corrupting the map.
                if let Some(d) = self.held.get_mut(l) {
                    *d = d.saturating_sub(1);
                }
            }
            op if op.is_data_access() => {
                let addrs = footprint(op, innermost_trips);
                let locks = self
                    .held
                    .iter()
                    .filter(|&(_, &d)| d > 0)
                    .map(|(&l, _)| l)
                    .collect();
                self.out.push(SiteAccess {
                    site,
                    thread: t,
                    writes: op.is_write_access(),
                    atomic: matches!(op, Op::Rmw(_, _)),
                    addrs,
                    locks,
                    phase,
                });
            }
            _ => {}
        }
    }
}

/// The addresses one site can touch, mirroring the interpreter: indexed
/// accesses use the innermost enclosing loop's iteration index (0 outside
/// any loop).
fn footprint(op: &Op, innermost_trips: Option<u32>) -> Vec<Addr> {
    match op {
        Op::Read(a) | Op::Write(a, _) | Op::Rmw(a, _) => vec![*a],
        Op::ReadArr { base, stride } | Op::WriteArr { base, stride, .. } => {
            let n = innermost_trips.unwrap_or(1).max(1);
            (0..u64::from(n)).map(|i| base.offset(stride * i)).collect()
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;

    fn record<'a>(s: &'a ProgramSummary, p: &Program, label: &str) -> &'a SiteAccess {
        let site = p.site(label).expect("label exists");
        s.accesses()
            .iter()
            .find(|r| r.site == site)
            .expect("record exists")
    }

    #[test]
    fn scalar_footprint_and_kind() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0)
            .read_l(x, "r")
            .write_l(x, 1, "w")
            .rmw_l(x, 1, "a");
        b.thread(1).read(x);
        let p = b.build();
        let s = summarize(&p);
        let r = record(&s, &p, "r");
        assert!(!r.writes && !r.atomic && r.addrs == vec![x]);
        let w = record(&s, &p, "w");
        assert!(w.writes && !w.atomic);
        let a = record(&s, &p, "a");
        assert!(a.writes && a.atomic);
    }

    #[test]
    fn array_footprint_covers_innermost_loop() {
        let mut b = ProgramBuilder::new(2);
        let arr = b.array("arr", 16);
        b.thread(0).loop_n(3, |tb| {
            tb.loop_n(4, |tb| {
                tb.read_arr_l(arr, 8, "inner");
            });
            tb.write_arr_l(arr, 8, 1, "outer");
        });
        b.thread(1).read(arr);
        let p = b.build();
        let s = summarize(&p);
        // Innermost loop has 4 trips: footprint is 4 addresses.
        assert_eq!(record(&s, &p, "inner").addrs.len(), 4);
        // The outer access's innermost enclosing loop has 3 trips.
        assert_eq!(record(&s, &p, "outer").addrs.len(), 3);
        assert_eq!(record(&s, &p, "inner").addrs[2], arr.offset(16));
    }

    #[test]
    fn locks_tracked_through_balanced_loops() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).lock(l).loop_n(5, |tb| {
            tb.write_l(x, 1, "locked");
        });
        b.thread(0).unlock(l).read_l(x, "unlocked");
        b.thread(1).read(x);
        let p = b.build();
        let s = summarize(&p);
        assert!(record(&s, &p, "locked").locks.contains(&l));
        assert!(record(&s, &p, "unlocked").locks.is_empty());
    }

    #[test]
    fn lock_drifting_loop_body_loses_credit() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        // The body net-acquires `l`: the state differs per iteration, so
        // neither the inner access nor anything after may claim it.
        b.thread(0).loop_n(3, |tb| {
            tb.lock(l).write_l(x, 1, "inside");
        });
        b.thread(0).read_l(x, "after");
        b.thread(1).read(x);
        let p = b.build();
        let s = summarize(&p);
        assert!(record(&s, &p, "inside").locks.is_empty());
        assert!(record(&s, &p, "after").locks.is_empty());
    }

    #[test]
    fn phases_split_around_spawn_and_join() {
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        b.thread(0)
            .write_l(x, 1, "pre")
            .spawn(ThreadId(1))
            .spawn(ThreadId(2))
            .read_l(x, "mid")
            .join(ThreadId(1))
            .read_l(x, "mid2")
            .join(ThreadId(2))
            .write_l(x, 2, "post");
        b.thread(1).read(x);
        b.thread(2).read(x);
        let p = b.build();
        let s = summarize(&p);
        assert_eq!(record(&s, &p, "pre").phase, Phase::PreSpawn);
        assert_eq!(record(&s, &p, "mid").phase, Phase::Concurrent);
        // Only one of the two spawned threads is joined yet.
        assert_eq!(record(&s, &p, "mid2").phase, Phase::Concurrent);
        assert_eq!(record(&s, &p, "post").phase, Phase::PostJoin);
    }

    #[test]
    fn unparked_siblings_suppress_phases() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).write_l(x, 1, "w");
        b.thread(1).read(x);
        let p = b.build();
        let s = summarize(&p);
        assert_eq!(record(&s, &p, "w").phase, Phase::Concurrent);
    }

    #[test]
    fn single_threaded_program_is_all_prespawn() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).write_l(x, 1, "w");
        let p = b.build();
        let s = summarize(&p);
        assert_eq!(record(&s, &p, "w").phase, Phase::PreSpawn);
    }

    #[test]
    fn dynamic_site_counts_are_trip_weighted_and_total_consistent() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).write_l(x, 1, "once").loop_n(3, |tb| {
            tb.read_l(x, "outer");
            tb.loop_n(4, |tb| {
                tb.write_l(x, 2, "inner");
            });
            tb.loop_n(0, |tb| {
                tb.write_l(x, 3, "dead");
            });
        });
        b.thread(1).lock(l).read(x).unlock(l);
        let p = b.build();
        let counts = dynamic_site_counts(&p);
        let at = |label: &str| counts[p.site(label).unwrap().index()];
        assert_eq!(at("once"), 1);
        assert_eq!(at("outer"), 3);
        assert_eq!(at("inner"), 12);
        assert_eq!(at("dead"), 0);
        // Sync sites count zero; the vector sums to the program's total
        // dynamic access count.
        assert_eq!(counts.iter().sum::<u64>(), p.dynamic_access_count());
    }

    #[test]
    fn channel_sites_are_summarized_with_trip_weights() {
        let mut b = ProgramBuilder::new(2);
        let ch = b.chan_id("ch", 4);
        b.thread(0).loop_n(6, |tb| {
            tb.send_l(ch, "produce");
        });
        b.thread(1).loop_n(6, |tb| {
            tb.recv_l(ch, "consume");
        });
        b.thread(1).loop_n(0, |tb| {
            tb.recv_l(ch, "dead");
        });
        let p = b.build();
        let s = summarize(&p);
        let find = |label: &str| {
            let site = p.site(label).unwrap();
            s.channel_sites().iter().find(|r| r.site == site)
        };
        let send = find("produce").expect("send summarized");
        assert!(send.is_send && send.chan == ch && send.dynamic_count == 6);
        assert_eq!(send.thread, ThreadId(0));
        let recv = find("consume").expect("recv summarized");
        assert!(!recv.is_send && recv.dynamic_count == 6);
        assert!(find("dead").is_none(), "dead channel sites are dropped");
    }

    #[test]
    fn zero_trip_loops_leave_no_records() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        b.thread(0).loop_n(0, |tb| {
            tb.write_l(x, 1, "dead");
        });
        b.thread(1).read(x);
        let p = b.build();
        let s = summarize(&p);
        let site = p.site("dead").unwrap();
        assert!(s.accesses().iter().all(|r| r.site != site));
    }
}
